//! # siteselect
//!
//! A from-scratch Rust reproduction of *Kanitkar & Delis, "Site Selection
//! for Real-Time Client Request Handling" (ICDCS 1999)*: deadline-aware
//! data/transaction shipping for client-server real-time databases.
//!
//! This facade crate re-exports the workspace's public API:
//!
//! * [`types`] — identifiers, simulated time, lock modes, transactions and
//!   configuration (Table 1 presets);
//! * [`sim`] — the deterministic discrete-event kernel (event queue, PRNG,
//!   statistics);
//! * [`storage`] — the MiniRel-style paged-file layer and the two-tier
//!   client cache;
//! * [`locks`] — lock tables, callback locking with downgrade, wait-for
//!   graphs, forward lists and collection windows;
//! * [`workload`] — Table 1 workload generation and the Localized-RW access
//!   pattern;
//! * [`net`] — the shared-Ethernet model, message vocabulary and Table 4
//!   accounting;
//! * [`obs`] — deterministic event tracing: the [`obs::EventSink`], the
//!   structured event taxonomy (H1/H2 decisions, transaction lifecycle,
//!   faults), streaming log-linear histograms, and JSONL / Chrome-trace
//!   exporters;
//! * [`core`] — the three systems (CE-RTDBS, CS-RTDBS, LS-CS-RTDBS), the
//!   load-sharing algorithm (H1/H2, shipping, decomposition, grouped
//!   locks), and the experiment sweeps behind every figure and table;
//! * [`cluster`] — a real multi-threaded mini CS-RTDBS with a
//!   conflict-serializability checker.
//!
//! # Quickstart
//!
//! ```
//! use siteselect::core::run_experiment;
//! use siteselect::types::{ExperimentConfig, SimDuration, SystemKind};
//!
//! let mut cfg = ExperimentConfig::paper(SystemKind::LoadSharing, 8, 0.05);
//! cfg.runtime.duration = SimDuration::from_secs(200);
//! cfg.runtime.warmup = SimDuration::from_secs(40);
//! let metrics = run_experiment(&cfg)?;
//! println!("{:.1}% of transactions met their deadline", metrics.success_percent());
//! # Ok::<(), siteselect::types::ConfigError>(())
//! ```

pub use siteselect_check as check;
pub use siteselect_cluster as cluster;
pub use siteselect_core as core;
pub use siteselect_locks as locks;
pub use siteselect_net as net;
pub use siteselect_obs as obs;
pub use siteselect_sim as sim;
pub use siteselect_storage as storage;
pub use siteselect_types as types;
pub use siteselect_workload as workload;

/// Workspace version string.
pub const VERSION: &str = env!("CARGO_PKG_VERSION");

#[cfg(test)]
mod tests {
    #[test]
    fn version_is_nonempty() {
        assert!(!super::VERSION.is_empty());
    }
}
