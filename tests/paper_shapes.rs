//! Qualitative-shape tests: the relationships the paper's evaluation
//! reports must hold on scaled-down runs.
//!
//! The cluster sizes here are smaller than the paper's (these run in CI,
//! in debug mode); the centralized server's speed advantage is reduced
//! accordingly so that its saturation point falls inside the tested range.

use siteselect::core::{run_experiment, RunMetrics};
use siteselect::types::{ExperimentConfig, SimDuration, SystemKind};

/// A scaled-down experiment: server only 1.5x a client, so CE saturates
/// around 15 clients instead of 40.
fn scaled(system: SystemKind, clients: u16, updates: f64) -> RunMetrics {
    let mut cfg = ExperimentConfig::paper(system, clients, updates);
    cfg.cpu.server_speed = 1.5;
    cfg.runtime.duration = SimDuration::from_secs(400);
    cfg.runtime.warmup = SimDuration::from_secs(80);
    run_experiment(&cfg).expect("valid config")
}

#[test]
fn centralized_wins_small_clusters_then_collapses() {
    // Paper Figure 3: "For a small number of clients, the centralized
    // system performs better than the CS-RTDBS. [...] as the number of
    // clients increases, the performance of the CE-RTDBS deteriorates
    // rapidly."
    let ce_small = scaled(SystemKind::Centralized, 4, 0.01);
    let cs_small = scaled(SystemKind::ClientServer, 4, 0.01);
    assert!(
        ce_small.success_percent() > cs_small.success_percent(),
        "CE {:.1}% should beat CS {:.1}% on a small cluster",
        ce_small.success_percent(),
        cs_small.success_percent()
    );

    let ce_big = scaled(SystemKind::Centralized, 30, 0.01);
    assert!(
        ce_small.success_percent() - ce_big.success_percent() > 20.0,
        "CE must collapse under load: {:.1}% -> {:.1}%",
        ce_small.success_percent(),
        ce_big.success_percent()
    );
}

#[test]
fn client_server_degrades_gently() {
    // Paper: "the CS-RTDBS and LS-CS-RTDBS show very little deterioration."
    let cs_small = scaled(SystemKind::ClientServer, 4, 0.01);
    let cs_big = scaled(SystemKind::ClientServer, 30, 0.01);
    let drop = cs_small.success_percent() - cs_big.success_percent();
    assert!(
        drop < 10.0,
        "CS degraded too fast: {:.1}% -> {:.1}%",
        cs_small.success_percent(),
        cs_big.success_percent()
    );
}

#[test]
fn client_server_beats_centralized_at_scale() {
    let ce = scaled(SystemKind::Centralized, 30, 0.05);
    let cs = scaled(SystemKind::ClientServer, 30, 0.05);
    let ls = scaled(SystemKind::LoadSharing, 30, 0.05);
    assert!(cs.success_percent() > ce.success_percent());
    assert!(ls.success_percent() > ce.success_percent());
}

#[test]
fn updates_hurt_the_client_server_systems_more() {
    // Paper conclusion (iii): "An increase in the percentage of updates
    // affects the client-server systems more than the centralized one."
    let cs_low = scaled(SystemKind::ClientServer, 20, 0.01);
    let cs_high = scaled(SystemKind::ClientServer, 20, 0.20);
    let ce_low = scaled(SystemKind::Centralized, 20, 0.01);
    let ce_high = scaled(SystemKind::Centralized, 20, 0.20);
    let cs_drop = cs_low.success_percent() - cs_high.success_percent();
    let ce_drop = ce_low.success_percent() - ce_high.success_percent();
    assert!(
        cs_drop > ce_drop - 0.5,
        "updates should hurt CS (drop {cs_drop:.2}pp) at least as much as CE (drop {ce_drop:.2}pp)"
    );
}

#[test]
fn load_sharing_beats_plain_client_server_under_update_load() {
    // Paper conclusion (ii): the LS system "significantly" improves on the
    // CS system under the Localized-RW pattern with 20% updates.
    let cs = scaled(SystemKind::ClientServer, 30, 0.20);
    let ls = scaled(SystemKind::LoadSharing, 30, 0.20);
    assert!(
        ls.success_percent() >= cs.success_percent(),
        "LS {:.2}% must not lose to CS {:.2}% at 20% updates",
        ls.success_percent(),
        cs.success_percent()
    );
}

#[test]
fn exclusive_responses_slower_than_shared() {
    // Paper Table 3: exclusive requests take an order of magnitude longer
    // than shared ones (callbacks must complete first).
    let cs = scaled(SystemKind::ClientServer, 20, 0.20);
    assert!(
        cs.response.exclusive.mean() > cs.response.shared.mean(),
        "EL {:.4}s should exceed SL {:.4}s",
        cs.response.exclusive.mean(),
        cs.response.shared.mean()
    );
}

#[test]
fn cache_hit_rate_declines_with_update_fraction() {
    // Paper Table 2: hit rates fall as the update percentage rises
    // (callbacks invalidate cached copies).
    let low = scaled(SystemKind::ClientServer, 20, 0.01);
    let high = scaled(SystemKind::ClientServer, 20, 0.20);
    assert!(
        low.cache.hit_percent() > high.cache.hit_percent(),
        "hit rate must drop with updates: {:.2}% vs {:.2}%",
        low.cache.hit_percent(),
        high.cache.hit_percent()
    );
}

#[test]
fn forward_lists_reduce_server_bound_messages() {
    // Paper Table 4: requests satisfied via forward lists reduce recall
    // and return traffic relative to CS.
    use siteselect::net::MessageKind;
    let mut cfg = ExperimentConfig::paper(SystemKind::LoadSharing, 30, 0.20);
    cfg.cpu.server_speed = 1.5;
    cfg.runtime.duration = SimDuration::from_secs(400);
    cfg.runtime.warmup = SimDuration::from_secs(80);
    let ls = run_experiment(&cfg).unwrap();
    cfg.system = SystemKind::ClientServer;
    cfg.server = siteselect::types::ServerConfig::client_server();
    let cs = run_experiment(&cfg).unwrap();
    // LS satisfies some requests client-to-client...
    assert!(ls.messages.count(MessageKind::ObjectForward) > 0);
    // ...and sends fewer objects from the server than CS.
    assert!(
        ls.messages.count(MessageKind::ObjectSend)
            <= cs.messages.count(MessageKind::ObjectSend),
        "LS {} server sends vs CS {}",
        ls.messages.count(MessageKind::ObjectSend),
        cs.messages.count(MessageKind::ObjectSend)
    );
}
