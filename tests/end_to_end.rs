//! End-to-end integration tests: the three systems run to completion on
//! shared workloads, account for every transaction, and replay
//! bit-identically.

use siteselect::core::{run_experiment, RunMetrics};
use siteselect::types::{ExperimentConfig, SimDuration, SystemKind};

fn quick(system: SystemKind, clients: u16, updates: f64, seed: u64) -> RunMetrics {
    let mut cfg = ExperimentConfig::paper(system, clients, updates);
    cfg.runtime.duration = SimDuration::from_secs(250);
    cfg.runtime.warmup = SimDuration::from_secs(50);
    cfg.runtime.seed = seed;
    run_experiment(&cfg).expect("valid config")
}

#[test]
fn every_system_accounts_for_every_transaction() {
    for system in SystemKind::ALL {
        for updates in [0.01, 0.20] {
            let m = quick(system, 8, updates, 1);
            assert!(m.measured > 0, "{system} {updates}: nothing measured");
            assert!(
                m.is_consistent(),
                "{system} {updates}: {} in_time + {} failures != {} measured",
                m.in_time,
                m.failures.total(),
                m.measured
            );
        }
    }
}

#[test]
fn identical_seeds_replay_identically() {
    for system in SystemKind::ALL {
        let a = quick(system, 6, 0.05, 42);
        let b = quick(system, 6, 0.05, 42);
        assert_eq!(a, b, "{system} not deterministic");
    }
}

#[test]
fn different_seeds_differ() {
    let a = quick(SystemKind::LoadSharing, 6, 0.05, 1);
    let b = quick(SystemKind::LoadSharing, 6, 0.05, 2);
    assert_ne!(a, b);
}

#[test]
fn workload_is_identical_across_systems() {
    // All three systems must measure the same number of transactions: they
    // share the trace generator and seed.
    let counts: Vec<u64> = SystemKind::ALL
        .iter()
        .map(|&s| quick(s, 8, 0.05, 3).measured)
        .collect();
    assert_eq!(counts[0], counts[1]);
    assert_eq!(counts[1], counts[2]);
}

#[test]
fn client_server_systems_report_cache_and_responses() {
    for system in [SystemKind::ClientServer, SystemKind::LoadSharing] {
        let m = quick(system, 8, 0.05, 4);
        let cache_events = m.cache.memory_hits + m.cache.disk_hits + m.cache.misses;
        assert!(cache_events > 0, "{system}: no cache accounting");
        assert!(
            m.response.shared.count() > 0,
            "{system}: no shared-lock responses measured"
        );
        // Response times are sane: positive, below the run length.
        assert!(m.response.shared.mean() >= 0.0);
        assert!(m.response.shared.mean() < 250.0);
    }
}

#[test]
fn centralized_reports_server_side_metrics() {
    let m = quick(SystemKind::Centralized, 8, 0.05, 5);
    assert!(m.server_cpu_utilization > 0.0);
    assert!(m.server_buffer.total() > 0);
    // Clients are terminals: no client cache in the centralized system.
    assert_eq!(m.cache.memory_hits + m.cache.disk_hits + m.cache.misses, 0);
}

#[test]
fn message_accounting_is_nontrivial() {
    use siteselect::net::MessageKind;
    let m = quick(SystemKind::ClientServer, 8, 0.20, 6);
    assert!(m.messages.count(MessageKind::ObjectRequest) > 0);
    assert!(m.messages.count(MessageKind::ObjectSend) > 0);
    assert!(
        m.messages.count(MessageKind::Recall) > 0,
        "20% updates on a small cluster must trigger callbacks"
    );
    assert!(m.messages.total_bytes() > 0);
    // The centralized system only submits and returns results.
    let ce = quick(SystemKind::Centralized, 8, 0.20, 6);
    assert_eq!(ce.messages.count(MessageKind::ObjectRequest), 0);
    assert!(ce.messages.count(MessageKind::TxnSubmit) > 0);
    assert!(ce.messages.count(MessageKind::TxnResult) > 0);
}

#[test]
fn load_sharing_machinery_engages_under_contention() {
    let m = quick(SystemKind::LoadSharing, 12, 0.20, 7);
    let ls = m.load_sharing;
    assert!(
        ls.windows_opened + ls.decomposed + ls.shipped + ls.forward_satisfied > 0,
        "no LS activity: {ls:?}"
    );
}

#[test]
fn ablation_flags_change_behaviour() {
    let mut base = ExperimentConfig::paper(SystemKind::LoadSharing, 10, 0.20);
    base.runtime.duration = SimDuration::from_secs(250);
    base.runtime.warmup = SimDuration::from_secs(50);
    let full = run_experiment(&base).unwrap();

    let mut no_dec = base.clone();
    no_dec.load_sharing.decomposition_enabled = false;
    let no_dec = run_experiment(&no_dec).unwrap();
    assert_eq!(no_dec.load_sharing.decomposed, 0);
    assert!(full.load_sharing.decomposed > 0);

    let mut no_h1 = base.clone();
    no_h1.load_sharing.h1_enabled = false;
    let no_h1 = run_experiment(&no_h1).unwrap();
    assert_eq!(no_h1.load_sharing.h1_rejections, 0);

    let mut no_fwd = base;
    no_fwd.load_sharing.forward_lists_enabled = false;
    let no_fwd = run_experiment(&no_fwd).unwrap();
    assert_eq!(no_fwd.load_sharing.forward_satisfied, 0);
    assert_eq!(no_fwd.load_sharing.windows_opened, 0);
}

#[test]
fn longer_runs_measure_more_transactions() {
    let mut cfg = ExperimentConfig::paper(SystemKind::ClientServer, 4, 0.05);
    cfg.runtime.duration = SimDuration::from_secs(200);
    cfg.runtime.warmup = SimDuration::from_secs(40);
    let short = run_experiment(&cfg).unwrap();
    cfg.runtime.duration = SimDuration::from_secs(400);
    let long = run_experiment(&cfg).unwrap();
    assert!(long.measured > short.measured);
}
