//! Integration tests of the real-thread cluster: protocol correctness under
//! genuine concurrency.

use siteselect::cluster::{Cluster, ClusterConfig};
use siteselect::types::SimDuration;

#[test]
fn default_cluster_is_serializable_and_balanced() {
    let report = Cluster::run(ClusterConfig::default()).expect("cluster runs");
    assert!(report.generated > 0);
    assert!(report.is_balanced());
    report.history.check_serializable().expect("serializable history");
}

#[test]
fn extreme_contention_stays_serializable() {
    // Every client fights over four objects with mostly-update
    // transactions: the worst case for callback locking.
    let mut cfg = ClusterConfig {
        clients: 8,
        db_objects: 4,
        server_buffer: 4,
        client_cache: 4,
        txns_per_client: 20,
        ..ClusterConfig::default()
    };
    cfg.workload.access_pattern.hot_region_objects = 4;
    cfg.workload.update_fraction = 0.9;
    cfg.workload.mean_objects_per_txn = 2.0;
    cfg.workload.mean_interarrival = SimDuration::from_secs(1);
    let report = Cluster::run(cfg).expect("cluster runs");
    assert!(report.is_balanced());
    assert!(report.server.recalls > 0);
    report.history.check_serializable().expect("serializable history");
}

#[test]
fn read_only_workload_never_recalls_data() {
    let mut cfg = ClusterConfig {
        clients: 4,
        ..ClusterConfig::default()
    };
    cfg.workload.update_fraction = 0.0;
    let report = Cluster::run(cfg).expect("cluster runs");
    assert!(report.is_balanced());
    // Readers share locks: no data returns are forced by recalls (evictions
    // may still return clean copies, which carry no data).
    assert_eq!(report.server.downgrades, 0);
    report.history.check_serializable().expect("serializable history");
}

#[test]
fn final_store_versions_match_committed_writes() {
    use siteselect::cluster::Op;
    use std::collections::HashMap;
    let mut cfg = ClusterConfig {
        clients: 6,
        db_objects: 32,
        server_buffer: 32,
        client_cache: 8,
        txns_per_client: 25,
        ..ClusterConfig::default()
    };
    cfg.workload.update_fraction = 0.5;
    cfg.workload.access_pattern.hot_region_objects = 32;
    cfg.workload.mean_interarrival = SimDuration::from_secs(1);
    let report = Cluster::run(cfg).expect("cluster runs");
    report.history.check_serializable().expect("serializable");
    // Count committed writes per object: every write bumped the version by
    // one, and the shutdown flush pushed all dirty pages home, so the
    // maximum committed transition must be visible in the history itself.
    let mut writes: HashMap<_, u64> = HashMap::new();
    for op in report.history.snapshot() {
        if let Op::Write { object, from, .. } = op {
            let e = writes.entry(object).or_insert(0);
            *e = (*e).max(from + 1);
        }
    }
    // Monotone versions: for every object the set of transitions is exactly
    // 0..max (no gaps, no duplicates — duplicates are caught by the
    // checker, gaps would mean a lost update).
    let mut seen: HashMap<_, Vec<u64>> = HashMap::new();
    for op in report.history.snapshot() {
        if let Op::Write { object, from, .. } = op {
            seen.entry(object).or_default().push(from + 1);
        }
    }
    // detlint: allow(D2) — each object is asserted independently; order is free
    for (object, mut versions) in seen {
        versions.sort_unstable();
        let expected: Vec<u64> = (1..=versions.len() as u64).collect();
        assert_eq!(
            versions, expected,
            "object {object} has gaps or duplicates in its version history"
        );
    }
}

#[test]
fn per_run_reports_are_reasonable() {
    let report = Cluster::run(ClusterConfig {
        clients: 2,
        txns_per_client: 5,
        ..ClusterConfig::default()
    })
    .expect("cluster runs");
    assert_eq!(report.generated, 10);
    assert!(report.success_percent() <= 100.0);
    let text = report.to_string();
    assert!(text.contains("cluster:"));
    assert!(text.contains("server:"));
}
