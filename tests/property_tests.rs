//! Property-based tests over the core data structures and invariants.
//!
//! Randomized inputs come from the workspace's own deterministic [`Prng`]
//! (seeded per case), so failures reproduce exactly without an external
//! property-testing framework.

use siteselect::locks::{Acquire, ForwardEntry, ForwardList, LockTable, QueueDiscipline, WaitForGraph};
use siteselect::sim::{EventQueue, OnlineStats, Prng};
use siteselect::storage::ClientCache;
use siteselect::types::{ClientId, LockMode, ObjectId, SimTime, TransactionId};

const CASES: u64 = 256;

// ---------------------------------------------------------------------
// Lock table: no conflicting holders, ever, under arbitrary op sequences.
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
enum LockOp {
    Request { obj: u8, owner: u8, exclusive: bool, deadline: u16 },
    Release { obj: u8, owner: u8 },
    Downgrade { obj: u8, owner: u8 },
    Cancel { obj: u8, owner: u8 },
    ReleaseAll { owner: u8 },
    Expire { now: u16 },
}

fn lock_op(rng: &mut Prng) -> LockOp {
    let obj = rng.below(6) as u8;
    let owner = rng.below(5) as u8;
    match rng.below(6) {
        0 => LockOp::Request {
            obj,
            owner,
            exclusive: rng.bernoulli(0.5),
            deadline: rng.below(100) as u16,
        },
        1 => LockOp::Release { obj, owner },
        2 => LockOp::Downgrade { obj, owner },
        3 => LockOp::Cancel { obj, owner },
        4 => LockOp::ReleaseAll { owner },
        _ => LockOp::Expire {
            now: rng.below(100) as u16,
        },
    }
}

#[test]
fn lock_table_never_grants_conflicting_holders() {
    for case in 0..CASES {
        let mut rng = Prng::seed_from_u64(0xA11C_0000 + case);
        let discipline = if rng.bernoulli(0.5) {
            QueueDiscipline::Deadline
        } else {
            QueueDiscipline::Fifo
        };
        let mut table: LockTable<ClientId> = LockTable::new(discipline);
        let ops = 1 + rng.below_usize(79);
        for _ in 0..ops {
            match lock_op(&mut rng) {
                LockOp::Request { obj, owner, exclusive, deadline } => {
                    let mode = LockMode::for_write(exclusive);
                    let _ = table.request(
                        ObjectId(obj.into()),
                        ClientId(owner.into()),
                        mode,
                        SimTime::from_secs(deadline.into()),
                    );
                }
                LockOp::Release { obj, owner } => {
                    let _ = table.release(ObjectId(obj.into()), ClientId(owner.into()));
                }
                LockOp::Downgrade { obj, owner } => {
                    let _ = table.downgrade(ObjectId(obj.into()), ClientId(owner.into()));
                }
                LockOp::Cancel { obj, owner } => {
                    let _ = table.cancel_wait(ObjectId(obj.into()), ClientId(owner.into()));
                }
                LockOp::ReleaseAll { owner } => {
                    let _ = table.release_all(ClientId(owner.into()));
                }
                LockOp::Expire { now } => {
                    let _ = table.cancel_expired(SimTime::from_secs(now.into()));
                }
            }
            table.check_invariants().expect("lock table invariant violated");
        }
    }
}

#[test]
fn blocked_requests_are_eventually_granted_on_release() {
    for case in 0..CASES {
        let mut rng = Prng::seed_from_u64(0xB10C_0000 + case);
        let mut table: LockTable<ClientId> = LockTable::new(QueueDiscipline::Fifo);
        let obj = ObjectId(1);
        let n = 2 + rng.below_usize(4);
        let mut distinct: Vec<u8> = (0..n).map(|_| rng.below(5) as u8).collect();
        distinct.sort_unstable();
        distinct.dedup();
        // All owners request EL; the first wins.
        for (i, &w) in distinct.iter().enumerate() {
            let r = table.request(obj, ClientId(w.into()), LockMode::Exclusive, SimTime::MAX);
            if i == 0 {
                assert!(r.is_granted());
            } else {
                assert!(matches!(r, Acquire::Blocked { .. }));
            }
        }
        // Releasing in turn grants everyone exactly once, in order.
        let mut granted_order = vec![distinct[0]];
        for _ in 1..distinct.len() {
            let current = *granted_order.last().unwrap();
            let grants = table.release(obj, ClientId(current.into()));
            assert_eq!(grants.len(), 1);
            granted_order.push(grants[0].owner.0 as u8);
        }
        assert_eq!(granted_order, distinct);
    }
}

// ------------------------------------------------------------------
// Wait-for graph: the gate keeps the graph acyclic.
// ------------------------------------------------------------------

#[test]
fn wfg_gate_prevents_cycles() {
    for case in 0..CASES {
        let mut rng = Prng::seed_from_u64(0x3F6_0000 + case);
        let mut g: WaitForGraph<u8> = WaitForGraph::new();
        let edges = 1 + rng.below_usize(59);
        for _ in 0..edges {
            let a = rng.below(8) as u8;
            let b = rng.below(8) as u8;
            if a != b && !g.would_deadlock(a, &[b]) {
                g.add_waits(a, [b]);
            }
            assert!(!g.has_cycle());
        }
    }
}

// ------------------------------------------------------------------
// Client cache: capacity and tier behaviour.
// ------------------------------------------------------------------

#[test]
fn client_cache_never_exceeds_capacity() {
    for case in 0..CASES {
        let mut rng = Prng::seed_from_u64(0xCAC4_E000 + case);
        let mem = 1 + rng.below_usize(7);
        let disk = rng.below_usize(8);
        let mut cache = ClientCache::new(mem, disk);
        let ops = 1 + rng.below_usize(199);
        for _ in 0..ops {
            let obj = rng.below(40) as u32;
            if rng.bernoulli(0.5) {
                cache.insert(ObjectId(obj));
            } else {
                let _ = cache.probe(ObjectId(obj));
            }
            assert!(cache.len() <= mem + disk);
        }
        // Every id the iterator yields is reported present.
        let ids: Vec<ObjectId> = cache.iter().collect();
        for id in ids {
            assert!(cache.contains(id));
        }
    }
}

#[test]
fn client_cache_insert_makes_present_until_evicted() {
    for case in 0..CASES {
        let mut rng = Prng::seed_from_u64(0x1A5E_0000 + case);
        let mut cache = ClientCache::new(4, 4);
        let n = 1 + rng.below_usize(49);
        for _ in 0..n {
            let o = rng.below(20) as u32;
            cache.insert(ObjectId(o));
            // The most recently inserted object is always present.
            assert!(cache.contains(ObjectId(o)));
        }
    }
}

// ------------------------------------------------------------------
// Forward lists: ordering and liveness filtering.
// ------------------------------------------------------------------

#[test]
fn forward_list_serves_in_deadline_order_and_skips_expired() {
    for case in 0..CASES {
        let mut rng = Prng::seed_from_u64(0xF0D0_0000 + case);
        let mut list = ForwardList::new(ObjectId(1));
        let n = 1 + rng.below_usize(19);
        for _ in 0..n {
            let client = rng.below(10) as u16;
            let deadline = rng.range_u64(1, 100);
            let write = rng.bernoulli(0.5);
            list.push(ForwardEntry {
                client: ClientId(client),
                txn: TransactionId::new(ClientId(client), deadline),
                deadline: SimTime::from_secs(deadline),
                mode: LockMode::for_write(write),
            });
        }
        // Entries are deadline-sorted.
        let ds: Vec<_> = list.entries().iter().map(|e| e.deadline).collect();
        assert!(ds.windows(2).all(|w| w[0] <= w[1]));
        // Draining never yields an expired entry and consumes everything.
        let now_t = SimTime::from_secs(rng.below(100));
        let mut served = 0usize;
        let mut skipped = 0usize;
        loop {
            let (next, dead) = list.pop_next_live(now_t);
            skipped += dead.len();
            match next {
                Some(e) => {
                    assert!(e.deadline >= now_t);
                    served += 1;
                }
                None => break,
            }
        }
        assert_eq!(served + skipped, n);
    }
}

// ------------------------------------------------------------------
// Event queue: global ordering with FIFO ties.
// ------------------------------------------------------------------

#[test]
fn event_queue_is_stable_priority_order() {
    for case in 0..CASES {
        let mut rng = Prng::seed_from_u64(0xE0_0000 + case);
        let mut q = EventQueue::new();
        let n = 1 + rng.below_usize(99);
        for i in 0..n {
            q.push(SimTime::from_secs(rng.below(50)), i);
        }
        let mut last: Option<(SimTime, usize)> = None;
        while let Some((t, i)) = q.pop() {
            if let Some((lt, li)) = last {
                assert!(t >= lt);
                if t == lt {
                    assert!(i > li, "FIFO tie-break violated");
                }
            }
            last = Some((t, i));
        }
    }
}

// ------------------------------------------------------------------
// Statistics: Welford matches the naive two-pass computation.
// ------------------------------------------------------------------

#[test]
fn online_stats_match_naive() {
    for case in 0..CASES {
        let mut rng = Prng::seed_from_u64(0x57A7_0000 + case);
        let n = 2 + rng.below_usize(98);
        let values: Vec<f64> = (0..n).map(|_| (rng.next_f64() - 0.5) * 2e6).collect();
        let mut s = OnlineStats::new();
        for &v in &values {
            s.push(v);
        }
        let n = values.len() as f64;
        let mean = values.iter().sum::<f64>() / n;
        let var = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (n - 1.0);
        assert!((s.mean() - mean).abs() < 1e-6 * mean.abs().max(1.0));
        assert!((s.variance() - var).abs() < 1e-5 * var.abs().max(1.0));
    }
}

// ------------------------------------------------------------------
// Network fabric: timing, medium booking and fault-layer invariants.
// ------------------------------------------------------------------

use siteselect::net::{Delivery, Fabric, MessageKind};
use siteselect::types::{FaultConfig, LanKind, NetworkConfig, SimDuration, SiteId};

fn random_site(rng: &mut Prng) -> SiteId {
    match rng.below(6) {
        0 => SiteId::Server,
        1 => SiteId::Directory,
        n => SiteId::Client(ClientId((n - 2) as u16)),
    }
}

fn random_kind(rng: &mut Prng) -> MessageKind {
    *rng.choose(&[
        MessageKind::TxnSubmit,
        MessageKind::ObjectRequest,
        MessageKind::ObjectSend,
        MessageKind::Recall,
        MessageKind::ObjectReturn,
        MessageKind::ObjectForward,
    ])
}

#[test]
fn fabric_never_delivers_before_latency_plus_now() {
    for case in 0..CASES {
        let mut rng = Prng::seed_from_u64(0xFAB_0000 + case);
        let cfg = NetworkConfig {
            kind: if rng.bernoulli(0.5) {
                LanKind::SharedEthernet
            } else {
                LanKind::Switched
            },
            latency: SimDuration::from_micros(rng.below(5_000)),
            ..NetworkConfig::default()
        };
        let latency = cfg.latency;
        let mut fabric = Fabric::new(cfg, 2048);
        let mut now = SimTime::ZERO;
        for _ in 0..1 + rng.below_usize(39) {
            now = now.saturating_add(SimDuration::from_micros(rng.below(10_000)));
            let from = random_site(&mut rng);
            let to = random_site(&mut rng);
            let objects = rng.below(3) as u32;
            let delivered = fabric.send(now, from, to, random_kind(&mut rng), objects);
            assert!(
                delivered >= now.saturating_add(latency),
                "delivered {delivered:?} before now {now:?} + latency {latency:?}"
            );
        }
    }
}

#[test]
fn fabric_shared_medium_busy_time_is_monotone() {
    for case in 0..CASES {
        let mut rng = Prng::seed_from_u64(0xFAB2_0000 + case);
        let mut fabric = Fabric::new(NetworkConfig::default(), 2048);
        let mut now = SimTime::ZERO;
        let mut last_busy = fabric.busy_until();
        for _ in 0..1 + rng.below_usize(59) {
            now = now.saturating_add(SimDuration::from_micros(rng.below(20_000)));
            let from = random_site(&mut rng);
            let to = random_site(&mut rng);
            fabric.send(now, from, to, random_kind(&mut rng), rng.below(3) as u32);
            let busy = fabric.busy_until();
            assert!(
                busy >= last_busy,
                "shared busy time went backwards: {busy:?} < {last_busy:?}"
            );
            last_busy = busy;
        }
    }
}

#[test]
fn fabric_with_zero_loss_probability_never_drops() {
    for case in 0..CASES {
        let mut rng = Prng::seed_from_u64(0xFAB3_0000 + case);
        let mut fabric = Fabric::new(NetworkConfig::default(), 2048);
        // Jitter without loss: deliveries may shift but never vanish.
        let faults = FaultConfig {
            loss_probability: 0.0,
            max_delay_jitter: SimDuration::from_micros(rng.below(2_000)),
            ..FaultConfig::default()
        };
        fabric.enable_faults(faults, Prng::seed_from_u64(0xFA_B1 ^ case));
        let mut now = SimTime::ZERO;
        for _ in 0..1 + rng.below_usize(59) {
            now = now.saturating_add(SimDuration::from_micros(rng.below(10_000)));
            let from = random_site(&mut rng);
            let to = random_site(&mut rng);
            let sent = fabric.try_send(now, from, to, random_kind(&mut rng), rng.below(3) as u32);
            match sent {
                Delivery::Delivered(t) => assert!(t >= now),
                Delivery::Dropped => panic!("dropped a frame at loss probability 0"),
            }
        }
        assert_eq!(fabric.dropped_messages(), 0);
    }
}

// ------------------------------------------------------------------
// PRNG: bounds hold for arbitrary seeds and ranges.
// ------------------------------------------------------------------

#[test]
fn prng_below_respects_bound() {
    for case in 0..CASES {
        let mut meta = Prng::seed_from_u64(0x5EED_0000 + case);
        let seed = meta.next_u64();
        let bound = meta.range_u64(1, 1_000_000);
        let mut rng = Prng::seed_from_u64(seed);
        for _ in 0..50 {
            assert!(rng.below(bound) < bound);
        }
    }
}

// ------------------------------------------------------------------
// Observability histogram: bucket geometry, merge algebra, quantiles.
// ------------------------------------------------------------------

fn random_value(rng: &mut Prng) -> u64 {
    // Span the full bucket range: uniform within a random power-of-two
    // magnitude, so small and huge values are equally likely.
    let magnitude = rng.below(64);
    rng.below(1u64 << magnitude.max(1))
}

#[test]
fn histogram_buckets_contain_their_values() {
    use siteselect::obs::LogHistogram;
    for case in 0..CASES {
        let mut rng = Prng::seed_from_u64(0x4157_0000 + case);
        for _ in 0..64 {
            let v = random_value(&mut rng);
            let i = LogHistogram::bucket_index(v);
            // The value lands at or above its bucket's lower bound and
            // strictly below the next bucket's.
            assert!(LogHistogram::bucket_lower_bound(i) <= v, "lower bound above {v}");
            if i + 1 < siteselect::obs::hist::BUCKETS {
                assert!(
                    v < LogHistogram::bucket_lower_bound(i + 1),
                    "{v} not below next bucket's bound"
                );
            }
        }
    }
}

#[test]
fn histogram_bucket_bounds_are_monotone_and_consistent() {
    use siteselect::obs::hist::BUCKETS;
    use siteselect::obs::LogHistogram;
    for i in 0..BUCKETS {
        let lo = LogHistogram::bucket_lower_bound(i);
        // Round-trip: a bucket's lower bound indexes back to the bucket.
        assert_eq!(LogHistogram::bucket_index(lo), i, "round-trip failed at {i}");
        if i + 1 < BUCKETS {
            assert!(lo < LogHistogram::bucket_lower_bound(i + 1), "bounds not increasing at {i}");
        }
    }
}

#[test]
fn histogram_merge_is_associative_and_matches_bulk_record() {
    use siteselect::obs::LogHistogram;
    for case in 0..CASES {
        let mut rng = Prng::seed_from_u64(0x4157_1000 + case);
        let parts: Vec<Vec<u64>> = (0..3)
            .map(|_| (0..rng.below_usize(40)).map(|_| random_value(&mut rng)).collect())
            .collect();
        let hist_of = |values: &[u64]| {
            let mut h = LogHistogram::new();
            for &v in values {
                h.record(v);
            }
            h
        };
        let [a, b, c] = [hist_of(&parts[0]), hist_of(&parts[1]), hist_of(&parts[2])];
        // (a + b) + c == a + (b + c)
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        assert_eq!(left, right, "merge not associative");
        // Both equal recording every value into one histogram.
        let all: Vec<u64> = parts.concat();
        assert_eq!(left, hist_of(&all), "merge differs from bulk record");
    }
}

#[test]
fn histogram_quantiles_are_monotone_and_bounded() {
    use siteselect::obs::LogHistogram;
    for case in 0..CASES {
        let mut rng = Prng::seed_from_u64(0x4157_2000 + case);
        let mut h = LogHistogram::new();
        for _ in 0..1 + rng.below_usize(99) {
            h.record(random_value(&mut rng));
        }
        let mut prev = 0u64;
        for step in 0..=20 {
            let q = f64::from(step) / 20.0;
            let v = h.quantile(q);
            assert!(v >= prev, "quantile not monotone at q={q}");
            assert!(h.min() <= v && v <= h.max(), "quantile outside [min, max] at q={q}");
            prev = v;
        }
        // quantile(1.0) is the max up to bucket quantization: same bucket.
        assert_eq!(
            LogHistogram::bucket_index(h.quantile(1.0)),
            LogHistogram::bucket_index(h.max())
        );
    }
}

// ------------------------------------------------------------------
// Dense object-indexed containers vs the std HashMap/HashSet oracle.
// ------------------------------------------------------------------

use siteselect::locks::InlineVec;
use siteselect::types::{ObjectMap, ObjectSet};
use std::collections::{HashMap, HashSet};

/// Ids biased toward the interesting spots: the empty low end, a single
/// slot, and both sides of each growth boundary the slot vector crosses.
fn dense_id(rng: &mut Prng) -> ObjectId {
    const EDGES: [u32; 9] = [0, 1, 2, 7, 8, 63, 64, 65, 300];
    if rng.bernoulli(0.7) {
        ObjectId(EDGES[rng.below_usize(EDGES.len())])
    } else {
        ObjectId(rng.below(512) as u32)
    }
}

fn check_map_matches(m: &ObjectMap<u64>, model: &HashMap<u32, u64>) {
    assert_eq!(m.len(), model.len());
    assert_eq!(m.is_empty(), model.is_empty());
    let mut expect: Vec<(u32, u64)> = model.iter().map(|(&k, &v)| (k, v)).collect();
    expect.sort_unstable();
    let got: Vec<(u32, u64)> = m.iter().map(|(id, &v)| (id.0, v)).collect();
    assert_eq!(got, expect, "iteration differs from sorted model");
    let keys: Vec<u32> = m.keys().map(|k| k.0).collect();
    assert!(keys.windows(2).all(|w| w[0] < w[1]), "keys not ascending");
    for &(k, v) in &expect {
        assert_eq!(m.get(ObjectId(k)), Some(&v));
        assert!(m.contains(ObjectId(k)));
    }
    // Probes past every growth boundary stay safe and absent.
    assert_eq!(m.get(ObjectId(100_000)), None);
    assert!(!m.contains(ObjectId(100_000)));
}

#[test]
fn object_map_matches_hashmap_oracle() {
    for case in 0..CASES {
        let mut rng = Prng::seed_from_u64(0xDE45_E000 + case);
        let mut m: ObjectMap<u64> = if rng.bernoulli(0.5) {
            ObjectMap::new()
        } else {
            ObjectMap::with_capacity(rng.below_usize(65))
        };
        let mut model: HashMap<u32, u64> = HashMap::new();
        for step in 0..1 + rng.below(99) {
            let id = dense_id(&mut rng);
            match rng.below(6) {
                0 | 1 => {
                    assert_eq!(m.insert(id, step), model.insert(id.0, step));
                }
                2 => {
                    assert_eq!(m.remove(id), model.remove(&id.0));
                }
                3 => {
                    *m.get_or_default(id) += 1;
                    *model.entry(id.0).or_default() += 1;
                }
                4 => {
                    if let Some(v) = m.get_mut(id) {
                        *v = step;
                    }
                    if let Some(v) = model.get_mut(&id.0) {
                        *v = step;
                    }
                }
                _ => {
                    let bit = rng.bernoulli(0.5);
                    m.retain(|id, v| (id.0 as u64 + *v).is_multiple_of(2) == bit);
                    // detlint: allow(D2) — the predicate is per-element, visit order is irrelevant
                    model.retain(|&k, v| (u64::from(k) + *v).is_multiple_of(2) == bit);
                }
            }
            check_map_matches(&m, &model);
        }
        m.clear();
        model.clear();
        check_map_matches(&m, &model);
        // A cleared map keeps working.
        let id = dense_id(&mut rng);
        assert_eq!(m.insert(id, 7), model.insert(id.0, 7));
        check_map_matches(&m, &model);
    }
}

#[test]
fn object_set_matches_hashset_oracle() {
    for case in 0..CASES {
        let mut rng = Prng::seed_from_u64(0xDE45_5E70 + case);
        let mut s = ObjectSet::new();
        let mut model: HashSet<u32> = HashSet::new();
        for _ in 0..1 + rng.below(99) {
            let id = dense_id(&mut rng);
            match rng.below(4) {
                0 | 1 => assert_eq!(s.insert(id), model.insert(id.0)),
                2 => assert_eq!(s.remove(id), model.remove(&id.0)),
                _ => {
                    s.clear();
                    model.clear();
                }
            }
            assert_eq!(s.len(), model.len());
            assert_eq!(s.is_empty(), model.is_empty());
            let mut expect: Vec<u32> = model.iter().copied().collect();
            expect.sort_unstable();
            let got: Vec<u32> = s.iter().map(|id| id.0).collect();
            assert_eq!(got, expect, "membership differs from sorted model");
            assert!(!s.contains(ObjectId(100_000)));
        }
    }
}

// ------------------------------------------------------------------
// InlineVec<_, 2>: spill/unspill round-trips across the inline boundary.
// ------------------------------------------------------------------

#[test]
fn inline_vec_spill_unspill_round_trips() {
    for case in 0..CASES {
        let mut rng = Prng::seed_from_u64(0xD011_1E00 + case);
        let mut iv: InlineVec<u64, 2> = InlineVec::new();
        let mut want: Vec<u64> = Vec::new();
        for step in 0..1 + rng.below(149) {
            // Bias the walk so the length repeatedly crosses the N = 2
            // spill boundary in both directions instead of drifting off.
            let grow = if want.len() <= 1 {
                true
            } else if want.len() >= 5 {
                false
            } else {
                rng.bernoulli(0.5)
            };
            if grow {
                let pos = rng.below_usize(want.len() + 1);
                if pos == want.len() && rng.bernoulli(0.5) {
                    iv.push(step);
                    want.push(step);
                } else {
                    iv.insert(pos, step);
                    want.insert(pos, step);
                }
            } else if rng.bernoulli(0.8) {
                let pos = rng.below_usize(want.len());
                assert_eq!(iv.remove(pos), want.remove(pos));
            } else {
                let keep = rng.below(3);
                iv.retain(|v| v % 3 != keep);
                want.retain(|v| v % 3 != keep);
            }
            assert_eq!(iv.len(), want.len());
            assert_eq!(iv.to_vec(), want);
            assert_eq!(iv.first(), want.first());
            assert_eq!(iv.iter().copied().collect::<Vec<_>>(), want);
            for (i, v) in want.iter().enumerate() {
                assert_eq!(iv.get(i), Some(v));
            }
            assert_eq!(iv.get(want.len()), None);
        }
        // Drain to empty (fully unspilled), then refill past the boundary:
        // the round trip must leave no stale inline or spill state behind.
        while !want.is_empty() {
            let pos = rng.below_usize(want.len());
            assert_eq!(iv.remove(pos), want.remove(pos));
            assert_eq!(iv.to_vec(), want);
        }
        assert!(iv.is_empty());
        for v in 0..5 {
            iv.push(v);
            want.push(v);
        }
        assert_eq!(iv.to_vec(), want);
    }
}

// ------------------------------------------------------------------
// Event queue: the bucketed timer wheel matches a BinaryHeap oracle.
// ------------------------------------------------------------------

/// Reference model: a max-heap of `Reverse((time, seq))`, i.e. exactly the
/// pre-wheel implementation of [`EventQueue`].
#[derive(Default)]
struct HeapOracle {
    heap: std::collections::BinaryHeap<std::cmp::Reverse<(u64, u64)>>,
    next_seq: u64,
}

impl HeapOracle {
    fn push(&mut self, t: u64) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(std::cmp::Reverse((t, seq)));
        seq
    }

    fn pop(&mut self) -> Option<(u64, u64)> {
        self.heap.pop().map(|std::cmp::Reverse(e)| e)
    }

    fn pop_before(&mut self, deadline: u64) -> Option<(u64, u64)> {
        match self.heap.peek() {
            Some(std::cmp::Reverse((t, _))) if *t <= deadline => self.pop(),
            _ => None,
        }
    }
}

/// A random fire time spanning every wheel level: mostly near-future
/// offsets, sometimes far-future jumps (level cascades) and occasionally
/// the extreme top of the range (rollover of the highest-level buckets).
fn wheel_time(rng: &mut Prng, now: u64) -> u64 {
    // All arms saturate: `now` itself can sit near u64::MAX after a
    // top-of-range pop.
    match rng.below(10) {
        0..=4 => now.saturating_add(rng.below(64)),        // level 0 window
        5 | 6 => now.saturating_add(rng.below(1 << 12)),   // level 1-2
        7 => now.saturating_add(rng.below(1 << 30)),       // mid levels
        8 => now.saturating_add(rng.below(1 << 62)),       // far future
        _ => u64::MAX - rng.below(1 << 8),                 // top-level wrap
    }
}

/// Full randomized coverage natively; a small but representative slice
/// under Miri, where each interpreted case costs ~10000x.
const QUEUE_CASES: u64 = if cfg!(miri) { 48 } else { 10_000 };

#[test]
fn event_queue_matches_heap_oracle() {
    // Randomized interleavings of push / pop / pop_before, asserting
    // identical (time, FIFO-sequence) pop order against the heap model.
    for case in 0..QUEUE_CASES {
        let mut rng = Prng::seed_from_u64(0x0EE1_0000 + case);
        let mut q: EventQueue<u64> = EventQueue::new();
        let mut oracle = HeapOracle::default();
        let mut now = 0u64;
        let ops = 1 + rng.below_usize(40);
        for _ in 0..ops {
            match rng.below(4) {
                0 | 1 => {
                    let t = wheel_time(&mut rng, now);
                    let seq = oracle.push(t);
                    q.push(SimTime::from_micros(t), seq);
                }
                2 => {
                    let want = oracle.pop();
                    let got = q.pop().map(|(t, seq)| (t.as_micros(), seq));
                    assert_eq!(got, want, "case {case}");
                    if let Some((t, _)) = got {
                        now = now.max(t);
                    }
                }
                _ => {
                    let deadline = wheel_time(&mut rng, now);
                    let want = oracle.pop_before(deadline);
                    let got = q
                        .pop_before(SimTime::from_micros(deadline))
                        .map(|(t, seq)| (t.as_micros(), seq));
                    assert_eq!(got, want, "case {case}");
                    if let Some((t, _)) = got {
                        now = now.max(t);
                    }
                }
            }
            assert_eq!(q.len(), oracle.heap.len(), "case {case}");
            assert_eq!(
                q.peek_time().map(SimTime::as_micros),
                oracle.heap.peek().map(|std::cmp::Reverse((t, _))| *t),
                "case {case}"
            );
        }
        // Drain both to the end: every queued event must come out in the
        // oracle's order.
        loop {
            let want = oracle.pop();
            let got = q.pop().map(|(t, seq)| (t.as_micros(), seq));
            assert_eq!(got, want, "case {case} drain");
            if got.is_none() {
                break;
            }
        }
        assert!(q.is_empty());
    }
}

#[test]
fn event_queue_equal_timestamps_stay_fifo_across_cascades() {
    // Bursts of equal-timestamp pushes issued from different wheel origins
    // (forcing different cascade paths into the shared bucket) must still
    // pop in global insertion order.
    for case in 0..(QUEUE_CASES / 50).max(8) {
        let mut rng = Prng::seed_from_u64(0xF1F0_0000 + case);
        let mut q: EventQueue<u64> = EventQueue::new();
        let mut seq = 0u64;
        let t_shared = 1 + rng.below(1 << 20);
        let mut expected = Vec::new();
        for _ in 0..3 {
            for _ in 0..rng.below(5) {
                q.push(SimTime::from_micros(t_shared), seq);
                expected.push(seq);
                seq += 1;
            }
            // Advance the cursor by draining an earlier filler event.
            let filler = rng.below(t_shared);
            q.push(SimTime::from_micros(filler), u64::MAX);
            while let Some((_, e)) = q.pop_before(SimTime::from_micros(filler)) {
                assert_eq!(e, u64::MAX, "case {case}: filler out of order");
            }
        }
        let drained: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(drained, expected, "case {case}");
    }
}
