//! Property-based tests over the core data structures and invariants.

use proptest::prelude::*;
use siteselect::locks::{Acquire, ForwardEntry, ForwardList, LockTable, QueueDiscipline, WaitForGraph};
use siteselect::sim::{EventQueue, OnlineStats, Prng};
use siteselect::storage::ClientCache;
use siteselect::types::{ClientId, LockMode, ObjectId, SimTime, TransactionId};

// ---------------------------------------------------------------------
// Lock table: no conflicting holders, ever, under arbitrary op sequences.
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
enum LockOp {
    Request { obj: u8, owner: u8, exclusive: bool, deadline: u16 },
    Release { obj: u8, owner: u8 },
    Downgrade { obj: u8, owner: u8 },
    Cancel { obj: u8, owner: u8 },
    ReleaseAll { owner: u8 },
    Expire { now: u16 },
}

fn lock_op() -> impl Strategy<Value = LockOp> {
    prop_oneof![
        (0u8..6, 0u8..5, any::<bool>(), 0u16..100).prop_map(|(obj, owner, exclusive, deadline)| {
            LockOp::Request { obj, owner, exclusive, deadline }
        }),
        (0u8..6, 0u8..5).prop_map(|(obj, owner)| LockOp::Release { obj, owner }),
        (0u8..6, 0u8..5).prop_map(|(obj, owner)| LockOp::Downgrade { obj, owner }),
        (0u8..6, 0u8..5).prop_map(|(obj, owner)| LockOp::Cancel { obj, owner }),
        (0u8..5).prop_map(|owner| LockOp::ReleaseAll { owner }),
        (0u16..100).prop_map(|now| LockOp::Expire { now }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn lock_table_never_grants_conflicting_holders(
        ops in proptest::collection::vec(lock_op(), 1..80),
        deadline_discipline in any::<bool>(),
    ) {
        let discipline = if deadline_discipline {
            QueueDiscipline::Deadline
        } else {
            QueueDiscipline::Fifo
        };
        let mut table: LockTable<ClientId> = LockTable::new(discipline);
        for op in ops {
            match op {
                LockOp::Request { obj, owner, exclusive, deadline } => {
                    let mode = LockMode::for_write(exclusive);
                    let _ = table.request(
                        ObjectId(obj.into()),
                        ClientId(owner.into()),
                        mode,
                        SimTime::from_secs(deadline.into()),
                    );
                }
                LockOp::Release { obj, owner } => {
                    let _ = table.release(ObjectId(obj.into()), ClientId(owner.into()));
                }
                LockOp::Downgrade { obj, owner } => {
                    let _ = table.downgrade(ObjectId(obj.into()), ClientId(owner.into()));
                }
                LockOp::Cancel { obj, owner } => {
                    let _ = table.cancel_wait(ObjectId(obj.into()), ClientId(owner.into()));
                }
                LockOp::ReleaseAll { owner } => {
                    let _ = table.release_all(ClientId(owner.into()));
                }
                LockOp::Expire { now } => {
                    let _ = table.cancel_expired(SimTime::from_secs(now.into()));
                }
            }
            table.check_invariants().expect("lock table invariant violated");
        }
    }

    #[test]
    fn blocked_requests_are_eventually_granted_on_release(
        writers in proptest::collection::vec(0u8..5, 2..6),
    ) {
        let mut table: LockTable<ClientId> = LockTable::new(QueueDiscipline::Fifo);
        let obj = ObjectId(1);
        let mut distinct: Vec<u8> = writers;
        distinct.sort_unstable();
        distinct.dedup();
        // All owners request EL; the first wins.
        for (i, &w) in distinct.iter().enumerate() {
            let r = table.request(obj, ClientId(w.into()), LockMode::Exclusive, SimTime::MAX);
            if i == 0 {
                prop_assert!(r.is_granted());
            } else {
                let blocked = matches!(r, Acquire::Blocked { .. });
                prop_assert!(blocked);
            }
        }
        // Releasing in turn grants everyone exactly once, in order.
        let mut granted_order = vec![distinct[0]];
        for _ in 1..distinct.len() {
            let current = *granted_order.last().unwrap();
            let grants = table.release(obj, ClientId(current.into()));
            prop_assert_eq!(grants.len(), 1);
            granted_order.push(grants[0].owner.0 as u8);
        }
        prop_assert_eq!(granted_order, distinct);
    }

    // ------------------------------------------------------------------
    // Wait-for graph: the gate keeps the graph acyclic.
    // ------------------------------------------------------------------

    #[test]
    fn wfg_gate_prevents_cycles(edges in proptest::collection::vec((0u8..8, 0u8..8), 1..60)) {
        let mut g: WaitForGraph<u8> = WaitForGraph::new();
        for (a, b) in edges {
            if a != b && !g.would_deadlock(a, &[b]) {
                g.add_waits(a, [b]);
            }
            prop_assert!(!g.has_cycle());
        }
    }

    // ------------------------------------------------------------------
    // Client cache: capacity and tier behaviour.
    // ------------------------------------------------------------------

    #[test]
    fn client_cache_never_exceeds_capacity(
        mem in 1usize..8,
        disk in 0usize..8,
        ops in proptest::collection::vec((0u32..40, any::<bool>()), 1..200),
    ) {
        let mut cache = ClientCache::new(mem, disk);
        for (obj, insert) in ops {
            if insert {
                cache.insert(ObjectId(obj));
            } else {
                let _ = cache.probe(ObjectId(obj));
            }
            prop_assert!(cache.len() <= mem + disk);
        }
        // Every id the iterator yields is reported present.
        let ids: Vec<ObjectId> = cache.iter().collect();
        for id in ids {
            prop_assert!(cache.contains(id));
        }
    }

    #[test]
    fn client_cache_insert_makes_present_until_evicted(
        objs in proptest::collection::vec(0u32..20, 1..50),
    ) {
        let mut cache = ClientCache::new(4, 4);
        for o in objs {
            cache.insert(ObjectId(o));
            // The most recently inserted object is always present.
            prop_assert!(cache.contains(ObjectId(o)));
        }
    }

    // ------------------------------------------------------------------
    // Forward lists: ordering and liveness filtering.
    // ------------------------------------------------------------------

    #[test]
    fn forward_list_serves_in_deadline_order_and_skips_expired(
        entries in proptest::collection::vec((0u16..10, 1u64..100, any::<bool>()), 1..20),
        now in 0u64..100,
    ) {
        let mut list = ForwardList::new(ObjectId(1));
        for (client, deadline, write) in &entries {
            list.push(ForwardEntry {
                client: ClientId(*client),
                txn: TransactionId::new(ClientId(*client), *deadline),
                deadline: SimTime::from_secs(*deadline),
                mode: LockMode::for_write(*write),
            });
        }
        // Entries are deadline-sorted.
        let ds: Vec<_> = list.entries().iter().map(|e| e.deadline).collect();
        prop_assert!(ds.windows(2).all(|w| w[0] <= w[1]));
        // Draining never yields an expired entry and consumes everything.
        let now_t = SimTime::from_secs(now);
        let mut served = 0usize;
        let mut skipped = 0usize;
        loop {
            let (next, dead) = list.pop_next_live(now_t);
            skipped += dead.len();
            match next {
                Some(e) => {
                    prop_assert!(e.deadline >= now_t);
                    served += 1;
                }
                None => break,
            }
        }
        prop_assert_eq!(served + skipped, entries.len());
    }

    // ------------------------------------------------------------------
    // Event queue: global ordering with FIFO ties.
    // ------------------------------------------------------------------

    #[test]
    fn event_queue_is_stable_priority_order(times in proptest::collection::vec(0u64..50, 1..100)) {
        let mut q = EventQueue::new();
        for (i, t) in times.iter().enumerate() {
            q.push(SimTime::from_secs(*t), i);
        }
        let mut last: Option<(SimTime, usize)> = None;
        while let Some((t, i)) = q.pop() {
            if let Some((lt, li)) = last {
                prop_assert!(t >= lt);
                if t == lt {
                    prop_assert!(i > li, "FIFO tie-break violated");
                }
            }
            last = Some((t, i));
        }
    }

    // ------------------------------------------------------------------
    // Statistics: Welford matches the naive two-pass computation.
    // ------------------------------------------------------------------

    #[test]
    fn online_stats_match_naive(values in proptest::collection::vec(-1e6f64..1e6, 2..100)) {
        let mut s = OnlineStats::new();
        for &v in &values {
            s.push(v);
        }
        let n = values.len() as f64;
        let mean = values.iter().sum::<f64>() / n;
        let var = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (n - 1.0);
        prop_assert!((s.mean() - mean).abs() < 1e-6 * mean.abs().max(1.0));
        prop_assert!((s.variance() - var).abs() < 1e-5 * var.abs().max(1.0));
    }

    // ------------------------------------------------------------------
    // PRNG: bounds hold for arbitrary seeds and ranges.
    // ------------------------------------------------------------------

    #[test]
    fn prng_below_respects_bound(seed in any::<u64>(), bound in 1u64..1_000_000) {
        let mut rng = Prng::seed_from_u64(seed);
        for _ in 0..50 {
            prop_assert!(rng.below(bound) < bound);
        }
    }
}
