//! Seed-parity golden tests: the exact `RunMetrics` of each system at two
//! fixed seeds, captured (as `Debug` strings, which round-trip every f64
//! field) before the dense data-structure overhaul. Any behavioural drift
//! in the engines -- a different grant order, a changed cache decision, one
//! extra message -- changes at least one field and fails the comparison.
//!
//! Regenerate the literals with the same configuration loop below if an
//! intentional behaviour change lands (document it in CHANGES.md).

use siteselect::core::run_experiment;
use siteselect::types::{ExperimentConfig, SimDuration, SystemKind};

fn run(system: SystemKind, seed: u64) -> String {
    let mut cfg = ExperimentConfig::paper(system, 6, 0.20);
    cfg.runtime.duration = SimDuration::from_secs(300);
    cfg.runtime.warmup = SimDuration::from_secs(50);
    cfg.runtime.seed = seed;
    format!("{:?}", run_experiment(&cfg).unwrap())
}

#[test]
fn centralized_seed_11_matches_pre_optimization_metrics() {
    assert_eq!(
        run(SystemKind::Centralized, 11),
        r#"RunMetrics { system: Centralized, clients: 6, update_fraction: 0.2, seed: 11, measured: 136, in_time: 134, failures: FailureBreakdown { expired: 0, deadlock: 0, subtask: 0, late: 2, shutdown: 0, site_crash: 0 }, cache: CacheReport { memory_hits: 0, disk_hits: 0, misses: 0 }, response: ResponseReport { shared: OnlineStats { count: 0, mean: 0.0, m2: 0.0, min: 0.0, max: 0.0 }, exclusive: OnlineStats { count: 0, mean: 0.0, m2: 0.0, min: 0.0, max: 0.0 } }, messages: MessageStats { by_kind: [171, 171, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0], bytes_by_kind: [21888, 21888, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0], transmissions: 342, total_bytes: 43776 }, load_sharing: LoadSharingReport { shipped: 0, decomposed: 0, subtasks: 0, forward_satisfied: 0, windows_opened: 0, h1_rejections: 0 }, faults: FaultReport { crashes: 0, recoveries: 0, messages_dropped: 0, messages_delayed: 0, leases_expired: 0, retries: 0, slow_disk_ios: 0 }, latency: OnlineStats { count: 136, mean: 0.4101725808823529, m2: 23.526898983291108, min: 0.055017, max: 2.593879 }, blocking: OnlineStats { count: 136, mean: 0.0006636323529411767, m2: 0.00808588904161765, min: 0.0, max: 0.090254 }, client_cpu_utilization: 0.0, server_cpu_utilization: 0.15372835785953176, server_buffer: Ratio { hits: 273, total: 1361 } }"#
    );
}

#[test]
fn centralized_seed_12_matches_pre_optimization_metrics() {
    assert_eq!(
        run(SystemKind::Centralized, 12),
        r#"RunMetrics { system: Centralized, clients: 6, update_fraction: 0.2, seed: 12, measured: 163, in_time: 162, failures: FailureBreakdown { expired: 0, deadlock: 0, subtask: 0, late: 1, shutdown: 0, site_crash: 0 }, cache: CacheReport { memory_hits: 0, disk_hits: 0, misses: 0 }, response: ResponseReport { shared: OnlineStats { count: 0, mean: 0.0, m2: 0.0, min: 0.0, max: 0.0 }, exclusive: OnlineStats { count: 0, mean: 0.0, m2: 0.0, min: 0.0, max: 0.0 } }, messages: MessageStats { by_kind: [190, 190, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0], bytes_by_kind: [24320, 24320, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0], transmissions: 380, total_bytes: 48640 }, load_sharing: LoadSharingReport { shipped: 0, decomposed: 0, subtasks: 0, forward_satisfied: 0, windows_opened: 0, h1_rejections: 0 }, faults: FaultReport { crashes: 0, recoveries: 0, messages_dropped: 0, messages_delayed: 0, leases_expired: 0, retries: 0, slow_disk_ios: 0 }, latency: OnlineStats { count: 163, mean: 0.3691418895705522, m2: 16.495338327928014, min: 0.037466, max: 2.083028 }, blocking: OnlineStats { count: 163, mean: 0.0, m2: 0.0, min: 0.0, max: 0.0 }, client_cpu_utilization: 0.0, server_cpu_utilization: 0.1521050304054054, server_buffer: Ratio { hits: 327, total: 1662 } }"#
    );
}

#[test]
fn client_server_seed_11_matches_pre_optimization_metrics() {
    assert_eq!(
        run(SystemKind::ClientServer, 11),
        r#"RunMetrics { system: ClientServer, clients: 6, update_fraction: 0.2, seed: 11, measured: 136, in_time: 132, failures: FailureBreakdown { expired: 4, deadlock: 0, subtask: 0, late: 0, shutdown: 0, site_crash: 0 }, cache: CacheReport { memory_hits: 180, disk_hits: 0, misses: 1181 }, response: ResponseReport { shared: OnlineStats { count: 925, mean: 0.04246507783783783, m2: 0.760201225410396, min: 0.0, max: 0.163916 }, exclusive: OnlineStats { count: 290, mean: 0.03952314482758624, m2: 0.6490870288219169, min: 0.0, max: 0.647576 } }, messages: MessageStats { by_kind: [0, 0, 1215, 1181, 34, 70, 22, 48, 0, 0, 0, 0, 0, 0, 0, 0], bytes_by_kind: [0, 0, 51936, 2645440, 4352, 8960, 49280, 6144, 0, 0, 0, 0, 0, 0, 0, 0], transmissions: 1491, total_bytes: 2766112 }, load_sharing: LoadSharingReport { shipped: 0, decomposed: 0, subtasks: 0, forward_satisfied: 0, windows_opened: 0, h1_rejections: 0 }, faults: FaultReport { crashes: 0, recoveries: 0, messages_dropped: 0, messages_delayed: 0, leases_expired: 0, retries: 0, slow_disk_ios: 0 }, latency: OnlineStats { count: 132, mean: 1.1733377121212114, m2: 174.39338023411713, min: 0.067307, max: 6.065508 }, blocking: OnlineStats { count: 136, mean: 0.09069605882352937, m2: 5.03229629442553, min: 0.026946, max: 2.222168 }, client_cpu_utilization: 0.0977104595791805, server_cpu_utilization: 0.0, server_buffer: Ratio { hits: 91, total: 1181 } }"#
    );
}

#[test]
fn client_server_seed_12_matches_pre_optimization_metrics() {
    assert_eq!(
        run(SystemKind::ClientServer, 12),
        r#"RunMetrics { system: ClientServer, clients: 6, update_fraction: 0.2, seed: 12, measured: 163, in_time: 159, failures: FailureBreakdown { expired: 3, deadlock: 0, subtask: 0, late: 1, shutdown: 0, site_crash: 0 }, cache: CacheReport { memory_hits: 199, disk_hits: 0, misses: 1463 }, response: ResponseReport { shared: OnlineStats { count: 1169, mean: 0.042745070145423454, m2: 0.9428619472262478, min: 0.0, max: 0.169923 }, exclusive: OnlineStats { count: 324, mean: 0.039528530864197546, m2: 0.2889916933666918, min: 0.0, max: 0.14819 } }, messages: MessageStats { by_kind: [0, 0, 1493, 1462, 31, 84, 37, 47, 0, 0, 0, 0, 0, 0, 0, 0], bytes_by_kind: [0, 0, 63424, 3274880, 3968, 10752, 82880, 6016, 0, 0, 0, 0, 0, 0, 0, 0], transmissions: 1824, total_bytes: 3441920 }, load_sharing: LoadSharingReport { shipped: 0, decomposed: 0, subtasks: 0, forward_satisfied: 0, windows_opened: 0, h1_rejections: 0 }, faults: FaultReport { crashes: 0, recoveries: 0, messages_dropped: 0, messages_delayed: 0, leases_expired: 0, retries: 0, slow_disk_ios: 0 }, latency: OnlineStats { count: 159, mean: 1.172619257861636, m2: 192.44375443028832, min: 0.078217, max: 4.923769 }, blocking: OnlineStats { count: 163, mean: 0.07314549079754605, m2: 0.22190128391473612, min: 0.011355, max: 0.403225 }, client_cpu_utilization: 0.10010585585585587, server_cpu_utilization: 0.0, server_buffer: Ratio { hits: 121, total: 1462 } }"#
    );
}

#[test]
fn load_sharing_seed_11_matches_pre_optimization_metrics() {
    assert_eq!(
        run(SystemKind::LoadSharing, 11),
        r#"RunMetrics { system: LoadSharing, clients: 6, update_fraction: 0.2, seed: 11, measured: 136, in_time: 132, failures: FailureBreakdown { expired: 4, deadlock: 0, subtask: 0, late: 0, shutdown: 0, site_crash: 0 }, cache: CacheReport { memory_hits: 184, disk_hits: 0, misses: 1177 }, response: ResponseReport { shared: OnlineStats { count: 922, mean: 0.042620219088937074, m2: 0.7563482742597452, min: 0.0, max: 0.163916 }, exclusive: OnlineStats { count: 289, mean: 0.03743162629757787, m2: 0.27827083813764025, min: 0.0, max: 0.267 } }, messages: MessageStats { by_kind: [0, 0, 1211, 1177, 34, 66, 18, 48, 37, 0, 0, 0, 3, 3, 17, 17], bytes_by_kind: [0, 0, 51808, 2636480, 4352, 8448, 40320, 6144, 9472, 0, 0, 0, 3072, 768, 2176, 4352], transmissions: 1562, total_bytes: 2767392 }, load_sharing: LoadSharingReport { shipped: 0, decomposed: 3, subtasks: 6, forward_satisfied: 0, windows_opened: 0, h1_rejections: 0 }, faults: FaultReport { crashes: 0, recoveries: 0, messages_dropped: 0, messages_delayed: 0, leases_expired: 0, retries: 0, slow_disk_ios: 0 }, latency: OnlineStats { count: 132, mean: 1.1661884545454548, m2: 172.24920985396275, min: 0.067307, max: 6.065508 }, blocking: OnlineStats { count: 139, mean: 0.08464797841726618, m2: 4.741941533186938, min: 0.0, max: 2.222168 }, client_cpu_utilization: 0.09770973477297897, server_cpu_utilization: 0.0, server_buffer: Ratio { hits: 87, total: 1177 } }"#
    );
}

#[test]
fn load_sharing_seed_12_matches_pre_optimization_metrics() {
    assert_eq!(
        run(SystemKind::LoadSharing, 12),
        r#"RunMetrics { system: LoadSharing, clients: 6, update_fraction: 0.2, seed: 12, measured: 163, in_time: 159, failures: FailureBreakdown { expired: 3, deadlock: 0, subtask: 0, late: 1, shutdown: 0, site_crash: 0 }, cache: CacheReport { memory_hits: 199, disk_hits: 0, misses: 1463 }, response: ResponseReport { shared: OnlineStats { count: 1169, mean: 0.0427464379811805, m2: 0.9422388201277545, min: 0.0, max: 0.169923 }, exclusive: OnlineStats { count: 324, mean: 0.03952741049382717, m2: 0.28873161886440424, min: 0.0, max: 0.14819 } }, messages: MessageStats { by_kind: [0, 0, 1493, 1462, 31, 84, 37, 47, 51, 0, 0, 0, 0, 0, 15, 15], bytes_by_kind: [0, 0, 63424, 3274880, 3968, 10752, 82880, 6016, 13056, 0, 0, 0, 0, 0, 1920, 3840], transmissions: 1905, total_bytes: 3460736 }, load_sharing: LoadSharingReport { shipped: 0, decomposed: 0, subtasks: 0, forward_satisfied: 0, windows_opened: 0, h1_rejections: 0 }, faults: FaultReport { crashes: 0, recoveries: 0, messages_dropped: 0, messages_delayed: 0, leases_expired: 0, retries: 0, slow_disk_ios: 0 }, latency: OnlineStats { count: 159, mean: 1.1727286981132077, m2: 192.4428240838814, min: 0.078217, max: 4.923769 }, blocking: OnlineStats { count: 163, mean: 0.07313998773006135, m2: 0.22174177574197534, min: 0.01156, max: 0.403225 }, client_cpu_utilization: 0.10010511993243244, server_cpu_utilization: 0.0, server_buffer: Ratio { hits: 121, total: 1462 } }"#
    );
}

/// Same parity pin, but with PR-1's fault injection switched on: crashes,
/// drops, delays and lease expiries are all seed-deterministic, so the
/// fault path must replay bit-identically too — drift hiding behind chaos
/// is exactly what this catches.
fn run_chaotic(system: SystemKind, seed: u64) -> String {
    use siteselect::types::FaultConfig;
    let mut cfg = ExperimentConfig::paper(system, 6, 0.20);
    cfg.runtime.duration = SimDuration::from_secs(300);
    cfg.runtime.warmup = SimDuration::from_secs(50);
    cfg.runtime.seed = seed;
    cfg.faults = FaultConfig::chaos(0.5);
    format!("{:?}", run_experiment(&cfg).unwrap())
}

#[test]
fn load_sharing_chaos_seed_11_matches_pinned_metrics() {
    assert_eq!(run_chaotic(SystemKind::LoadSharing, 11), r#"RunMetrics { system: LoadSharing, clients: 6, update_fraction: 0.2, seed: 11, measured: 136, in_time: 128, failures: FailureBreakdown { expired: 8, deadlock: 0, subtask: 0, late: 0, shutdown: 0, site_crash: 0 }, cache: CacheReport { memory_hits: 164, disk_hits: 0, misses: 1186 }, response: ResponseReport { shared: OnlineStats { count: 927, mean: 0.09307982740021577, m2: 36.23152668944639, min: 0.0, max: 3.510199 }, exclusive: OnlineStats { count: 289, mean: 0.15326412456747407, m2: 132.70246846220945, min: 0.0, max: 5.958236 } }, messages: MessageStats { by_kind: [0, 0, 1322, 1249, 33, 63, 19, 43, 33, 10, 0, 0, 3, 2, 17, 17], bytes_by_kind: [0, 0, 65248, 2797760, 4224, 8064, 42560, 5504, 8448, 44800, 0, 0, 3072, 512, 2176, 4352], transmissions: 1743, total_bytes: 2986720 }, load_sharing: LoadSharingReport { shipped: 0, decomposed: 3, subtasks: 6, forward_satisfied: 10, windows_opened: 318, h1_rejections: 0 }, faults: FaultReport { crashes: 1, recoveries: 1, messages_dropped: 109, messages_delayed: 2081, leases_expired: 7, retries: 150, slow_disk_ios: 0 }, latency: OnlineStats { count: 128, mean: 1.5784508671875006, m2: 321.55948852249065, min: 0.076097, max: 7.661942 }, blocking: OnlineStats { count: 135, mean: 0.49402044444444454, m2: 145.17023584991736, min: 0.0, max: 5.958236 }, client_cpu_utilization: 0.09549946511627908, server_cpu_utilization: 0.0, server_buffer: Ratio { hits: 156, total: 1248 } }"#);
}

#[test]
fn client_server_chaos_seed_11_matches_pinned_metrics() {
    assert_eq!(run_chaotic(SystemKind::ClientServer, 11), r#"RunMetrics { system: ClientServer, clients: 6, update_fraction: 0.2, seed: 11, measured: 136, in_time: 130, failures: FailureBreakdown { expired: 6, deadlock: 0, subtask: 0, late: 0, shutdown: 0, site_crash: 0 }, cache: CacheReport { memory_hits: 167, disk_hits: 0, misses: 1194 }, response: ResponseReport { shared: OnlineStats { count: 933, mean: 0.0997446752411576, m2: 63.87710918929061, min: 0.0, max: 5.585716 }, exclusive: OnlineStats { count: 290, mean: 0.0970575103448276, m2: 40.49758620366449, min: 0.0, max: 5.966491 } }, messages: MessageStats { by_kind: [0, 0, 1331, 1257, 33, 66, 20, 43, 0, 0, 0, 0, 0, 0, 0, 0], bytes_by_kind: [0, 0, 65728, 2815680, 4224, 8448, 44800, 5504, 0, 0, 0, 0, 0, 0, 0, 0], transmissions: 1660, total_bytes: 2944384 }, load_sharing: LoadSharingReport { shipped: 0, decomposed: 0, subtasks: 0, forward_satisfied: 0, windows_opened: 0, h1_rejections: 0 }, faults: FaultReport { crashes: 1, recoveries: 1, messages_dropped: 104, messages_delayed: 1999, leases_expired: 6, retries: 134, slow_disk_ios: 0 }, latency: OnlineStats { count: 130, mean: 1.5309962461538456, m2: 241.29084609101218, min: 0.076762, max: 7.121994 }, blocking: OnlineStats { count: 133, mean: 0.4274222030075188, m2: 86.59217535684955, min: 0.031959, max: 5.966491 }, client_cpu_utilization: 0.0970147995570321, server_cpu_utilization: 0.0, server_buffer: Ratio { hits: 165, total: 1257 } }"#);
}
