#!/usr/bin/env bash
# The full local/CI gate. The workspace has no external dependencies, so
# every step runs offline. Pass --fast to skip the paper-scale seedcheck.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test"
cargo test -q --workspace

echo "==> detlint (determinism & safety contract, see detlint.toml)"
# --ratchet: a baseline entry that over-accepts (findings were fixed but
# the baseline not regenerated) fails the gate instead of rotting.
cargo run --release -q -p siteselect-lint --bin detlint -- check --workspace --ratchet

echo "==> cargo clippy (warnings are errors via [workspace.lints])"
cargo clippy --workspace --all-targets

echo "==> trace determinism (repro trace twice at one seed, byte-diff)"
tracedir="$(mktemp -d)"
trap 'rm -rf "$tracedir"' EXIT
cargo run --release -q -p siteselect-bench --bin repro -- trace --quick --seed 7 --out "$tracedir/a" > "$tracedir/a.out"
cargo run --release -q -p siteselect-bench --bin repro -- trace --quick --seed 7 --out "$tracedir/b" > "$tracedir/b.out"
diff "$tracedir/a/trace.jsonl" "$tracedir/b/trace.jsonl"
diff "$tracedir/a/trace.json" "$tracedir/b/trace.json"
# The report must match too; only the "wrote <path>" line may differ.
diff <(grep -v '^wrote ' "$tracedir/a.out") <(grep -v '^wrote ' "$tracedir/b.out")

echo "==> blame determinism (repro blame, jobs 1 vs 8, byte-diff)"
cargo run --release -q -p siteselect-bench --bin repro -- blame --quick --seed 7 --jobs 1 --out "$tracedir/blame.j1.json" > "$tracedir/blame.j1.out"
cargo run --release -q -p siteselect-bench --bin repro -- blame --quick --seed 7 --jobs 8 --out "$tracedir/blame.j8.json" > "$tracedir/blame.j8.out"
diff "$tracedir/blame.j1.json" "$tracedir/blame.j8.json"
# Stdout must match too; only the "wrote <path>" line may differ.
diff <(grep -v '^wrote ' "$tracedir/blame.j1.out") <(grep -v '^wrote ' "$tracedir/blame.j8.out")

echo "==> disabled-path guard (untraced repro output is byte-stable)"
cargo run --release -q -p siteselect-bench --bin repro -- figure3 --quick > "$tracedir/f3.a"
cargo run --release -q -p siteselect-bench --bin repro -- figure3 --quick > "$tracedir/f3.b"
diff "$tracedir/f3.a" "$tracedir/f3.b"

echo "==> parallel-sweep determinism (jobs 1 vs 8, byte-diff)"
cargo run --release -q -p siteselect-bench --bin repro -- figure3 --quick --jobs 1 > "$tracedir/f3.j1"
cargo run --release -q -p siteselect-bench --bin repro -- figure3 --quick --jobs 8 > "$tracedir/f3.j8"
diff "$tracedir/f3.j1" "$tracedir/f3.j8"

echo "==> simcheck (oracle smoke: small seed budget, byte-identical across --jobs)"
cargo run --release -q -p siteselect-bench --bin repro -- check --seeds 18 --jobs 1 > "$tracedir/sc.j1"
cargo run --release -q -p siteselect-bench --bin repro -- check --seeds 18 --jobs 8 > "$tracedir/sc.j8"
diff "$tracedir/sc.j1" "$tracedir/sc.j8"
# The gate must be able to fail: a seeded synthetic violation has to fire.
if cargo run --release -q -p siteselect-bench --bin repro -- check --inject-violation coherence > /dev/null 2>&1; then
  echo "simcheck failed to fail on an injected coherence violation"; exit 1
fi

echo "==> recovery (seeded crash-restart run under all four oracles + oracle self-test)"
# One server crash-restart run per engine family: the WAL replays, the
# site rejoins, and the recovery oracle judges the post-restart state dump.
cargo run --release -q -p siteselect-bench --bin repro -- trace --quick --seed 11 --system ce --chaos 1.0 --restart --out "$tracedir/rec_ce" > /dev/null
cargo run --release -q -p siteselect-bench --bin repro -- trace --quick --seed 11 --system cs --chaos 1.0 --restart --out "$tracedir/rec_cs" > /dev/null
# The durability gate must be able to fail too.
if cargo run --release -q -p siteselect-bench --bin repro -- check --inject-violation recovery > /dev/null 2>&1; then
  echo "simcheck failed to fail on an injected recovery violation"; exit 1
fi

echo "==> bench smoke (suite runs, report parses, no >2x regression vs fresh rerun)"
cargo run --release -q -p siteselect-bench --bin repro -- bench --out "$tracedir/bench.json" > "$tracedir/bench.out"
for field in '"meta"' '"cores"' '"rustc"' '"git_rev"' '"benchmarks"' '"ns_per_iter"' '"events_per_sec"' '"events_per_sec_cpu"'; do
  grep -q "$field" "$tracedir/bench.json" || { echo "bench.json missing $field"; exit 1; }
done
# Sweep benchmarks must report simulated throughput, not null (the sim/*
# and sweep/* rows double as the tracing-off overhead smoke: the suite
# times untraced runs, so span instrumentation that leaks into the
# disabled path shows up here and in the regression gate below).
if grep -E '"name": "(sim|sweep)/' "$tracedir/bench.json" | grep -q '"events_per_sec": null'; then
  echo "a sim/ or sweep/ benchmark reported events_per_sec: null"; exit 1
fi
# Same-machine regression gate: a second run, diffed against the first by
# the compare mode, must keep every benchmark present and within the 2x
# limit (the committed results/BENCH_sim.json baseline documents a
# reference machine and is not comparable across hardware). The delta
# table lands in the CI log either way.
cargo run --release -q -p siteselect-bench --bin repro -- bench --out "$tracedir/bench2.json" > "$tracedir/bench2.out"
cargo run --release -q -p siteselect-bench --bin repro -- bench --compare "$tracedir/bench.json" "$tracedir/bench2.json"
# Hot-loop throughput floor: each end-to-end sim row must hold at least
# 2x the seed-era throughput pinned in results/BENCH_sim.seed.json. The
# gate reads the CPU-time figure, which host-level steal on shared
# runners cannot depress (wall-clock swings several-fold on busy boxes
# while CPU accounting stays steady); it falls back to wall-clock
# events_per_sec where CPU accounting is unavailable.
for row in centralized client_server load_sharing; do
  seed=$(grep "\"sim/${row}_quick\"" results/BENCH_sim.seed.json \
    | sed 's/.*"events_per_sec": \([0-9.]*\).*/\1/')
  cur=$(grep "\"sim/${row}_quick\"" "$tracedir/bench.json" \
    | sed 's/.*"events_per_sec_cpu": \([0-9.]*\).*/\1/')
  if ! [[ "$cur" =~ ^[0-9.]+$ ]]; then
    cur=$(grep "\"sim/${row}_quick\"" "$tracedir/bench.json" \
      | sed 's/.*"events_per_sec": \([0-9.]*\).*/\1/')
  fi
  [[ "$seed" =~ ^[0-9.]+$ && "$cur" =~ ^[0-9.]+$ ]] \
    || { echo "cannot read sim/${row}_quick throughput (seed='$seed' cur='$cur')"; exit 1; }
  awk -v c="$cur" -v s="$seed" 'BEGIN { exit !(c >= 2.0 * s) }' \
    || { echo "sim/${row}_quick throughput $cur below 2x seed baseline ($seed)"; exit 1; }
  echo "sim/${row}_quick: $cur ev/cpu-s vs seed $seed ev/s (floor 2x)"
done

if [[ "$(nproc)" -ge 2 ]]; then
  echo "==> parallel-sweep speedup (quick sweep, jobs=nproc vs jobs=1)"
  t1=$( { time -p cargo run --release -q -p siteselect-bench --bin repro -- figure3 --quick --jobs 1 >/dev/null; } 2>&1 | awk '/^real/{print $2}')
  tn=$( { time -p cargo run --release -q -p siteselect-bench --bin repro -- figure3 --quick --jobs "$(nproc)" >/dev/null; } 2>&1 | awk '/^real/{print $2}')
  echo "jobs=1: ${t1}s  jobs=$(nproc): ${tn}s"
  awk -v a="$t1" -v b="$tn" 'BEGIN { exit !(a >= 2.0 * b) }' \
    || { echo "parallel sweep not >=2x faster (${t1}s vs ${tn}s)"; exit 1; }
else
  echo "==> parallel-sweep speedup skipped (single-core runner)"
fi

if [[ "${1:-}" != "--fast" ]]; then
  echo "==> seed sensitivity (Figure 5 headline point, seeds 1-3)"
  cargo run --release -q -p siteselect-bench --bin seedcheck

  echo "==> golden paper reproduction (repro all matches results/repro_all.txt)"
  cargo test --release -q -p siteselect-bench --test repro_golden -- --ignored
fi

echo "CI OK"
