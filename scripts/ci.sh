#!/usr/bin/env bash
# The full local/CI gate. The workspace has no external dependencies, so
# every step runs offline. Pass --fast to skip the paper-scale seedcheck.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test"
cargo test -q --workspace

echo "==> cargo clippy (warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

if [[ "${1:-}" != "--fast" ]]; then
  echo "==> seed sensitivity (Figure 5 headline point, seeds 1-3)"
  cargo run --release -q -p siteselect-bench --bin seedcheck
fi

echo "CI OK"
