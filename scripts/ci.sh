#!/usr/bin/env bash
# The full local/CI gate. The workspace has no external dependencies, so
# every step runs offline. Pass --fast to skip the paper-scale seedcheck.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test"
cargo test -q --workspace

echo "==> cargo clippy (warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> trace determinism (repro trace twice at one seed, byte-diff)"
tracedir="$(mktemp -d)"
trap 'rm -rf "$tracedir"' EXIT
cargo run --release -q -p siteselect-bench --bin repro -- trace --quick --seed 7 --out "$tracedir/a" > "$tracedir/a.out"
cargo run --release -q -p siteselect-bench --bin repro -- trace --quick --seed 7 --out "$tracedir/b" > "$tracedir/b.out"
diff "$tracedir/a/trace.jsonl" "$tracedir/b/trace.jsonl"
diff "$tracedir/a/trace.json" "$tracedir/b/trace.json"
# The report must match too; only the "wrote <path>" line may differ.
diff <(grep -v '^wrote ' "$tracedir/a.out") <(grep -v '^wrote ' "$tracedir/b.out")

echo "==> disabled-path guard (untraced repro output is byte-stable)"
cargo run --release -q -p siteselect-bench --bin repro -- figure3 --quick > "$tracedir/f3.a"
cargo run --release -q -p siteselect-bench --bin repro -- figure3 --quick > "$tracedir/f3.b"
diff "$tracedir/f3.a" "$tracedir/f3.b"

if [[ "${1:-}" != "--fast" ]]; then
  echo "==> seed sensitivity (Figure 5 headline point, seeds 1-3)"
  cargo run --release -q -p siteselect-bench --bin seedcheck
fi

echo "CI OK"
