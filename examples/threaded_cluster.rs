//! Threaded cluster: run the *real* multi-threaded mini CS-RTDBS (OS
//! threads, channels, real 2 KB pages) and verify that the concurrent
//! execution was conflict-serializable.
//!
//! ```text
//! cargo run --release --example threaded_cluster
//! ```

use siteselect::cluster::{Cluster, ClusterConfig};
use siteselect::types::SimDuration;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut cfg = ClusterConfig {
        clients: 8,
        db_objects: 128,
        server_buffer: 64,
        client_cache: 24,
        txns_per_client: 40,
        ..ClusterConfig::default()
    };
    // Contended update-heavy mix so callbacks and downgrades actually fire.
    cfg.workload.update_fraction = 0.4;
    cfg.workload.mean_interarrival = SimDuration::from_secs(2);
    cfg.workload.access_pattern.hot_region_objects = 64;

    println!(
        "Running {} clients x {} transactions on real threads...",
        cfg.clients, cfg.txns_per_client
    );
    let report = Cluster::run(cfg)?;
    print!("{report}");

    print!("History of {} committed operations: ", report.history.len());
    match report.history.check_serializable() {
        Ok(()) => println!("conflict-serializable ✓"),
        Err(e) => {
            println!("VIOLATION: {e}");
            return Err(e.into());
        }
    }
    Ok(())
}
