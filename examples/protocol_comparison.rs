//! Protocol comparison: the message economics of plain callback 2PL vs the
//! paper's grouped locks (Figures 1 and 2), exactly as message traces.
//!
//! ```text
//! cargo run --release --example protocol_comparison
//! ```

use siteselect::locks::protocol_costs::{
    cached_two_pl_trace, figure1_trace, figure2_trace, grouped_trace, render_trace,
};
use siteselect::locks::ForwardList;

fn main() {
    println!("=== Figure 1: moving an object from Client A to Client B under");
    println!("    callback 2PL with inter-transaction caching ===\n");
    let f1 = figure1_trace();
    print!("{}", render_trace(&f1));
    println!("-> {} messages\n", f1.len());

    println!("=== Figure 2: the same movement with a collection window and a");
    println!("    forward list ===\n");
    let f2 = figure2_trace();
    print!("{}", render_trace(&f2));
    println!("-> {} messages\n", f2.len());

    println!("=== Scaling: n requests on one object ===\n");
    println!(
        "{:>4}  {:>14}  {:>12}  {:>9}",
        "n", "callback 2PL", "grouped", "saved"
    );
    for n in [1usize, 2, 4, 8, 16, 32] {
        let plain = cached_two_pl_trace(n).len();
        let grouped = grouped_trace(n).len();
        println!(
            "{n:>4}  {plain:>14}  {grouped:>12}  {:>8.0}%",
            (plain - grouped) as f64 * 100.0 / plain as f64
        );
    }

    println!(
        "\nClosed forms: callback 2PL needs 4n-1 messages, grouping needs 2n+1"
    );
    println!(
        "(formulas: {} and {} for n = 10).",
        ForwardList::callback_worst_case_messages(10),
        ForwardList::expected_messages(10)
    );
}
