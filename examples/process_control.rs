//! Process control: short periodic control tasks with hard-ish deadlines.
//!
//! A plant floor runs monitoring and actuation transactions: small access
//! sets, short processing, deadlines proportional to the task length
//! (a control loop result is useless after ~4 periods). The workstations
//! mostly touch their own cell's sensors (strong locality, few updates
//! crossing cells), which is the sweet spot for client-side caching: the
//! experiment shows the client-server systems beating the centralized
//! server as cells are added.
//!
//! ```text
//! cargo run --release --example process_control
//! ```

use siteselect::core::run_experiment;
use siteselect::types::{DeadlinePolicy, ExperimentConfig, SimDuration, SystemKind};

fn config(system: SystemKind, cells: u16) -> ExperimentConfig {
    let mut cfg = ExperimentConfig::paper(system, cells, 0.10);
    cfg.workload.mean_interarrival = SimDuration::from_secs(2);
    cfg.workload.mean_length = SimDuration::from_secs(2);
    cfg.workload.mean_objects_per_txn = 4.0;
    cfg.workload.deadline = DeadlinePolicy::ProportionalSlack { factor: 4.0 };
    // Tight per-cell locality: each cell reads its own sensor block.
    cfg.workload.access_pattern.hot_region_objects = 200;
    cfg.workload.access_pattern.hot_access_fraction = 0.9;
    cfg.runtime.duration = SimDuration::from_secs(400);
    cfg.runtime.warmup = SimDuration::from_secs(80);
    cfg
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("Process control: 2s tasks, deadline = 4x length, 90% in-cell locality\n");
    println!(
        "{:>6}  {:>12}  {:>12}  {:>14}",
        "cells", "CE-RTDBS %", "CS-RTDBS %", "LS-CS-RTDBS %"
    );
    for cells in [8u16, 16, 32, 64] {
        let mut row = Vec::new();
        for system in SystemKind::ALL {
            let metrics = run_experiment(&config(system, cells))?;
            row.push(metrics.success_percent());
        }
        println!(
            "{cells:>6}  {:>12.2}  {:>12.2}  {:>14.2}",
            row[0], row[1], row[2]
        );
    }
    println!("\nWith strong locality and short tasks the client-server systems");
    println!("keep control loops on time long after the central server saturates.");
    Ok(())
}
