//! Trading floor: an update-heavy financial workload with tight deadlines.
//!
//! Position updates and risk checks hammer a shared hot book (heavily
//! overlapping hot regions) with 25% update accesses and deadlines only 2×
//! the nominal transaction length. This is the regime the paper's
//! load-sharing algorithm was designed for: the experiment compares all
//! three systems at increasing desk counts.
//!
//! ```text
//! cargo run --release --example trading_floor
//! ```

use siteselect::core::run_experiment;
use siteselect::types::{
    DeadlinePolicy, ExperimentConfig, SimDuration, SystemKind,
};

fn config(system: SystemKind, desks: u16) -> ExperimentConfig {
    let mut cfg = ExperimentConfig::paper(system, desks, 0.25);
    // Tight, length-proportional deadlines: a risk check that cannot keep
    // up with the market is worthless.
    cfg.workload.deadline = DeadlinePolicy::ProportionalSlack { factor: 3.0 };
    // One shared hot book: every desk's hot region is most of the same
    // 2,000 instruments.
    cfg.workload.access_pattern.hot_region_objects = 2_000;
    cfg.workload.mean_objects_per_txn = 6.0;
    cfg.workload.mean_interarrival = SimDuration::from_secs(5);
    cfg.runtime.duration = SimDuration::from_secs(600);
    cfg.runtime.warmup = SimDuration::from_secs(120);
    cfg
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("Trading floor: 25% updates, deadlines = 3x transaction length\n");
    println!(
        "{:>6}  {:>12}  {:>12}  {:>14}",
        "desks", "CE-RTDBS %", "CS-RTDBS %", "LS-CS-RTDBS %"
    );
    for desks in [10u16, 20, 40] {
        let mut row = Vec::new();
        for system in SystemKind::ALL {
            let metrics = run_experiment(&config(system, desks))?;
            row.push(metrics.success_percent());
        }
        println!(
            "{desks:>6}  {:>12.2}  {:>12.2}  {:>14.2}",
            row[0], row[1], row[2]
        );
    }
    println!("\nDeadline success under contention is where deadline-aware");
    println!("shipping and grouped locks earn their keep.");
    Ok(())
}
