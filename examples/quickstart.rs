//! Quickstart: run one load-sharing experiment and print its metrics.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use siteselect::core::run_experiment;
use siteselect::types::{ExperimentConfig, SimDuration, SystemKind};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The paper's Table 1 parameterization: 20 clients, 5% of accesses are
    // updates, Localized-RW access pattern.
    let mut cfg = ExperimentConfig::paper(SystemKind::LoadSharing, 20, 0.05);

    // Keep the example snappy: 10 simulated minutes with a 2-minute
    // warm-up. (The full evaluation uses SweepOptions::paper().)
    cfg.runtime.duration = SimDuration::from_secs(600);
    cfg.runtime.warmup = SimDuration::from_secs(120);

    let metrics = run_experiment(&cfg)?;

    println!("{metrics}");
    println!(
        "Headline: {:.2}% of transactions met their deadlines.",
        metrics.success_percent()
    );
    println!(
        "Client cache hit rate: {:.2}% | shared-lock response {:.3}s | exclusive {:.3}s",
        metrics.cache.hit_percent(),
        metrics.response.shared.mean(),
        metrics.response.exclusive.mean(),
    );
    println!("Messages on the wire:\n{}", metrics.messages);
    Ok(())
}
