//! Property tests for the WAL + recovery layer: a seeded random write
//! workload with crash points injected at arbitrary steps (including torn
//! final records) is checked against an in-memory oracle of committed page
//! stamps. Covers torn tails, replay idempotence, and checkpoint
//! correctness.

use std::collections::{BTreeMap, BTreeSet};

use siteselect_sim::Prng;
use siteselect_storage::recovery::DurableStore;
use siteselect_types::ObjectId;

const PAGES: u32 = 24;

/// In-memory truth: the stamp each page must hold after a crash-restart
/// (absent = pristine, stamp 0), plus the write-locking discipline the
/// engines enforce (one live writer per page).
#[derive(Default)]
struct Oracle {
    committed: BTreeMap<ObjectId, u64>,
    committed_txns: BTreeSet<u64>,
    /// Live transactions and their pending (page, stamp) writes, in order.
    pending: BTreeMap<u64, Vec<(ObjectId, u64)>>,
    /// Pages currently owned by a live writer.
    owner: BTreeMap<ObjectId, u64>,
}

impl Oracle {
    fn write(&mut self, txn: u64, page: ObjectId, stamp: u64) {
        self.pending.entry(txn).or_default().push((page, stamp));
        self.owner.insert(page, txn);
    }

    fn commit(&mut self, txn: u64) {
        self.committed_txns.insert(txn);
        for (page, stamp) in self.pending.remove(&txn).unwrap_or_default() {
            self.committed.insert(page, stamp);
            self.owner.remove(&page);
        }
    }

    fn abort(&mut self, txn: u64) {
        for (page, _) in self.pending.remove(&txn).unwrap_or_default() {
            self.owner.remove(&page);
        }
    }

    fn crash(&mut self) {
        let losers: Vec<u64> = self.pending.keys().copied().collect();
        for txn in losers {
            self.abort(txn);
        }
    }

    /// A page the given transaction may write without violating the one
    ///-writer-per-page discipline, if any.
    fn writable_page(&self, txn: u64, prng: &mut Prng) -> Option<ObjectId> {
        let free: Vec<ObjectId> = (0..PAGES)
            .map(ObjectId)
            .filter(|p| self.owner.get(p).is_none_or(|&o| o == txn))
            .collect();
        (!free.is_empty()).then(|| *prng.choose(&free))
    }
}

fn assert_matches_oracle(store: &DurableStore, oracle: &Oracle, ctx: &str) {
    let got: BTreeMap<ObjectId, u64> = store.stamps().into_iter().collect();
    assert_eq!(
        got, oracle.committed,
        "{ctx}: post-restart stamps diverge from committed history"
    );
}

#[test]
fn random_crash_points_preserve_committed_history() {
    for seed in 0..48u64 {
        let mut prng = Prng::seed_from_u64(0xD0_1AB1E ^ seed);
        let frames = 1 + prng.below_usize(4);
        let mut store = DurableStore::new(PAGES, frames);
        let mut oracle = Oracle::default();
        let mut next_txn = 1u64;
        let mut crashes = 0u32;

        for step in 0..400 {
            match prng.below(100) {
                // Write under a (possibly fresh) transaction.
                0..=54 => {
                    let live: Vec<u64> = oracle.pending.keys().copied().collect();
                    let txn = if live.is_empty() || (live.len() < 4 && prng.bernoulli(0.5)) {
                        next_txn += 1;
                        next_txn
                    } else {
                        *prng.choose(&live)
                    };
                    if let Some(page) = oracle.writable_page(txn, &mut prng) {
                        let stamp = store.write(txn, page);
                        oracle.write(txn, page, stamp);
                    }
                }
                55..=74 => {
                    let live: Vec<u64> = oracle.pending.keys().copied().collect();
                    if !live.is_empty() {
                        let txn = *prng.choose(&live);
                        store.commit(txn);
                        oracle.commit(txn);
                    }
                }
                75..=84 => {
                    let live: Vec<u64> = oracle.pending.keys().copied().collect();
                    if !live.is_empty() {
                        let txn = *prng.choose(&live);
                        store.abort(txn);
                        oracle.abort(txn);
                    }
                }
                85..=89 => store.checkpoint(),
                // Crash at this step, cutting the staged tail at a random
                // byte (torn final record when the cut lands mid-frame).
                _ => {
                    let keep = prng.below_usize(store.staged_len() + 1);
                    let (log, disk) = store.crash(keep);
                    let (recovered, outcome) = DurableStore::restart(&log, disk, frames);
                    oracle.crash();
                    assert_matches_oracle(&recovered, &oracle, &format!("seed {seed} step {step}"));
                    // Losers may be crash-interrupted live transactions or
                    // runtime aborts whose abort record was still staged —
                    // never transactions whose commit was acknowledged.
                    for loser in &outcome.losers {
                        assert!(
                            !oracle.committed_txns.contains(loser),
                            "seed {seed}: committed txn {loser} reported as loser"
                        );
                    }
                    store = recovered;
                    crashes += 1;
                }
            }
        }
        // Final crash with the whole staged tail intact, then a double
        // crash: replay must be idempotent.
        let (log, disk) = store.crash(usize::MAX);
        let (first, _) = DurableStore::restart(&log, disk, frames);
        oracle.crash();
        assert_matches_oracle(&first, &oracle, &format!("seed {seed} final"));
        let snapshot = first.stamps();
        let (log2, disk2) = first.crash(0);
        let (second, outcome2) = DurableStore::restart(&log2, disk2, frames);
        assert_eq!(
            second.stamps(),
            snapshot,
            "seed {seed}: double-crash replay not idempotent"
        );
        // The end-of-recovery checkpoint bounds the second replay.
        assert_eq!(outcome2.redo_applied, 0, "seed {seed}");
        assert!(outcome2.losers.is_empty(), "seed {seed}");
        assert!(crashes > 0, "seed {seed}: workload never crashed");
    }
}

#[test]
fn checkpoints_never_change_recovered_state() {
    // Same workload with and without interleaved checkpoints must recover
    // the same committed page set (checkpoints are pure optimization; the
    // stamps themselves shift because checkpoint records consume LSNs).
    for seed in 0..16u64 {
        let mut pages_by_variant: Vec<Vec<ObjectId>> = Vec::new();
        for checkpoints in [false, true] {
            let mut prng = Prng::seed_from_u64(0xC0FFEE ^ seed);
            let mut store = DurableStore::new(PAGES, 2);
            let mut stamp_map = BTreeMap::new();
            for txn in 0..40u64 {
                let page = ObjectId(prng.below(PAGES as u64) as u32);
                let stamp = store.write(txn, page);
                if prng.bernoulli(0.8) {
                    store.commit(txn);
                    stamp_map.insert(page, stamp);
                } else {
                    store.abort(txn);
                }
                if checkpoints && txn % 5 == 0 {
                    store.checkpoint();
                }
            }
            let (log, disk) = store.crash(0);
            let (recovered, _) = DurableStore::restart(&log, disk, 2);
            assert_eq!(
                recovered.stamps().into_iter().collect::<BTreeMap<_, _>>(),
                stamp_map,
                "seed {seed} checkpoints={checkpoints}"
            );
            pages_by_variant.push(recovered.stamps().into_iter().map(|(p, _)| p).collect());
        }
        assert_eq!(
            pages_by_variant[0], pages_by_variant[1],
            "seed {seed}: checkpointing changed the recovered page set"
        );
    }
}
