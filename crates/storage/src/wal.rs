//! ARIES-lite write-ahead log.
//!
//! The paper's server stores its 10,000-object database in a paged file with
//! no log, so a crash is terminal data-plane loss. This module adds the
//! durability half of ARIES: a sequenced log of page-update / commit / abort /
//! checkpoint records with a volatile tail, so that
//! [`recovery`](crate::recovery) can replay redo-then-undo after a
//! crash-restart.
//!
//! The log models *stable storage* as an in-memory byte vector split in two:
//! a `durable` prefix (survives a crash) and a `staged` tail (lost, possibly
//! torn mid-record, on crash). Records are framed as
//! `[payload len: u32 LE][payload][FNV-1a(payload): u32 LE]` so a torn tail is
//! detected by a short or checksum-mismatched frame and ignored by the
//! scanner, exactly like a real log whose final sector write was interrupted.
//!
//! LSNs are record sequence numbers (0-based). The WAL rule observed by
//! [`DurableStore`](crate::recovery::DurableStore) is *log-before-data*: the
//! staged tail is flushed before any page can be stolen (written back) to the
//! disk image, and a commit record is forced before the commit is
//! acknowledged.

use siteselect_types::ObjectId;

/// Log sequence number: the 0-based index of a record in the log.
pub type Lsn = u64;

/// Maximum sane payload size used by the scanner to reject garbage lengths
/// in a torn tail (largest real record is a checkpoint, bounded well below
/// this).
const MAX_PAYLOAD: usize = 1 << 20;

const KIND_UPDATE: u8 = 1;
const KIND_COMMIT: u8 = 2;
const KIND_ABORT: u8 = 3;
const KIND_CHECKPOINT: u8 = 4;

/// One write-ahead log record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LogRecord {
    /// A physical page update: `before`/`after` images of the u64 at `offset`.
    ///
    /// Compensation (undo) writes are logged as ordinary updates with the
    /// images swapped, so redo repeats history and never needs special CLR
    /// handling.
    Update {
        /// Transaction (or pseudo-transaction) id.
        txn: u64,
        /// Page written.
        page: ObjectId,
        /// Byte offset of the u64 within the page.
        offset: u16,
        /// Value before the write (undo image).
        before: u64,
        /// Value after the write (redo image).
        after: u64,
    },
    /// Transaction committed; forced to stable storage before the commit is
    /// acknowledged.
    Commit {
        /// Committing transaction.
        txn: u64,
    },
    /// Transaction rolled back (its compensation updates precede this
    /// record).
    Abort {
        /// Aborted transaction.
        txn: u64,
    },
    /// Fuzzy checkpoint: transactions active at checkpoint time plus the LSN
    /// redo can start from (all earlier updates were on disk when the record
    /// was written). Transactions are not quiesced.
    Checkpoint {
        /// Transactions with unresolved updates at checkpoint time (sorted).
        active: Vec<u64>,
        /// First LSN the redo pass must consider.
        redo_lsn: Lsn,
    },
}

fn fnv1a(bytes: &[u8]) -> u32 {
    // Same FNV-1a folding as `Page::checksum`, truncated to 32 bits.
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    (hash ^ (hash >> 32)) as u32
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn get_u64(bytes: &[u8], at: &mut usize) -> Option<u64> {
    let raw = bytes.get(*at..*at + 8)?;
    *at += 8;
    Some(u64::from_le_bytes(raw.try_into().expect("8-byte slice")))
}

impl LogRecord {
    fn encode_payload(&self) -> Vec<u8> {
        let mut p = Vec::with_capacity(32);
        match self {
            LogRecord::Update {
                txn,
                page,
                offset,
                before,
                after,
            } => {
                p.push(KIND_UPDATE);
                put_u64(&mut p, *txn);
                p.extend_from_slice(&page.0.to_le_bytes());
                p.extend_from_slice(&offset.to_le_bytes());
                put_u64(&mut p, *before);
                put_u64(&mut p, *after);
            }
            LogRecord::Commit { txn } => {
                p.push(KIND_COMMIT);
                put_u64(&mut p, *txn);
            }
            LogRecord::Abort { txn } => {
                p.push(KIND_ABORT);
                put_u64(&mut p, *txn);
            }
            LogRecord::Checkpoint { active, redo_lsn } => {
                p.push(KIND_CHECKPOINT);
                put_u64(&mut p, *redo_lsn);
                p.extend_from_slice(&(active.len() as u32).to_le_bytes());
                for &t in active {
                    put_u64(&mut p, t);
                }
            }
        }
        p
    }

    fn decode_payload(p: &[u8]) -> Option<LogRecord> {
        let (&kind, rest) = p.split_first()?;
        let mut at = 0usize;
        match kind {
            KIND_UPDATE => {
                let txn = get_u64(rest, &mut at)?;
                let page = ObjectId(u32::from_le_bytes(
                    rest.get(at..at + 4)?.try_into().expect("4-byte slice"),
                ));
                at += 4;
                let offset =
                    u16::from_le_bytes(rest.get(at..at + 2)?.try_into().expect("2-byte slice"));
                at += 2;
                let before = get_u64(rest, &mut at)?;
                let after = get_u64(rest, &mut at)?;
                (at == rest.len()).then_some(LogRecord::Update {
                    txn,
                    page,
                    offset,
                    before,
                    after,
                })
            }
            KIND_COMMIT => {
                let txn = get_u64(rest, &mut at)?;
                (at == rest.len()).then_some(LogRecord::Commit { txn })
            }
            KIND_ABORT => {
                let txn = get_u64(rest, &mut at)?;
                (at == rest.len()).then_some(LogRecord::Abort { txn })
            }
            KIND_CHECKPOINT => {
                let redo_lsn = get_u64(rest, &mut at)?;
                let count =
                    u32::from_le_bytes(rest.get(at..at + 4)?.try_into().expect("4-byte slice"));
                at += 4;
                let mut active = Vec::with_capacity(count as usize);
                for _ in 0..count {
                    active.push(get_u64(rest, &mut at)?);
                }
                (at == rest.len()).then_some(LogRecord::Checkpoint { active, redo_lsn })
            }
            _ => None,
        }
    }
}

/// Result of scanning a log image: the decodable records plus whether the
/// image ended in a torn (incomplete or corrupt) frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogScan {
    /// Records in LSN order.
    pub records: Vec<LogRecord>,
    /// True if trailing bytes did not form a valid frame (torn tail).
    pub torn_tail: bool,
    /// Bytes consumed by the valid prefix (excludes any torn tail).
    pub valid_bytes: usize,
}

/// Decodes a log image, stopping at the first torn or corrupt frame.
#[must_use]
pub fn scan(bytes: &[u8]) -> LogScan {
    let mut records = Vec::new();
    let mut at = 0usize;
    while let Some(raw_len) = bytes.get(at..at + 4) {
        let len = u32::from_le_bytes(raw_len.try_into().expect("4-byte slice")) as usize;
        if len == 0 || len > MAX_PAYLOAD {
            break;
        }
        let Some(payload) = bytes.get(at + 4..at + 4 + len) else {
            break;
        };
        let Some(raw_sum) = bytes.get(at + 4 + len..at + 8 + len) else {
            break;
        };
        let sum = u32::from_le_bytes(raw_sum.try_into().expect("4-byte slice"));
        if sum != fnv1a(payload) {
            break;
        }
        let Some(rec) = LogRecord::decode_payload(payload) else {
            break;
        };
        records.push(rec);
        at += 8 + len;
    }
    LogScan {
        records,
        torn_tail: at != bytes.len(),
        valid_bytes: at,
    }
}

/// The write-ahead log: a durable prefix plus a volatile staged tail.
///
/// # Example
///
/// ```
/// use siteselect_storage::wal::{scan, LogRecord, Wal};
/// use siteselect_types::ObjectId;
///
/// let mut wal = Wal::new();
/// wal.append(&LogRecord::Update {
///     txn: 1, page: ObjectId(3), offset: 0, before: 0, after: 7,
/// });
/// wal.append(&LogRecord::Commit { txn: 1 });
/// wal.flush();
/// let image = wal.crash_image(0);
/// assert_eq!(scan(&image).records.len(), 2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Wal {
    durable: Vec<u8>,
    staged: Vec<u8>,
    next_lsn: Lsn,
    durable_lsn: Lsn,
    flushes: u64,
}

impl Wal {
    /// Creates an empty log.
    #[must_use]
    pub fn new() -> Self {
        Wal::default()
    }

    /// Reconstructs a log from a recovered durable image.
    ///
    /// `records` must be the record count of `durable` (i.e.
    /// [`LogScan::records`]`.len()` over the valid prefix).
    #[must_use]
    pub fn from_recovered(durable: Vec<u8>, records: u64) -> Self {
        Wal {
            durable,
            staged: Vec::new(),
            next_lsn: records,
            durable_lsn: records,
            flushes: 0,
        }
    }

    /// Appends a record to the staged tail and returns its LSN.
    pub fn append(&mut self, rec: &LogRecord) -> Lsn {
        let payload = rec.encode_payload();
        self.staged
            .extend_from_slice(&(payload.len() as u32).to_le_bytes());
        let sum = fnv1a(&payload);
        self.staged.extend_from_slice(&payload);
        self.staged.extend_from_slice(&sum.to_le_bytes());
        let lsn = self.next_lsn;
        self.next_lsn += 1;
        lsn
    }

    /// Forces the staged tail to stable storage.
    pub fn flush(&mut self) {
        if !self.staged.is_empty() {
            self.durable.append(&mut self.staged);
            self.flushes += 1;
        }
        self.durable_lsn = self.next_lsn;
    }

    /// LSN the next appended record will receive.
    #[must_use]
    pub fn next_lsn(&self) -> Lsn {
        self.next_lsn
    }

    /// LSN up to which the log is durable (records below this survive a
    /// crash).
    #[must_use]
    pub fn durable_lsn(&self) -> Lsn {
        self.durable_lsn
    }

    /// Bytes currently staged (volatile tail).
    #[must_use]
    pub fn staged_len(&self) -> usize {
        self.staged.len()
    }

    /// Bytes on stable storage.
    #[must_use]
    pub fn durable_len(&self) -> usize {
        self.durable.len()
    }

    /// Number of forced flushes so far.
    #[must_use]
    pub fn flushes(&self) -> u64 {
        self.flushes
    }

    /// The log image a crash would leave behind: the durable prefix plus the
    /// first `staged_keep` bytes of the staged tail (a torn tail when the cut
    /// lands mid-record).
    #[must_use]
    pub fn crash_image(&self, staged_keep: usize) -> Vec<u8> {
        let keep = staged_keep.min(self.staged.len());
        let mut image = self.durable.clone();
        image.extend_from_slice(&self.staged[..keep]);
        image
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_records() -> Vec<LogRecord> {
        vec![
            LogRecord::Update {
                txn: 7,
                page: ObjectId(12),
                offset: 0,
                before: 0,
                after: 1,
            },
            LogRecord::Commit { txn: 7 },
            LogRecord::Update {
                txn: 8,
                page: ObjectId(3),
                offset: 16,
                before: 1,
                after: 2,
            },
            LogRecord::Abort { txn: 8 },
            LogRecord::Checkpoint {
                active: vec![9, 11],
                redo_lsn: 4,
            },
        ]
    }

    #[test]
    fn round_trip_all_record_kinds() {
        let mut wal = Wal::new();
        for (i, rec) in sample_records().iter().enumerate() {
            assert_eq!(wal.append(rec), i as Lsn);
        }
        wal.flush();
        let scan = scan(&wal.crash_image(0));
        assert!(!scan.torn_tail);
        assert_eq!(scan.records, sample_records());
    }

    #[test]
    fn staged_tail_is_lost_without_flush() {
        let mut wal = Wal::new();
        wal.append(&LogRecord::Commit { txn: 1 });
        wal.flush();
        wal.append(&LogRecord::Commit { txn: 2 });
        assert_eq!(wal.durable_lsn(), 1);
        let scan = scan(&wal.crash_image(0));
        assert_eq!(scan.records, vec![LogRecord::Commit { txn: 1 }]);
        assert!(!scan.torn_tail);
    }

    #[test]
    fn torn_tail_is_detected_and_ignored() {
        let mut wal = Wal::new();
        wal.append(&LogRecord::Commit { txn: 1 });
        wal.flush();
        wal.append(&LogRecord::Update {
            txn: 2,
            page: ObjectId(5),
            offset: 0,
            before: 0,
            after: 9,
        });
        // Cut every possible number of staged bytes short of the full frame.
        for keep in 0..wal.staged_len() {
            let scan = scan(&wal.crash_image(keep));
            assert_eq!(scan.records.len(), 1, "keep={keep}");
            assert_eq!(scan.torn_tail, keep != 0, "keep={keep}");
        }
        // The full tail survives only if completely written.
        let full = scan(&wal.crash_image(wal.staged_len()));
        assert_eq!(full.records.len(), 2);
        assert!(!full.torn_tail);
    }

    #[test]
    fn corrupt_checksum_stops_the_scan() {
        let mut wal = Wal::new();
        wal.append(&LogRecord::Commit { txn: 1 });
        wal.append(&LogRecord::Commit { txn: 2 });
        wal.flush();
        let mut image = wal.crash_image(0);
        let last = image.len() - 1;
        image[last] ^= 0xFF;
        let scan = scan(&image);
        assert_eq!(scan.records, vec![LogRecord::Commit { txn: 1 }]);
        assert!(scan.torn_tail);
    }

    #[test]
    fn garbage_length_prefix_is_rejected() {
        let mut image = Vec::new();
        image.extend_from_slice(&u32::MAX.to_le_bytes());
        image.extend_from_slice(&[0xAB; 32]);
        let scan = scan(&image);
        assert!(scan.records.is_empty());
        assert!(scan.torn_tail);
        assert_eq!(scan.valid_bytes, 0);
    }

    #[test]
    fn from_recovered_continues_lsns() {
        let mut wal = Wal::new();
        wal.append(&LogRecord::Commit { txn: 1 });
        wal.append(&LogRecord::Commit { txn: 2 });
        wal.flush();
        let image = wal.crash_image(0);
        let parsed = scan(&image);
        let mut recovered = Wal::from_recovered(image, parsed.records.len() as u64);
        assert_eq!(recovered.next_lsn(), 2);
        assert_eq!(recovered.append(&LogRecord::Commit { txn: 3 }), 2);
        recovered.flush();
        assert_eq!(scan(&recovered.crash_image(0)).records.len(), 3);
    }

    #[test]
    fn flush_is_idempotent_and_counted() {
        let mut wal = Wal::new();
        wal.append(&LogRecord::Commit { txn: 1 });
        wal.flush();
        wal.flush();
        assert_eq!(wal.flushes(), 1);
        assert_eq!(wal.staged_len(), 0);
        assert!(wal.durable_len() > 0);
    }
}
