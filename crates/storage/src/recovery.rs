//! Crash-restart recovery: redo-then-undo replay over the paged file, plus
//! the [`DurableStore`] facade the simulation engines write through.
//!
//! Replay follows ARIES shape on the simplified physical log of
//! [`wal`](crate::wal):
//!
//! 1. **Analysis** — scan the surviving log image (tolerating a torn tail),
//!    classify every transaction as committed, aborted, or a *loser*
//!    (updates but no outcome record), and find the last checkpoint's
//!    `redo_lsn`.
//! 2. **Redo** — repeat history: reapply the after-image of every update
//!    record from `redo_lsn` on, winners and losers alike. Runtime rollbacks
//!    were logged as compensation updates, so redo alone reproduces the
//!    exact pre-crash page state reachable from the durable log.
//! 3. **Undo** — roll the losers back with their before-images in reverse
//!    LSN order, logging each restoration as a compensation update followed
//!    by an abort record, then force the log and the pages. A second crash
//!    during or after recovery therefore replays to the same state
//!    (idempotence).
//!
//! The store stamps every logical page write with a unique, monotonically
//! increasing value derived from the update record's LSN and keeps it in the
//! first u64 of the page (stamp 0 = never written). The recovery oracle in
//! `crates/check` compares post-restart stamps against the committed history
//! to prove that every committed effect survived and no aborted effect
//! resurfaced.

use std::collections::BTreeMap;

use siteselect_types::ObjectId;

use crate::disk::DiskFile;
use crate::pagedfile::PagedFile;
use crate::wal::{scan, LogRecord, Lsn, Wal};

/// Page offset holding the write stamp.
pub const STAMP_OFFSET: usize = 0;

/// Commits between automatic fuzzy checkpoints.
pub const CHECKPOINT_EVERY: u32 = 64;

/// What a replay pass did, used to charge recovery I/O to the seeded disk
/// model and to report `RecoveryDone` events.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RecoveryOutcome {
    /// Records scanned from the surviving log image.
    pub scanned: u64,
    /// Update records reapplied by the redo pass.
    pub redo_applied: u64,
    /// Loser updates rolled back by the undo pass.
    pub undone: u64,
    /// Loser transactions rolled back (ascending id order).
    pub losers: Vec<u64>,
    /// True if the log image ended in a torn record.
    pub torn_tail: bool,
    /// Bytes of log scanned.
    pub log_bytes: usize,
    /// Distinct pages written during replay.
    pub pages_touched: u32,
}

impl RecoveryOutcome {
    /// Disk operations the replay is charged for under the simulator's disk
    /// model: sequential log read (one I/O per 2 KB of log) plus one I/O per
    /// page touched by redo/undo.
    #[must_use]
    pub fn replay_ios(&self) -> u64 {
        let log_pages = (self.log_bytes as u64).div_ceil(crate::page::PAGE_SIZE as u64);
        log_pages + u64::from(self.pages_touched)
    }
}

/// Replays a crash-surviving log image against the disk image it belongs to,
/// returning the reopened log (with compensation records appended and
/// forced) and what the replay did. The paged file is flushed on return.
pub fn replay(log_image: &[u8], file: &mut PagedFile) -> (Wal, RecoveryOutcome) {
    // Analysis classification: transaction outcomes as of the end of the log.
    #[derive(PartialEq)]
    enum Status {
        Active,
        Committed,
        Aborted,
    }

    let parsed = scan(log_image);
    let mut outcome = RecoveryOutcome {
        scanned: parsed.records.len() as u64,
        torn_tail: parsed.torn_tail,
        log_bytes: log_image.len(),
        ..RecoveryOutcome::default()
    };

    // Analysis: transaction outcomes and the redo horizon.
    let mut status: BTreeMap<u64, Status> = BTreeMap::new();
    let mut updates: Vec<(Lsn, u64, ObjectId, u16, u64, u64)> = Vec::new();
    let mut redo_lsn: Lsn = 0;
    for (i, rec) in parsed.records.iter().enumerate() {
        let lsn = i as Lsn;
        match rec {
            LogRecord::Update {
                txn,
                page,
                offset,
                before,
                after,
            } => {
                status.entry(*txn).or_insert(Status::Active);
                updates.push((lsn, *txn, *page, *offset, *before, *after));
            }
            LogRecord::Commit { txn } => {
                status.insert(*txn, Status::Committed);
            }
            LogRecord::Abort { txn } => {
                status.insert(*txn, Status::Aborted);
            }
            LogRecord::Checkpoint { redo_lsn: r, .. } => {
                redo_lsn = *r;
            }
        }
    }

    let mut touched = std::collections::BTreeSet::new();

    // Redo: repeat history from the checkpoint horizon. After-images are
    // absolute, so reapplying is idempotent.
    for &(lsn, _, page, offset, _, after) in &updates {
        if lsn < redo_lsn {
            continue;
        }
        file.with_page_mut(page, |p| p.write_u64_at(offset as usize, after))
            .expect("recovered log references an existing page");
        touched.insert(page.0);
        outcome.redo_applied += 1;
    }

    // Undo: roll back losers with before-images, newest first, logging the
    // compensation so a repeat crash replays to the same state.
    let mut wal = Wal::from_recovered(log_image[..parsed.valid_bytes].to_vec(), outcome.scanned);
    for &(_, txn, page, offset, before, after) in updates.iter().rev() {
        if status.get(&txn) != Some(&Status::Active) {
            continue;
        }
        wal.append(&LogRecord::Update {
            txn,
            page,
            offset,
            before: after,
            after: before,
        });
        file.with_page_mut(page, |p| p.write_u64_at(offset as usize, before))
            .expect("recovered log references an existing page");
        touched.insert(page.0);
        outcome.undone += 1;
    }
    for (&txn, st) in &status {
        if *st == Status::Active {
            wal.append(&LogRecord::Abort { txn });
            outcome.losers.push(txn);
        }
    }

    // Log-before-data, then persist the replayed pages.
    wal.flush();
    file.flush();
    outcome.pages_touched = touched.len() as u32;
    (wal, outcome)
}

/// The durability facade the engines write through: a [`PagedFile`] guarded
/// by a [`Wal`] observing log-before-data and force-at-commit, with fuzzy
/// checkpoints every [`CHECKPOINT_EVERY`] commits.
///
/// No simulated time is charged here — the engines translate
/// [`RecoveryOutcome::replay_ios`] into disk-model delay at restart, and
/// normal-operation log writes are modeled as free sequential appends (the
/// paper's timing model already charges object I/O at buffer misses).
///
/// # Example
///
/// ```
/// use siteselect_storage::recovery::DurableStore;
/// use siteselect_types::ObjectId;
///
/// let mut store = DurableStore::new(16, 4);
/// let stamp = store.write(1, ObjectId(3));
/// store.commit(1);
/// let (log, disk) = store.crash(0);
/// let (recovered, outcome) = DurableStore::restart(&log, disk, 4);
/// assert_eq!(recovered.stamp_of(ObjectId(3)), stamp);
/// assert!(outcome.losers.is_empty());
/// ```
#[derive(Debug)]
pub struct DurableStore {
    file: PagedFile,
    wal: Wal,
    /// Per-active-transaction undo chains: (page, offset, before, after).
    undo: BTreeMap<u64, Vec<(ObjectId, u16, u64, u64)>>,
    commits_since_checkpoint: u32,
    checkpoints: u64,
}

impl DurableStore {
    /// Creates a store over `num_pages` zeroed pages (stamp 0 = pristine)
    /// with `buffer_frames` buffer-pool frames.
    ///
    /// # Panics
    ///
    /// Panics if `buffer_frames` is zero.
    #[must_use]
    pub fn new(num_pages: u32, buffer_frames: usize) -> Self {
        DurableStore {
            file: PagedFile::from_disk(DiskFile::new(num_pages), buffer_frames),
            wal: Wal::new(),
            undo: BTreeMap::new(),
            commits_since_checkpoint: 0,
            checkpoints: 0,
        }
    }

    /// Ensures the staged log is durable before a buffer fetch that may
    /// steal (write back) a dirty page — the log-before-data rule.
    fn guard_steal(&mut self, page: ObjectId) {
        if !self.file.is_buffered(page) {
            self.wal.flush();
        }
    }

    /// Logs and applies one page write for `txn`, returning the unique stamp
    /// now stored in the page.
    ///
    /// # Panics
    ///
    /// Panics if `page` is outside the database.
    pub fn write(&mut self, txn: u64, page: ObjectId) -> u64 {
        // Stamps are LSN + 1 so that 0 remains "never written"; LSNs are
        // monotone across restarts, so stamps on disk are unique.
        let stamp = self.wal.next_lsn() + 1;
        self.guard_steal(page);
        let before = self
            .file
            .with_page_mut(page, |p| {
                let before = p.read_u64_at(STAMP_OFFSET);
                p.write_u64_at(STAMP_OFFSET, stamp);
                before
            })
            .expect("engine writes stay inside the database");
        self.wal.append(&LogRecord::Update {
            txn,
            page,
            offset: STAMP_OFFSET as u16,
            before,
            after: stamp,
        });
        self.undo
            .entry(txn)
            .or_default()
            .push((page, STAMP_OFFSET as u16, before, stamp));
        stamp
    }

    /// Commits `txn`: appends and **forces** the commit record (the caller
    /// may acknowledge once this returns), then takes a fuzzy checkpoint
    /// every [`CHECKPOINT_EVERY`] commits.
    pub fn commit(&mut self, txn: u64) {
        self.undo.remove(&txn);
        self.wal.append(&LogRecord::Commit { txn });
        self.wal.flush();
        self.commits_since_checkpoint += 1;
        if self.commits_since_checkpoint >= CHECKPOINT_EVERY {
            self.checkpoint();
        }
    }

    /// Rolls back `txn` in place, logging each restoration as a
    /// compensation update followed by an abort record. Not forced: if the
    /// site crashes first, replay reaches the same state via undo.
    pub fn abort(&mut self, txn: u64) {
        let chain = self.undo.remove(&txn).unwrap_or_default();
        for &(page, offset, before, after) in chain.iter().rev() {
            self.wal.append(&LogRecord::Update {
                txn,
                page,
                offset,
                before: after,
                after: before,
            });
            self.guard_steal(page);
            self.file
                .with_page_mut(page, |p| p.write_u64_at(offset as usize, before))
                .expect("undo chain references an existing page");
        }
        self.wal.append(&LogRecord::Abort { txn });
    }

    /// Takes a fuzzy checkpoint: forces the log, writes back all dirty pages
    /// (log first — the WAL rule), then logs the checkpoint with a redo
    /// horizon at the current LSN. Active transactions are not quiesced.
    pub fn checkpoint(&mut self) {
        self.wal.flush();
        self.file.flush();
        let active: Vec<u64> = self.undo.keys().copied().collect();
        self.wal.append(&LogRecord::Checkpoint {
            active,
            redo_lsn: self.wal.next_lsn(),
        });
        self.wal.flush();
        self.commits_since_checkpoint = 0;
        self.checkpoints += 1;
    }

    /// Crashes the site: the buffer pool and the staged log tail past
    /// `staged_keep` bytes are lost (a mid-record cut leaves a torn tail).
    /// Returns the surviving log image and disk image.
    #[must_use]
    pub fn crash(self, staged_keep: usize) -> (Vec<u8>, DiskFile) {
        (self.wal.crash_image(staged_keep), self.file.into_disk())
    }

    /// Reopens a crashed site: replays the log against the disk image, ends
    /// with a checkpoint (so a second crash replays almost nothing), and
    /// returns the recovered store.
    ///
    /// # Panics
    ///
    /// Panics if `buffer_frames` is zero.
    #[must_use]
    pub fn restart(
        log_image: &[u8],
        disk: DiskFile,
        buffer_frames: usize,
    ) -> (Self, RecoveryOutcome) {
        let mut file = PagedFile::from_disk(disk, buffer_frames);
        let (wal, outcome) = replay(log_image, &mut file);
        let mut store = DurableStore {
            file,
            wal,
            undo: BTreeMap::new(),
            commits_since_checkpoint: 0,
            checkpoints: 0,
        };
        store.checkpoint();
        (store, outcome)
    }

    /// Current stamp of a page (0 = never written), reading the buffered
    /// copy if newer. Non-counted.
    ///
    /// # Panics
    ///
    /// Panics if `page` is outside the database.
    #[must_use]
    pub fn stamp_of(&self, page: ObjectId) -> u64 {
        self.file
            .peek(page)
            .expect("engine reads stay inside the database")
            .read_u64_at(STAMP_OFFSET)
    }

    /// All pages with a nonzero stamp, in ascending page order.
    #[must_use]
    pub fn stamps(&self) -> Vec<(ObjectId, u64)> {
        (0..self.file.num_pages())
            .filter_map(|i| {
                let id = ObjectId(i);
                let stamp = self.stamp_of(id);
                (stamp != 0).then_some((id, stamp))
            })
            .collect()
    }

    /// Bytes the staged (volatile) log tail currently holds.
    #[must_use]
    pub fn staged_len(&self) -> usize {
        self.wal.staged_len()
    }

    /// Records appended to the log so far.
    #[must_use]
    pub fn log_records(&self) -> u64 {
        self.wal.next_lsn()
    }

    /// Transactions with unresolved logged updates.
    #[must_use]
    pub fn active_txns(&self) -> usize {
        self.undo.len()
    }

    /// True if `txn` has logged updates that are not yet resolved by a
    /// commit or abort.
    #[must_use]
    pub fn has_updates(&self, txn: u64) -> bool {
        self.undo.contains_key(&txn)
    }

    /// Checkpoints taken since this store (re)opened.
    #[must_use]
    pub fn checkpoints(&self) -> u64 {
        self.checkpoints
    }

    /// Number of pages in the database.
    #[must_use]
    pub fn num_pages(&self) -> u32 {
        self.file.num_pages()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn committed_effects_survive_restart() {
        let mut store = DurableStore::new(8, 2);
        let s1 = store.write(1, ObjectId(0));
        let s2 = store.write(1, ObjectId(5));
        store.commit(1);
        let (log, disk) = store.crash(0);
        let (recovered, outcome) = DurableStore::restart(&log, disk, 2);
        assert_eq!(recovered.stamp_of(ObjectId(0)), s1);
        assert_eq!(recovered.stamp_of(ObjectId(5)), s2);
        assert!(outcome.losers.is_empty());
        assert!(outcome.replay_ios() > 0);
    }

    #[test]
    fn in_flight_transactions_are_rolled_back() {
        let mut store = DurableStore::new(8, 2);
        let s1 = store.write(1, ObjectId(3));
        store.commit(1);
        let _s2 = store.write(2, ObjectId(3)); // loser: overwrote committed stamp
        let _s3 = store.write(2, ObjectId(4)); // loser: pristine page
        store.wal.flush(); // make the loser's updates durable, then crash
        let (log, disk) = store.crash(0);
        let (recovered, outcome) = DurableStore::restart(&log, disk, 2);
        assert_eq!(outcome.losers, vec![2]);
        assert_eq!(outcome.undone, 2);
        assert_eq!(recovered.stamp_of(ObjectId(3)), s1);
        assert_eq!(recovered.stamp_of(ObjectId(4)), 0);
    }

    #[test]
    fn runtime_abort_does_not_resurface_after_restart() {
        let mut store = DurableStore::new(8, 2);
        let s1 = store.write(1, ObjectId(2));
        store.commit(1);
        store.write(2, ObjectId(2));
        store.abort(2); // in-place rollback, compensation logged
        let s3 = store.write(3, ObjectId(2));
        store.commit(3);
        let (log, disk) = store.crash(0);
        let (recovered, outcome) = DurableStore::restart(&log, disk, 2);
        assert!(outcome.losers.is_empty());
        assert_ne!(recovered.stamp_of(ObjectId(2)), s1);
        assert_eq!(recovered.stamp_of(ObjectId(2)), s3);
    }

    #[test]
    fn aborted_steal_is_undone_by_redo_of_compensation() {
        // A loser page can reach disk via eviction (steal); the in-place
        // abort's compensation must also survive via the log.
        let mut store = DurableStore::new(8, 1); // single frame: every access steals
        store.write(1, ObjectId(0));
        // Thrash so the loser's page is written back to disk.
        let _ = store.write(9, ObjectId(1));
        store.commit(9);
        store.abort(1);
        let (log, disk) = store.crash(0);
        assert_ne!(disk.peek(ObjectId(0)).unwrap().read_u64_at(0), 0);
        let (recovered, _) = DurableStore::restart(&log, disk, 2);
        assert_eq!(recovered.stamp_of(ObjectId(0)), 0);
    }

    #[test]
    fn torn_staged_tail_loses_only_unforced_records() {
        let mut store = DurableStore::new(8, 2);
        store.write(1, ObjectId(1));
        store.commit(1); // forced
        store.write(2, ObjectId(2)); // staged only
        let committed_stamp = store.stamp_of(ObjectId(1));
        let staged = store.staged_len();
        for keep in [0, 1, staged.saturating_sub(1)] {
            let mut clone = DurableStore::new(8, 2);
            clone.write(1, ObjectId(1));
            clone.commit(1);
            clone.write(2, ObjectId(2));
            let (log, disk) = clone.crash(keep);
            let (recovered, outcome) = DurableStore::restart(&log, disk, 2);
            assert_eq!(recovered.stamp_of(ObjectId(1)), committed_stamp);
            assert_eq!(recovered.stamp_of(ObjectId(2)), 0, "keep={keep}");
            assert_eq!(outcome.torn_tail, keep != 0);
        }
    }

    #[test]
    fn replay_is_idempotent_across_double_crash() {
        let mut store = DurableStore::new(8, 2);
        store.write(1, ObjectId(1));
        store.commit(1);
        store.write(2, ObjectId(2)); // loser
        let (log, disk) = store.crash(usize::MAX);
        let (first, _) = DurableStore::restart(&log, disk, 2);
        let snapshot = first.stamps();
        let (log2, disk2) = first.crash(0);
        let (second, outcome2) = DurableStore::restart(&log2, disk2, 2);
        assert_eq!(second.stamps(), snapshot);
        assert!(outcome2.losers.is_empty());
        // The end-of-recovery checkpoint bounds the second replay's redo.
        assert_eq!(outcome2.redo_applied, 0);
    }

    #[test]
    fn checkpoint_bounds_redo_and_preserves_state() {
        let mut store = DurableStore::new(16, 4);
        for txn in 0..u64::from(CHECKPOINT_EVERY) + 5 {
            store.write(txn, ObjectId((txn % 16) as u32));
            store.commit(txn);
        }
        assert!(store.checkpoints() >= 1);
        let expected = store.stamps();
        let (log, disk) = store.crash(0);
        let (recovered, outcome) = DurableStore::restart(&log, disk, 4);
        assert_eq!(recovered.stamps(), expected);
        // Redo starts at the checkpoint horizon, not LSN 0.
        assert!(outcome.redo_applied < outcome.scanned);
    }

    #[test]
    fn stamps_reads_through_the_buffer() {
        let mut store = DurableStore::new(4, 2);
        let s = store.write(1, ObjectId(0));
        // Not yet flushed: the newest copy lives in the buffer pool.
        assert_eq!(store.stamps(), vec![(ObjectId(0), s)]);
    }
}
