//! The client's two-tier object cache (Table 1: 500 objects of memory cache
//! plus 500 objects of disk cache).
//!
//! The client–server models treat the set of locally cached objects as the
//! client's "local dataspace" (paper §2). Objects enter the memory tier;
//! the memory tier's LRU victim is demoted to the disk tier; the disk tier's
//! LRU victim leaves the cache entirely. A reference to a disk-tier object
//! promotes it back to memory (costing a local disk access in the simulator).

use std::collections::BTreeMap;

use siteselect_types::{ObjectId, ObjectMap};

/// Which tier a probe found the object in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CacheTier {
    /// Found in the memory cache: free access.
    Memory,
    /// Found in the disk cache: access costs a local disk I/O.
    Disk,
}

/// Cumulative client-cache statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ClientCacheStats {
    /// Probes that hit the memory tier.
    pub memory_hits: u64,
    /// Probes that hit the disk tier.
    pub disk_hits: u64,
    /// Probes that missed both tiers.
    pub misses: u64,
    /// Objects demoted from memory to disk.
    pub demotions: u64,
    /// Objects evicted from the cache entirely.
    pub evictions: u64,
    /// Objects invalidated by lock callbacks.
    pub invalidations: u64,
}

impl ClientCacheStats {
    /// Overall hit fraction (both tiers) in `[0, 1]`.
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let total = self.memory_hits + self.disk_hits + self.misses;
        if total == 0 {
            0.0
        } else {
            (self.memory_hits + self.disk_hits) as f64 / total as f64
        }
    }
}

/// A deterministic LRU set with O(log n) operations.
#[derive(Debug, Default, Clone)]
struct LruSet {
    capacity: usize,
    stamp: u64,
    by_id: ObjectMap<u64>,
    by_stamp: BTreeMap<u64, ObjectId>,
}

impl LruSet {
    fn new(capacity: usize) -> Self {
        LruSet {
            capacity,
            stamp: 0,
            by_id: ObjectMap::new(),
            by_stamp: BTreeMap::new(),
        }
    }

    fn len(&self) -> usize {
        self.by_id.len()
    }

    fn contains(&self, id: ObjectId) -> bool {
        self.by_id.contains(id)
    }

    fn touch(&mut self, id: ObjectId) -> bool {
        match self.by_id.get_mut(id) {
            Some(s) => {
                self.by_stamp.remove(s);
                self.stamp += 1;
                *s = self.stamp;
                self.by_stamp.insert(self.stamp, id);
                true
            }
            None => false,
        }
    }

    /// Inserts `id` as most-recently-used; returns the evicted LRU element
    /// if the set was full.
    fn insert(&mut self, id: ObjectId) -> Option<ObjectId> {
        if self.capacity == 0 {
            return Some(id);
        }
        if self.touch(id) {
            return None;
        }
        let victim = if self.by_id.len() >= self.capacity {
            let (&s, &v) = self.by_stamp.iter().next().expect("full set non-empty");
            self.by_stamp.remove(&s);
            self.by_id.remove(v);
            Some(v)
        } else {
            None
        };
        self.stamp += 1;
        self.by_id.insert(id, self.stamp);
        self.by_stamp.insert(self.stamp, id);
        victim
    }

    fn remove(&mut self, id: ObjectId) -> bool {
        match self.by_id.remove(id) {
            Some(s) => {
                self.by_stamp.remove(&s);
                true
            }
            None => false,
        }
    }

    fn iter(&self) -> impl Iterator<Item = ObjectId> + '_ {
        self.by_stamp.values().copied()
    }
}

/// The two-tier client object cache.
///
/// # Example
///
/// ```
/// use siteselect_storage::{CacheTier, ClientCache};
/// use siteselect_types::ObjectId;
///
/// let mut cache = ClientCache::new(2, 2);
/// cache.insert(ObjectId(1));
/// cache.insert(ObjectId(2));
/// cache.insert(ObjectId(3)); // demotes 1 to the disk tier
/// assert_eq!(cache.probe(ObjectId(1)), Some(CacheTier::Disk));
/// assert_eq!(cache.probe(ObjectId(9)), None);
/// ```
#[derive(Debug, Clone)]
pub struct ClientCache {
    memory: LruSet,
    disk: LruSet,
    stats: ClientCacheStats,
}

impl ClientCache {
    /// Creates a cache with the given per-tier capacities (objects).
    #[must_use]
    pub fn new(memory_objects: usize, disk_objects: usize) -> Self {
        ClientCache {
            memory: LruSet::new(memory_objects),
            disk: LruSet::new(disk_objects),
            stats: ClientCacheStats::default(),
        }
    }

    /// Looks up `id` without recording statistics or promoting.
    #[must_use]
    pub fn peek(&self, id: ObjectId) -> Option<CacheTier> {
        if self.memory.contains(id) {
            Some(CacheTier::Memory)
        } else if self.disk.contains(id) {
            Some(CacheTier::Disk)
        } else {
            None
        }
    }

    /// Looks up `id`, recording hit/miss statistics. A disk-tier hit is
    /// promoted to the memory tier (the caller should charge one local disk
    /// access).
    pub fn probe(&mut self, id: ObjectId) -> Option<CacheTier> {
        if self.memory.touch(id) {
            self.stats.memory_hits += 1;
            return Some(CacheTier::Memory);
        }
        if self.disk.contains(id) {
            self.stats.disk_hits += 1;
            self.disk.remove(id);
            self.insert_into_memory(id);
            return Some(CacheTier::Disk);
        }
        self.stats.misses += 1;
        None
    }

    /// Inserts a newly fetched object into the memory tier, demoting /
    /// evicting as needed.
    pub fn insert(&mut self, id: ObjectId) {
        if self.memory.contains(id) {
            self.memory.touch(id);
            return;
        }
        self.disk.remove(id);
        self.insert_into_memory(id);
    }

    fn insert_into_memory(&mut self, id: ObjectId) {
        if let Some(demoted) = self.memory.insert(id) {
            self.stats.demotions += 1;
            if let Some(evicted) = self.disk.insert(demoted) {
                debug_assert_ne!(evicted, id);
                self.stats.evictions += 1;
            }
        }
    }

    /// Drops `id` from both tiers (used when a callback revokes the object).
    /// Returns `true` if the object was present.
    pub fn invalidate(&mut self, id: ObjectId) -> bool {
        let present = self.memory.remove(id) || self.disk.remove(id);
        if present {
            self.stats.invalidations += 1;
        }
        present
    }

    /// True if the object is cached in either tier.
    #[must_use]
    pub fn contains(&self, id: ObjectId) -> bool {
        self.peek(id).is_some()
    }

    /// Total cached objects across both tiers.
    #[must_use]
    pub fn len(&self) -> usize {
        self.memory.len() + self.disk.len()
    }

    /// True if nothing is cached.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Cumulative statistics.
    #[must_use]
    pub fn stats(&self) -> ClientCacheStats {
        self.stats
    }

    /// Iterates over all cached ids, memory tier first (LRU to MRU order
    /// within each tier).
    pub fn iter(&self) -> impl Iterator<Item = ObjectId> + '_ {
        self.memory.iter().chain(self.disk.iter())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_then_probe_hits_memory() {
        let mut c = ClientCache::new(4, 4);
        c.insert(ObjectId(1));
        assert_eq!(c.probe(ObjectId(1)), Some(CacheTier::Memory));
        assert_eq!(c.stats().memory_hits, 1);
    }

    #[test]
    fn overflow_demotes_then_evicts() {
        let mut c = ClientCache::new(2, 2);
        for i in 1..=4 {
            c.insert(ObjectId(i));
        }
        // memory: {3,4}, disk: {1,2}
        assert_eq!(c.peek(ObjectId(4)), Some(CacheTier::Memory));
        assert_eq!(c.peek(ObjectId(1)), Some(CacheTier::Disk));
        assert_eq!(c.len(), 4);
        c.insert(ObjectId(5)); // demote 3, evict 1
        assert_eq!(c.peek(ObjectId(1)), None);
        assert_eq!(c.peek(ObjectId(3)), Some(CacheTier::Disk));
        assert_eq!(c.stats().evictions, 1);
        assert!(c.stats().demotions >= 3);
    }

    #[test]
    fn disk_hit_promotes_to_memory() {
        let mut c = ClientCache::new(2, 2);
        for i in 1..=3 {
            c.insert(ObjectId(i));
        }
        assert_eq!(c.peek(ObjectId(1)), Some(CacheTier::Disk));
        assert_eq!(c.probe(ObjectId(1)), Some(CacheTier::Disk));
        assert_eq!(c.peek(ObjectId(1)), Some(CacheTier::Memory));
        assert_eq!(c.stats().disk_hits, 1);
    }

    #[test]
    fn invalidate_removes_from_both_tiers() {
        let mut c = ClientCache::new(1, 1);
        c.insert(ObjectId(1));
        c.insert(ObjectId(2)); // 1 demoted to disk
        assert!(c.invalidate(ObjectId(1)));
        assert!(c.invalidate(ObjectId(2)));
        assert!(!c.invalidate(ObjectId(3)));
        assert!(c.is_empty());
        assert_eq!(c.stats().invalidations, 2);
    }

    #[test]
    fn miss_is_counted() {
        let mut c = ClientCache::new(2, 2);
        assert_eq!(c.probe(ObjectId(9)), None);
        assert_eq!(c.stats().misses, 1);
        assert_eq!(c.stats().hit_rate(), 0.0);
    }

    #[test]
    fn reinsert_refreshes_recency() {
        let mut c = ClientCache::new(2, 0);
        c.insert(ObjectId(1));
        c.insert(ObjectId(2));
        c.insert(ObjectId(1)); // refresh
        c.insert(ObjectId(3)); // evicts 2 (LRU), not 1
        assert!(c.contains(ObjectId(1)));
        assert!(!c.contains(ObjectId(2)));
    }

    #[test]
    fn zero_capacity_disk_tier() {
        let mut c = ClientCache::new(1, 0);
        c.insert(ObjectId(1));
        c.insert(ObjectId(2)); // 1 demoted into a zero-capacity tier => evicted
        assert!(!c.contains(ObjectId(1)));
        assert!(c.contains(ObjectId(2)));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn capacity_never_exceeded() {
        let mut c = ClientCache::new(3, 5);
        for i in 0..100 {
            c.insert(ObjectId(i));
        }
        assert!(c.len() <= 8);
        assert_eq!(c.iter().count(), c.len());
    }

    #[test]
    fn hit_rate_combines_tiers() {
        let mut c = ClientCache::new(1, 1);
        c.insert(ObjectId(1));
        c.insert(ObjectId(2));
        c.probe(ObjectId(2)); // memory hit
        c.probe(ObjectId(1)); // disk hit
        c.probe(ObjectId(3)); // miss
        assert!((c.stats().hit_rate() - 2.0 / 3.0).abs() < 1e-12);
    }
}
