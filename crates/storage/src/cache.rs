//! The client's two-tier object cache (Table 1: 500 objects of memory cache
//! plus 500 objects of disk cache).
//!
//! The client–server models treat the set of locally cached objects as the
//! client's "local dataspace" (paper §2). Objects enter the memory tier;
//! the memory tier's LRU victim is demoted to the disk tier; the disk tier's
//! LRU victim leaves the cache entirely. A reference to a disk-tier object
//! promotes it back to memory (costing a local disk access in the simulator).

use siteselect_types::ObjectId;

/// Which tier a probe found the object in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CacheTier {
    /// Found in the memory cache: free access.
    Memory,
    /// Found in the disk cache: access costs a local disk I/O.
    Disk,
}

/// Cumulative client-cache statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ClientCacheStats {
    /// Probes that hit the memory tier.
    pub memory_hits: u64,
    /// Probes that hit the disk tier.
    pub disk_hits: u64,
    /// Probes that missed both tiers.
    pub misses: u64,
    /// Objects demoted from memory to disk.
    pub demotions: u64,
    /// Objects evicted from the cache entirely.
    pub evictions: u64,
    /// Objects invalidated by lock callbacks.
    pub invalidations: u64,
}

impl ClientCacheStats {
    /// Overall hit fraction (both tiers) in `[0, 1]`.
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let total = self.memory_hits + self.disk_hits + self.misses;
        if total == 0 {
            0.0
        } else {
            (self.memory_hits + self.disk_hits) as f64 / total as f64
        }
    }
}

/// Link sentinel: "no neighbour" / "not a member".
const NIL: u32 = u32::MAX;

/// One intrusive list node, indexed by object id.
#[derive(Debug, Clone, Copy)]
struct Node {
    prev: u32,
    next: u32,
    live: bool,
}

impl Default for Node {
    fn default() -> Self {
        Node {
            prev: NIL,
            next: NIL,
            live: false,
        }
    }
}

/// A deterministic LRU set with O(1) operations: an intrusive doubly-
/// linked recency list threaded through a dense id-indexed slot vector.
/// The list runs LRU (head) to MRU (tail); a touch unlinks the node and
/// re-links it at the tail, all by index arithmetic — no tree rebalance,
/// no per-operation allocation. (The previous `BTreeMap` stamp index paid
/// a node-churning remove+insert on every probe, which made the cache the
/// hottest line of the client–server engines.)
#[derive(Debug, Default, Clone)]
struct LruSet {
    capacity: usize,
    nodes: Vec<Node>,
    head: u32,
    tail: u32,
    len: usize,
}

impl LruSet {
    fn new(capacity: usize) -> Self {
        LruSet {
            capacity,
            nodes: Vec::new(),
            head: NIL,
            tail: NIL,
            len: 0,
        }
    }

    fn len(&self) -> usize {
        self.len
    }

    fn contains(&self, id: ObjectId) -> bool {
        self.nodes
            .get(id.index() as usize)
            .is_some_and(|n| n.live)
    }

    /// Detaches a live node from the recency list (leaves `live` set).
    fn unlink(&mut self, idx: u32) {
        let Node { prev, next, .. } = self.nodes[idx as usize];
        match prev {
            NIL => self.head = next,
            p => self.nodes[p as usize].next = next,
        }
        match next {
            NIL => self.tail = prev,
            n => self.nodes[n as usize].prev = prev,
        }
    }

    /// Attaches a node at the MRU tail.
    fn link_tail(&mut self, idx: u32) {
        let node = &mut self.nodes[idx as usize];
        node.live = true;
        node.next = NIL;
        node.prev = self.tail;
        match self.tail {
            NIL => self.head = idx,
            t => self.nodes[t as usize].next = idx,
        }
        self.tail = idx;
    }

    fn touch(&mut self, id: ObjectId) -> bool {
        let idx = id.index();
        if !self.contains(id) {
            return false;
        }
        if self.tail != idx {
            self.unlink(idx);
            self.link_tail(idx);
        }
        true
    }

    /// Inserts `id` as most-recently-used; returns the evicted LRU element
    /// if the set was full.
    fn insert(&mut self, id: ObjectId) -> Option<ObjectId> {
        if self.capacity == 0 {
            return Some(id);
        }
        if self.touch(id) {
            return None;
        }
        let victim = if self.len >= self.capacity {
            let lru = self.head;
            self.unlink(lru);
            self.nodes[lru as usize].live = false;
            self.len -= 1;
            Some(ObjectId(lru))
        } else {
            None
        };
        let idx = id.index() as usize;
        if idx >= self.nodes.len() {
            self.nodes.resize(idx + 1, Node::default());
        }
        self.link_tail(id.index());
        self.len += 1;
        victim
    }

    /// Pre-sizes the node slab for ids `0..n` so later inserts never grow
    /// it (keeps first-touch insertions off the allocator).
    fn reserve_ids(&mut self, n: usize) {
        if self.nodes.len() < n {
            self.nodes.resize(n, Node::default());
        }
    }

    fn remove(&mut self, id: ObjectId) -> bool {
        if !self.contains(id) {
            return false;
        }
        let idx = id.index();
        self.unlink(idx);
        self.nodes[idx as usize].live = false;
        self.len -= 1;
        true
    }

    /// Members from LRU to MRU.
    fn iter(&self) -> impl Iterator<Item = ObjectId> + '_ {
        let mut cur = self.head;
        std::iter::from_fn(move || {
            if cur == NIL {
                return None;
            }
            let id = cur;
            cur = self.nodes[cur as usize].next;
            Some(ObjectId(id))
        })
    }
}

/// The two-tier client object cache.
///
/// # Example
///
/// ```
/// use siteselect_storage::{CacheTier, ClientCache};
/// use siteselect_types::ObjectId;
///
/// let mut cache = ClientCache::new(2, 2);
/// cache.insert(ObjectId(1));
/// cache.insert(ObjectId(2));
/// cache.insert(ObjectId(3)); // demotes 1 to the disk tier
/// assert_eq!(cache.probe(ObjectId(1)), Some(CacheTier::Disk));
/// assert_eq!(cache.probe(ObjectId(9)), None);
/// ```
#[derive(Debug, Clone)]
pub struct ClientCache {
    memory: LruSet,
    disk: LruSet,
    stats: ClientCacheStats,
}

impl ClientCache {
    /// Creates a cache with the given per-tier capacities (objects).
    #[must_use]
    pub fn new(memory_objects: usize, disk_objects: usize) -> Self {
        ClientCache {
            memory: LruSet::new(memory_objects),
            disk: LruSet::new(disk_objects),
            stats: ClientCacheStats::default(),
        }
    }

    /// Pre-sizes both tiers' node slabs for ids `0..n`, so steady-state
    /// inserts never touch the allocator. Worth it only where one cache
    /// sees the whole database (e.g. a server buffer) — per-client caches
    /// would pay `n` slots each for ids they mostly never see.
    pub fn reserve_ids(&mut self, n: usize) {
        self.memory.reserve_ids(n);
        self.disk.reserve_ids(n);
    }

    /// Looks up `id` without recording statistics or promoting.
    #[must_use]
    pub fn peek(&self, id: ObjectId) -> Option<CacheTier> {
        if self.memory.contains(id) {
            Some(CacheTier::Memory)
        } else if self.disk.contains(id) {
            Some(CacheTier::Disk)
        } else {
            None
        }
    }

    /// Looks up `id`, recording hit/miss statistics. A disk-tier hit is
    /// promoted to the memory tier (the caller should charge one local disk
    /// access).
    pub fn probe(&mut self, id: ObjectId) -> Option<CacheTier> {
        if self.memory.touch(id) {
            self.stats.memory_hits += 1;
            return Some(CacheTier::Memory);
        }
        if self.disk.contains(id) {
            self.stats.disk_hits += 1;
            self.disk.remove(id);
            self.insert_into_memory(id);
            return Some(CacheTier::Disk);
        }
        self.stats.misses += 1;
        None
    }

    /// Inserts a newly fetched object into the memory tier, demoting /
    /// evicting as needed.
    pub fn insert(&mut self, id: ObjectId) {
        if self.memory.contains(id) {
            self.memory.touch(id);
            return;
        }
        self.disk.remove(id);
        self.insert_into_memory(id);
    }

    fn insert_into_memory(&mut self, id: ObjectId) {
        if let Some(demoted) = self.memory.insert(id) {
            self.stats.demotions += 1;
            if let Some(evicted) = self.disk.insert(demoted) {
                debug_assert_ne!(evicted, id);
                self.stats.evictions += 1;
            }
        }
    }

    /// Drops `id` from both tiers (used when a callback revokes the object).
    /// Returns `true` if the object was present.
    pub fn invalidate(&mut self, id: ObjectId) -> bool {
        let present = self.memory.remove(id) || self.disk.remove(id);
        if present {
            self.stats.invalidations += 1;
        }
        present
    }

    /// True if the object is cached in either tier.
    #[must_use]
    pub fn contains(&self, id: ObjectId) -> bool {
        self.peek(id).is_some()
    }

    /// Total cached objects across both tiers.
    #[must_use]
    pub fn len(&self) -> usize {
        self.memory.len() + self.disk.len()
    }

    /// True if nothing is cached.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Cumulative statistics.
    #[must_use]
    pub fn stats(&self) -> ClientCacheStats {
        self.stats
    }

    /// Iterates over all cached ids, memory tier first (LRU to MRU order
    /// within each tier).
    pub fn iter(&self) -> impl Iterator<Item = ObjectId> + '_ {
        self.memory.iter().chain(self.disk.iter())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_then_probe_hits_memory() {
        let mut c = ClientCache::new(4, 4);
        c.insert(ObjectId(1));
        assert_eq!(c.probe(ObjectId(1)), Some(CacheTier::Memory));
        assert_eq!(c.stats().memory_hits, 1);
    }

    #[test]
    fn overflow_demotes_then_evicts() {
        let mut c = ClientCache::new(2, 2);
        for i in 1..=4 {
            c.insert(ObjectId(i));
        }
        // memory: {3,4}, disk: {1,2}
        assert_eq!(c.peek(ObjectId(4)), Some(CacheTier::Memory));
        assert_eq!(c.peek(ObjectId(1)), Some(CacheTier::Disk));
        assert_eq!(c.len(), 4);
        c.insert(ObjectId(5)); // demote 3, evict 1
        assert_eq!(c.peek(ObjectId(1)), None);
        assert_eq!(c.peek(ObjectId(3)), Some(CacheTier::Disk));
        assert_eq!(c.stats().evictions, 1);
        assert!(c.stats().demotions >= 3);
    }

    #[test]
    fn disk_hit_promotes_to_memory() {
        let mut c = ClientCache::new(2, 2);
        for i in 1..=3 {
            c.insert(ObjectId(i));
        }
        assert_eq!(c.peek(ObjectId(1)), Some(CacheTier::Disk));
        assert_eq!(c.probe(ObjectId(1)), Some(CacheTier::Disk));
        assert_eq!(c.peek(ObjectId(1)), Some(CacheTier::Memory));
        assert_eq!(c.stats().disk_hits, 1);
    }

    #[test]
    fn invalidate_removes_from_both_tiers() {
        let mut c = ClientCache::new(1, 1);
        c.insert(ObjectId(1));
        c.insert(ObjectId(2)); // 1 demoted to disk
        assert!(c.invalidate(ObjectId(1)));
        assert!(c.invalidate(ObjectId(2)));
        assert!(!c.invalidate(ObjectId(3)));
        assert!(c.is_empty());
        assert_eq!(c.stats().invalidations, 2);
    }

    #[test]
    fn miss_is_counted() {
        let mut c = ClientCache::new(2, 2);
        assert_eq!(c.probe(ObjectId(9)), None);
        assert_eq!(c.stats().misses, 1);
        assert_eq!(c.stats().hit_rate(), 0.0);
    }

    #[test]
    fn reinsert_refreshes_recency() {
        let mut c = ClientCache::new(2, 0);
        c.insert(ObjectId(1));
        c.insert(ObjectId(2));
        c.insert(ObjectId(1)); // refresh
        c.insert(ObjectId(3)); // evicts 2 (LRU), not 1
        assert!(c.contains(ObjectId(1)));
        assert!(!c.contains(ObjectId(2)));
    }

    #[test]
    fn zero_capacity_disk_tier() {
        let mut c = ClientCache::new(1, 0);
        c.insert(ObjectId(1));
        c.insert(ObjectId(2)); // 1 demoted into a zero-capacity tier => evicted
        assert!(!c.contains(ObjectId(1)));
        assert!(c.contains(ObjectId(2)));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn capacity_never_exceeded() {
        let mut c = ClientCache::new(3, 5);
        for i in 0..100 {
            c.insert(ObjectId(i));
        }
        assert!(c.len() <= 8);
        assert_eq!(c.iter().count(), c.len());
    }

    #[test]
    fn hit_rate_combines_tiers() {
        let mut c = ClientCache::new(1, 1);
        c.insert(ObjectId(1));
        c.insert(ObjectId(2));
        c.probe(ObjectId(2)); // memory hit
        c.probe(ObjectId(1)); // disk hit
        c.probe(ObjectId(3)); // miss
        assert!((c.stats().hit_rate() - 2.0 / 3.0).abs() < 1e-12);
    }
}
