//! The PF-layer facade: a paged file with a buffer manager in front, exposing
//! MiniRel-style `get`/`alloc`/`mark dirty`/`unpin` semantics behind a safe
//! closure-based API.

use std::error::Error;
use std::fmt;

use siteselect_types::ObjectId;

use crate::buffer::{BufferError, BufferManager, BufferStats, Replacement};
use crate::disk::{DiskFile, DiskStats};
use crate::page::{Page, PAGE_SIZE};

/// Error returned by [`PagedFile`] operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PfError {
    /// The underlying buffer could not make room.
    Buffer(BufferError),
}

impl fmt::Display for PfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PfError::Buffer(e) => write!(f, "paged file error: {e}"),
        }
    }
}

impl Error for PfError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            PfError::Buffer(e) => Some(e),
        }
    }
}

impl From<BufferError> for PfError {
    fn from(e: BufferError) -> Self {
        PfError::Buffer(e)
    }
}

/// A paged database file with buffered access — the crate's equivalent of the
/// MiniRel PF layer used by the paper's prototypes.
///
/// The closure-based accessors pin the page, run the closure, then unpin
/// (marking dirty for mutable access), so pages can never leak pins.
///
/// # Example
///
/// ```
/// use siteselect_storage::PagedFile;
/// use siteselect_types::ObjectId;
///
/// let mut pf = PagedFile::create(100, 10);
/// pf.with_page_mut(ObjectId(1), |p| p.write_u64_at(0, 5)).unwrap();
/// assert_eq!(pf.with_page(ObjectId(1), |p| p.read_u64_at(0)).unwrap(), 5);
/// ```
#[derive(Debug)]
pub struct PagedFile {
    disk: DiskFile,
    buffer: BufferManager,
}

impl PagedFile {
    /// Creates a database of `num_pages` patterned pages buffered by
    /// `buffer_frames` frames with LRU replacement.
    ///
    /// # Panics
    ///
    /// Panics if `buffer_frames` is zero.
    #[must_use]
    pub fn create(num_pages: u32, buffer_frames: usize) -> Self {
        PagedFile {
            disk: DiskFile::with_patterned_pages(num_pages),
            buffer: BufferManager::new(buffer_frames, Replacement::Lru),
        }
    }

    /// Creates a paged file with an explicit replacement policy.
    ///
    /// # Panics
    ///
    /// Panics if `buffer_frames` is zero.
    #[must_use]
    pub fn with_policy(num_pages: u32, buffer_frames: usize, policy: Replacement) -> Self {
        PagedFile {
            disk: DiskFile::with_patterned_pages(num_pages),
            buffer: BufferManager::new(buffer_frames, policy),
        }
    }

    /// Wraps an existing disk image with a fresh buffer — used by crash
    /// recovery to reopen the database left behind by a crashed site.
    ///
    /// # Panics
    ///
    /// Panics if `buffer_frames` is zero.
    #[must_use]
    pub fn from_disk(disk: DiskFile, buffer_frames: usize) -> Self {
        PagedFile {
            disk,
            buffer: BufferManager::new(buffer_frames, Replacement::Lru),
        }
    }

    /// Consumes the paged file and returns the on-disk image, **discarding**
    /// any dirty buffered pages — crash semantics: the buffer pool is
    /// volatile and its unwritten contents are lost.
    #[must_use]
    pub fn into_disk(self) -> DiskFile {
        self.disk
    }

    /// Non-counted read access to the current contents of a page: the
    /// buffered copy if present (it is newer), otherwise the on-disk copy.
    #[must_use]
    pub fn peek(&self, id: ObjectId) -> Option<&Page> {
        self.buffer.peek(id).or_else(|| self.disk.peek(id))
    }

    /// The fixed page size (2 KB, Table 1).
    #[must_use]
    pub fn page_size(&self) -> usize {
        PAGE_SIZE
    }

    /// Number of pages in the file.
    #[must_use]
    pub fn num_pages(&self) -> u32 {
        self.disk.num_pages()
    }

    /// Runs `f` with read access to the page.
    ///
    /// # Errors
    ///
    /// Propagates buffer errors (missing page, all frames pinned).
    pub fn with_page<R>(&mut self, id: ObjectId, f: impl FnOnce(&Page) -> R) -> Result<R, PfError> {
        let idx = self.buffer.fetch(id, &mut self.disk)?;
        let out = f(self.buffer.page(idx).expect("frame just fetched"));
        self.buffer.unpin(idx).expect("frame pinned by fetch");
        Ok(out)
    }

    /// Runs `f` with write access to the page and marks it dirty.
    ///
    /// # Errors
    ///
    /// Propagates buffer errors (missing page, all frames pinned).
    pub fn with_page_mut<R>(
        &mut self,
        id: ObjectId,
        f: impl FnOnce(&mut Page) -> R,
    ) -> Result<R, PfError> {
        let idx = self.buffer.fetch(id, &mut self.disk)?;
        let out = f(self.buffer.page_mut(idx).expect("frame just fetched"));
        self.buffer.mark_dirty(idx).expect("frame exists");
        self.buffer.unpin(idx).expect("frame pinned by fetch");
        Ok(out)
    }

    /// Appends a fresh zeroed page and returns its id.
    pub fn alloc_page(&mut self) -> ObjectId {
        self.disk.allocate()
    }

    /// Flushes all dirty buffered pages to the file.
    pub fn flush(&mut self) {
        self.buffer.flush_all(&mut self.disk);
    }

    /// Buffer statistics (hits/misses/evictions/writebacks).
    #[must_use]
    pub fn buffer_stats(&self) -> BufferStats {
        self.buffer.stats()
    }

    /// Disk I/O statistics.
    #[must_use]
    pub fn disk_stats(&self) -> DiskStats {
        self.disk.stats()
    }

    /// Whether the page is currently buffered (testing aid).
    #[must_use]
    pub fn is_buffered(&self, id: ObjectId) -> bool {
        self.buffer.contains(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closure_access_round_trips() {
        let mut pf = PagedFile::create(20, 4);
        pf.with_page_mut(ObjectId(3), |p| p.write_u64_at(64, 17)).unwrap();
        let got = pf.with_page(ObjectId(3), |p| p.read_u64_at(64)).unwrap();
        assert_eq!(got, 17);
    }

    #[test]
    fn update_survives_eviction_pressure() {
        let mut pf = PagedFile::create(20, 2);
        pf.with_page_mut(ObjectId(0), |p| p.write_u64_at(0, 42)).unwrap();
        // Thrash the tiny buffer.
        for i in 1..20u32 {
            pf.with_page(ObjectId(i), |_| ()).unwrap();
        }
        assert!(!pf.is_buffered(ObjectId(0)));
        assert_eq!(pf.with_page(ObjectId(0), |p| p.read_u64_at(0)).unwrap(), 42);
    }

    #[test]
    fn pins_never_leak() {
        let mut pf = PagedFile::create(4, 1);
        for i in 0..4u32 {
            pf.with_page(ObjectId(i), |_| ()).unwrap();
        }
        // With a single frame, any leaked pin would make this fail.
        pf.with_page(ObjectId(0), |_| ()).unwrap();
    }

    #[test]
    fn missing_page_is_reported() {
        let mut pf = PagedFile::create(2, 2);
        let err = pf.with_page(ObjectId(9), |_| ()).unwrap_err();
        assert_eq!(err, PfError::Buffer(BufferError::NoSuchPage(ObjectId(9))));
        assert!(err.to_string().contains("obj#9"));
        assert!(std::error::Error::source(&err).is_some());
    }

    #[test]
    fn alloc_extends_and_flush_persists() {
        let mut pf = PagedFile::create(2, 2);
        let id = pf.alloc_page();
        assert_eq!(id, ObjectId(2));
        pf.with_page_mut(id, |p| p.write_u64_at(0, 7)).unwrap();
        pf.flush();
        assert!(pf.buffer_stats().writebacks >= 1);
        assert_eq!(pf.num_pages(), 3);
    }

    #[test]
    fn stats_accumulate() {
        let mut pf = PagedFile::create(8, 2);
        pf.with_page(ObjectId(1), |_| ()).unwrap();
        pf.with_page(ObjectId(1), |_| ()).unwrap();
        assert_eq!(pf.buffer_stats().hits, 1);
        assert_eq!(pf.buffer_stats().misses, 1);
        assert_eq!(pf.disk_stats().reads, 1);
    }
}
