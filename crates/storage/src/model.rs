//! A FIFO single-server disk service-time model for the discrete-event
//! simulator.
//!
//! The simulator does not move real bytes; it charges simulated time for
//! each page access. The disk is a single server with deterministic service
//! time per page and a FIFO queue, which matches the behaviour of the
//! prototype's dedicated database disk under bursty load.

use siteselect_types::{SimDuration, SimTime};

/// A simulated disk: each I/O occupies the device for a fixed service time;
/// requests queue FIFO.
///
/// # Example
///
/// ```
/// use siteselect_storage::DiskModel;
/// use siteselect_types::{SimDuration, SimTime};
///
/// let mut disk = DiskModel::new(SimDuration::from_millis(8));
/// let t0 = SimTime::ZERO;
/// let done1 = disk.schedule_io(t0);
/// let done2 = disk.schedule_io(t0); // queues behind the first
/// assert_eq!(done1, SimTime::ZERO + SimDuration::from_millis(8));
/// assert_eq!(done2, SimTime::ZERO + SimDuration::from_millis(16));
/// ```
#[derive(Debug, Clone)]
pub struct DiskModel {
    service_time: SimDuration,
    busy_until: SimTime,
    total_ios: u64,
    total_busy: SimDuration,
    total_queueing: SimDuration,
}

impl DiskModel {
    /// Creates a disk with the given per-page service time.
    #[must_use]
    pub fn new(service_time: SimDuration) -> Self {
        DiskModel {
            service_time,
            busy_until: SimTime::ZERO,
            total_ios: 0,
            total_busy: SimDuration::ZERO,
            total_queueing: SimDuration::ZERO,
        }
    }

    /// Enqueues one page I/O issued at `now`; returns its completion time.
    pub fn schedule_io(&mut self, now: SimTime) -> SimTime {
        let start = self.busy_until.max(now);
        let done = start + self.service_time;
        self.total_queueing += start.duration_since(now);
        self.total_busy += self.service_time;
        self.busy_until = done;
        self.total_ios += 1;
        done
    }

    /// Enqueues `n` back-to-back page I/Os issued at `now`; returns the
    /// completion time of the last one.
    pub fn schedule_batch(&mut self, now: SimTime, n: u32) -> SimTime {
        let mut done = now;
        for _ in 0..n {
            done = self.schedule_io(now);
        }
        done
    }

    /// Completion time of the most recently queued I/O.
    #[must_use]
    pub fn busy_until(&self) -> SimTime {
        self.busy_until
    }

    /// Total I/Os served.
    #[must_use]
    pub fn total_ios(&self) -> u64 {
        self.total_ios
    }

    /// Utilization over `[0, now]` in `[0, 1]`.
    #[must_use]
    pub fn utilization(&self, now: SimTime) -> f64 {
        let span = now.duration_since(SimTime::ZERO).as_secs_f64();
        if span <= 0.0 {
            return 0.0;
        }
        // Busy time already booked past `now` is clipped.
        let booked = self.total_busy.as_secs_f64();
        let future = self.busy_until.duration_since(now).as_secs_f64();
        ((booked - future).max(0.0) / span).min(1.0)
    }

    /// Mean queueing delay per I/O in seconds (0.0 with no I/Os).
    #[must_use]
    pub fn mean_queueing_delay(&self) -> f64 {
        if self.total_ios == 0 {
            0.0
        } else {
            self.total_queueing.as_secs_f64() / self.total_ios as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(n: u64) -> SimDuration {
        SimDuration::from_millis(n)
    }

    #[test]
    fn idle_disk_serves_immediately() {
        let mut d = DiskModel::new(ms(8));
        let done = d.schedule_io(SimTime::from_secs(1));
        assert_eq!(done, SimTime::from_secs(1) + ms(8));
    }

    #[test]
    fn requests_queue_fifo() {
        let mut d = DiskModel::new(ms(10));
        let t = SimTime::ZERO;
        assert_eq!(d.schedule_io(t), t + ms(10));
        assert_eq!(d.schedule_io(t), t + ms(20));
        assert_eq!(d.schedule_io(t), t + ms(30));
        assert_eq!(d.total_ios(), 3);
    }

    #[test]
    fn disk_drains_when_idle() {
        let mut d = DiskModel::new(ms(10));
        d.schedule_io(SimTime::ZERO);
        // Issued long after the first completes: no queueing.
        let done = d.schedule_io(SimTime::from_secs(5));
        assert_eq!(done, SimTime::from_secs(5) + ms(10));
        assert_eq!(d.mean_queueing_delay(), 0.0);
    }

    #[test]
    fn batch_is_sequential() {
        let mut d = DiskModel::new(ms(5));
        let done = d.schedule_batch(SimTime::ZERO, 4);
        assert_eq!(done, SimTime::ZERO + ms(20));
        assert_eq!(d.total_ios(), 4);
        assert_eq!(d.schedule_batch(SimTime::from_secs(10), 0), SimTime::from_secs(10));
    }

    #[test]
    fn queueing_delay_measured() {
        let mut d = DiskModel::new(ms(10));
        d.schedule_io(SimTime::ZERO); // starts at 0
        d.schedule_io(SimTime::ZERO); // waits 10ms
        assert!((d.mean_queueing_delay() - 0.005).abs() < 1e-9);
    }

    #[test]
    fn utilization_bounds() {
        let mut d = DiskModel::new(ms(100));
        assert_eq!(d.utilization(SimTime::ZERO), 0.0);
        for _ in 0..5 {
            d.schedule_io(SimTime::ZERO);
        }
        let u = d.utilization(SimTime::from_secs(1));
        assert!((0.0..=1.0).contains(&u));
        assert!(u > 0.4, "five 100ms I/Os in 1s should be ~0.5 utilization, got {u}");
    }
}
