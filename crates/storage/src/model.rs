//! A FIFO single-server disk service-time model for the discrete-event
//! simulator.
//!
//! The simulator does not move real bytes; it charges simulated time for
//! each page access. The disk is a single server with deterministic service
//! time per page and a FIFO queue, which matches the behaviour of the
//! prototype's dedicated database disk under bursty load.

use siteselect_types::{SimDuration, SimTime};

/// A simulated disk: each I/O occupies the device for a fixed service time;
/// requests queue FIFO.
///
/// # Example
///
/// ```
/// use siteselect_storage::DiskModel;
/// use siteselect_types::{SimDuration, SimTime};
///
/// let mut disk = DiskModel::new(SimDuration::from_millis(8));
/// let t0 = SimTime::ZERO;
/// let done1 = disk.schedule_io(t0);
/// let done2 = disk.schedule_io(t0); // queues behind the first
/// assert_eq!(done1, SimTime::ZERO + SimDuration::from_millis(8));
/// assert_eq!(done2, SimTime::ZERO + SimDuration::from_millis(16));
/// ```
#[derive(Debug, Clone)]
pub struct DiskModel {
    service_time: SimDuration,
    busy_until: SimTime,
    total_ios: u64,
    total_busy: SimDuration,
    total_queueing: SimDuration,
    /// Slow-disk fault episodes as `(start, end)` windows, non-overlapping
    /// and sorted; I/Os issued inside a window pay `slow_factor ×` the
    /// normal service time.
    slow_episodes: Vec<(SimTime, SimTime)>,
    slow_factor: f64,
    slow_ios: u64,
}

impl DiskModel {
    /// Creates a disk with the given per-page service time.
    #[must_use]
    pub fn new(service_time: SimDuration) -> Self {
        DiskModel {
            service_time,
            busy_until: SimTime::ZERO,
            total_ios: 0,
            total_busy: SimDuration::ZERO,
            total_queueing: SimDuration::ZERO,
            slow_episodes: Vec::new(),
            slow_factor: 1.0,
            slow_ios: 0,
        }
    }

    /// Installs a pre-generated slow-disk fault schedule: during each
    /// `(start, end)` window, every I/O *started* inside the window costs
    /// `factor ×` the normal service time (a degraded spindle or a
    /// background scrub stealing bandwidth). Windows must be sorted and
    /// non-overlapping.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `factor < 1` or the windows are unsorted.
    pub fn set_slow_episodes(&mut self, episodes: Vec<(SimTime, SimTime)>, factor: f64) {
        debug_assert!(factor >= 1.0, "slow factor {factor} must not speed the disk up");
        debug_assert!(
            episodes.windows(2).all(|w| w[0].1 <= w[1].0),
            "slow episodes must be sorted and non-overlapping"
        );
        self.slow_episodes = episodes;
        self.slow_factor = factor;
    }

    /// True if an I/O starting at `t` falls inside a slow-disk episode.
    #[must_use]
    pub fn is_slow_at(&self, t: SimTime) -> bool {
        // Schedules are tiny (a handful of episodes per run); linear scan
        // with the binary search only as a fast path for long schedules.
        match self.slow_episodes.binary_search_by(|&(s, _)| s.cmp(&t)) {
            Ok(_) => true,
            Err(0) => false,
            Err(i) => t < self.slow_episodes[i - 1].1,
        }
    }

    /// I/Os that were served at the degraded rate.
    #[must_use]
    pub fn slow_ios(&self) -> u64 {
        self.slow_ios
    }

    /// Enqueues one page I/O issued at `now`; returns its completion time.
    pub fn schedule_io(&mut self, now: SimTime) -> SimTime {
        let start = self.busy_until.max(now);
        let service = if self.is_slow_at(start) {
            self.slow_ios += 1;
            self.service_time.mul_f64(self.slow_factor)
        } else {
            self.service_time
        };
        let done = start + service;
        self.total_queueing += start.duration_since(now);
        self.total_busy += service;
        self.busy_until = done;
        self.total_ios += 1;
        done
    }

    /// Enqueues `n` back-to-back page I/Os issued at `now`; returns the
    /// completion time of the last one.
    pub fn schedule_batch(&mut self, now: SimTime, n: u32) -> SimTime {
        let mut done = now;
        for _ in 0..n {
            done = self.schedule_io(now);
        }
        done
    }

    /// Completion time of the most recently queued I/O.
    #[must_use]
    pub fn busy_until(&self) -> SimTime {
        self.busy_until
    }

    /// Total I/Os served.
    #[must_use]
    pub fn total_ios(&self) -> u64 {
        self.total_ios
    }

    /// Utilization over `[0, now]` in `[0, 1]`.
    #[must_use]
    pub fn utilization(&self, now: SimTime) -> f64 {
        let span = now.duration_since(SimTime::ZERO).as_secs_f64();
        if span <= 0.0 {
            return 0.0;
        }
        // Busy time already booked past `now` is clipped.
        let booked = self.total_busy.as_secs_f64();
        let future = self.busy_until.duration_since(now).as_secs_f64();
        ((booked - future).max(0.0) / span).min(1.0)
    }

    /// Mean queueing delay per I/O in seconds (0.0 with no I/Os).
    #[must_use]
    pub fn mean_queueing_delay(&self) -> f64 {
        if self.total_ios == 0 {
            0.0
        } else {
            self.total_queueing.as_secs_f64() / self.total_ios as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(n: u64) -> SimDuration {
        SimDuration::from_millis(n)
    }

    #[test]
    fn idle_disk_serves_immediately() {
        let mut d = DiskModel::new(ms(8));
        let done = d.schedule_io(SimTime::from_secs(1));
        assert_eq!(done, SimTime::from_secs(1) + ms(8));
    }

    #[test]
    fn requests_queue_fifo() {
        let mut d = DiskModel::new(ms(10));
        let t = SimTime::ZERO;
        assert_eq!(d.schedule_io(t), t + ms(10));
        assert_eq!(d.schedule_io(t), t + ms(20));
        assert_eq!(d.schedule_io(t), t + ms(30));
        assert_eq!(d.total_ios(), 3);
    }

    #[test]
    fn disk_drains_when_idle() {
        let mut d = DiskModel::new(ms(10));
        d.schedule_io(SimTime::ZERO);
        // Issued long after the first completes: no queueing.
        let done = d.schedule_io(SimTime::from_secs(5));
        assert_eq!(done, SimTime::from_secs(5) + ms(10));
        assert_eq!(d.mean_queueing_delay(), 0.0);
    }

    #[test]
    fn batch_is_sequential() {
        let mut d = DiskModel::new(ms(5));
        let done = d.schedule_batch(SimTime::ZERO, 4);
        assert_eq!(done, SimTime::ZERO + ms(20));
        assert_eq!(d.total_ios(), 4);
        assert_eq!(d.schedule_batch(SimTime::from_secs(10), 0), SimTime::from_secs(10));
    }

    #[test]
    fn queueing_delay_measured() {
        let mut d = DiskModel::new(ms(10));
        d.schedule_io(SimTime::ZERO); // starts at 0
        d.schedule_io(SimTime::ZERO); // waits 10ms
        assert!((d.mean_queueing_delay() - 0.005).abs() < 1e-9);
    }

    #[test]
    fn slow_episode_multiplies_service_time() {
        let mut d = DiskModel::new(ms(10));
        d.set_slow_episodes(
            vec![(SimTime::from_secs(1), SimTime::from_secs(2))],
            4.0,
        );
        // Before the episode: normal.
        assert_eq!(d.schedule_io(SimTime::ZERO), SimTime::ZERO + ms(10));
        // Inside the episode: 4x.
        assert_eq!(d.schedule_io(SimTime::from_secs(1)), SimTime::from_secs(1) + ms(40));
        // After the episode: normal again.
        assert_eq!(d.schedule_io(SimTime::from_secs(3)), SimTime::from_secs(3) + ms(10));
        assert_eq!(d.slow_ios(), 1);
        assert_eq!(d.total_ios(), 3);
    }

    #[test]
    fn slow_episode_applies_to_queued_start_time() {
        // An I/O issued before the episode but *started* inside it (because
        // the disk was busy) is served at the degraded rate.
        let mut d = DiskModel::new(ms(600));
        d.set_slow_episodes(
            vec![(SimTime::ZERO + ms(500), SimTime::from_secs(5))],
            2.0,
        );
        assert_eq!(d.schedule_io(SimTime::ZERO), SimTime::ZERO + ms(600));
        // Issued at 0, starts at 600ms which is inside the window: 1200ms service.
        assert_eq!(d.schedule_io(SimTime::ZERO), SimTime::ZERO + ms(600) + ms(1_200));
        assert_eq!(d.slow_ios(), 1);
    }

    #[test]
    fn empty_schedule_is_never_slow() {
        let d = DiskModel::new(ms(10));
        assert!(!d.is_slow_at(SimTime::ZERO));
        assert!(!d.is_slow_at(SimTime::from_secs(100)));
    }

    #[test]
    fn utilization_bounds() {
        let mut d = DiskModel::new(ms(100));
        assert_eq!(d.utilization(SimTime::ZERO), 0.0);
        for _ in 0..5 {
            d.schedule_io(SimTime::ZERO);
        }
        let u = d.utilization(SimTime::from_secs(1));
        assert!((0.0..=1.0).contains(&u));
        assert!(u > 0.4, "five 100ms I/Os in 1s should be ~0.5 utilization, got {u}");
    }
}
