//! The backing "UNIX disk file" of the paper's prototype, with I/O
//! accounting.

use siteselect_types::ObjectId;

use crate::page::Page;

/// Cumulative I/O statistics for one [`DiskFile`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DiskStats {
    /// Pages read from the file.
    pub reads: u64,
    /// Pages written back to the file.
    pub writes: u64,
}

/// An in-memory stand-in for the prototype's UNIX disk file: a flat array of
/// fixed-size pages addressed by [`ObjectId`].
///
/// # Example
///
/// ```
/// use siteselect_storage::DiskFile;
/// use siteselect_types::ObjectId;
///
/// let mut disk = DiskFile::with_patterned_pages(8);
/// let page = disk.read(ObjectId(2)).unwrap();
/// assert_eq!(page.id(), ObjectId(2));
/// assert_eq!(disk.stats().reads, 1);
/// ```
#[derive(Debug, Clone)]
pub struct DiskFile {
    pages: Vec<Page>,
    stats: DiskStats,
}

impl DiskFile {
    /// Creates a file of `n` zeroed pages.
    #[must_use]
    pub fn new(n: u32) -> Self {
        DiskFile {
            pages: (0..n).map(|i| Page::zeroed(ObjectId(i))).collect(),
            stats: DiskStats::default(),
        }
    }

    /// Creates a file of `n` pages whose contents derive deterministically
    /// from their ids (see [`Page::patterned`]).
    #[must_use]
    pub fn with_patterned_pages(n: u32) -> Self {
        DiskFile {
            pages: (0..n).map(|i| Page::patterned(ObjectId(i))).collect(),
            stats: DiskStats::default(),
        }
    }

    /// Number of pages in the file.
    #[must_use]
    pub fn num_pages(&self) -> u32 {
        self.pages.len() as u32
    }

    /// True if `id` addresses a page inside the file.
    #[must_use]
    pub fn contains(&self, id: ObjectId) -> bool {
        (id.index() as usize) < self.pages.len()
    }

    /// Reads a page, counting one I/O. Returns `None` for an out-of-range id.
    pub fn read(&mut self, id: ObjectId) -> Option<Page> {
        let p = self.pages.get(id.index() as usize)?.clone();
        self.stats.reads += 1;
        Some(p)
    }

    /// Writes a page back, counting one I/O.
    ///
    /// Returns `false` (and writes nothing) for an out-of-range id.
    pub fn write(&mut self, page: &Page) -> bool {
        let idx = page.id().index() as usize;
        match self.pages.get_mut(idx) {
            Some(slot) => {
                *slot = page.clone();
                self.stats.writes += 1;
                true
            }
            None => false,
        }
    }

    /// Appends a zeroed page and returns its id.
    pub fn allocate(&mut self) -> ObjectId {
        let id = ObjectId(self.pages.len() as u32);
        self.pages.push(Page::zeroed(id));
        id
    }

    /// Direct, non-counted access for verification in tests.
    #[must_use]
    pub fn peek(&self, id: ObjectId) -> Option<&Page> {
        self.pages.get(id.index() as usize)
    }

    /// Cumulative I/O statistics.
    #[must_use]
    pub fn stats(&self) -> DiskStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_write_round_trip() {
        let mut d = DiskFile::new(4);
        let mut p = d.read(ObjectId(1)).unwrap();
        p.write_u64_at(0, 77);
        assert!(d.write(&p));
        assert_eq!(d.read(ObjectId(1)).unwrap().read_u64_at(0), 77);
        assert_eq!(d.stats(), DiskStats { reads: 2, writes: 1 });
    }

    #[test]
    fn out_of_range_is_handled() {
        let mut d = DiskFile::new(2);
        assert!(d.read(ObjectId(5)).is_none());
        assert!(!d.write(&Page::zeroed(ObjectId(5))));
        assert!(!d.contains(ObjectId(2)));
        assert!(d.contains(ObjectId(1)));
        // Failed operations are not counted.
        assert_eq!(d.stats(), DiskStats::default());
    }

    #[test]
    fn allocate_extends_file() {
        let mut d = DiskFile::new(2);
        let id = d.allocate();
        assert_eq!(id, ObjectId(2));
        assert_eq!(d.num_pages(), 3);
        assert!(d.contains(id));
    }

    #[test]
    fn patterned_contents_survive_round_trip() {
        let mut d = DiskFile::with_patterned_pages(10);
        let expected = Page::patterned(ObjectId(9)).checksum();
        assert_eq!(d.read(ObjectId(9)).unwrap().checksum(), expected);
    }

    #[test]
    fn peek_does_not_count() {
        let d = DiskFile::with_patterned_pages(3);
        assert!(d.peek(ObjectId(0)).is_some());
        assert_eq!(d.stats().reads, 0);
    }
}
