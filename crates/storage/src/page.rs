//! Fixed-size database pages.

use std::sync::Arc;

use siteselect_types::ObjectId;

/// Size of one PF-layer page / database object, as in the paper (2 KB).
pub const PAGE_SIZE: usize = 2_048;

/// One fixed-size page holding a database object's bytes.
///
/// Pages carry real bytes (not just ids) so that the threaded
/// `siteselect-cluster` runtime moves actual data and corruption is
/// detectable via [`Page::checksum`].
///
/// # Example
///
/// ```
/// use siteselect_storage::Page;
/// use siteselect_types::ObjectId;
///
/// let mut p = Page::zeroed(ObjectId(7));
/// p.write_u64_at(16, 0xDEAD_BEEF);
/// assert_eq!(p.read_u64_at(16), 0xDEAD_BEEF);
/// assert_eq!(p.id(), ObjectId(7));
/// ```
#[derive(Debug, Clone)]
pub struct Page {
    id: ObjectId,
    /// Empty means "pristine all-zero page": no buffer is allocated until the
    /// first mutable access. This keeps `DiskFile::new` (tens of thousands of
    /// pages) and clones of never-written pages allocation-free on the
    /// simulation hot path.
    data: Vec<u8>,
}

/// Backing bytes for pristine pages that were never written.
static ZEROES: [u8; PAGE_SIZE] = [0u8; PAGE_SIZE];

impl PartialEq for Page {
    fn eq(&self, other: &Self) -> bool {
        // A pristine page and a materialized all-zero page are the same page.
        self.id == other.id && self.bytes() == other.bytes()
    }
}

impl Eq for Page {}

impl Page {
    /// Creates an all-zero page for `id` without allocating its buffer.
    #[must_use]
    pub fn zeroed(id: ObjectId) -> Self {
        Page {
            id,
            data: Vec::new(),
        }
    }

    /// Allocates the backing buffer if this page is still pristine.
    fn materialize(&mut self) {
        if self.data.is_empty() {
            self.data = vec![0u8; PAGE_SIZE];
        }
    }

    /// Creates a page whose contents deterministically derive from its id —
    /// used to initialize the database so that reads are verifiable.
    #[must_use]
    pub fn patterned(id: ObjectId) -> Self {
        let mut p = Page::zeroed(id);
        let seed = (id.index() as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        let mut x = seed;
        for chunk in p.bytes_mut().chunks_exact_mut(8) {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            chunk.copy_from_slice(&x.to_le_bytes());
        }
        p
    }

    /// The object this page stores.
    #[must_use]
    pub fn id(&self) -> ObjectId {
        self.id
    }

    /// Read-only view of the page bytes.
    #[must_use]
    pub fn bytes(&self) -> &[u8] {
        if self.data.is_empty() {
            &ZEROES
        } else {
            &self.data
        }
    }

    /// Mutable view of the page bytes. Materializes a pristine page.
    pub fn bytes_mut(&mut self) -> &mut [u8] {
        self.materialize();
        &mut self.data
    }

    /// An owned, cheaply clonable snapshot of the page contents.
    #[must_use]
    pub fn snapshot(&self) -> Arc<[u8]> {
        Arc::from(self.bytes())
    }

    /// Reads a little-endian `u64` at byte `offset`.
    ///
    /// # Panics
    ///
    /// Panics if `offset + 8` exceeds [`PAGE_SIZE`].
    #[must_use]
    pub fn read_u64_at(&self, offset: usize) -> u64 {
        let mut buf = [0u8; 8];
        buf.copy_from_slice(&self.bytes()[offset..offset + 8]);
        u64::from_le_bytes(buf)
    }

    /// Writes a little-endian `u64` at byte `offset`.
    ///
    /// # Panics
    ///
    /// Panics if `offset + 8` exceeds [`PAGE_SIZE`].
    pub fn write_u64_at(&mut self, offset: usize, value: u64) {
        self.materialize();
        self.data[offset..offset + 8].copy_from_slice(&value.to_le_bytes());
    }

    /// FNV-1a checksum of the page contents.
    #[must_use]
    pub fn checksum(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for &b in self.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeroed_page_is_zero() {
        let p = Page::zeroed(ObjectId(1));
        assert_eq!(p.bytes().len(), PAGE_SIZE);
        assert!(p.bytes().iter().all(|&b| b == 0));
        assert_eq!(p.read_u64_at(0), 0);
    }

    #[test]
    fn patterned_pages_differ_by_id_and_are_deterministic() {
        let a = Page::patterned(ObjectId(1));
        let b = Page::patterned(ObjectId(2));
        let a2 = Page::patterned(ObjectId(1));
        assert_ne!(a.checksum(), b.checksum());
        assert_eq!(a, a2);
        assert_eq!(a.checksum(), a2.checksum());
    }

    #[test]
    fn u64_round_trip_at_various_offsets() {
        let mut p = Page::zeroed(ObjectId(0));
        for &off in &[0usize, 8, 1000, PAGE_SIZE - 8] {
            p.write_u64_at(off, off as u64 + 1);
            assert_eq!(p.read_u64_at(off), off as u64 + 1);
        }
    }

    #[test]
    fn checksum_tracks_mutation() {
        let mut p = Page::patterned(ObjectId(9));
        let before = p.checksum();
        p.write_u64_at(128, 12345);
        assert_ne!(p.checksum(), before);
    }

    #[test]
    fn snapshot_is_detached() {
        let mut p = Page::zeroed(ObjectId(3));
        p.write_u64_at(0, 7);
        let snap = p.snapshot();
        p.write_u64_at(0, 8);
        assert_eq!(u64::from_le_bytes(snap[0..8].try_into().unwrap()), 7);
    }

    #[test]
    #[should_panic]
    fn out_of_bounds_write_panics() {
        Page::zeroed(ObjectId(0)).write_u64_at(PAGE_SIZE - 4, 1);
    }

    #[test]
    fn pristine_page_equals_materialized_zero_page() {
        let pristine = Page::zeroed(ObjectId(4));
        let mut materialized = Page::zeroed(ObjectId(4));
        materialized.write_u64_at(0, 1);
        materialized.write_u64_at(0, 0);
        assert_eq!(pristine, materialized);
        assert_eq!(pristine.checksum(), materialized.checksum());
        assert_eq!(pristine.snapshot().len(), PAGE_SIZE);
        // Writing after equality still diverges the pages.
        materialized.write_u64_at(8, 9);
        assert_ne!(pristine, materialized);
    }
}
