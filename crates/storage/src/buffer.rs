//! The PF-layer buffer manager: pinned frames with LRU or Clock replacement
//! and dirty write-back, as in the MiniRel system the paper builds on.

use std::error::Error;
use std::fmt;

use siteselect_types::{ObjectId, ObjectMap};

use crate::disk::DiskFile;
use crate::page::Page;

/// Replacement policy for unpinned frames.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Replacement {
    /// Evict the least-recently-used unpinned frame (default).
    #[default]
    Lru,
    /// Second-chance clock sweep.
    Clock,
}

/// Cumulative buffer-manager statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BufferStats {
    /// Fetches satisfied without disk I/O.
    pub hits: u64,
    /// Fetches that required reading the page from disk.
    pub misses: u64,
    /// Victim frames recycled.
    pub evictions: u64,
    /// Dirty victim pages written back to disk.
    pub writebacks: u64,
}

impl BufferStats {
    /// Hit fraction in `[0, 1]` (zero when no fetches occurred).
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Error returned by buffer operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BufferError {
    /// Every frame is pinned; no victim can be chosen.
    AllFramesPinned,
    /// The requested page does not exist in the backing file.
    NoSuchPage(ObjectId),
    /// The frame handle does not name an occupied frame.
    BadFrame,
}

impl fmt::Display for BufferError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BufferError::AllFramesPinned => write!(f, "all buffer frames are pinned"),
            BufferError::NoSuchPage(id) => write!(f, "page {id} does not exist"),
            BufferError::BadFrame => write!(f, "invalid frame handle"),
        }
    }
}

impl Error for BufferError {}

#[derive(Debug, Clone)]
struct Frame {
    page: Page,
    pin_count: u32,
    dirty: bool,
    last_used: u64,
    referenced: bool,
}

/// A fixed-capacity page buffer over a [`DiskFile`].
///
/// Frames are identified by index handles returned from
/// [`BufferManager::fetch`]. A frame with a positive pin count is never
/// evicted; dirty frames are written back to disk when evicted or flushed.
///
/// # Example
///
/// ```
/// use siteselect_storage::{BufferManager, DiskFile, Replacement};
/// use siteselect_types::{ObjectId, ObjectMap};
///
/// let mut disk = DiskFile::with_patterned_pages(100);
/// let mut buf = BufferManager::new(4, Replacement::Lru);
/// let f = buf.fetch(ObjectId(1), &mut disk).unwrap();
/// assert_eq!(buf.page(f).unwrap().id(), ObjectId(1));
/// buf.unpin(f).unwrap();
/// ```
#[derive(Debug)]
pub struct BufferManager {
    capacity: usize,
    policy: Replacement,
    frames: Vec<Option<Frame>>,
    map: ObjectMap<usize>,
    tick: u64,
    clock_hand: usize,
    stats: BufferStats,
}

impl BufferManager {
    /// Creates a buffer with `capacity` frames.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize, policy: Replacement) -> Self {
        assert!(capacity > 0, "buffer capacity must be positive");
        BufferManager {
            capacity,
            policy,
            frames: (0..capacity).map(|_| None).collect(),
            map: ObjectMap::new(),
            tick: 0,
            clock_hand: 0,
            stats: BufferStats::default(),
        }
    }

    /// Number of frames.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of occupied frames.
    #[must_use]
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True if no frame is occupied.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// True if the page is currently buffered.
    #[must_use]
    pub fn contains(&self, id: ObjectId) -> bool {
        self.map.contains(id)
    }

    /// Cumulative statistics.
    #[must_use]
    pub fn stats(&self) -> BufferStats {
        self.stats
    }

    /// Brings `id` into the buffer (reading from `disk` on a miss), pins the
    /// frame, and returns its handle.
    ///
    /// # Errors
    ///
    /// [`BufferError::NoSuchPage`] if the page is not in the file;
    /// [`BufferError::AllFramesPinned`] if no victim frame is available.
    pub fn fetch(&mut self, id: ObjectId, disk: &mut DiskFile) -> Result<usize, BufferError> {
        self.tick += 1;
        if let Some(&idx) = self.map.get(id) {
            let frame = self.frames[idx].as_mut().expect("mapped frame occupied");
            frame.pin_count += 1;
            frame.last_used = self.tick;
            frame.referenced = true;
            self.stats.hits += 1;
            return Ok(idx);
        }
        if !disk.contains(id) {
            return Err(BufferError::NoSuchPage(id));
        }
        let idx = self.find_victim(disk)?;
        let page = disk.read(id).expect("contains() checked above");
        self.frames[idx] = Some(Frame {
            page,
            pin_count: 1,
            dirty: false,
            last_used: self.tick,
            referenced: true,
        });
        self.map.insert(id, idx);
        self.stats.misses += 1;
        Ok(idx)
    }

    fn find_victim(&mut self, disk: &mut DiskFile) -> Result<usize, BufferError> {
        // Prefer an empty frame.
        if let Some(idx) = self.frames.iter().position(Option::is_none) {
            return Ok(idx);
        }
        let victim = match self.policy {
            Replacement::Lru => self
                .frames
                .iter()
                .enumerate()
                .filter_map(|(i, f)| {
                    let f = f.as_ref().expect("full buffer");
                    (f.pin_count == 0).then_some((f.last_used, i))
                })
                .min()
                .map(|(_, i)| i),
            Replacement::Clock => self.clock_sweep(),
        };
        let idx = victim.ok_or(BufferError::AllFramesPinned)?;
        let frame = self.frames[idx].take().expect("victim occupied");
        self.map.remove(frame.page.id());
        self.stats.evictions += 1;
        if frame.dirty {
            disk.write(&frame.page);
            self.stats.writebacks += 1;
        }
        Ok(idx)
    }

    fn clock_sweep(&mut self) -> Option<usize> {
        // Two full sweeps guarantee termination: the first clears reference
        // bits, the second must find an unpinned frame if one exists.
        for _ in 0..2 * self.capacity {
            let idx = self.clock_hand;
            self.clock_hand = (self.clock_hand + 1) % self.capacity;
            let frame = self.frames[idx].as_mut().expect("full buffer");
            if frame.pin_count > 0 {
                continue;
            }
            if frame.referenced {
                frame.referenced = false;
            } else {
                return Some(idx);
            }
        }
        None
    }

    /// Increments the pin count of an occupied frame.
    ///
    /// # Errors
    ///
    /// [`BufferError::BadFrame`] if the handle is stale.
    pub fn pin(&mut self, idx: usize) -> Result<(), BufferError> {
        let frame = self
            .frames
            .get_mut(idx)
            .and_then(Option::as_mut)
            .ok_or(BufferError::BadFrame)?;
        frame.pin_count += 1;
        Ok(())
    }

    /// Decrements the pin count of an occupied frame.
    ///
    /// # Errors
    ///
    /// [`BufferError::BadFrame`] if the handle is stale or the frame is not
    /// pinned.
    pub fn unpin(&mut self, idx: usize) -> Result<(), BufferError> {
        let frame = self
            .frames
            .get_mut(idx)
            .and_then(Option::as_mut)
            .ok_or(BufferError::BadFrame)?;
        if frame.pin_count == 0 {
            return Err(BufferError::BadFrame);
        }
        frame.pin_count -= 1;
        Ok(())
    }

    /// Marks a frame dirty so its page is written back on eviction/flush.
    ///
    /// # Errors
    ///
    /// [`BufferError::BadFrame`] if the handle is stale.
    pub fn mark_dirty(&mut self, idx: usize) -> Result<(), BufferError> {
        let frame = self
            .frames
            .get_mut(idx)
            .and_then(Option::as_mut)
            .ok_or(BufferError::BadFrame)?;
        frame.dirty = true;
        Ok(())
    }

    /// Read access to a buffered page.
    #[must_use]
    pub fn page(&self, idx: usize) -> Option<&Page> {
        self.frames.get(idx).and_then(Option::as_ref).map(|f| &f.page)
    }

    /// Write access to a buffered page (the caller must also
    /// [`mark_dirty`](Self::mark_dirty)).
    pub fn page_mut(&mut self, idx: usize) -> Option<&mut Page> {
        self.frames
            .get_mut(idx)
            .and_then(Option::as_mut)
            .map(|f| &mut f.page)
    }

    /// Read access to a buffered page by id, without pinning or touching
    /// recency state (used for non-counted inspection).
    #[must_use]
    pub fn peek(&self, id: ObjectId) -> Option<&Page> {
        let &idx = self.map.get(id)?;
        self.frames[idx].as_ref().map(|f| &f.page)
    }

    /// Writes every dirty page back to `disk` and clears the dirty bits.
    pub fn flush_all(&mut self, disk: &mut DiskFile) {
        for frame in self.frames.iter_mut().flatten() {
            if frame.dirty {
                disk.write(&frame.page);
                frame.dirty = false;
                self.stats.writebacks += 1;
            }
        }
    }

    /// Pin count of a frame (testing / assertions).
    #[must_use]
    pub fn pin_count(&self, idx: usize) -> Option<u32> {
        self.frames
            .get(idx)
            .and_then(Option::as_ref)
            .map(|f| f.pin_count)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup(cap: usize, policy: Replacement) -> (DiskFile, BufferManager) {
        (
            DiskFile::with_patterned_pages(64),
            BufferManager::new(cap, policy),
        )
    }

    #[test]
    fn hit_after_miss() {
        let (mut disk, mut buf) = setup(4, Replacement::Lru);
        let f = buf.fetch(ObjectId(1), &mut disk).unwrap();
        buf.unpin(f).unwrap();
        let f2 = buf.fetch(ObjectId(1), &mut disk).unwrap();
        buf.unpin(f2).unwrap();
        assert_eq!(buf.stats().misses, 1);
        assert_eq!(buf.stats().hits, 1);
        assert!((buf.stats().hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let (mut disk, mut buf) = setup(2, Replacement::Lru);
        let a = buf.fetch(ObjectId(1), &mut disk).unwrap();
        buf.unpin(a).unwrap();
        let b = buf.fetch(ObjectId(2), &mut disk).unwrap();
        buf.unpin(b).unwrap();
        // Touch 1 so 2 becomes LRU.
        let a = buf.fetch(ObjectId(1), &mut disk).unwrap();
        buf.unpin(a).unwrap();
        let c = buf.fetch(ObjectId(3), &mut disk).unwrap();
        buf.unpin(c).unwrap();
        assert!(buf.contains(ObjectId(1)));
        assert!(!buf.contains(ObjectId(2)));
        assert!(buf.contains(ObjectId(3)));
    }

    #[test]
    fn pinned_frames_are_never_victims() {
        let (mut disk, mut buf) = setup(2, Replacement::Lru);
        let _a = buf.fetch(ObjectId(1), &mut disk).unwrap(); // stays pinned
        let b = buf.fetch(ObjectId(2), &mut disk).unwrap();
        buf.unpin(b).unwrap();
        let c = buf.fetch(ObjectId(3), &mut disk).unwrap();
        assert!(buf.contains(ObjectId(1)));
        assert!(!buf.contains(ObjectId(2)));
        buf.unpin(c).unwrap();
    }

    #[test]
    fn all_pinned_errors() {
        let (mut disk, mut buf) = setup(2, Replacement::Lru);
        buf.fetch(ObjectId(1), &mut disk).unwrap();
        buf.fetch(ObjectId(2), &mut disk).unwrap();
        assert_eq!(
            buf.fetch(ObjectId(3), &mut disk),
            Err(BufferError::AllFramesPinned)
        );
    }

    #[test]
    fn dirty_pages_written_back_on_eviction() {
        let (mut disk, mut buf) = setup(1, Replacement::Lru);
        let f = buf.fetch(ObjectId(5), &mut disk).unwrap();
        buf.page_mut(f).unwrap().write_u64_at(0, 999);
        buf.mark_dirty(f).unwrap();
        buf.unpin(f).unwrap();
        let g = buf.fetch(ObjectId(6), &mut disk).unwrap();
        buf.unpin(g).unwrap();
        assert_eq!(disk.peek(ObjectId(5)).unwrap().read_u64_at(0), 999);
        assert_eq!(buf.stats().writebacks, 1);
    }

    #[test]
    fn flush_all_persists_without_eviction() {
        let (mut disk, mut buf) = setup(4, Replacement::Lru);
        let f = buf.fetch(ObjectId(7), &mut disk).unwrap();
        buf.page_mut(f).unwrap().write_u64_at(8, 123);
        buf.mark_dirty(f).unwrap();
        buf.flush_all(&mut disk);
        assert_eq!(disk.peek(ObjectId(7)).unwrap().read_u64_at(8), 123);
        // Second flush writes nothing new.
        let w = buf.stats().writebacks;
        buf.flush_all(&mut disk);
        assert_eq!(buf.stats().writebacks, w);
        buf.unpin(f).unwrap();
    }

    #[test]
    fn clock_policy_eventually_evicts() {
        let (mut disk, mut buf) = setup(3, Replacement::Clock);
        for i in 0..10u32 {
            let f = buf.fetch(ObjectId(i), &mut disk).unwrap();
            buf.unpin(f).unwrap();
        }
        assert_eq!(buf.len(), 3);
        assert_eq!(buf.stats().evictions, 7);
    }

    #[test]
    fn missing_page_reports_error() {
        let (mut disk, mut buf) = setup(2, Replacement::Lru);
        assert_eq!(
            buf.fetch(ObjectId(999), &mut disk),
            Err(BufferError::NoSuchPage(ObjectId(999)))
        );
    }

    #[test]
    fn bad_frame_handles() {
        let (mut disk, mut buf) = setup(2, Replacement::Lru);
        assert_eq!(buf.unpin(0), Err(BufferError::BadFrame));
        assert_eq!(buf.mark_dirty(7), Err(BufferError::BadFrame));
        assert_eq!(buf.pin(1), Err(BufferError::BadFrame));
        let f = buf.fetch(ObjectId(0), &mut disk).unwrap();
        buf.unpin(f).unwrap();
        assert_eq!(buf.unpin(f), Err(BufferError::BadFrame)); // double unpin
    }

    #[test]
    fn pin_stacks() {
        let (mut disk, mut buf) = setup(2, Replacement::Lru);
        let f = buf.fetch(ObjectId(0), &mut disk).unwrap();
        buf.pin(f).unwrap();
        assert_eq!(buf.pin_count(f), Some(2));
        buf.unpin(f).unwrap();
        assert_eq!(buf.pin_count(f), Some(1));
    }

    #[test]
    fn display_of_errors() {
        assert!(BufferError::AllFramesPinned.to_string().contains("pinned"));
        assert!(BufferError::NoSuchPage(ObjectId(3)).to_string().contains("obj#3"));
    }
}
