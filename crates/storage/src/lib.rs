//! Paged-file storage layer — the MiniRel **PF layer** equivalent used by the
//! paper's prototypes (§5.1).
//!
//! The paper stores a 10,000-object database in fixed-size 2 KB pages managed
//! by a file-page buffer manager. This crate provides:
//!
//! * [`Page`] — one fixed-size page with typed accessors and a checksum;
//! * [`DiskFile`] — the backing UNIX-file analogue with I/O accounting;
//! * [`BufferManager`] — pinned frames over a [`DiskFile`] with LRU or Clock
//!   replacement and dirty write-back, mirroring the PF layer's semantics;
//! * [`PagedFile`] — the PF-layer facade (`get`, `alloc`, `mark_dirty`,
//!   `unpin`, `flush`);
//! * [`ClientCache`] — the client's two-tier (memory + disk) object cache of
//!   Table 1 (500 + 500 objects) used by the client–server models;
//! * [`DiskModel`] — a FIFO single-server service-time model of a disk, used
//!   by the discrete-event simulator;
//! * [`Wal`] / [`DurableStore`] — an ARIES-lite write-ahead log and the
//!   durability facade the engines write through, with redo-then-undo
//!   crash-restart replay in [`recovery`].
//!
//! # Example
//!
//! ```
//! use siteselect_storage::{PagedFile, PAGE_SIZE};
//! use siteselect_types::ObjectId;
//!
//! let mut pf = PagedFile::create(16, 4); // 16 pages, 4 buffer frames
//! pf.with_page_mut(ObjectId(3), |page| page.write_u64_at(0, 42)).unwrap();
//! let v = pf.with_page(ObjectId(3), |page| page.read_u64_at(0)).unwrap();
//! assert_eq!(v, 42);
//! assert_eq!(pf.page_size(), PAGE_SIZE);
//! ```

pub mod buffer;
pub mod cache;
pub mod disk;
pub mod model;
pub mod page;
pub mod pagedfile;
pub mod recovery;
pub mod wal;

pub use buffer::{BufferManager, BufferStats, Replacement};
pub use cache::{CacheTier, ClientCache, ClientCacheStats};
pub use disk::{DiskFile, DiskStats};
pub use model::DiskModel;
pub use page::{Page, PAGE_SIZE};
pub use pagedfile::{PagedFile, PfError};
pub use recovery::{DurableStore, RecoveryOutcome};
pub use wal::{LogRecord, Lsn, Wal};
