//! Regenerates every table and figure of Kanitkar & Delis (ICDCS 1999).
//!
//! ```text
//! cargo run -p siteselect-bench --release --bin repro -- all [--quick]
//! cargo run -p siteselect-bench --release --bin repro -- figure3
//! ```
//!
//! Targets: `table1`, `figure1`, `figure2`, `figure3`, `figure4`,
//! `figure5`, `table2`, `table3`, `table4`, `ablations`, `faults`,
//! `trace`, `blame`, `check`, `bench`, `all`.
//! `--quick` shortens the simulated runs (coarser numbers, same shapes).
//! `--clients N` overrides the Table 4 (or `faults` / `trace` / `check`)
//! cluster size.
//! `--jobs N` sets the sweep worker-thread count (absent = one per core;
//! must be at least 1 when given); results are merged in cell order, so
//! output is byte-identical at every job count.
//! `bench` runs the regression-tracked benchmark suite and writes its
//! JSON report to `--out FILE` (default `BENCH_sim.json`); with
//! `--baseline FILE` it additionally compares against a previous report
//! and fails on a missing benchmark or a >2x regression. `bench
//! --compare OLD.json NEW.json` instead diffs two saved reports without
//! running anything: per benchmark it prints old/new times, the signed
//! delta percent and throughput movement (`--json` for the
//! machine-readable form), and exits non-zero when a benchmark vanished
//! or slowed past the regression limit — the shape CI uses as its
//! regression gate.
//! `faults` is not part of `all`: it sweeps the fault-injection subsystem
//! (crash/loss/slow-disk chaos) rather than a paper figure, and follows up
//! with the crash-restart table contrasting write-ahead-log recovery
//! against permanently dark sites.
//! `trace` runs one experiment with the event-tracing pipeline attached,
//! judges the captured stream with the `siteselect-check` oracles, and
//! writes `trace.jsonl` (one event per line) plus `trace.json` (Chrome
//! `trace_event` format, loadable in chrome://tracing or Perfetto) to
//! `--out DIR` (default `target/trace`). `--system ce|cs|ls`,
//! `--update F`, `--chaos F` (with `--restart` for the server
//! crash-restart profile), `--duration SECS`, `--warmup SECS` and
//! `--seed S` select the run — the knobs a simcheck replay command passes.
//! The files are byte-identical across runs at the same seed and options.
//! `blame` is the deadline blame analyzer: one traced run per system cell
//! (all three systems, or just `--system`), each reduced to a causal blame
//! report — every transaction's end-to-end latency attributed microsecond-
//! by-microsecond to the span on its critical path (admission, decision,
//! network, lock wait, collection window, disk, commit, retry backoff,
//! crash replay, or residual execution) — plus the `--top K` worst missed
//! deadlines with their annotated critical paths. `--out FILE` (default
//! `target/blame.json`) receives the machine-readable report. Cells fan
//! out over `--jobs` threads and merge in cell order, so stdout and the
//! JSON file are byte-identical at every job count and across runs at the
//! same seed.
//! `check` is the simcheck explorer: `--seeds N` randomized cases fanned
//! across CE/CS/LS × update-rate × fault-profile cells (including server
//! crash-restart cells), every run judged by the serializability,
//! coherence, deadline-accounting and recovery oracles; a failing case is
//! shrunk to a minimal reproducer. `--inject-violation
//! serializability|coherence|deadline|recovery` instead feeds a known-bad
//! synthetic history to the matching oracle and exits non-zero when (and
//! only when) it fires — the self-test that proves the oracles are alive.

use std::process::ExitCode;

use siteselect_bench::repro_options;
use siteselect_check::explore::{parse_system, ExploreOptions};
use siteselect_check::synthetic::InjectKind;
use siteselect_core::experiments::{
    cache_table, deadline_figure, effective_jobs, fault_table, message_table, response_table,
    restart_table, SweepOptions, FAULT_INTENSITIES, FIGURE_CLIENTS, RESTART_INTENSITIES,
    TABLE_CLIENTS,
};
use siteselect_core::{run_experiment, run_experiment_traced};
use siteselect_locks::protocol_costs;
use siteselect_obs::{BlameReport, MetricsRegistry, MetricsSnapshot};
use siteselect_types::{ConfigError, ExperimentConfig, FaultConfig, SimDuration, SystemKind};

/// Returns the value following `flag`, if present.
fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

/// Strictly parses the value of `flag`: present-and-garbled (or missing
/// its value) is an error, never a silent fallback.
fn parsed_flag<T: std::str::FromStr>(args: &[String], flag: &str) -> Result<Option<T>, String>
where
    T::Err: std::fmt::Display,
{
    let Some(pos) = args.iter().position(|a| a == flag) else {
        return Ok(None);
    };
    let Some(raw) = args.get(pos + 1) else {
        return Err(format!("{flag} needs a value"));
    };
    raw.parse::<T>()
        .map(Some)
        .map_err(|e| format!("invalid value for {flag}: {raw:?} ({e})"))
}

/// Flags the oracle-judged runs (`trace`, `check`) accept on top of the
/// shared `--clients` / `--seed` / `--jobs` ones.
struct CheckFlags {
    system: Option<SystemKind>,
    update: Option<f64>,
    chaos: Option<f64>,
    restart: bool,
    duration: Option<u64>,
    warmup: Option<u64>,
    seeds: Option<u64>,
    inject: Option<InjectKind>,
}

fn parse_check_flags(args: &[String]) -> Result<CheckFlags, String> {
    let system = match flag_value(args, "--system") {
        None => None,
        Some(raw) => Some(
            parse_system(raw).ok_or_else(|| format!("invalid value for --system: {raw:?} (expected ce, cs or ls)"))?,
        ),
    };
    let update = parsed_flag::<f64>(args, "--update")?;
    if let Some(u) = update {
        if !(0.0..=1.0).contains(&u) {
            return Err(format!("--update must be a fraction in [0, 1], got {u}"));
        }
    }
    let chaos = parsed_flag::<f64>(args, "--chaos")?;
    if let Some(c) = chaos {
        if !(0.0..=16.0).contains(&c) {
            return Err(format!("--chaos must be a non-negative intensity, got {c}"));
        }
    }
    let restart = args.iter().any(|a| a == "--restart");
    if restart && chaos.unwrap_or(0.0) <= 0.0 {
        return Err(
            "--restart needs --chaos above 0 (the server crash-restart profile scales with \
             chaos intensity)"
                .into(),
        );
    }
    let duration = parsed_flag::<u64>(args, "--duration")?;
    if duration == Some(0) {
        return Err("--duration must be at least 1 second".into());
    }
    let warmup = parsed_flag::<u64>(args, "--warmup")?;
    if let (Some(d), Some(w)) = (duration, warmup) {
        if w >= d {
            return Err(format!("--warmup ({w}s) must be shorter than --duration ({d}s)"));
        }
    }
    let seeds = parsed_flag::<u64>(args, "--seeds")?;
    if seeds == Some(0) {
        return Err("--seeds must be at least 1".into());
    }
    let inject = match flag_value(args, "--inject-violation") {
        None => None,
        Some(raw) => Some(InjectKind::parse(raw).ok_or_else(|| {
            format!("invalid value for --inject-violation: {raw:?} (expected serializability, coherence, deadline or recovery)")
        })?),
    };
    Ok(CheckFlags {
        system,
        update,
        chaos,
        restart,
        duration,
        warmup,
        seeds,
        inject,
    })
}

fn usage_error(message: &str) -> ExitCode {
    eprintln!("repro: {message}");
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let clients_override = match parsed_flag::<u16>(&args, "--clients") {
        Ok(v) => v,
        Err(e) => return usage_error(&e),
    };
    if clients_override == Some(0) {
        return usage_error("--clients must be at least 1");
    }
    let seed_override = match parsed_flag::<u64>(&args, "--seed") {
        Ok(v) => v,
        Err(e) => return usage_error(&e),
    };
    let jobs = match parsed_flag::<usize>(&args, "--jobs") {
        Ok(v) => v,
        Err(e) => return usage_error(&e),
    };
    if jobs == Some(0) {
        return usage_error("--jobs must be at least 1; omit the flag to use one worker per core");
    }
    let check_flags = match parse_check_flags(&args) {
        Ok(v) => v,
        Err(e) => return usage_error(&e),
    };
    let top = match parsed_flag::<usize>(&args, "--top") {
        Ok(v) => v,
        Err(e) => return usage_error(&e),
    };
    if top == Some(0) {
        return usage_error("--top must be at least 1");
    }
    let out_dir = flag_value(&args, "--out").unwrap_or("target/trace");
    let baseline = flag_value(&args, "--baseline");
    // A target is any token that is neither a flag nor a flag's value.
    let value_slots: Vec<usize> = args
        .iter()
        .enumerate()
        .filter(|(_, a)| {
            matches!(
                a.as_str(),
                "--clients"
                    | "--seed"
                    | "--out"
                    | "--jobs"
                    | "--baseline"
                    | "--system"
                    | "--update"
                    | "--chaos"
                    | "--duration"
                    | "--warmup"
                    | "--seeds"
                    | "--top"
                    | "--inject-violation"
            )
        })
        .map(|(i, _)| i + 1)
        .collect();
    // `--compare` is the one flag that takes two values.
    let compare_pos = args.iter().position(|a| a == "--compare");
    let value_slots: Vec<usize> = match compare_pos {
        Some(pos) => value_slots
            .into_iter()
            .chain([pos + 1, pos + 2])
            .collect(),
        None => value_slots,
    };
    let targets: Vec<&str> = args
        .iter()
        .enumerate()
        .filter(|(i, a)| !a.starts_with("--") && !value_slots.contains(i))
        .map(|(_, a)| a.as_str())
        .collect();
    let target = targets.first().copied().unwrap_or("all");
    let mut opts = repro_options(quick);
    opts.jobs = jobs.unwrap_or(0);

    let result = match target {
        "table1" => table1(),
        "figure1" => figure1(),
        "figure2" => figure2(),
        "figure3" => figure(0.01, opts),
        "figure4" => figure(0.05, opts),
        "figure5" => figure(0.20, opts),
        "table2" => table2(opts),
        "table3" => table3(opts),
        "table4" => table4(opts, clients_override.unwrap_or(100)),
        "ablations" => ablations(opts),
        "faults" => faults(opts, clients_override.unwrap_or(60)),
        "trace" => trace(
            opts,
            clients_override.unwrap_or(20),
            seed_override,
            out_dir,
            &check_flags,
        ),
        "blame" => blame(
            opts,
            clients_override.unwrap_or(20),
            seed_override,
            flag_value(&args, "--out").unwrap_or("target/blame.json"),
            jobs.unwrap_or(0),
            top.unwrap_or(5),
            &check_flags,
        ),
        "check" => check(opts, clients_override, seed_override, &check_flags),
        "bench" => match compare_pos {
            Some(pos) => {
                let (Some(old), Some(new)) = (args.get(pos + 1), args.get(pos + 2)) else {
                    return usage_error(
                        "--compare needs two report paths: --compare OLD.json NEW.json",
                    );
                };
                if old.starts_with("--") || new.starts_with("--") {
                    return usage_error(
                        "--compare needs two report paths: --compare OLD.json NEW.json",
                    );
                }
                bench_compare(old, new, args.iter().any(|a| a == "--json"))
            }
            None => {
                let out = flag_value(&args, "--out").unwrap_or("BENCH_sim.json");
                bench_suite(out, baseline)
            }
        },
        "all" => all(opts, clients_override.unwrap_or(100)),
        other => {
            eprintln!("unknown target: {other}");
            eprintln!(
                "targets: table1 figure1 figure2 figure3 figure4 figure5 table2 table3 table4 ablations faults trace blame check bench all"
            );
            return ExitCode::FAILURE;
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("repro failed: {e}");
            ExitCode::FAILURE
        }
    }
}

type AnyError = Box<dyn std::error::Error>;

fn banner(title: &str) {
    println!("\n=== {title} ===\n");
}

// Infallible today, but every arm of the command dispatch returns the
// same `Result<(), AnyError>` shape.
#[allow(clippy::unnecessary_wraps)]
fn table1() -> Result<(), AnyError> {
    banner("Table 1: experimental parameters (active preset)");
    let cfg = ExperimentConfig::paper(SystemKind::ClientServer, 100, 0.05);
    println!("Database size                     {} objects", cfg.database.num_objects);
    println!("Object / page size                {} bytes", cfg.database.object_size_bytes);
    let ce = ExperimentConfig::paper(SystemKind::Centralized, 100, 0.05);
    println!("Centralized server memory         {} objects", ce.server.buffer_objects);
    println!("CS server memory                  {} objects", cfg.server.buffer_objects);
    println!("Client disk cache                 {} objects", cfg.client.disk_cache_objects);
    println!("Client memory cache               {} objects", cfg.client.memory_cache_objects);
    println!(
        "Mean txn inter-arrival (Poisson)  {}",
        cfg.workload.mean_interarrival
    );
    println!("Mean txn length (exponential)     {}", cfg.workload.mean_length);
    println!("Mean txn deadline (exponential)   {:?}", cfg.workload.deadline);
    println!("Updates                           1%, 5%, 20% (per access)");
    println!(
        "Mean objects per transaction      {}",
        cfg.workload.mean_objects_per_txn
    );
    println!(
        "CPU calibration                   txn_cpu_fraction = {} (see DESIGN.md)",
        cfg.cpu.txn_cpu_fraction
    );
    Ok(())
}

// Infallible today, but every arm of the command dispatch returns the
// same `Result<(), AnyError>` shape.
#[allow(clippy::unnecessary_wraps)]
fn figure1() -> Result<(), AnyError> {
    banner("Figure 1: the 2PL (callback caching) protocol");
    let trace = protocol_costs::figure1_trace();
    print!("{}", protocol_costs::render_trace(&trace));
    println!("total: {} messages", trace.len());
    Ok(())
}

// Infallible today, but every arm of the command dispatch returns the
// same `Result<(), AnyError>` shape.
#[allow(clippy::unnecessary_wraps)]
fn figure2() -> Result<(), AnyError> {
    banner("Figure 2: the lock grouping protocol");
    let trace = protocol_costs::figure2_trace();
    print!("{}", protocol_costs::render_trace(&trace));
    println!("total: {} messages", trace.len());
    Ok(())
}

fn figure(update_fraction: f64, opts: SweepOptions) -> Result<(), AnyError> {
    let fig_no = match update_fraction {
        x if x < 0.02 => 3,
        x if x < 0.10 => 4,
        _ => 5,
    };
    banner(&format!(
        "Figure {fig_no}: transactions completed within deadline ({}% updates)",
        update_fraction * 100.0
    ));
    let f = deadline_figure(update_fraction, &FIGURE_CLIENTS, opts)?;
    print!("{}", f.render());
    Ok(())
}

fn table2(opts: SweepOptions) -> Result<(), AnyError> {
    banner("Table 2: average client cache hit rates");
    let t = cache_table(&TABLE_CLIENTS, opts)?;
    print!("{}", t.render());
    Ok(())
}

fn table3(opts: SweepOptions) -> Result<(), AnyError> {
    banner("Table 3: average object response times (1% updates)");
    let t = response_table(&TABLE_CLIENTS, opts)?;
    print!("{}", t.render());
    Ok(())
}

fn table4(opts: SweepOptions, clients: u16) -> Result<(), AnyError> {
    banner(&format!(
        "Table 4: messages passed ({clients} clients, 1% updates)"
    ));
    let t = message_table(clients, opts)?;
    print!("{}", t.render());
    Ok(())
}

/// Ablations of the design choices DESIGN.md calls out: each LS feature
/// switched off individually at the most contended point (100 clients, 20%
/// updates).
fn ablations(opts: SweepOptions) -> Result<(), AnyError> {
    banner("Ablations: LS-CS-RTDBS feature knockouts (100 clients, 20% updates)");
    let base = |label: &str, f: &dyn Fn(&mut ExperimentConfig)| -> Result<(), AnyError> {
        let mut cfg = ExperimentConfig::paper(SystemKind::LoadSharing, 100, 0.20);
        cfg.runtime.duration = opts.duration;
        cfg.runtime.warmup = opts.warmup;
        cfg.runtime.seed = opts.seed;
        f(&mut cfg);
        let m = run_experiment(&cfg)?;
        println!(
            "{label:<34} success {:>6.2}%  shipped {:>6}  decomposed {:>5}  forwards {:>6}",
            m.success_percent(),
            m.load_sharing.shipped,
            m.load_sharing.decomposed,
            m.load_sharing.forward_satisfied
        );
        Ok(())
    };
    base("full LS", &|_| {})?;
    base("no H1 (admission)", &|c| c.load_sharing.h1_enabled = false)?;
    base("no H2 (site selection)", &|c| c.load_sharing.h2_enabled = false)?;
    base("no decomposition", &|c| {
        c.load_sharing.decomposition_enabled = false;
    })?;
    base("no forward lists", &|c| {
        c.load_sharing.forward_lists_enabled = false;
    })?;
    base("no request scheduling", &|c| {
        c.load_sharing.request_scheduling_enabled = false;
    })?;
    base("no directory server", &|c| {
        c.load_sharing.directory_enabled = false;
    })?;
    base("switched LAN", &|c| {
        c.network.kind = siteselect_types::LanKind::Switched;
    })?;
    base("collection window 10 ms", &|c| {
        c.load_sharing.collection_window = siteselect_types::SimDuration::from_millis(10);
    })?;
    base("collection window 500 ms", &|c| {
        c.load_sharing.collection_window = siteselect_types::SimDuration::from_millis(500);
    })?;
    Ok(())
}

/// Graceful-degradation sweep of the fault-injection subsystem: CS vs LS
/// deadline success as `FaultConfig::chaos` intensity rises, followed by
/// the crash-restart cells contrasting write-ahead-log recovery against
/// permanently dark sites. Kept out of `all` so the paper reproduction
/// stays byte-stable.
fn faults(opts: SweepOptions, clients: u16) -> Result<(), AnyError> {
    banner(&format!(
        "Faults: deadline success under chaos ({clients} clients, 20% updates)"
    ));
    let t = fault_table(clients, &FAULT_INTENSITIES, opts)?;
    print!("{}", t.render());
    banner(&format!(
        "Faults: crash-restart recovery vs cliff ({clients} clients, 20% updates)"
    ));
    let r = restart_table(clients, &RESTART_INTENSITIES, opts)?;
    print!("{}", r.render());
    Ok(())
}

/// One traced run: emits the full event stream as JSONL and Chrome
/// `trace_event` JSON, prints the streaming observability report, and
/// judges the captured stream with the `siteselect-check` oracles — so the
/// replay command simcheck prints reproduces the violation it found.
/// Deterministic: same seed and options give byte-identical files.
fn trace(
    opts: SweepOptions,
    clients: u16,
    seed: Option<u64>,
    out_dir: &str,
    flags: &CheckFlags,
) -> Result<(), AnyError> {
    let seed = seed.unwrap_or(opts.seed);
    let system = flags.system.unwrap_or(SystemKind::LoadSharing);
    let update = flags.update.unwrap_or(0.20);
    let chaos = flags.chaos.unwrap_or(0.0);
    let restart = if flags.restart { " restart" } else { "" };
    banner(&format!(
        "Trace: {system} lifecycle trace ({clients} clients, {}% updates, chaos {chaos}{restart}, seed {seed})",
        update * 100.0
    ));
    let mut cfg = ExperimentConfig::paper(system, clients, update);
    cfg.runtime.duration = flags
        .duration
        .map_or(opts.duration, SimDuration::from_secs);
    cfg.runtime.warmup = flags.warmup.map_or(opts.warmup, SimDuration::from_secs);
    cfg.runtime.seed = seed;
    if chaos > 0.0 {
        cfg.faults = if flags.restart {
            FaultConfig::chaos_restart(chaos)
        } else {
            FaultConfig::chaos(chaos)
        };
    }
    let (metrics, trace) = run_experiment_traced(&cfg, siteselect_check::TRACE_CAPACITY)?;
    std::fs::create_dir_all(out_dir)?;
    let jsonl_path = format!("{out_dir}/trace.jsonl");
    let chrome_path = format!("{out_dir}/trace.json");
    std::fs::write(&jsonl_path, siteselect_obs::export::jsonl(&trace.records))?;
    std::fs::write(&chrome_path, siteselect_obs::export::chrome_trace(&trace.records))?;
    print!("{}", trace.report.render());
    if trace.report.dropped > 0 {
        eprintln!(
            "warning: trace ring overflowed, {} oldest events dropped — the files are \
             incomplete (shorten the run or raise the trace capacity)",
            trace.report.dropped
        );
    }
    println!(
        "\nrun: {}/{} in time ({:.2}%)",
        metrics.in_time,
        metrics.measured,
        metrics.success_percent()
    );
    println!("wrote {jsonl_path} ({} records) and {chrome_path}", trace.records.len());
    let warmup_end = siteselect_types::SimTime::ZERO + cfg.runtime.warmup;
    match siteselect_check::check_trace(&trace, &metrics, warmup_end) {
        Ok(()) => {
            println!(
                "oracles: serializability, coherence, deadline accounting and recovery all passed"
            );
            Ok(())
        }
        Err(v) => Err(v.to_string().into()),
    }
}

/// One blame cell: a traced run reduced to its blame report plus the
/// numbers the summary line needs. Self-contained, so cells can fan out
/// over worker threads and still merge deterministically by index.
struct BlameCell {
    report: BlameReport,
    metrics: MetricsSnapshot,
    in_time: u64,
    measured: u64,
}

fn blame_cell(cfg: &ExperimentConfig, top: usize) -> Result<BlameCell, ConfigError> {
    let registry = MetricsRegistry::enabled();
    let (metrics, trace) = run_experiment_traced(cfg, siteselect_check::TRACE_CAPACITY)?;
    let report = BlameReport::extract(&trace, top, &registry);
    Ok(BlameCell {
        report,
        metrics: registry.snapshot().unwrap_or_default(),
        in_time: metrics.in_time,
        measured: metrics.measured,
    })
}

/// Short cell label for the machine-readable report.
fn system_slug(system: SystemKind) -> &'static str {
    match system {
        SystemKind::Centralized => "ce",
        SystemKind::ClientServer => "cs",
        SystemKind::LoadSharing => "ls",
    }
}

/// The deadline blame analyzer (`repro blame`): one traced run per system
/// cell, each reduced to a causal blame report — every transaction's
/// latency attributed microsecond-by-microsecond to the cause on its
/// critical path — plus the top-K worst missed deadlines with annotated
/// paths. Cells fan out over `jobs` scoped threads and merge in cell
/// order, so stdout and the `--out` JSON are byte-identical at every job
/// count and across runs at the same seed.
fn blame(
    opts: SweepOptions,
    clients: u16,
    seed: Option<u64>,
    out: &str,
    jobs: usize,
    top: usize,
    flags: &CheckFlags,
) -> Result<(), AnyError> {
    use std::fmt::Write as _;
    let seed = seed.unwrap_or(opts.seed);
    let update = flags.update.unwrap_or(0.20);
    let chaos = flags.chaos.unwrap_or(0.0);
    let restart = if flags.restart { " restart" } else { "" };
    let systems: Vec<SystemKind> = flags
        .system
        .map_or_else(|| SystemKind::ALL.to_vec(), |s| vec![s]);
    banner(&format!(
        "Blame: where the deadline went ({clients} clients, {}% updates, chaos {chaos}{restart}, seed {seed})",
        update * 100.0
    ));
    let cfgs: Vec<ExperimentConfig> = systems
        .iter()
        .map(|&system| {
            let mut cfg = ExperimentConfig::paper(system, clients, update);
            cfg.runtime.duration = flags
                .duration
                .map_or(opts.duration, SimDuration::from_secs);
            cfg.runtime.warmup = flags.warmup.map_or(opts.warmup, SimDuration::from_secs);
            cfg.runtime.seed = seed;
            if chaos > 0.0 {
                cfg.faults = if flags.restart {
                    FaultConfig::chaos_restart(chaos)
                } else {
                    FaultConfig::chaos(chaos)
                };
            }
            cfg
        })
        .collect();
    let workers = effective_jobs(jobs, cfgs.len());
    let mut slots: Vec<Option<Result<BlameCell, ConfigError>>> =
        (0..cfgs.len()).map(|_| None).collect();
    if workers <= 1 {
        for (i, cfg) in cfgs.iter().enumerate() {
            slots[i] = Some(blame_cell(cfg, top));
        }
    } else {
        let next = std::sync::atomic::AtomicUsize::new(0);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|| {
                        let mut done = Vec::new();
                        loop {
                            let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                            if i >= cfgs.len() {
                                break;
                            }
                            done.push((i, blame_cell(&cfgs[i], top)));
                        }
                        done
                    })
                })
                .collect();
            for handle in handles {
                for (i, result) in handle.join().expect("blame worker panicked") {
                    slots[i] = Some(result);
                }
            }
        });
    }
    let mut json = String::with_capacity(1 << 14);
    let _ = write!(
        json,
        r#"{{"seed":{seed},"clients":{clients},"update":{update},"chaos":{chaos},"restart":{},"cells":["#,
        flags.restart
    );
    let mut merged = MetricsSnapshot::default();
    for (i, (system, slot)) in systems.iter().zip(slots).enumerate() {
        let cell = slot.expect("every cell was claimed by a worker")?;
        println!("--- {system} ---\n");
        print!("{}", cell.report.render());
        println!(
            "\nrun: {}/{} in time ({:.2}%)",
            cell.in_time,
            cell.measured,
            if cell.measured == 0 {
                0.0
            } else {
                cell.in_time as f64 * 100.0 / cell.measured as f64
            }
        );
        if cell.report.dropped_events > 0 {
            eprintln!(
                "warning: {system}: trace ring overflowed, {} oldest events dropped — blame may \
                 be incomplete (shorten the run or raise the trace capacity)",
                cell.report.dropped_events
            );
        }
        println!();
        if i > 0 {
            json.push(',');
        }
        let _ = write!(json, r#"{{"system":"{}","report":"#, system_slug(*system));
        json.push_str(cell.report.to_json().trim_end());
        json.push('}');
        merged.merge(&cell.metrics);
    }
    json.push_str("]}\n");
    if let Some(dir) = std::path::Path::new(out).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)?;
        }
    }
    std::fs::write(out, &json)?;
    println!("pipeline counters:");
    print!("{}", merged.render());
    println!("\nwrote {out}");
    Ok(())
}

/// The simcheck explorer (`repro check`): randomized schedule exploration
/// across CE/CS/LS × update-rate × fault-profile cells (including server
/// crash-restart cells), every run judged by all four oracles, failures
/// shrunk to a minimal reproducer. With `--inject-violation`, instead
/// feeds a known-bad synthetic history to the matching oracle and fails
/// when it fires (proving it can).
fn check(
    opts: SweepOptions,
    clients: Option<u16>,
    base_seed: Option<u64>,
    flags: &CheckFlags,
) -> Result<(), AnyError> {
    if let Some(kind) = flags.inject {
        banner(&format!("Simcheck self-test: injected {} violation", kind.label()));
        let v = siteselect_check::synthetic::prove_oracle_fires(kind)?.with_replay(format!(
            "cargo run -p siteselect-bench --release --bin repro -- check --inject-violation {}",
            kind.label()
        ));
        println!("oracle fired as it must on the known-bad history:");
        return Err(v.to_string().into());
    }
    let defaults = ExploreOptions::default();
    let explore_opts = ExploreOptions {
        seeds: flags.seeds.unwrap_or(defaults.seeds),
        jobs: opts.jobs,
        base_seed: base_seed.unwrap_or(defaults.base_seed),
        clients: clients.unwrap_or(defaults.clients),
        duration: flags
            .duration
            .map_or(defaults.duration, SimDuration::from_secs),
        warmup: flags.warmup.map_or(defaults.warmup, SimDuration::from_secs),
    };
    banner(&format!(
        "Simcheck: {} randomized cases ({} clients each) under all four oracles",
        explore_opts.seeds, explore_opts.clients
    ));
    let report = siteselect_check::explore::explore(&explore_opts);
    print!("{}", report.render());
    if report.passed() {
        Ok(())
    } else {
        Err("simcheck found an oracle violation".into())
    }
}

/// Runs the regression-tracked benchmark suite, writes the JSON report,
/// and optionally enforces a baseline.
fn bench_suite(out: &str, baseline: Option<&str>) -> Result<(), AnyError> {
    banner("Bench: hot-path substrates, end-to-end runs, sweep scaling");
    let report = siteselect_bench::suite::run_suite();
    let json = report.to_json();
    std::fs::write(out, &json)?;
    println!("\nwrote {out} ({} benchmarks, {} cores, {})", report.benchmarks.len(), report.cores, report.rustc);
    if let Some(path) = baseline {
        let base = std::fs::read_to_string(path)?;
        siteselect_bench::suite::compare_against_baseline(&report, &base)
            .map_err(|e| format!("baseline check failed: {e}"))?;
        println!("baseline check passed against {path}");
    }
    Ok(())
}

/// Diffs two saved bench reports (`repro bench --compare OLD NEW`):
/// per-benchmark delta table (or JSON with `--json`), non-zero exit when a
/// benchmark vanished or slowed past the regression limit.
fn bench_compare(old_path: &str, new_path: &str, json: bool) -> Result<(), AnyError> {
    let old = std::fs::read_to_string(old_path)
        .map_err(|e| format!("cannot read {old_path}: {e}"))?;
    let new = std::fs::read_to_string(new_path)
        .map_err(|e| format!("cannot read {new_path}: {e}"))?;
    let cmp = siteselect_bench::suite::BenchComparison::from_json(&old, &new)?;
    if json {
        print!("{}", cmp.to_json());
    } else {
        banner(&format!("Bench compare: {old_path} -> {new_path}"));
        print!("{}", cmp.to_text());
    }
    if cmp.regressed() {
        return Err(format!(
            "bench regression: a benchmark vanished or slowed more than {}x (see table above)",
            siteselect_bench::suite::REGRESSION_LIMIT
        )
        .into());
    }
    Ok(())
}

fn all(opts: SweepOptions, table4_clients: u16) -> Result<(), AnyError> {
    table1()?;
    figure1()?;
    figure2()?;
    figure(0.01, opts)?;
    figure(0.05, opts)?;
    figure(0.20, opts)?;
    table2(opts)?;
    table3(opts)?;
    table4(opts, table4_clients)?;
    ablations(opts)?;
    Ok(())
}
