//! Seed sensitivity of the Figure 5 headline point (100 clients, 20%).
use siteselect_core::run_experiment;
use siteselect_types::{ExperimentConfig, SimDuration, SystemKind};
fn main() {
    for seed in [1u64, 2, 3] {
        let mut line = format!("seed {seed}:");
        for sys in [SystemKind::ClientServer, SystemKind::LoadSharing] {
            let mut cfg = ExperimentConfig::paper(sys, 100, 0.20);
            cfg.runtime.duration = SimDuration::from_secs(2000);
            cfg.runtime.warmup = SimDuration::from_secs(200);
            cfg.runtime.seed = seed;
            let m = run_experiment(&cfg).unwrap();
            line += &format!("  {} {:.2}%", sys.label(), m.success_percent());
        }
        println!("{line}");
    }
}
