//! A minimal wall-clock benchmark harness.
//!
//! The workspace builds fully offline, so the bench targets use this small
//! self-calibrating timer instead of an external framework. Each benchmark
//! body is batched until a batch takes long enough to time reliably, then
//! the best of a few batches is reported as nanoseconds per iteration
//! (minimum-of-samples is robust against scheduler noise).

use std::time::{Duration, Instant};

/// Number of timed batches per benchmark.
const SAMPLES: u32 = 5;
/// Target wall-clock length of one timed batch.
const BATCH_TARGET: Duration = Duration::from_millis(5);
/// Calibration cap so a pathological body cannot spin forever.
const MAX_BATCH: u64 = 1 << 20;

/// Timing context handed to each benchmark body.
#[derive(Debug, Default)]
pub struct Bencher {
    ns_per_iter: f64,
}

impl Bencher {
    /// Times `body`, batching it until a batch reaches [`BATCH_TARGET`].
    pub fn iter<T>(&mut self, mut body: impl FnMut() -> T) {
        let mut n = 1u64;
        let mut per_iter;
        loop {
            let start = Instant::now();
            for _ in 0..n {
                std::hint::black_box(body());
            }
            let elapsed = start.elapsed();
            per_iter = elapsed.as_nanos() as f64 / n as f64;
            if elapsed >= BATCH_TARGET || n >= MAX_BATCH {
                break;
            }
            n = (n * 8).min(MAX_BATCH);
        }
        let mut best = per_iter;
        for _ in 1..SAMPLES {
            let start = Instant::now();
            for _ in 0..n {
                std::hint::black_box(body());
            }
            best = best.min(start.elapsed().as_nanos() as f64 / n as f64);
        }
        self.ns_per_iter = best;
    }
}

/// Runs one named benchmark and prints its result.
pub fn bench(name: &str, mut body: impl FnMut(&mut Bencher)) {
    let mut b = Bencher::default();
    body(&mut b);
    let ns = b.ns_per_iter;
    if ns >= 1e9 {
        println!("{name:<55} {:>12.3} s/iter", ns / 1e9);
    } else if ns >= 1e6 {
        println!("{name:<55} {:>12.3} ms/iter", ns / 1e6);
    } else if ns >= 1e3 {
        println!("{name:<55} {:>12.3} µs/iter", ns / 1e3);
    } else {
        println!("{name:<55} {:>12.1} ns/iter", ns);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_measures_something_positive() {
        let mut b = Bencher::default();
        b.iter(|| std::hint::black_box(1u64 + 1));
        assert!(b.ns_per_iter > 0.0);
    }

    #[test]
    fn bench_prints_without_panicking() {
        bench("smoke", |b| b.iter(|| 2 + 2));
    }
}
