//! A minimal wall-clock benchmark harness.
//!
//! The workspace builds fully offline, so the bench targets use this small
//! self-calibrating timer instead of an external framework. Each benchmark
//! body is batched until a batch takes long enough to time reliably, then
//! the best of a few batches is reported as nanoseconds per iteration
//! (minimum-of-samples is robust against scheduler noise).

use std::time::{Duration, Instant};

/// Number of timed batches per benchmark.
const SAMPLES: u32 = 5;
/// Target wall-clock length of one timed batch.
const BATCH_TARGET: Duration = Duration::from_millis(5);
/// Calibration cap so a pathological body cannot spin forever.
const MAX_BATCH: u64 = 1 << 20;

/// Timing context handed to each benchmark body.
#[derive(Debug, Default)]
pub struct Bencher {
    ns_per_iter: f64,
}

impl Bencher {
    /// Times `body`, batching it until a batch reaches [`BATCH_TARGET`].
    pub fn iter<T>(&mut self, mut body: impl FnMut() -> T) {
        // Calibrate: grow the batch until one batch is long enough to time
        // reliably. Calibration batches are never counted as samples —
        // they run while caches, branch predictors and the allocator are
        // still warming, so folding the final calibration batch in (as an
        // earlier version did) skewed the reported figure and made it
        // depend on how many growth steps calibration happened to take.
        let mut n = 1u64;
        loop {
            let start = Instant::now();
            for _ in 0..n {
                std::hint::black_box(body());
            }
            if start.elapsed() >= BATCH_TARGET || n >= MAX_BATCH {
                break;
            }
            n = (n * 8).min(MAX_BATCH);
        }
        // Measure: SAMPLES fresh batches at the calibrated size, reporting
        // the minimum (robust against scheduler noise).
        let mut best = f64::INFINITY;
        for _ in 0..SAMPLES {
            let start = Instant::now();
            for _ in 0..n {
                std::hint::black_box(body());
            }
            best = best.min(start.elapsed().as_nanos() as f64 / n as f64);
        }
        self.ns_per_iter = best;
    }

    /// The measured nanoseconds per iteration of the last [`iter`] call.
    ///
    /// [`iter`]: Bencher::iter
    #[must_use]
    pub fn ns_per_iter(&self) -> f64 {
        self.ns_per_iter
    }
}

/// Runs one benchmark body and returns its nanoseconds per iteration.
pub fn measure(mut body: impl FnMut(&mut Bencher)) -> f64 {
    let mut b = Bencher::default();
    body(&mut b);
    b.ns_per_iter
}

/// Formats a nanosecond figure with a human-scale unit.
#[must_use]
pub fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s/iter", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms/iter", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs/iter", ns / 1e3)
    } else {
        format!("{ns:.1} ns/iter")
    }
}

/// Runs one named benchmark and prints its result.
pub fn bench(name: &str, body: impl FnMut(&mut Bencher)) {
    let ns = measure(body);
    println!("{name:<55} {:>12}", format_ns(ns));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_measures_something_positive() {
        let mut b = Bencher::default();
        b.iter(|| std::hint::black_box(1u64 + 1));
        assert!(b.ns_per_iter > 0.0);
    }

    #[test]
    fn bench_prints_without_panicking() {
        bench("smoke", |b| b.iter(|| 2 + 2));
    }

    #[test]
    fn measure_returns_finite_positive_ns() {
        let ns = measure(|b| b.iter(|| std::hint::black_box(3u64 * 7)));
        assert!(ns.is_finite() && ns > 0.0);
    }

    #[test]
    fn format_ns_picks_sane_units() {
        assert!(format_ns(12.0).ends_with("ns/iter"));
        assert!(format_ns(12_000.0).ends_with("µs/iter"));
        assert!(format_ns(12_000_000.0).ends_with("ms/iter"));
        assert!(format_ns(2e9).ends_with("s/iter"));
    }
}
