//! Benchmark harness support for the `siteselect` reproduction.
//!
//! The interesting entry points are:
//!
//! * `src/bin/repro.rs` — regenerates every table and figure of the paper
//!   (`cargo run -p siteselect-bench --release --bin repro -- all`);
//! * `benches/*.rs` — micro/macro benchmarks of the substrates and one
//!   end-to-end bench per experiment (`cargo bench`), driven by the small
//!   self-contained [`harness`] in this crate.
//!
//! This library only hosts small helpers shared by those targets.

pub mod harness;
pub mod suite;

use siteselect_core::experiments::SweepOptions;
use siteselect_types::SimDuration;

/// Sweep options used by the `repro` binary: paper-scale by default,
/// reduced with `--quick`.
#[must_use]
pub fn repro_options(quick: bool) -> SweepOptions {
    if quick {
        SweepOptions {
            duration: SimDuration::from_secs(400),
            warmup: SimDuration::from_secs(80),
            ..SweepOptions::paper()
        }
    } else {
        SweepOptions::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_options_are_shorter() {
        let q = repro_options(true);
        let p = repro_options(false);
        assert!(q.duration < p.duration);
        assert!(q.warmup < q.duration);
    }
}
