//! The regression-tracked benchmark suite behind `repro bench`.
//!
//! Times the hot substrates (lock table, event queue, dense maps, client
//! cache), one quick end-to-end run per system with its simulated-events
//! throughput, and a quick sweep at one and at all cores. Results are
//! written to a JSON file (`BENCH_sim.json` by default) whose schema is
//! hand-rolled — the workspace builds offline, so there is no serde — and
//! a committed baseline can be compared against with `--baseline`, failing
//! on missing fields or a >2x per-benchmark regression.

use std::fmt::Write as _;
use std::time::Instant;

use siteselect_core::experiments::{deadline_figure, effective_jobs, SweepOptions};
use siteselect_core::{run_experiment, run_experiment_traced};
use siteselect_locks::{Acquire, LockTable, QueueDiscipline};
use siteselect_sim::EventQueue;
use siteselect_storage::ClientCache;
use siteselect_types::{
    ClientId, ExperimentConfig, LockMode, ObjectId, ObjectMap, SimDuration, SimTime, SystemKind,
};

use crate::harness::{format_ns, measure};

/// One measured benchmark.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchRecord {
    /// Stable identifier, used to match against the baseline.
    pub name: String,
    /// Best-of-samples nanoseconds per iteration.
    pub ns_per_iter: f64,
    /// Simulated engine events per wall-clock second, for end-to-end runs.
    pub events_per_sec: Option<f64>,
}

/// The full suite result: metadata plus every record.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchReport {
    /// Available cores on the machine that produced the numbers.
    pub cores: usize,
    /// `rustc --version` of the toolchain, `"unknown"` if unavailable.
    pub rustc: String,
    /// Short git revision of the tree that produced the numbers,
    /// `"unknown"` outside a checkout.
    pub git_rev: String,
    /// Measurements in execution order.
    pub benchmarks: Vec<BenchRecord>,
}

fn rustc_version() -> String {
    std::process::Command::new("rustc")
        .arg("--version")
        .output()
        .ok()
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map_or_else(|| "unknown".to_string(), |s| s.trim().to_string())
}

fn git_rev() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map_or_else(|| "unknown".to_string(), |s| s.trim().to_string())
}

fn bench_cfg(system: SystemKind) -> ExperimentConfig {
    let mut cfg = ExperimentConfig::paper(system, 6, 0.05);
    cfg.runtime.duration = SimDuration::from_secs(200);
    cfg.runtime.warmup = SimDuration::from_secs(40);
    cfg.runtime.seed = 0x5173_5e1e;
    cfg
}

fn lock_table_grant_release() -> f64 {
    let mut table: LockTable<ClientId> = LockTable::new(QueueDiscipline::Fifo);
    let mut i = 0u32;
    measure(|b| {
        b.iter(|| {
            let obj = ObjectId(i % 64);
            let owner = ClientId((i % 7) as u16);
            i = i.wrapping_add(1);
            let got = table.request(obj, owner, LockMode::Exclusive, SimTime::from_secs(10));
            debug_assert!(matches!(got, Acquire::Granted));
            table.release(obj, owner)
        });
    })
}

fn lock_table_contended_promote() -> f64 {
    let mut table: LockTable<ClientId> = LockTable::new(QueueDiscipline::Deadline);
    let (a, b_own) = (ClientId(0), ClientId(1));
    let mut i = 0u32;
    measure(|b| {
        b.iter(|| {
            let obj = ObjectId(i % 16);
            i = i.wrapping_add(1);
            table.request(obj, a, LockMode::Exclusive, SimTime::from_secs(5));
            // Conflicting request parks b; releasing a promotes it.
            table.request(obj, b_own, LockMode::Shared, SimTime::from_secs(3));
            let granted = table.release(obj, a);
            debug_assert_eq!(granted.len(), 1);
            table.release(obj, b_own)
        });
    })
}

fn event_queue_churn() -> f64 {
    let mut q: EventQueue<u32> = EventQueue::with_capacity(128);
    measure(|b| {
        b.iter(|| {
            for k in 0..64u32 {
                // Reversed times exercise real sift work, not append-pop.
                q.push(SimTime::from_micros(u64::from(64 - k)), k);
            }
            let mut drained = 0u32;
            while let Some((_, e)) = q.pop_before(SimTime::from_secs(1)) {
                drained += e;
            }
            drained
        });
    })
}

fn object_map_insert_get_remove() -> f64 {
    let mut map: ObjectMap<u64> = ObjectMap::with_capacity(1024);
    measure(|b| {
        b.iter(|| {
            let mut acc = 0u64;
            for k in 0..256u32 {
                let id = ObjectId((k * 37) % 1024);
                map.insert(id, u64::from(k));
                acc += map.get(id).copied().unwrap_or(0);
            }
            for k in 0..256u32 {
                map.remove(ObjectId((k * 37) % 1024));
            }
            acc
        });
    })
}

fn cache_probe_insert() -> f64 {
    let mut cache = ClientCache::new(50, 200);
    measure(|b| {
        b.iter(|| {
            let mut hits = 0u32;
            for k in 0..256u32 {
                let id = ObjectId(k % 300);
                if cache.probe(id).is_some() {
                    hits += 1;
                } else {
                    cache.insert(id);
                }
            }
            hits
        });
    })
}

/// Times one full simulation and derives simulated-events/sec from a
/// traced twin run (tracing is a pure observer, so the event count is the
/// untraced run's event count too).
fn sim_run(system: SystemKind) -> (f64, f64) {
    let cfg = bench_cfg(system);
    let (_, trace) = run_experiment_traced(&cfg, 16).expect("valid bench config");
    let events = trace.report.events;
    let ns = measure(|b| {
        b.iter(|| run_experiment(&cfg).expect("valid bench config"));
    });
    let events_per_sec = events as f64 / (ns / 1e9);
    (ns, events_per_sec)
}

/// The client counts of the quick benchmark sweep.
const SWEEP_CLIENTS: [u16; 2] = [4, 8];

/// Wall-clock of one quick deadline sweep at the given job count.
fn sweep_wall_clock(jobs: usize) -> f64 {
    let opts = SweepOptions {
        duration: SimDuration::from_secs(200),
        warmup: SimDuration::from_secs(40),
        seed: 0x5173_5e1e,
        jobs,
    };
    let start = Instant::now();
    deadline_figure(0.05, &SWEEP_CLIENTS, opts).expect("valid sweep config");
    start.elapsed().as_nanos() as f64
}

/// Total simulated events across every cell of the quick sweep, from
/// traced twin runs (tracing is a pure observer, so the counts equal the
/// untraced sweep's). Shared by both sweep benchmarks, whose
/// events-per-second figures therefore differ only in wall-clock.
fn sweep_events() -> u64 {
    let mut total = 0u64;
    for &clients in &SWEEP_CLIENTS {
        for system in SystemKind::ALL {
            let mut cfg = ExperimentConfig::paper(system, clients, 0.05);
            cfg.runtime.duration = SimDuration::from_secs(200);
            cfg.runtime.warmup = SimDuration::from_secs(40);
            cfg.runtime.seed = 0x5173_5e1e;
            let (_, trace) = run_experiment_traced(&cfg, 16).expect("valid sweep config");
            total += trace.report.events;
        }
    }
    total
}

/// Runs the whole suite, printing each result as it lands.
#[must_use]
pub fn run_suite() -> BenchReport {
    let cores = effective_jobs(0, usize::MAX);
    let mut benchmarks = Vec::new();
    let mut push = |name: &str, ns: f64, events_per_sec: Option<f64>| {
        match events_per_sec {
            Some(eps) => println!("{name:<45} {:>14}   {eps:>12.0} ev/s", format_ns(ns)),
            None => println!("{name:<45} {:>14}", format_ns(ns)),
        }
        benchmarks.push(BenchRecord {
            name: name.to_string(),
            ns_per_iter: ns,
            events_per_sec,
        });
    };

    push("lock_table/grant_release", lock_table_grant_release(), None);
    push(
        "lock_table/contended_promote",
        lock_table_contended_promote(),
        None,
    );
    push("event_queue/churn_64", event_queue_churn(), None);
    push(
        "object_map/insert_get_remove_256",
        object_map_insert_get_remove(),
        None,
    );
    push("client_cache/probe_insert_256", cache_probe_insert(), None);
    for (name, system) in [
        ("sim/centralized_quick", SystemKind::Centralized),
        ("sim/client_server_quick", SystemKind::ClientServer),
        ("sim/load_sharing_quick", SystemKind::LoadSharing),
    ] {
        let (ns, eps) = sim_run(system);
        push(name, ns, Some(eps));
    }
    let events = sweep_events() as f64;
    let ns1 = sweep_wall_clock(1);
    push("sweep/deadline_quick_jobs1", ns1, Some(events / (ns1 / 1e9)));
    // "all" = one worker per core; the core count itself is in the meta
    // block, so the benchmark name is stable across machines.
    let ns_all = sweep_wall_clock(cores);
    push(
        "sweep/deadline_quick_jobs_all",
        ns_all,
        Some(events / (ns_all / 1e9)),
    );

    BenchReport {
        cores,
        rustc: rustc_version(),
        git_rev: git_rev(),
        benchmarks,
    }
}

/// JSON float formatting: finite, plain decimal, round-trippable enough
/// for regression ratios.
fn jnum(x: f64) -> String {
    if x.is_finite() {
        format!("{x:.3}")
    } else {
        "null".to_string()
    }
}

impl BenchReport {
    /// Serializes the report to the committed JSON schema.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(
            out,
            "  \"meta\": {{\"cores\": {}, \"rustc\": \"{}\", \"git_rev\": \"{}\"}},",
            self.cores,
            self.rustc.replace('\\', "\\\\").replace('"', "\\\""),
            self.git_rev.replace('\\', "\\\\").replace('"', "\\\"")
        );
        out.push_str("  \"benchmarks\": [\n");
        for (i, b) in self.benchmarks.iter().enumerate() {
            let eps = b
                .events_per_sec
                .map_or_else(|| "null".to_string(), jnum);
            let _ = write!(
                out,
                "    {{\"name\": \"{}\", \"ns_per_iter\": {}, \"events_per_sec\": {}}}",
                b.name,
                jnum(b.ns_per_iter),
                eps
            );
            out.push_str(if i + 1 < self.benchmarks.len() { ",\n" } else { "\n" });
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// Extracts `(name, ns_per_iter)` pairs from a report in our own schema.
///
/// This is a scanner for the exact format [`BenchReport::to_json`] writes
/// (one benchmark object per line), not a general JSON parser; anything it
/// cannot read reports as a malformed baseline.
fn parse_report(json: &str) -> Result<Vec<(String, f64)>, String> {
    let mut out = Vec::new();
    for line in json.lines() {
        let line = line.trim().trim_end_matches(',');
        let Some(rest) = line.strip_prefix("{\"name\": \"") else {
            continue;
        };
        let (name, rest) = rest
            .split_once('"')
            .ok_or_else(|| format!("unterminated name in: {line}"))?;
        let ns = rest
            .strip_prefix(", \"ns_per_iter\": ")
            .and_then(|r| r.split([',', '}']).next())
            .ok_or_else(|| format!("missing ns_per_iter in: {line}"))?;
        let ns: f64 = ns
            .trim()
            .parse()
            .map_err(|e| format!("bad ns_per_iter in {line}: {e}"))?;
        if !ns.is_finite() || ns <= 0.0 {
            return Err(format!("non-positive ns_per_iter in: {line}"));
        }
        out.push((name.to_string(), ns));
    }
    if out.is_empty() {
        return Err("no benchmarks found in baseline".to_string());
    }
    Ok(out)
}

/// Maximum tolerated slowdown against the baseline.
pub const REGRESSION_LIMIT: f64 = 2.0;

/// Compares `current` against a committed `baseline` report.
///
/// # Errors
///
/// Returns a description of the first problem found: a baseline that does
/// not parse, a baseline benchmark missing from the current run, or a
/// benchmark slower than [`REGRESSION_LIMIT`] times its baseline.
/// Machine-speed differences make cross-machine comparison meaningless, so
/// callers should only compare runs from comparable machines (CI compares
/// against a fresh same-machine run).
pub fn compare_against_baseline(current: &BenchReport, baseline: &str) -> Result<(), String> {
    let baseline = parse_report(baseline)?;
    for (name, base_ns) in &baseline {
        let Some(cur) = current.benchmarks.iter().find(|b| &b.name == name) else {
            return Err(format!("benchmark `{name}` missing from current run"));
        };
        let ratio = cur.ns_per_iter / base_ns;
        if ratio > REGRESSION_LIMIT {
            return Err(format!(
                "benchmark `{name}` regressed {ratio:.2}x ({} -> {})",
                format_ns(*base_ns),
                format_ns(cur.ns_per_iter)
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(names_ns: &[(&str, f64)]) -> BenchReport {
        BenchReport {
            cores: 4,
            rustc: "rustc 1.95.0 (test)".to_string(),
            git_rev: "deadbee".to_string(),
            benchmarks: names_ns
                .iter()
                .map(|&(n, ns)| BenchRecord {
                    name: n.to_string(),
                    ns_per_iter: ns,
                    events_per_sec: if n.starts_with("sim/") { Some(1e6) } else { None },
                })
                .collect(),
        }
    }

    #[test]
    fn json_roundtrips_through_parser() {
        let r = report(&[("lock_table/grant_release", 120.5), ("sim/ls", 3.5e8)]);
        let parsed = parse_report(&r.to_json()).unwrap();
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0].0, "lock_table/grant_release");
        assert!((parsed[0].1 - 120.5).abs() < 1e-9);
    }

    #[test]
    fn comparison_accepts_equal_and_rejects_regression() {
        let base = report(&[("a", 100.0), ("b", 50.0)]);
        let same = report(&[("a", 100.0), ("b", 99.0)]);
        assert!(compare_against_baseline(&same, &base.to_json()).is_ok());
        let slow = report(&[("a", 100.0), ("b", 101.0)]);
        let err = compare_against_baseline(&slow, &base.to_json()).unwrap_err();
        assert!(err.contains("`b` regressed"), "{err}");
    }

    #[test]
    fn comparison_flags_missing_benchmark() {
        let cur = report(&[("a", 100.0)]);
        let base = report(&[("a", 100.0), ("c", 10.0)]);
        let err = compare_against_baseline(&cur, &base.to_json()).unwrap_err();
        assert!(err.contains("`c` missing"), "{err}");
    }

    #[test]
    fn malformed_baseline_is_an_error() {
        let cur = report(&[("a", 1.0)]);
        assert!(compare_against_baseline(&cur, "{}").is_err());
        assert!(compare_against_baseline(&cur, "not json at all").is_err());
    }
}
