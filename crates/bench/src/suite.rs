//! The regression-tracked benchmark suite behind `repro bench`.
//!
//! Times the hot substrates (lock table, event queue, dense maps, client
//! cache), one quick end-to-end run per system with its simulated-events
//! throughput, and a quick sweep at one and at all cores. The end-to-end
//! rows also record a CPU-time throughput (`events_per_sec_cpu`): on a
//! shared or virtualized box, host-level steal inflates wall-clock by
//! multiples while the guest's own CPU accounting stays steady, so the CPU
//! figure is the one throughput floors should gate on. Results are written
//! to a JSON file (`BENCH_sim.json` by default) whose schema is
//! hand-rolled — the workspace builds offline, so there is no serde — and
//! a committed baseline can be compared against with `--baseline`, failing
//! on missing fields or a >2x per-benchmark regression. Two saved reports
//! can be diffed against each other with [`BenchComparison`] (the
//! `--compare OLD NEW` mode of `repro bench`).

use std::fmt::Write as _;
use std::time::Instant;

use siteselect_core::experiments::{deadline_figure, effective_jobs, SweepOptions};
use siteselect_core::{run_experiment, run_experiment_traced};
use siteselect_locks::{Acquire, LockTable, QueueDiscipline};
use siteselect_sim::EventQueue;
use siteselect_storage::ClientCache;
use siteselect_types::{
    ClientId, ExperimentConfig, LockMode, ObjectId, ObjectMap, SimDuration, SimTime, SystemKind,
};

use crate::harness::{format_ns, measure};

/// One measured benchmark.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchRecord {
    /// Stable identifier, used to match against the baseline.
    pub name: String,
    /// Best-of-samples nanoseconds per iteration.
    pub ns_per_iter: f64,
    /// Simulated engine events per wall-clock second, for end-to-end runs.
    pub events_per_sec: Option<f64>,
    /// Simulated engine events per process-CPU second, for end-to-end
    /// runs. Immune to host-level steal (the guest only accrues CPU time
    /// while actually running), so throughput gates should prefer this
    /// over [`events_per_sec`](Self::events_per_sec) on shared machines.
    pub events_per_sec_cpu: Option<f64>,
}

/// The full suite result: metadata plus every record.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchReport {
    /// Available cores on the machine that produced the numbers.
    pub cores: usize,
    /// `rustc --version` of the toolchain, `"unknown"` if unavailable.
    pub rustc: String,
    /// Short git revision of the tree that produced the numbers,
    /// `"unknown"` outside a checkout.
    pub git_rev: String,
    /// Measurements in execution order.
    pub benchmarks: Vec<BenchRecord>,
}

fn rustc_version() -> String {
    std::process::Command::new("rustc")
        .arg("--version")
        .output()
        .ok()
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map_or_else(|| "unknown".to_string(), |s| s.trim().to_string())
}

fn git_rev() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map_or_else(|| "unknown".to_string(), |s| s.trim().to_string())
}

fn bench_cfg(system: SystemKind) -> ExperimentConfig {
    let mut cfg = ExperimentConfig::paper(system, 6, 0.05);
    cfg.runtime.duration = SimDuration::from_secs(200);
    cfg.runtime.warmup = SimDuration::from_secs(40);
    cfg.runtime.seed = 0x5173_5e1e;
    cfg
}

fn lock_table_grant_release() -> f64 {
    let mut table: LockTable<ClientId> = LockTable::new(QueueDiscipline::Fifo);
    let mut i = 0u32;
    measure(|b| {
        b.iter(|| {
            let obj = ObjectId(i % 64);
            let owner = ClientId((i % 7) as u16);
            i = i.wrapping_add(1);
            let got = table.request(obj, owner, LockMode::Exclusive, SimTime::from_secs(10));
            debug_assert!(matches!(got, Acquire::Granted));
            table.release(obj, owner)
        });
    })
}

fn lock_table_contended_promote() -> f64 {
    let mut table: LockTable<ClientId> = LockTable::new(QueueDiscipline::Deadline);
    let (a, b_own) = (ClientId(0), ClientId(1));
    let mut i = 0u32;
    measure(|b| {
        b.iter(|| {
            let obj = ObjectId(i % 16);
            i = i.wrapping_add(1);
            table.request(obj, a, LockMode::Exclusive, SimTime::from_secs(5));
            // Conflicting request parks b; releasing a promotes it.
            table.request(obj, b_own, LockMode::Shared, SimTime::from_secs(3));
            let granted = table.release(obj, a);
            debug_assert_eq!(granted.len(), 1);
            table.release(obj, b_own)
        });
    })
}

fn event_queue_churn() -> f64 {
    let mut q: EventQueue<u32> = EventQueue::with_capacity(128);
    measure(|b| {
        b.iter(|| {
            for k in 0..64u32 {
                // Reversed times exercise real sift work, not append-pop.
                q.push(SimTime::from_micros(u64::from(64 - k)), k);
            }
            let mut drained = 0u32;
            while let Some((_, e)) = q.pop_before(SimTime::from_secs(1)) {
                drained += e;
            }
            drained
        });
    })
}

fn object_map_insert_get_remove() -> f64 {
    let mut map: ObjectMap<u64> = ObjectMap::with_capacity(1024);
    measure(|b| {
        b.iter(|| {
            let mut acc = 0u64;
            for k in 0..256u32 {
                let id = ObjectId((k * 37) % 1024);
                map.insert(id, u64::from(k));
                acc += map.get(id).copied().unwrap_or(0);
            }
            for k in 0..256u32 {
                map.remove(ObjectId((k * 37) % 1024));
            }
            acc
        });
    })
}

fn cache_probe_insert() -> f64 {
    let mut cache = ClientCache::new(50, 200);
    measure(|b| {
        b.iter(|| {
            let mut hits = 0u32;
            for k in 0..256u32 {
                let id = ObjectId(k % 300);
                if cache.probe(id).is_some() {
                    hits += 1;
                } else {
                    cache.insert(id);
                }
            }
            hits
        });
    })
}

/// Process CPU time (user + system) in seconds, from `/proc/self/stat`.
/// `None` off Linux. Tick granularity is 10ms (`USER_HZ` is 100), so
/// callers must amortize over a long enough window.
fn cpu_time_seconds() -> Option<f64> {
    let stat = std::fs::read_to_string("/proc/self/stat").ok()?;
    // The comm field may contain spaces but is parenthesised; utime and
    // stime are the 14th and 15th overall fields.
    let rest = stat.rsplit(')').next()?;
    let mut fields = rest.split_whitespace();
    let utime: f64 = fields.nth(11)?.parse().ok()?;
    let stime: f64 = fields.next()?.parse().ok()?;
    Some((utime + stime) / 100.0)
}

/// Simulated events per CPU second: repeats the run until at least 300ms
/// of CPU time accrues (30 scheduler ticks, so granularity error stays in
/// the low percent) and divides. `None` where CPU accounting is
/// unavailable.
fn cpu_events_per_sec(cfg: &ExperimentConfig, events: u64) -> Option<f64> {
    let start = cpu_time_seconds()?;
    let mut iters = 0u32;
    loop {
        run_experiment(cfg).ok()?;
        iters += 1;
        let elapsed = cpu_time_seconds()? - start;
        if elapsed >= 0.3 || iters >= 1000 {
            return Some(events as f64 * f64::from(iters) / elapsed.max(1e-9));
        }
    }
}

/// Times one full simulation and derives simulated-events/sec — by wall
/// clock and by process CPU time — from a traced twin run (tracing is a
/// pure observer, so the event count is the untraced run's event count
/// too).
fn sim_run(system: SystemKind) -> (f64, f64, Option<f64>) {
    let cfg = bench_cfg(system);
    let (_, trace) = run_experiment_traced(&cfg, 16).expect("valid bench config");
    let events = trace.report.events;
    let ns = measure(|b| {
        b.iter(|| run_experiment(&cfg).expect("valid bench config"));
    });
    let events_per_sec = events as f64 / (ns / 1e9);
    (ns, events_per_sec, cpu_events_per_sec(&cfg, events))
}

/// The client counts of the quick benchmark sweep.
const SWEEP_CLIENTS: [u16; 2] = [4, 8];

/// Wall-clock of one quick deadline sweep at the given job count.
fn sweep_wall_clock(jobs: usize) -> f64 {
    let opts = SweepOptions {
        duration: SimDuration::from_secs(200),
        warmup: SimDuration::from_secs(40),
        seed: 0x5173_5e1e,
        jobs,
    };
    let start = Instant::now();
    deadline_figure(0.05, &SWEEP_CLIENTS, opts).expect("valid sweep config");
    start.elapsed().as_nanos() as f64
}

/// Total simulated events across every cell of the quick sweep, from
/// traced twin runs (tracing is a pure observer, so the counts equal the
/// untraced sweep's). Shared by both sweep benchmarks, whose
/// events-per-second figures therefore differ only in wall-clock.
fn sweep_events() -> u64 {
    let mut total = 0u64;
    for &clients in &SWEEP_CLIENTS {
        for system in SystemKind::ALL {
            let mut cfg = ExperimentConfig::paper(system, clients, 0.05);
            cfg.runtime.duration = SimDuration::from_secs(200);
            cfg.runtime.warmup = SimDuration::from_secs(40);
            cfg.runtime.seed = 0x5173_5e1e;
            let (_, trace) = run_experiment_traced(&cfg, 16).expect("valid sweep config");
            total += trace.report.events;
        }
    }
    total
}

/// Runs the whole suite, printing each result as it lands.
#[must_use]
pub fn run_suite() -> BenchReport {
    let cores = effective_jobs(0, usize::MAX);
    let mut benchmarks = Vec::new();
    let mut push = |name: &str, ns: f64, events_per_sec: Option<f64>, cpu: Option<f64>| {
        match (events_per_sec, cpu) {
            (Some(eps), Some(cpu)) => println!(
                "{name:<45} {:>14}   {eps:>12.0} ev/s  {cpu:>12.0} ev/cpu-s",
                format_ns(ns)
            ),
            (Some(eps), None) => println!("{name:<45} {:>14}   {eps:>12.0} ev/s", format_ns(ns)),
            _ => println!("{name:<45} {:>14}", format_ns(ns)),
        }
        benchmarks.push(BenchRecord {
            name: name.to_string(),
            ns_per_iter: ns,
            events_per_sec,
            events_per_sec_cpu: cpu,
        });
    };

    push("lock_table/grant_release", lock_table_grant_release(), None, None);
    push(
        "lock_table/contended_promote",
        lock_table_contended_promote(),
        None,
        None,
    );
    push("event_queue/churn_64", event_queue_churn(), None, None);
    push(
        "object_map/insert_get_remove_256",
        object_map_insert_get_remove(),
        None,
        None,
    );
    push("client_cache/probe_insert_256", cache_probe_insert(), None, None);
    for (name, system) in [
        ("sim/centralized_quick", SystemKind::Centralized),
        ("sim/client_server_quick", SystemKind::ClientServer),
        ("sim/load_sharing_quick", SystemKind::LoadSharing),
    ] {
        let (ns, eps, cpu) = sim_run(system);
        push(name, ns, Some(eps), cpu);
    }
    let events = sweep_events() as f64;
    let ns1 = sweep_wall_clock(1);
    push("sweep/deadline_quick_jobs1", ns1, Some(events / (ns1 / 1e9)), None);
    // "all" = one worker per core; the core count itself is in the meta
    // block, so the benchmark name is stable across machines.
    let ns_all = sweep_wall_clock(cores);
    push(
        "sweep/deadline_quick_jobs_all",
        ns_all,
        Some(events / (ns_all / 1e9)),
        None,
    );

    BenchReport {
        cores,
        rustc: rustc_version(),
        git_rev: git_rev(),
        benchmarks,
    }
}

/// JSON float formatting: finite, plain decimal, round-trippable enough
/// for regression ratios.
fn jnum(x: f64) -> String {
    if x.is_finite() {
        format!("{x:.3}")
    } else {
        "null".to_string()
    }
}

impl BenchReport {
    /// Serializes the report to the committed JSON schema.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(
            out,
            "  \"meta\": {{\"cores\": {}, \"rustc\": \"{}\", \"git_rev\": \"{}\"}},",
            self.cores,
            self.rustc.replace('\\', "\\\\").replace('"', "\\\""),
            self.git_rev.replace('\\', "\\\\").replace('"', "\\\"")
        );
        out.push_str("  \"benchmarks\": [\n");
        for (i, b) in self.benchmarks.iter().enumerate() {
            let eps = b
                .events_per_sec
                .map_or_else(|| "null".to_string(), jnum);
            let cpu = b
                .events_per_sec_cpu
                .map_or_else(|| "null".to_string(), jnum);
            let _ = write!(
                out,
                "    {{\"name\": \"{}\", \"ns_per_iter\": {}, \"events_per_sec\": {}, \"events_per_sec_cpu\": {}}}",
                b.name,
                jnum(b.ns_per_iter),
                eps,
                cpu
            );
            out.push_str(if i + 1 < self.benchmarks.len() { ",\n" } else { "\n" });
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// Reads one `"field": value` number off a benchmark line; `Ok(None)` when
/// the field is absent (older reports) or `null`.
fn field_num(line: &str, field: &str) -> Result<Option<f64>, String> {
    let key = format!("\"{field}\": ");
    let Some(pos) = line.find(&key) else {
        return Ok(None);
    };
    let raw = line[pos + key.len()..]
        .split([',', '}'])
        .next()
        .unwrap_or("")
        .trim();
    if raw == "null" {
        return Ok(None);
    }
    let v: f64 = raw
        .parse()
        .map_err(|e| format!("bad {field} in {line}: {e}"))?;
    Ok(Some(v))
}

/// Extracts the benchmark records from a report in our own schema.
///
/// This is a scanner for the exact format [`BenchReport::to_json`] writes
/// (one benchmark object per line), not a general JSON parser; anything it
/// cannot read reports as a malformed report. Reports written before the
/// `events_per_sec_cpu` field existed parse with that field `None`.
fn parse_report(json: &str) -> Result<Vec<BenchRecord>, String> {
    let mut out = Vec::new();
    for line in json.lines() {
        let line = line.trim().trim_end_matches(',');
        let Some(rest) = line.strip_prefix("{\"name\": \"") else {
            continue;
        };
        let (name, _) = rest
            .split_once('"')
            .ok_or_else(|| format!("unterminated name in: {line}"))?;
        let ns = field_num(line, "ns_per_iter")?
            .ok_or_else(|| format!("missing ns_per_iter in: {line}"))?;
        if !ns.is_finite() || ns <= 0.0 {
            return Err(format!("non-positive ns_per_iter in: {line}"));
        }
        out.push(BenchRecord {
            name: name.to_string(),
            ns_per_iter: ns,
            events_per_sec: field_num(line, "events_per_sec")?,
            events_per_sec_cpu: field_num(line, "events_per_sec_cpu")?,
        });
    }
    if out.is_empty() {
        return Err("no benchmarks found in report".to_string());
    }
    Ok(out)
}

/// Maximum tolerated slowdown against the baseline.
pub const REGRESSION_LIMIT: f64 = 2.0;

/// Compares `current` against a committed `baseline` report.
///
/// # Errors
///
/// Returns a description of the first problem found: a baseline that does
/// not parse, a baseline benchmark missing from the current run, or a
/// benchmark slower than [`REGRESSION_LIMIT`] times its baseline.
/// Machine-speed differences make cross-machine comparison meaningless, so
/// callers should only compare runs from comparable machines (CI compares
/// against a fresh same-machine run).
pub fn compare_against_baseline(current: &BenchReport, baseline: &str) -> Result<(), String> {
    let baseline = parse_report(baseline)?;
    for base in &baseline {
        let Some(cur) = current.benchmarks.iter().find(|b| b.name == base.name) else {
            return Err(format!("benchmark `{}` missing from current run", base.name));
        };
        let ratio = cur.ns_per_iter / base.ns_per_iter;
        if ratio > REGRESSION_LIMIT {
            return Err(format!(
                "benchmark `{}` regressed {ratio:.2}x ({} -> {})",
                base.name,
                format_ns(base.ns_per_iter),
                format_ns(cur.ns_per_iter)
            ));
        }
    }
    Ok(())
}

/// One benchmark's old-vs-new pairing inside a [`BenchComparison`].
#[derive(Debug, Clone, PartialEq)]
pub struct BenchDelta {
    /// Benchmark name, present in both reports.
    pub name: String,
    /// The old report's record.
    pub old: BenchRecord,
    /// The new report's record.
    pub new: BenchRecord,
}

impl BenchDelta {
    /// New-over-old time ratio (>1 is slower).
    #[must_use]
    pub fn ratio(&self) -> f64 {
        self.new.ns_per_iter / self.old.ns_per_iter
    }

    /// Signed time change in percent (+10 means 10% slower).
    #[must_use]
    pub fn delta_pct(&self) -> f64 {
        (self.ratio() - 1.0) * 100.0
    }

    /// True when the slowdown exceeds [`REGRESSION_LIMIT`].
    #[must_use]
    pub fn regressed(&self) -> bool {
        self.ratio() > REGRESSION_LIMIT
    }
}

/// A per-benchmark diff of two saved reports (`repro bench --compare`).
#[derive(Debug, Clone, PartialEq)]
pub struct BenchComparison {
    /// Benchmarks present in both reports, in the old report's order.
    pub deltas: Vec<BenchDelta>,
    /// Names only the old report has — treated as a regression (a gate
    /// must not pass because a benchmark silently vanished).
    pub only_in_old: Vec<String>,
    /// Names only the new report has; informational.
    pub only_in_new: Vec<String>,
}

impl BenchComparison {
    /// Pairs up two reports' records by benchmark name.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed report.
    pub fn from_json(old: &str, new: &str) -> Result<Self, String> {
        let old = parse_report(old).map_err(|e| format!("old report: {e}"))?;
        let new = parse_report(new).map_err(|e| format!("new report: {e}"))?;
        let mut deltas = Vec::new();
        let mut only_in_old = Vec::new();
        for o in &old {
            match new.iter().find(|n| n.name == o.name) {
                Some(n) => deltas.push(BenchDelta {
                    name: o.name.clone(),
                    old: o.clone(),
                    new: n.clone(),
                }),
                None => only_in_old.push(o.name.clone()),
            }
        }
        let only_in_new = new
            .iter()
            .filter(|n| !old.iter().any(|o| o.name == n.name))
            .map(|n| n.name.clone())
            .collect();
        Ok(BenchComparison {
            deltas,
            only_in_old,
            only_in_new,
        })
    }

    /// True when any benchmark regressed past [`REGRESSION_LIMIT`] or
    /// disappeared from the new report.
    #[must_use]
    pub fn regressed(&self) -> bool {
        !self.only_in_old.is_empty() || self.deltas.iter().any(BenchDelta::regressed)
    }

    /// Human-readable table: per-benchmark old/new times, signed delta
    /// percent, and throughput movement where recorded.
    #[must_use]
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<45} {:>12} {:>12} {:>9}",
            "benchmark", "old", "new", "delta"
        );
        for d in &self.deltas {
            let mark = if d.regressed() { "  !! regression" } else { "" };
            let _ = write!(
                out,
                "{:<45} {:>12} {:>12} {:>+8.1}%{mark}",
                d.name,
                format_ns(d.old.ns_per_iter),
                format_ns(d.new.ns_per_iter),
                d.delta_pct()
            );
            // Prefer the steal-immune CPU throughput when both sides
            // recorded one.
            let pair = match (d.old.events_per_sec_cpu, d.new.events_per_sec_cpu) {
                (Some(o), Some(n)) => Some((o, n, "ev/cpu-s")),
                _ => match (d.old.events_per_sec, d.new.events_per_sec) {
                    (Some(o), Some(n)) => Some((o, n, "ev/s")),
                    _ => None,
                },
            };
            if let Some((o, n, unit)) = pair {
                let _ = write!(out, "   ({o:.0} -> {n:.0} {unit})");
            }
            out.push('\n');
        }
        for name in &self.only_in_old {
            let _ = writeln!(out, "{name:<45} only in old report  !! regression");
        }
        for name in &self.only_in_new {
            let _ = writeln!(out, "{name:<45} only in new report");
        }
        out
    }

    /// Machine-readable form of the diff, same hand-rolled JSON dialect as
    /// the reports themselves.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(
            out,
            "  \"regression_limit\": {REGRESSION_LIMIT}, \"regressed\": {},",
            self.regressed()
        );
        out.push_str("  \"benchmarks\": [\n");
        for (i, d) in self.deltas.iter().enumerate() {
            let opt = |v: Option<f64>| v.map_or_else(|| "null".to_string(), jnum);
            let _ = write!(
                out,
                "    {{\"name\": \"{}\", \"old_ns\": {}, \"new_ns\": {}, \"delta_pct\": {}, \
                 \"old_events_per_sec\": {}, \"new_events_per_sec\": {}, \
                 \"old_events_per_sec_cpu\": {}, \"new_events_per_sec_cpu\": {}, \
                 \"regressed\": {}}}",
                d.name,
                jnum(d.old.ns_per_iter),
                jnum(d.new.ns_per_iter),
                jnum(d.delta_pct()),
                opt(d.old.events_per_sec),
                opt(d.new.events_per_sec),
                opt(d.old.events_per_sec_cpu),
                opt(d.new.events_per_sec_cpu),
                d.regressed()
            );
            out.push_str(if i + 1 < self.deltas.len() { ",\n" } else { "\n" });
        }
        out.push_str("  ],\n");
        let names = |v: &[String]| {
            v.iter()
                .map(|n| format!("\"{n}\""))
                .collect::<Vec<_>>()
                .join(", ")
        };
        let _ = writeln!(out, "  \"only_in_old\": [{}],", names(&self.only_in_old));
        let _ = writeln!(out, "  \"only_in_new\": [{}]", names(&self.only_in_new));
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(names_ns: &[(&str, f64)]) -> BenchReport {
        BenchReport {
            cores: 4,
            rustc: "rustc 1.95.0 (test)".to_string(),
            git_rev: "deadbee".to_string(),
            benchmarks: names_ns
                .iter()
                .map(|&(n, ns)| BenchRecord {
                    name: n.to_string(),
                    ns_per_iter: ns,
                    events_per_sec: if n.starts_with("sim/") { Some(1e6) } else { None },
                    events_per_sec_cpu: if n.starts_with("sim/") { Some(2e6) } else { None },
                })
                .collect(),
        }
    }

    #[test]
    fn json_roundtrips_through_parser() {
        let r = report(&[("lock_table/grant_release", 120.5), ("sim/ls", 3.5e8)]);
        let parsed = parse_report(&r.to_json()).unwrap();
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0].name, "lock_table/grant_release");
        assert!((parsed[0].ns_per_iter - 120.5).abs() < 1e-9);
        assert_eq!(parsed[0].events_per_sec, None);
        assert_eq!(parsed[1].events_per_sec, Some(1e6));
        assert_eq!(parsed[1].events_per_sec_cpu, Some(2e6));
    }

    #[test]
    fn parser_tolerates_reports_without_cpu_field() {
        // The schema before events_per_sec_cpu existed.
        let old = "{\"name\": \"a\", \"ns_per_iter\": 10.0, \"events_per_sec\": null}\n";
        let parsed = parse_report(old).unwrap();
        assert_eq!(parsed[0].events_per_sec_cpu, None);
        assert_eq!(parsed[0].events_per_sec, None);
    }

    #[test]
    fn comparison_pairs_and_computes_deltas() {
        let old = report(&[("a", 100.0), ("sim/ls", 200.0), ("gone", 5.0)]);
        let new = report(&[("a", 150.0), ("sim/ls", 100.0), ("fresh", 1.0)]);
        let cmp = BenchComparison::from_json(&old.to_json(), &new.to_json()).unwrap();
        assert_eq!(cmp.deltas.len(), 2);
        assert!((cmp.deltas[0].delta_pct() - 50.0).abs() < 1e-6);
        assert!((cmp.deltas[1].delta_pct() + 50.0).abs() < 1e-6);
        assert_eq!(cmp.only_in_old, vec!["gone".to_string()]);
        assert_eq!(cmp.only_in_new, vec!["fresh".to_string()]);
        // A vanished benchmark counts as a regression even though no
        // surviving row crossed the limit.
        assert!(!cmp.deltas.iter().any(BenchDelta::regressed));
        assert!(cmp.regressed());
    }

    #[test]
    fn comparison_flags_limit_crossing_only() {
        let old = report(&[("a", 100.0), ("b", 100.0)]);
        let new = report(&[("a", 199.0), ("b", 201.0)]);
        let cmp = BenchComparison::from_json(&old.to_json(), &new.to_json()).unwrap();
        assert!(!cmp.deltas[0].regressed());
        assert!(cmp.deltas[1].regressed());
        assert!(cmp.regressed());
        let text = cmp.to_text();
        assert!(text.contains("!! regression"), "{text}");
        let json = cmp.to_json();
        assert!(json.contains("\"regressed\": true"), "{json}");
    }

    #[test]
    fn comparison_json_carries_throughputs() {
        let old = report(&[("sim/ls", 200.0)]);
        let new = report(&[("sim/ls", 100.0)]);
        let cmp = BenchComparison::from_json(&old.to_json(), &new.to_json()).unwrap();
        let json = cmp.to_json();
        assert!(json.contains("\"old_events_per_sec\": 1000000.000"), "{json}");
        assert!(json.contains("\"new_events_per_sec_cpu\": 2000000.000"), "{json}");
        assert!(json.contains("\"only_in_old\": []"), "{json}");
    }

    #[test]
    fn comparison_rejects_malformed_reports() {
        let good = report(&[("a", 1.0)]).to_json();
        assert!(BenchComparison::from_json("nope", &good).is_err());
        assert!(BenchComparison::from_json(&good, "{}").is_err());
    }

    #[test]
    fn comparison_accepts_equal_and_rejects_regression() {
        let base = report(&[("a", 100.0), ("b", 50.0)]);
        let same = report(&[("a", 100.0), ("b", 99.0)]);
        assert!(compare_against_baseline(&same, &base.to_json()).is_ok());
        let slow = report(&[("a", 100.0), ("b", 101.0)]);
        let err = compare_against_baseline(&slow, &base.to_json()).unwrap_err();
        assert!(err.contains("`b` regressed"), "{err}");
    }

    #[test]
    fn comparison_flags_missing_benchmark() {
        let cur = report(&[("a", 100.0)]);
        let base = report(&[("a", 100.0), ("c", 10.0)]);
        let err = compare_against_baseline(&cur, &base.to_json()).unwrap_err();
        assert!(err.contains("`c` missing"), "{err}");
    }

    #[test]
    fn malformed_baseline_is_an_error() {
        let cur = report(&[("a", 1.0)]);
        assert!(compare_against_baseline(&cur, "{}").is_err());
        assert!(compare_against_baseline(&cur, "not json at all").is_err());
    }
}
