//! Benchmarks of the real-thread cluster: lock service latency and a full
//! mini-run including the serializability check.

use std::hint::black_box;
use std::sync::Arc;
use std::time::{Duration, Instant};

use siteselect_bench::harness::bench;
use siteselect_cluster::{Cluster, ClusterConfig, SharedServer};
use siteselect_types::{ClientId, LockMode, ObjectId, SimDuration};

fn bench_server_acquire_release() {
    bench("cluster/uncontended_acquire_release", |b| {
        let server: Arc<SharedServer> = SharedServer::new(64, 32, Vec::new());
        let mut i = 0u32;
        b.iter(|| {
            let obj = ObjectId(i % 64);
            i += 1;
            let bytes = server
                .acquire(
                    ClientId(0),
                    obj,
                    LockMode::Exclusive,
                    Instant::now() + Duration::from_secs(1),
                )
                .expect("uncontended");
            black_box(bytes.len());
            server.return_object(ClientId(0), obj, None, false);
        });
    });
}

fn bench_cluster_run() {
    bench("cluster_run/4x10_txns_with_serializability_check", |b| {
        b.iter(|| {
            let mut cfg = ClusterConfig {
                clients: 4,
                txns_per_client: 10,
                ..ClusterConfig::default()
            };
            // Fast pacing so the bench measures protocol work, not sleeps.
            cfg.workload.mean_interarrival = SimDuration::from_millis(200);
            cfg.workload.mean_length = SimDuration::from_millis(100);
            let report = Cluster::run(cfg).expect("cluster runs");
            report.history.check_serializable().expect("serializable");
            black_box(report.generated)
        });
    });
}

fn main() {
    bench_server_acquire_release();
    bench_cluster_run();
}
