//! Benchmarks of the locking protocols themselves: Figure 1 vs Figure 2
//! message-trace construction and the callback/window machinery.

use std::hint::black_box;

use siteselect_bench::harness::bench;
use siteselect_locks::protocol_costs::{cached_two_pl_trace, grouped_trace};
use siteselect_locks::{CallbackTracker, ForwardEntry, WindowManager};
use siteselect_types::{ClientId, LockMode, ObjectId, SimDuration, SimTime, TransactionId};

fn bench_figure_traces() {
    for &n in &[2usize, 8, 32] {
        bench(&format!("protocol_traces/figure1_cached_2pl/{n}"), |b| {
            b.iter(|| black_box(cached_two_pl_trace(n).len()));
        });
        bench(&format!("protocol_traces/figure2_grouped/{n}"), |b| {
            b.iter(|| black_box(grouped_trace(n).len()));
        });
    }
}

fn bench_callback_tracker() {
    bench("callbacks/begin_ack_cycle", |b| {
        let mut cb = CallbackTracker::new();
        let mut i = 0u32;
        b.iter(|| {
            let obj = ObjectId(i % 64);
            i += 1;
            let holders = [ClientId(1), ClientId(2), ClientId(3)];
            let fresh = cb.begin(obj, holders, LockMode::Exclusive);
            for h in fresh {
                let _ = black_box(cb.acknowledge(obj, h));
            }
        });
    });
}

fn bench_window_manager() {
    bench("windows/offer_close_batch8", |b| {
        let mut wm = WindowManager::new(SimDuration::from_millis(100));
        let mut t = 0u64;
        b.iter(|| {
            let obj = ObjectId((t % 32) as u32);
            for i in 0..8u16 {
                wm.offer(
                    obj,
                    ForwardEntry {
                        client: ClientId(i),
                        txn: TransactionId::new(ClientId(i), t),
                        deadline: SimTime::from_secs(t + u64::from(i)),
                        mode: LockMode::Exclusive,
                    },
                    SimTime::from_secs(t),
                );
            }
            t += 1;
            black_box(wm.close(obj))
        });
    });
}

fn main() {
    bench_figure_traces();
    bench_callback_tracker();
    bench_window_manager();
}
