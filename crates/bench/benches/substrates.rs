//! Microbenchmarks of every substrate the systems are built on: lock
//! table, wait-for graph, buffer manager, client cache, event queue, PRNG
//! and the Zipf sampler.

use std::hint::black_box;

use siteselect_bench::harness::bench;
use siteselect_locks::{LockTable, QueueDiscipline, WaitForGraph};
use siteselect_sim::{EventQueue, Prng};
use siteselect_storage::{BufferManager, ClientCache, DiskFile, Replacement};
use siteselect_types::{ClientId, LockMode, ObjectId, SimTime};
use siteselect_workload::Zipf;

fn bench_lock_table() {
    for &objects in &[8u32, 512] {
        bench(&format!("lock_table/request_release_cycle/{objects}"), |b| {
            let mut table: LockTable<ClientId> = LockTable::new(QueueDiscipline::Deadline);
            let mut rng = Prng::seed_from_u64(1);
            b.iter(|| {
                let obj = ObjectId(rng.below(u64::from(objects)) as u32);
                let owner = ClientId(rng.below(32) as u16);
                let mode = LockMode::for_write(rng.bernoulli(0.2));
                let _ = black_box(table.request(obj, owner, mode, SimTime::from_secs(60)));
                let _ = black_box(table.release(obj, owner));
            });
        });
    }
}

fn bench_wait_for_graph() {
    bench("wfg/would_deadlock_50_nodes", |b| {
        let mut g: WaitForGraph<u16> = WaitForGraph::new();
        // A long chain: worst case for the DFS.
        for i in 0..49u16 {
            g.add_waits(i, [i + 1]);
        }
        b.iter(|| black_box(g.would_deadlock(49, &[0])));
    });
}

fn bench_buffer_manager() {
    for &policy in &[Replacement::Lru, Replacement::Clock] {
        bench(&format!("buffer/fetch_zipf/{policy:?}"), |b| {
            let mut disk = DiskFile::with_patterned_pages(2_000);
            let mut buf = BufferManager::new(500, policy);
            let zipf = Zipf::new(2_000, 0.95);
            let mut rng = Prng::seed_from_u64(2);
            b.iter(|| {
                let id = ObjectId(zipf.sample(&mut rng) as u32);
                let f = buf.fetch(id, &mut disk).expect("page exists");
                buf.unpin(f).expect("pinned");
            });
        });
    }
}

fn bench_client_cache() {
    bench("client_cache/probe_insert_localized", |b| {
        let mut cache = ClientCache::new(500, 500);
        let mut rng = Prng::seed_from_u64(3);
        b.iter(|| {
            let id = ObjectId(rng.below(3_000) as u32);
            if cache.probe(id).is_none() {
                cache.insert(id);
            }
        });
    });
}

fn bench_event_queue() {
    bench("event_queue/push_pop_1000", |b| {
        let mut rng = Prng::seed_from_u64(4);
        b.iter(|| {
            let mut q = EventQueue::new();
            for i in 0..1_000u32 {
                q.push(SimTime::from_micros(rng.below(1_000_000)), i);
            }
            let mut count = 0;
            while q.pop().is_some() {
                count += 1;
            }
            black_box(count)
        });
    });
}

fn bench_prng_and_zipf() {
    bench("prng/exp_sample", |b| {
        let mut rng = Prng::seed_from_u64(5);
        b.iter(|| black_box(rng.exp_f64(10.0)));
    });
    bench("zipf/sample_10k_ranks", |b| {
        let zipf = Zipf::new(10_000, 0.95);
        let mut rng = Prng::seed_from_u64(6);
        b.iter(|| black_box(zipf.sample(&mut rng)));
    });
}

fn main() {
    bench_lock_table();
    bench_wait_for_graph();
    bench_buffer_manager();
    bench_client_cache();
    bench_event_queue();
    bench_prng_and_zipf();
}
