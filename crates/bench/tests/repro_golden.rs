//! Golden pin of the full paper reproduction: `repro all` must reproduce
//! `results/repro_all.txt` byte for byte. The sweep is deterministic and
//! machine-independent, so any drift means an engine change silently moved
//! the published numbers — regenerate the file deliberately instead:
//!
//! ```text
//! cargo run -p siteselect-bench --release --bin repro -- all > results/repro_all.txt
//! ```

use std::process::Command;

#[test]
#[ignore = "full paper reproduction (~2 min in release); run via scripts/ci.sh"]
fn repro_all_matches_pinned_results() {
    let out = Command::new(env!("CARGO_BIN_EXE_repro"))
        .arg("all")
        .output()
        .expect("spawn repro");
    assert!(
        out.status.success(),
        "repro all failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let got = String::from_utf8(out.stdout).expect("utf-8 output");
    let pinned_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../results/repro_all.txt");
    let pinned = std::fs::read_to_string(pinned_path).expect("read results/repro_all.txt");
    if got == pinned {
        return;
    }
    // Byte equality failed: report the first drifting line, not a dump of
    // both 100-line documents.
    for (i, (g, p)) in got.lines().zip(pinned.lines()).enumerate() {
        assert_eq!(
            g,
            p,
            "results/repro_all.txt drifted at line {}; if the change is \
             intended, regenerate with: cargo run -p siteselect-bench \
             --release --bin repro -- all > results/repro_all.txt",
            i + 1
        );
    }
    panic!(
        "results/repro_all.txt drifted in length: repro all printed {} lines, \
         the pinned file has {} — regenerate it deliberately",
        got.lines().count(),
        pinned.lines().count()
    );
}
