//! End-to-end tests of the `repro` command line: argument validation,
//! the simcheck self-test (`--inject-violation`), a small green explorer
//! run, and `--jobs` invariance of the printed report.

use std::process::{Command, Output};

fn repro(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(args)
        .output()
        .expect("spawn repro")
}

fn stderr_of(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

fn stdout_of(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

#[test]
fn zero_valued_numeric_flags_are_rejected_with_clear_errors() {
    for (args, needle) in [
        (&["check", "--jobs", "0"][..], "--jobs must be at least 1"),
        (&["check", "--seeds", "0"][..], "--seeds must be at least 1"),
        (&["check", "--clients", "0"][..], "--clients must be at least 1"),
        (&["check", "--duration", "0"][..], "--duration must be at least 1"),
        (&["faults", "--clients", "0"][..], "--clients must be at least 1"),
        (&["faults", "--jobs", "0"][..], "--jobs must be at least 1"),
        (&["trace", "--duration", "0"][..], "--duration must be at least 1"),
    ] {
        let out = repro(args);
        assert!(!out.status.success(), "{args:?} must fail");
        let err = stderr_of(&out);
        assert!(err.contains(needle), "{args:?} stderr missing {needle:?}: {err}");
    }
}

#[test]
fn garbled_numeric_flags_are_rejected_not_defaulted() {
    for (args, flag) in [
        (&["check", "--clients", "bogus"][..], "--clients"),
        (&["check", "--seeds", "1e9"][..], "--seeds"),
        (&["check", "--jobs", "-2"][..], "--jobs"),
        (&["trace", "--update", "lots"][..], "--update"),
        (&["check", "--seeds"][..], "--seeds"),
        (&["faults", "--clients", "many"][..], "--clients"),
        (&["faults", "--jobs", "4.5"][..], "--jobs"),
        (&["trace", "--seed", "0x7"][..], "--seed"),
        (&["trace", "--chaos", "heavy"][..], "--chaos"),
        (&["trace", "--warmup"][..], "--warmup"),
    ] {
        let out = repro(args);
        assert!(!out.status.success(), "{args:?} must fail");
        let err = stderr_of(&out);
        assert!(err.contains(flag), "{args:?} stderr missing {flag:?}: {err}");
    }
}

#[test]
fn out_of_range_fractions_are_rejected() {
    let out = repro(&["trace", "--update", "1.5"]);
    assert!(!out.status.success());
    assert!(stderr_of(&out).contains("--update must be a fraction in [0, 1]"));

    let out = repro(&["check", "--warmup", "80", "--duration", "60"]);
    assert!(!out.status.success());
    assert!(stderr_of(&out).contains("--warmup"));

    let out = repro(&["trace", "--chaos", "-0.5"]);
    assert!(!out.status.success());
    assert!(stderr_of(&out).contains("--chaos must be a non-negative intensity"));

    let out = repro(&["trace", "--system", "xx"]);
    assert!(!out.status.success());
    assert!(stderr_of(&out).contains("invalid value for --system"));
}

#[test]
fn restart_without_chaos_is_rejected() {
    for args in [&["trace", "--restart"][..], &["trace", "--chaos", "0.0", "--restart"][..]] {
        let out = repro(args);
        assert!(!out.status.success(), "{args:?} must fail");
        let err = stderr_of(&out);
        assert!(err.contains("--restart needs --chaos above 0"), "{args:?} stderr: {err}");
    }
}

#[test]
fn unknown_target_lists_the_valid_ones() {
    let out = repro(&["chekc"]);
    assert!(!out.status.success());
    let err = stderr_of(&out);
    assert!(err.contains("unknown target"), "stderr: {err}");
    assert!(err.contains("check"), "stderr: {err}");
}

#[test]
fn injected_violations_fail_with_diagnostic_and_replay() {
    for (kind, file) in [
        ("serializability", "crates/check/src/serializability.rs"),
        ("coherence", "crates/check/src/coherence.rs"),
        ("deadline", "crates/check/src/deadline.rs"),
        ("recovery", "crates/check/src/recovery.rs"),
    ] {
        let out = repro(&["check", "--inject-violation", kind]);
        assert!(!out.status.success(), "--inject-violation {kind} must exit non-zero");
        let err = stderr_of(&out);
        assert!(
            err.contains(&format!("{kind} violation at {file}")),
            "{kind}: missing file:line diagnostic in: {err}"
        );
        assert!(err.contains("replay:"), "{kind}: missing replay command in: {err}");
    }

    let out = repro(&["check", "--inject-violation", "nonsense"]);
    assert!(!out.status.success());
    assert!(stderr_of(&out).contains("--inject-violation"));
}

#[test]
fn small_explorer_run_is_green_and_jobs_invariant() {
    let args = |jobs: &'static str| {
        vec![
            "check", "--seeds", "2", "--clients", "2", "--duration", "60", "--warmup", "20",
            "--jobs", jobs,
        ]
    };
    let one = repro(&args("1"));
    assert!(
        one.status.success(),
        "green run failed: {}{}",
        stdout_of(&one),
        stderr_of(&one)
    );
    let report = stdout_of(&one);
    assert!(report.contains("cases passed"), "stdout: {report}");

    // The printed report must not depend on worker count.
    let three = repro(&args("3"));
    assert!(three.status.success());
    assert_eq!(stdout_of(&one), stdout_of(&three), "report differs across --jobs");
}
