//! Correctness oracles for the `siteselect` simulators, fed by the
//! deterministic event-trace pipeline (`siteselect-obs`):
//!
//! * [`serializability`] — replays [`Event::LockHeld`] / [`Event::UnitEnd`]
//!   lock episodes of committed execution units and runs cycle detection
//!   over the per-object conflict graph. Under strict 2PL the graph must be
//!   acyclic; overlapping conflicting episodes produce a 2-cycle.
//! * [`coherence`] — replays the callback-protocol cache events
//!   ([`Event::CacheInstall`] / `CacheDowngrade` / `CacheDrop` /
//!   `CacheWipe`) and enforces the invariant that an exclusive cached lock
//!   excludes every other client's cached lock on the same object.
//! * [`deadline`] — recounts [`Event::TxnSubmit`] / [`Event::Outcome`]
//!   pairs: every measured admission ends in exactly one terminal
//!   disposition, and the recount must equal the reported [`RunMetrics`].
//! * [`recovery`] — replays the WAL history ([`Event::WalWrite`] /
//!   `WalCommit` / `WalAbort`) against each post-restart state dump and
//!   asserts the durability contract: committed effects survive a
//!   crash-restart, aborted and loser effects never resurface.
//!
//! [`explore`] is the `simcheck` harness: a randomized schedule explorer
//! fanning seeds across system × update-rate × fault-profile cells, with a
//! greedy deterministic shrinker that minimizes a failing case and prints a
//! replayable `repro trace` command. [`synthetic`] builds known-bad
//! histories proving each oracle actually fires.
//!
//! [`Event::LockHeld`]: siteselect_obs::Event::LockHeld
//! [`Event::UnitEnd`]: siteselect_obs::Event::UnitEnd
//! [`Event::CacheInstall`]: siteselect_obs::Event::CacheInstall
//! [`Event::TxnSubmit`]: siteselect_obs::Event::TxnSubmit
//! [`Event::Outcome`]: siteselect_obs::Event::Outcome
//! [`Event::WalWrite`]: siteselect_obs::Event::WalWrite

use std::fmt;

use siteselect_core::{run_experiment_traced, RunMetrics};
use siteselect_obs::TraceData;
use siteselect_types::{ExperimentConfig, SimTime};

/// Builds a [`Violation`] (capturing `file:line`) and returns it as `Err`.
macro_rules! fail {
    ($oracle:expr, $($arg:tt)*) => {
        return Err($crate::Violation {
            oracle: $oracle,
            at: concat!(file!(), ":", line!()),
            detail: format!($($arg)*),
            replay: None,
        })
    };
}

pub mod coherence;
pub mod deadline;
pub mod explore;
pub mod recovery;
pub mod serializability;
pub mod synthetic;

/// Ring capacity used when the oracles attach tracing to a run. The
/// harness refuses to judge a truncated trace, so this must comfortably
/// exceed the event count of any explorer-scale run.
pub const TRACE_CAPACITY: usize = 1 << 21;

/// One oracle failure: which oracle, where in the oracle source the check
/// fired, what went wrong, and (when the harness knows it) how to replay
/// the offending run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Oracle name: `serializability`, `coherence`, `deadline`, `recovery`,
    /// or `harness` for infrastructure failures (e.g. a truncated trace).
    pub oracle: &'static str,
    /// `file:line` of the check that fired, for grep-ability.
    pub at: &'static str,
    /// Human-readable description of the violated invariant.
    pub detail: String,
    /// A shell command that reproduces the offending run, when known.
    pub replay: Option<String>,
}

impl Violation {
    /// Attaches a replay command to the violation.
    #[must_use]
    pub fn with_replay(mut self, cmd: String) -> Self {
        self.replay = Some(cmd);
        self
    }
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} violation at {}: {}", self.oracle, self.at, self.detail)?;
        if let Some(replay) = &self.replay {
            write!(f, "\n  replay: {replay}")?;
        }
        Ok(())
    }
}

impl std::error::Error for Violation {}

/// Runs all four oracles over a captured trace.
///
/// `warmup_end` is the instant the measurement window opened
/// (`SimTime::ZERO + cfg.runtime.warmup`); the deadline oracle uses it to
/// separate warm-up admissions from measured ones.
///
/// # Errors
///
/// Returns the first [`Violation`] any oracle detects. A trace whose ring
/// buffer dropped records is rejected outright — the oracles only judge
/// complete histories.
pub fn check_trace(
    trace: &TraceData,
    metrics: &RunMetrics,
    warmup_end: SimTime,
) -> Result<(), Violation> {
    if trace.report.dropped > 0 {
        fail!(
            "harness",
            "trace ring dropped {} of {} records; oracles need the complete \
             history — raise the sink capacity above {}",
            trace.report.dropped,
            trace.report.events,
            trace.records.len()
        );
    }
    serializability::check(trace)?;
    coherence::check(trace)?;
    deadline::check(trace, metrics, warmup_end)?;
    recovery::check(trace)?;
    Ok(())
}

/// Runs one traced experiment and judges it with every oracle.
///
/// # Errors
///
/// Returns a [`Violation`] if the configuration is rejected or any oracle
/// fires.
pub fn check_config(cfg: &ExperimentConfig) -> Result<RunMetrics, Violation> {
    let warmup_end = SimTime::ZERO + cfg.runtime.warmup;
    let (metrics, trace) = match run_experiment_traced(cfg, TRACE_CAPACITY) {
        Ok(pair) => pair,
        Err(e) => fail!("harness", "configuration rejected: {e}"),
    };
    check_trace(&trace, &metrics, warmup_end)?;
    Ok(metrics)
}

#[cfg(test)]
mod tests {
    use super::*;
    use siteselect_types::{SimDuration, SystemKind};

    #[test]
    fn a_clean_quick_run_passes_every_oracle() {
        let mut cfg = ExperimentConfig::paper(SystemKind::LoadSharing, 4, 0.20);
        cfg.runtime.duration = SimDuration::from_secs(200);
        cfg.runtime.warmup = SimDuration::from_secs(40);
        let metrics = check_config(&cfg).expect("oracles should pass");
        assert!(metrics.measured > 0);
    }

    #[test]
    fn truncated_traces_are_rejected() {
        let mut cfg = ExperimentConfig::paper(SystemKind::ClientServer, 4, 0.20);
        cfg.runtime.duration = SimDuration::from_secs(200);
        cfg.runtime.warmup = SimDuration::from_secs(40);
        let (metrics, trace) = run_experiment_traced(&cfg, 8).expect("run");
        let warmup_end = SimTime::ZERO + cfg.runtime.warmup;
        let v = check_trace(&trace, &metrics, warmup_end).unwrap_err();
        assert_eq!(v.oracle, "harness");
        assert!(v.detail.contains("dropped"), "{v}");
    }

    #[test]
    fn violations_render_their_location_and_replay() {
        let v = Violation {
            oracle: "deadline",
            at: "crates/check/src/deadline.rs:1",
            detail: "boom".into(),
            replay: None,
        }
        .with_replay("repro trace --seed 7".into());
        let text = v.to_string();
        assert!(text.contains("deadline violation at crates/check/src/deadline.rs:1"));
        assert!(text.contains("replay: repro trace --seed 7"));
    }
}
