//! Conflict-graph serializability oracle.
//!
//! Replays `LockHeld` / `UnitEnd` events into per-unit *lock episodes*: the
//! interval from a unit's first grant on an object to its terminal event
//! (strict 2PL releases everything at the end). Committed episodes are then
//! pairwise compared per object:
//!
//! * Disjoint conflicting episodes yield a precedence edge from the earlier
//!   unit to the later one (commit order is the serialization order under
//!   2PL).
//! * *Overlapping* conflicting episodes — two units simultaneously holding
//!   incompatible locks on one object — yield edges in both directions,
//!   because neither order serializes them. That immediately forms a
//!   2-cycle, which is exactly how a locking bug surfaces here.
//!
//! A shared hold that is later upgraded keeps two timestamps: shared-since
//! and exclusive-since. Only the exclusive portion `[x_since, end]`
//! conflicts with other readers, so a legal `S …upgrade… X` sequence is not
//! misread as a write overlapping earlier readers.

use std::collections::BTreeMap;

use siteselect_obs::{Event, TraceData};
use siteselect_types::{ObjectId, SimTime, TransactionId};

use crate::Violation;

/// One unit's hold on one object.
#[derive(Debug, Clone, Copy)]
struct Hold {
    /// First grant (shared or exclusive) on the object.
    since: SimTime,
    /// First exclusive grant, if the unit ever wrote the object.
    x_since: Option<SimTime>,
}

/// A committed execution unit: its lock episode snapshot at commit.
#[derive(Debug)]
struct Unit {
    id: TransactionId,
    end: SimTime,
    holds: Vec<(ObjectId, Hold)>,
}

/// Checks that committed lock episodes form an acyclic conflict graph.
///
/// # Errors
///
/// Returns a [`Violation`] naming the cycle (and a witness object for its
/// first edge) when the committed history is not conflict-serializable.
pub fn check(trace: &TraceData) -> Result<(), Violation> {
    let mut current: BTreeMap<u64, BTreeMap<ObjectId, Hold>> = BTreeMap::new();
    let mut committed: Vec<Unit> = Vec::new();
    for rec in &trace.records {
        match rec.event {
            Event::LockHeld {
                txn,
                object,
                exclusive,
            } => {
                let episode = current.entry(txn.as_u64()).or_default();
                let hold = episode.entry(object).or_insert(Hold {
                    since: rec.time,
                    x_since: None,
                });
                if exclusive && hold.x_since.is_none() {
                    hold.x_since = Some(rec.time);
                }
            }
            Event::UnitEnd { txn, committed: ok } => {
                // An aborted or shipped-away episode releases its locks and
                // leaves no committed trace; the same unit id may open a
                // fresh episode later (remote re-execution after a ship).
                if let Some(episode) = current.remove(&txn.as_u64()) {
                    if ok {
                        committed.push(Unit {
                            id: txn,
                            end: rec.time,
                            holds: episode.into_iter().collect(),
                        });
                    }
                }
            }
            _ => {}
        }
    }

    // Per-object instance lists drive the pairwise conflict scan.
    let mut per_object: BTreeMap<ObjectId, Vec<(usize, Hold)>> = BTreeMap::new();
    for (idx, unit) in committed.iter().enumerate() {
        for &(object, hold) in &unit.holds {
            per_object.entry(object).or_default().push((idx, hold));
        }
    }

    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); committed.len()];
    for (&object, instances) in &per_object {
        for i in 0..instances.len() {
            for j in (i + 1)..instances.len() {
                let (a_idx, a) = instances[i];
                let (b_idx, b) = instances[j];
                if a.x_since.is_none() && b.x_since.is_none() {
                    continue; // read-read: no conflict
                }
                let (end_a, end_b) = (committed[a_idx].end, committed[b_idx].end);
                // The conflicting portion of a writer is [x_since, end]; it
                // clashes with the whole episode [since, end] of the other.
                let overlap = a.x_since.is_some_and(|x| x < end_b && b.since < end_a)
                    || b.x_since.is_some_and(|x| x < end_a && a.since < end_b);
                if overlap {
                    let _ = object;
                    adj[a_idx].push(b_idx);
                    adj[b_idx].push(a_idx);
                } else if (end_a, committed[a_idx].id.as_u64())
                    < (end_b, committed[b_idx].id.as_u64())
                {
                    adj[a_idx].push(b_idx);
                } else {
                    adj[b_idx].push(a_idx);
                }
            }
        }
    }
    for edges in &mut adj {
        edges.sort_unstable();
        edges.dedup();
    }

    if let Some(cycle) = find_cycle(&adj) {
        let names: Vec<String> = cycle.iter().map(|&i| committed[i].id.to_string()).collect();
        let witness = witness_object(&per_object, cycle[0], cycle[1]);
        fail!(
            "serializability",
            "committed units form a conflict cycle {} -> {} (object {witness}: \
             conflicting lock episodes cannot be serialized in either order)",
            names.join(" -> "),
            names[0]
        );
    }
    Ok(())
}

/// An object on which two units of the cycle actually conflict, for the
/// diagnostic. Falls back to `ObjectId(0)`'s display if the pair shares no
/// object (cannot happen for adjacent cycle members).
fn witness_object(
    per_object: &BTreeMap<ObjectId, Vec<(usize, Hold)>>,
    a: usize,
    b: usize,
) -> ObjectId {
    for (&object, instances) in per_object {
        let hold = |idx: usize| instances.iter().find(|&&(i, _)| i == idx).map(|&(_, h)| h);
        if let (Some(ha), Some(hb)) = (hold(a), hold(b)) {
            if ha.x_since.is_some() || hb.x_since.is_some() {
                return object;
            }
        }
    }
    ObjectId(0)
}

/// Iterative three-color DFS; returns the node sequence of the first cycle
/// found, in deterministic (index) order.
fn find_cycle(adj: &[Vec<usize>]) -> Option<Vec<usize>> {
    const WHITE: u8 = 0;
    const GRAY: u8 = 1;
    const BLACK: u8 = 2;
    let mut color = vec![WHITE; adj.len()];
    for start in 0..adj.len() {
        if color[start] != WHITE {
            continue;
        }
        let mut stack: Vec<(usize, usize)> = vec![(start, 0)];
        color[start] = GRAY;
        while let Some(&mut (node, ref mut next)) = stack.last_mut() {
            if *next < adj[node].len() {
                let succ = adj[node][*next];
                *next += 1;
                match color[succ] {
                    WHITE => {
                        color[succ] = GRAY;
                        stack.push((succ, 0));
                    }
                    GRAY => {
                        let pos = stack
                            .iter()
                            .position(|&(n, _)| n == succ)
                            .expect("gray node is on the DFS path");
                        return Some(stack[pos..].iter().map(|&(n, _)| n).collect());
                    }
                    _ => {}
                }
            } else {
                color[node] = BLACK;
                stack.pop();
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use siteselect_obs::EventSink;
    use siteselect_types::{ClientId, SimTime, SiteId};

    fn unit(client: u16, seq: u64) -> TransactionId {
        TransactionId::new(ClientId(client), seq)
    }

    fn emit(sink: &EventSink, at: u64, event: Event) {
        sink.emit(SimTime::from_micros(at), SiteId::Server, move || event);
    }

    fn held(txn: TransactionId, object: u32, exclusive: bool) -> Event {
        Event::LockHeld {
            txn,
            object: ObjectId(object),
            exclusive,
        }
    }

    fn end(txn: TransactionId, committed: bool) -> Event {
        Event::UnitEnd { txn, committed }
    }

    #[test]
    fn disjoint_conflicting_episodes_pass() {
        let sink = EventSink::enabled(64);
        let (a, b) = (unit(0, 1), unit(1, 1));
        emit(&sink, 10, held(a, 7, true));
        emit(&sink, 20, end(a, true));
        emit(&sink, 20, held(b, 7, true));
        emit(&sink, 30, end(b, true));
        assert!(check(&sink.finish().unwrap()).is_ok());
    }

    #[test]
    fn overlapping_exclusive_episodes_form_a_cycle() {
        let sink = EventSink::enabled(64);
        let (a, b) = (unit(0, 1), unit(1, 1));
        emit(&sink, 10, held(a, 7, true));
        emit(&sink, 15, held(b, 7, true));
        emit(&sink, 20, end(a, true));
        emit(&sink, 25, end(b, true));
        let v = check(&sink.finish().unwrap()).unwrap_err();
        assert_eq!(v.oracle, "serializability");
        assert!(v.detail.contains("conflict cycle"), "{v}");
    }

    #[test]
    fn overlapping_shared_episodes_are_fine() {
        let sink = EventSink::enabled(64);
        let (a, b) = (unit(0, 1), unit(1, 1));
        emit(&sink, 10, held(a, 7, false));
        emit(&sink, 15, held(b, 7, false));
        emit(&sink, 20, end(a, true));
        emit(&sink, 25, end(b, true));
        assert!(check(&sink.finish().unwrap()).is_ok());
    }

    #[test]
    fn upgrade_after_reader_commits_is_not_backdated() {
        // a reads from t=10; b reads [12, 20]; a upgrades to X at t=25 once
        // b is gone. The X interval must start at 25, not at 10 — otherwise
        // this legal schedule would be flagged as a write/read overlap.
        let sink = EventSink::enabled(64);
        let (a, b) = (unit(0, 1), unit(1, 1));
        emit(&sink, 10, held(a, 7, false));
        emit(&sink, 12, held(b, 7, false));
        emit(&sink, 20, end(b, true));
        emit(&sink, 25, held(a, 7, true));
        emit(&sink, 30, end(a, true));
        assert!(check(&sink.finish().unwrap()).is_ok());
    }

    #[test]
    fn upgrade_overlapping_a_reader_is_flagged() {
        let sink = EventSink::enabled(64);
        let (a, b) = (unit(0, 1), unit(1, 1));
        emit(&sink, 10, held(a, 7, false));
        emit(&sink, 12, held(b, 7, false));
        emit(&sink, 15, held(a, 7, true)); // upgrade while b still reads
        emit(&sink, 20, end(b, true));
        emit(&sink, 25, end(a, true));
        assert!(check(&sink.finish().unwrap()).is_err());
    }

    #[test]
    fn aborted_episodes_never_conflict() {
        let sink = EventSink::enabled(64);
        let (a, b) = (unit(0, 1), unit(1, 1));
        emit(&sink, 10, held(a, 7, true));
        emit(&sink, 15, held(b, 7, true));
        emit(&sink, 20, end(a, false)); // aborted: discarded
        emit(&sink, 25, end(b, true));
        assert!(check(&sink.finish().unwrap()).is_ok());
    }

    #[test]
    fn a_shipped_unit_may_reexecute_under_the_same_id() {
        // Origin episode ends uncommitted (ship), the remote re-execution
        // opens a fresh episode for the same unit id and commits.
        let sink = EventSink::enabled(64);
        let a = unit(0, 1);
        emit(&sink, 10, held(a, 7, true));
        emit(&sink, 12, end(a, false)); // shipped away
        emit(&sink, 14, held(a, 9, true));
        emit(&sink, 20, end(a, true));
        assert!(check(&sink.finish().unwrap()).is_ok());
    }
}
