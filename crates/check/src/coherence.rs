//! Cache/lock-coherence oracle for the callback protocol.
//!
//! Replays the cached-lock table from the `CacheInstall` / `CacheDowngrade`
//! / `CacheDrop` / `CacheWipe` event stream in merged `(time, site, seq)`
//! order and enforces the callback invariant at every step: for any object,
//! an exclusive cached lock excludes every other client's cached lock, and
//! a shared cached lock excludes other clients' exclusive ones. Downgrades
//! (callback answered with downgrade-to-shared) and server-side lease
//! fences under chaos are part of the replayed protocol, not exemptions.
//!
//! A `CacheDrop` for an entry the replay does not hold is tolerated: a
//! lease fence can race an in-flight revoke, and the engine's removal of an
//! already-absent entry is a no-op there too.

use std::collections::BTreeMap;

use siteselect_obs::{Event, TraceData};
use siteselect_types::{ClientId, ObjectId};

use crate::Violation;

/// Checks the cached-lock exclusion invariant over the whole trace.
///
/// # Errors
///
/// Returns a [`Violation`] naming the object, both clients, and both modes
/// the first time two incompatible cached locks coexist, or when a client
/// downgrades a lock it does not hold.
pub fn check(trace: &TraceData) -> Result<(), Violation> {
    // object -> holder -> exclusive?
    let mut cached: BTreeMap<ObjectId, BTreeMap<ClientId, bool>> = BTreeMap::new();
    for rec in &trace.records {
        match rec.event {
            Event::CacheInstall {
                client,
                object,
                exclusive,
            } => {
                let holders = cached.entry(object).or_default();
                for (&other, &other_exclusive) in holders.iter() {
                    if other == client {
                        continue; // upgrading or refreshing its own entry
                    }
                    if exclusive || other_exclusive {
                        fail!(
                            "coherence",
                            "at t={}us client#{} installed {} cached lock on {object} \
                             while client#{} still holds {} — callback protocol let \
                             conflicting cached locks coexist",
                            rec.time.as_micros(),
                            client.0,
                            mode_str(exclusive),
                            other.0,
                            mode_str(other_exclusive)
                        );
                    }
                }
                holders.insert(client, exclusive);
            }
            Event::CacheDowngrade { client, object } => {
                match cached.get_mut(&object).and_then(|h| h.get_mut(&client)) {
                    Some(exclusive) => *exclusive = false,
                    None => fail!(
                        "coherence",
                        "at t={}us client#{} downgraded {object} but the replayed \
                         cache table shows it holding no cached lock there",
                        rec.time.as_micros(),
                        client.0
                    ),
                }
            }
            Event::CacheDrop { client, object } => {
                if let Some(holders) = cached.get_mut(&object) {
                    holders.remove(&client);
                }
            }
            Event::CacheWipe { client } => {
                for holders in cached.values_mut() {
                    holders.remove(&client);
                }
            }
            _ => {}
        }
    }
    Ok(())
}

fn mode_str(exclusive: bool) -> &'static str {
    if exclusive {
        "an exclusive"
    } else {
        "a shared"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use siteselect_obs::EventSink;
    use siteselect_types::{SimTime, SiteId};

    fn emit(sink: &EventSink, at: u64, event: Event) {
        sink.emit(SimTime::from_micros(at), SiteId::Server, move || event);
    }

    fn install(client: u16, object: u32, exclusive: bool) -> Event {
        Event::CacheInstall {
            client: ClientId(client),
            object: ObjectId(object),
            exclusive,
        }
    }

    fn drop_(client: u16, object: u32) -> Event {
        Event::CacheDrop {
            client: ClientId(client),
            object: ObjectId(object),
        }
    }

    #[test]
    fn shared_copies_coexist_and_handoff_passes() {
        let sink = EventSink::enabled(64);
        emit(&sink, 10, install(0, 5, false));
        emit(&sink, 12, install(1, 5, false));
        emit(&sink, 20, drop_(0, 5));
        emit(&sink, 21, drop_(1, 5));
        emit(&sink, 30, install(2, 5, true));
        assert!(check(&sink.finish().unwrap()).is_ok());
    }

    #[test]
    fn exclusive_alongside_shared_is_flagged() {
        let sink = EventSink::enabled(64);
        emit(&sink, 10, install(0, 5, true));
        emit(&sink, 12, install(1, 5, false));
        let v = check(&sink.finish().unwrap()).unwrap_err();
        assert_eq!(v.oracle, "coherence");
        assert!(v.detail.contains("conflicting cached locks"), "{v}");
    }

    #[test]
    fn downgrade_makes_room_for_readers() {
        let sink = EventSink::enabled(64);
        emit(&sink, 10, install(0, 5, true));
        emit(
            &sink,
            15,
            Event::CacheDowngrade {
                client: ClientId(0),
                object: ObjectId(5),
            },
        );
        emit(&sink, 20, install(1, 5, false));
        assert!(check(&sink.finish().unwrap()).is_ok());
    }

    #[test]
    fn downgrade_without_a_cached_lock_is_flagged() {
        let sink = EventSink::enabled(64);
        emit(
            &sink,
            15,
            Event::CacheDowngrade {
                client: ClientId(0),
                object: ObjectId(5),
            },
        );
        let v = check(&sink.finish().unwrap()).unwrap_err();
        assert!(v.detail.contains("no cached lock"), "{v}");
    }

    #[test]
    fn a_wipe_releases_everything_the_client_held() {
        let sink = EventSink::enabled(64);
        emit(&sink, 10, install(0, 5, true));
        emit(&sink, 11, install(0, 6, true));
        emit(&sink, 15, Event::CacheWipe { client: ClientId(0) });
        emit(&sink, 20, install(1, 5, true));
        emit(&sink, 21, install(1, 6, false));
        assert!(check(&sink.finish().unwrap()).is_ok());
    }

    #[test]
    fn upgrading_own_entry_is_not_a_conflict() {
        let sink = EventSink::enabled(64);
        emit(&sink, 10, install(0, 5, false));
        emit(&sink, 12, install(0, 5, true));
        assert!(check(&sink.finish().unwrap()).is_ok());
    }
}
