//! Deadline-accounting oracle.
//!
//! Recounts the trace against the reported [`RunMetrics`]: every measured
//! admission (`TxnSubmit` at or after `warmup_end`) must reach exactly one
//! terminal disposition (`Outcome`), warm-up admissions must reach none,
//! and the per-bucket recount — in-deadline commits, late commits, expiry,
//! deadlock, subtask failure, shutdown, site crash — must equal the
//! percentages the run reported. The one tolerated asymmetry: a site-crash
//! outcome may lack a submit record, because arrivals at a crashed site and
//! shipments lost to a crash are scored without ever being admitted.

use std::collections::BTreeMap;

use siteselect_core::RunMetrics;
use siteselect_obs::{outcome_str, Event, TraceData};
use siteselect_types::{AbortReason, SimTime, TransactionId, TxnOutcome};

use crate::Violation;

/// Recounts submit/outcome pairs and compares them with the reported
/// metrics.
///
/// # Errors
///
/// Returns a [`Violation`] for a transaction scored twice, a measured
/// admission never scored, a warm-up admission scored, a non-crash outcome
/// without an admission, or any recount/report bucket mismatch.
pub fn check(
    trace: &TraceData,
    metrics: &RunMetrics,
    warmup_end: SimTime,
) -> Result<(), Violation> {
    let mut submits: BTreeMap<u64, SimTime> = BTreeMap::new();
    let mut outcomes: BTreeMap<u64, TxnOutcome> = BTreeMap::new();
    for rec in &trace.records {
        match rec.event {
            Event::TxnSubmit { txn, .. } => {
                if let Some(first) = submits.insert(txn.as_u64(), rec.time) {
                    fail!(
                        "deadline",
                        "{txn} was submitted twice (first at t={}us, again at t={}us)",
                        first.as_micros(),
                        rec.time.as_micros()
                    );
                }
            }
            Event::Outcome { txn, outcome } => {
                if let Some(previous) = outcomes.insert(txn.as_u64(), outcome) {
                    fail!(
                        "deadline",
                        "{txn} was scored twice: {} and then {} at t={}us — every \
                         admitted transaction must end in exactly one bucket",
                        outcome_str(previous),
                        outcome_str(outcome),
                        rec.time.as_micros()
                    );
                }
            }
            _ => {}
        }
    }

    for (&raw, &outcome) in &outcomes {
        let txn = TransactionId::from_raw(raw);
        match submits.get(&raw) {
            Some(&at) if at >= warmup_end => {}
            Some(&at) => fail!(
                "deadline",
                "warm-up transaction {txn} (submitted at t={}us, measurement opens \
                 at t={}us) was scored {} — warm-up traffic must not be counted",
                at.as_micros(),
                warmup_end.as_micros(),
                outcome_str(outcome)
            ),
            None => {
                if outcome != TxnOutcome::Aborted(AbortReason::SiteCrash) {
                    fail!(
                        "deadline",
                        "{txn} was scored {} but never submitted — only site-crash \
                         losses may be scored without an admission record",
                        outcome_str(outcome)
                    );
                }
            }
        }
    }

    for (&raw, &at) in &submits {
        if at >= warmup_end && !outcomes.contains_key(&raw) {
            fail!(
                "deadline",
                "measured transaction {} (submitted at t={}us) never reached a \
                 terminal accounting state",
                TransactionId::from_raw(raw),
                at.as_micros()
            );
        }
    }

    let mut recount = RunMetrics::new(
        metrics.system,
        metrics.clients,
        metrics.update_fraction,
        metrics.seed,
    );
    for &outcome in outcomes.values() {
        recount.record_outcome(outcome);
    }
    let buckets = [
        ("measured", recount.measured, metrics.measured),
        ("in-deadline commits", recount.in_time, metrics.in_time),
        ("late commits", recount.failures.late, metrics.failures.late),
        ("expired", recount.failures.expired, metrics.failures.expired),
        ("deadlock", recount.failures.deadlock, metrics.failures.deadlock),
        ("subtask", recount.failures.subtask, metrics.failures.subtask),
        ("shutdown", recount.failures.shutdown, metrics.failures.shutdown),
        (
            "site-crash",
            recount.failures.site_crash,
            metrics.failures.site_crash,
        ),
    ];
    for (label, counted, reported) in buckets {
        if counted != reported {
            fail!(
                "deadline",
                "recount mismatch in the {label} bucket: the trace accounts for \
                 {counted} but the run reported {reported} (reported success \
                 {:.2}% vs recounted {:.2}%)",
                metrics.success_percent(),
                recount.success_percent()
            );
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use siteselect_obs::EventSink;
    use siteselect_types::{ClientId, SiteId, SystemKind};

    const WARMUP: SimTime = SimTime::from_micros(100);

    fn txn(seq: u64) -> TransactionId {
        TransactionId::new(ClientId(0), seq)
    }

    fn emit(sink: &EventSink, at: u64, event: Event) {
        sink.emit(SimTime::from_micros(at), SiteId::Server, move || event);
    }

    fn submit(id: TransactionId) -> Event {
        Event::TxnSubmit {
            txn: id,
            deadline: SimTime::from_micros(10_000),
            accesses: 1,
        }
    }

    fn outcome(id: TransactionId, outcome: TxnOutcome) -> Event {
        Event::Outcome { txn: id, outcome }
    }

    fn metrics_with(outcomes: &[TxnOutcome]) -> RunMetrics {
        let mut m = RunMetrics::new(SystemKind::ClientServer, 2, 0.2, 0);
        for &o in outcomes {
            m.record_outcome(o);
        }
        m
    }

    #[test]
    fn a_balanced_history_passes() {
        let sink = EventSink::enabled(64);
        emit(&sink, 50, submit(txn(1))); // warm-up: submitted, never scored
        emit(&sink, 150, submit(txn(2)));
        emit(&sink, 300, outcome(txn(2), TxnOutcome::Committed));
        emit(&sink, 200, submit(txn(3)));
        emit(&sink, 900, outcome(txn(3), TxnOutcome::CommittedLate));
        let m = metrics_with(&[TxnOutcome::Committed, TxnOutcome::CommittedLate]);
        assert!(check(&sink.finish().unwrap(), &m, WARMUP).is_ok());
    }

    #[test]
    fn a_lost_measured_transaction_is_flagged() {
        let sink = EventSink::enabled(64);
        emit(&sink, 150, submit(txn(2)));
        let m = metrics_with(&[]);
        let v = check(&sink.finish().unwrap(), &m, WARMUP).unwrap_err();
        assert_eq!(v.oracle, "deadline");
        assert!(v.detail.contains("never reached a terminal"), "{v}");
    }

    #[test]
    fn double_scoring_is_flagged() {
        let sink = EventSink::enabled(64);
        emit(&sink, 150, submit(txn(2)));
        emit(&sink, 300, outcome(txn(2), TxnOutcome::Committed));
        emit(&sink, 310, outcome(txn(2), TxnOutcome::CommittedLate));
        let m = metrics_with(&[TxnOutcome::Committed, TxnOutcome::CommittedLate]);
        let v = check(&sink.finish().unwrap(), &m, WARMUP).unwrap_err();
        assert!(v.detail.contains("scored twice"), "{v}");
    }

    #[test]
    fn scoring_warmup_traffic_is_flagged() {
        let sink = EventSink::enabled(64);
        emit(&sink, 50, submit(txn(1)));
        emit(&sink, 300, outcome(txn(1), TxnOutcome::Committed));
        let m = metrics_with(&[TxnOutcome::Committed]);
        let v = check(&sink.finish().unwrap(), &m, WARMUP).unwrap_err();
        assert!(v.detail.contains("warm-up"), "{v}");
    }

    #[test]
    fn phantom_outcomes_are_flagged_unless_site_crash() {
        let sink = EventSink::enabled(64);
        emit(&sink, 300, outcome(txn(9), TxnOutcome::Committed));
        let m = metrics_with(&[TxnOutcome::Committed]);
        let v = check(&sink.finish().unwrap(), &m, WARMUP).unwrap_err();
        assert!(v.detail.contains("never submitted"), "{v}");

        let sink = EventSink::enabled(64);
        emit(
            &sink,
            300,
            outcome(txn(9), TxnOutcome::Aborted(AbortReason::SiteCrash)),
        );
        let m = metrics_with(&[TxnOutcome::Aborted(AbortReason::SiteCrash)]);
        assert!(check(&sink.finish().unwrap(), &m, WARMUP).is_ok());
    }

    #[test]
    fn a_cooked_report_is_caught_by_the_recount() {
        let sink = EventSink::enabled(64);
        emit(&sink, 150, submit(txn(2)));
        emit(&sink, 900, outcome(txn(2), TxnOutcome::CommittedLate));
        // The report claims the late commit was in time.
        let m = metrics_with(&[TxnOutcome::Committed]);
        let v = check(&sink.finish().unwrap(), &m, WARMUP).unwrap_err();
        assert!(v.detail.contains("recount mismatch"), "{v}");
    }
}
