//! Durability/recovery oracle for the crash-restart fault mode.
//!
//! Replays the WAL history from the `WalWrite` / `WalCommit` / `WalAbort`
//! event stream: a logged write is *pending* until its transaction commits
//! (the stamp becomes the page's newest committed effect) or aborts (the
//! stamp is rolled back in place and must never be seen again). A server
//! `SiteCrash` turns every pending transaction into a recovery loser whose
//! stamps must likewise never resurface. After each replay the engine dumps
//! the durable state (`RecoveryDone`, one `WalState` per nonzero page,
//! `SiteRecover`), and the oracle holds it to the ARIES contract: every
//! committed effect survives restart, and no aborted or loser effect
//! resurfaces.
//!
//! Stamps are compared as `(page, stamp)` pairs: a crash can truncate
//! staged loser records, letting later writes reuse raw LSN values, but a
//! reused stamp on the *same* page can only be a legitimate recommit.

use std::collections::{BTreeMap, BTreeSet};

use siteselect_obs::{Event, TraceData};
use siteselect_types::{ObjectId, SiteId};

use crate::Violation;

/// Checks the durability contract over the whole trace.
///
/// # Errors
///
/// Returns a [`Violation`] naming the page and stamps the first time a
/// post-restart state dump shows a committed effect missing or a
/// rolled-back effect resurfacing.
pub fn check(trace: &TraceData) -> Result<(), Violation> {
    // txn -> writes logged but not yet resolved, in log order.
    let mut pending: BTreeMap<u64, Vec<(ObjectId, u64)>> = BTreeMap::new();
    // page -> stamp of its newest committed write.
    let mut expected: BTreeMap<ObjectId, u64> = BTreeMap::new();
    // Effects rolled back by an abort or lost with a crashed loser.
    let mut rolled_back: BTreeSet<(ObjectId, u64)> = BTreeSet::new();
    // Pages listed by the state dump currently being verified.
    let mut dump: Option<BTreeSet<ObjectId>> = None;

    for rec in &trace.records {
        match rec.event {
            Event::WalWrite { txn, page, stamp } => {
                pending.entry(txn.as_u64()).or_default().push((page, stamp));
            }
            Event::WalCommit { txn } => {
                for (page, stamp) in pending.remove(&txn.as_u64()).unwrap_or_default() {
                    expected.insert(page, stamp);
                }
            }
            Event::WalAbort { txn } => {
                for (page, stamp) in pending.remove(&txn.as_u64()).unwrap_or_default() {
                    rolled_back.insert((page, stamp));
                }
            }
            Event::SiteCrash {
                site: SiteId::Server,
            } => {
                // Every unresolved transaction is a loser: replay must roll
                // its logged effects back.
                for (_, writes) in std::mem::take(&mut pending) {
                    for (page, stamp) in writes {
                        rolled_back.insert((page, stamp));
                    }
                }
            }
            Event::RecoveryDone {
                site: SiteId::Server,
                ..
            } => {
                dump = Some(BTreeSet::new());
            }
            Event::WalState { page, stamp } => {
                let want = expected.get(&page).copied().unwrap_or(0);
                if stamp != want {
                    if rolled_back.contains(&(page, stamp)) {
                        fail!(
                            "recovery",
                            "at t={}us replay left {page} holding stamp {stamp}, \
                             the effect of a rolled-back or loser transaction — \
                             an aborted write resurfaced after restart (newest \
                             committed stamp there is {want})",
                            rec.time.as_micros()
                        );
                    }
                    fail!(
                        "recovery",
                        "at t={}us replay left {page} holding stamp {stamp} but \
                         its newest committed write is stamp {want} — a \
                         committed effect did not survive restart",
                        rec.time.as_micros()
                    );
                }
                if let Some(seen) = dump.as_mut() {
                    seen.insert(page);
                }
            }
            Event::SiteRecover {
                site: SiteId::Server,
            } => {
                if let Some(seen) = dump.take() {
                    // The dump lists every nonzero page, so a committed page
                    // absent from it reverted to pristine.
                    for (&page, &stamp) in &expected {
                        if stamp != 0 && !seen.contains(&page) {
                            fail!(
                                "recovery",
                                "post-restart state dump ending at t={}us has no \
                                 entry for {page}, whose newest committed write \
                                 is stamp {stamp} — a committed effect did not \
                                 survive restart",
                                rec.time.as_micros()
                            );
                        }
                    }
                }
            }
            _ => {}
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use siteselect_obs::EventSink;
    use siteselect_types::{ClientId, SimTime, TransactionId};

    fn emit(sink: &EventSink, at: u64, event: Event) {
        sink.emit(SimTime::from_micros(at), SiteId::Server, move || event);
    }

    fn txn(n: u64) -> TransactionId {
        TransactionId::new(ClientId(0), n)
    }

    fn write(t: u64, page: u32, stamp: u64) -> Event {
        Event::WalWrite {
            txn: txn(t),
            page: ObjectId(page),
            stamp,
        }
    }

    fn crash() -> Event {
        Event::SiteCrash {
            site: SiteId::Server,
        }
    }

    fn recovery_done() -> Event {
        Event::RecoveryDone {
            site: SiteId::Server,
            redo: 0,
            undone: 0,
            losers: 0,
            replay_ios: 0,
        }
    }

    fn state(page: u32, stamp: u64) -> Event {
        Event::WalState {
            page: ObjectId(page),
            stamp,
        }
    }

    fn recover() -> Event {
        Event::SiteRecover {
            site: SiteId::Server,
        }
    }

    #[test]
    fn committed_effects_surviving_restart_pass() {
        let sink = EventSink::enabled(64);
        emit(&sink, 10, write(1, 7, 5));
        emit(&sink, 11, Event::WalCommit { txn: txn(1) });
        emit(&sink, 20, write(2, 7, 9)); // loser: crashes before commit
        emit(&sink, 30, crash());
        emit(&sink, 40, recovery_done());
        emit(&sink, 40, state(7, 5)); // rolled back to the committed stamp
        emit(&sink, 40, recover());
        assert!(check(&sink.finish().unwrap()).is_ok());
    }

    #[test]
    fn a_resurfaced_loser_write_is_flagged() {
        let sink = EventSink::enabled(64);
        emit(&sink, 10, write(1, 7, 5));
        emit(&sink, 11, Event::WalCommit { txn: txn(1) });
        emit(&sink, 20, write(2, 7, 9));
        emit(&sink, 30, crash());
        emit(&sink, 40, recovery_done());
        emit(&sink, 40, state(7, 9)); // the loser's stamp survived
        emit(&sink, 40, recover());
        let v = check(&sink.finish().unwrap()).unwrap_err();
        assert_eq!(v.oracle, "recovery");
        assert!(v.detail.contains("resurfaced"), "{v}");
    }

    #[test]
    fn a_resurfaced_aborted_write_is_flagged() {
        let sink = EventSink::enabled(64);
        emit(&sink, 10, write(1, 3, 4));
        emit(&sink, 12, Event::WalAbort { txn: txn(1) });
        emit(&sink, 30, crash());
        emit(&sink, 40, recovery_done());
        emit(&sink, 40, state(3, 4));
        emit(&sink, 40, recover());
        let v = check(&sink.finish().unwrap()).unwrap_err();
        assert!(v.detail.contains("resurfaced"), "{v}");
    }

    #[test]
    fn a_lost_committed_effect_is_flagged() {
        let sink = EventSink::enabled(64);
        emit(&sink, 10, write(1, 7, 5));
        emit(&sink, 11, Event::WalCommit { txn: txn(1) });
        emit(&sink, 30, crash());
        emit(&sink, 40, recovery_done());
        emit(&sink, 40, state(7, 2)); // some stale stamp instead
        emit(&sink, 40, recover());
        let v = check(&sink.finish().unwrap()).unwrap_err();
        assert!(v.detail.contains("did not survive"), "{v}");
    }

    #[test]
    fn a_committed_page_missing_from_the_dump_is_flagged() {
        let sink = EventSink::enabled(64);
        emit(&sink, 10, write(1, 7, 5));
        emit(&sink, 11, Event::WalCommit { txn: txn(1) });
        emit(&sink, 30, crash());
        emit(&sink, 40, recovery_done());
        emit(&sink, 40, recover()); // dump is empty: page 7 reverted to pristine
        let v = check(&sink.finish().unwrap()).unwrap_err();
        assert!(v.detail.contains("no entry"), "{v}");
    }

    #[test]
    fn client_crashes_do_not_create_losers() {
        let sink = EventSink::enabled(64);
        emit(&sink, 10, write(1, 7, 5));
        emit(
            &sink,
            15,
            Event::SiteCrash {
                site: SiteId::Client(ClientId(1)),
            },
        );
        emit(&sink, 20, Event::WalCommit { txn: txn(1) });
        emit(&sink, 30, crash());
        emit(&sink, 40, recovery_done());
        emit(&sink, 40, state(7, 5));
        emit(&sink, 40, recover());
        assert!(check(&sink.finish().unwrap()).is_ok());
    }
}
