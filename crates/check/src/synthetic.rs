//! Known-bad synthetic histories: one per oracle, used by unit tests and
//! by `repro check --inject-violation` to prove each oracle actually fires
//! (a checker that never fails checks nothing).

use siteselect_core::RunMetrics;
use siteselect_obs::{Event, EventSink, TraceData};
use siteselect_types::{
    ClientId, ObjectId, SimTime, SiteId, SystemKind, TransactionId, TxnOutcome,
};

use crate::{check_trace, Violation};

/// Which oracle to feed a known-bad history.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InjectKind {
    /// Two committed units with overlapping exclusive lock episodes.
    Serializability,
    /// Conflicting cached locks installed at two clients at once.
    Coherence,
    /// A measured admission that never reaches a terminal state.
    Deadline,
    /// A post-restart state dump where a loser's write survived replay.
    Recovery,
}

impl InjectKind {
    /// Every injectable kind, in CLI order.
    pub const ALL: [InjectKind; 4] = [
        InjectKind::Serializability,
        InjectKind::Coherence,
        InjectKind::Deadline,
        InjectKind::Recovery,
    ];

    /// The CLI label (`serializability` / `coherence` / `deadline` /
    /// `recovery`).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            InjectKind::Serializability => "serializability",
            InjectKind::Coherence => "coherence",
            InjectKind::Deadline => "deadline",
            InjectKind::Recovery => "recovery",
        }
    }

    /// Parses a CLI label.
    #[must_use]
    pub fn parse(label: &str) -> Option<InjectKind> {
        InjectKind::ALL
            .into_iter()
            .find(|k| k.label() == label.to_ascii_lowercase())
    }
}

fn emit(sink: &EventSink, at: u64, event: Event) {
    sink.emit(SimTime::from_micros(at), SiteId::Server, move || event);
}

/// Builds the known-bad history for `kind` and returns it together with
/// the metrics the run would (falsely) report and the warm-up cut.
#[must_use]
pub fn bad_history(kind: InjectKind) -> (TraceData, RunMetrics, SimTime) {
    let sink = EventSink::enabled(64);
    let mut metrics = RunMetrics::new(SystemKind::ClientServer, 2, 0.20, 0);
    let warmup_end = SimTime::from_micros(100);
    let a = TransactionId::new(ClientId(0), 1);
    let b = TransactionId::new(ClientId(1), 1);
    match kind {
        InjectKind::Serializability => {
            // a and b both hold the exclusive lock on obj#7 at t in
            // [150, 200): neither commit order serializes them.
            emit(&sink, 140, Event::LockHeld { txn: a, object: ObjectId(7), exclusive: true });
            emit(&sink, 150, Event::LockHeld { txn: b, object: ObjectId(7), exclusive: true });
            emit(&sink, 200, Event::UnitEnd { txn: a, committed: true });
            emit(&sink, 210, Event::UnitEnd { txn: b, committed: true });
        }
        InjectKind::Coherence => {
            // Client 1 is handed a shared copy while client 0 still holds
            // an exclusive cached lock — a lost callback.
            emit(
                &sink,
                140,
                Event::CacheInstall { client: ClientId(0), object: ObjectId(7), exclusive: true },
            );
            emit(
                &sink,
                150,
                Event::CacheInstall { client: ClientId(1), object: ObjectId(7), exclusive: false },
            );
        }
        InjectKind::Deadline => {
            // a is admitted inside the measurement window and the ledger
            // claims one in-deadline commit — but the trace shows a never
            // reached a terminal state.
            emit(
                &sink,
                150,
                Event::TxnSubmit { txn: a, deadline: SimTime::from_micros(900), accesses: 1 },
            );
            metrics.record_outcome(TxnOutcome::Committed);
        }
        InjectKind::Recovery => {
            // a commits stamp 11 on obj#7, then b's uncommitted write lands
            // stamp 12 there and the server crashes — but replay leaves the
            // loser's stamp in place instead of rolling back to a's.
            emit(&sink, 140, Event::WalWrite { txn: a, page: ObjectId(7), stamp: 11 });
            emit(&sink, 150, Event::WalCommit { txn: a });
            emit(&sink, 160, Event::WalWrite { txn: b, page: ObjectId(7), stamp: 12 });
            emit(&sink, 200, Event::SiteCrash { site: SiteId::Server });
            emit(
                &sink,
                260,
                Event::RecoveryDone {
                    site: SiteId::Server,
                    redo: 1,
                    undone: 0,
                    losers: 1,
                    replay_ios: 1,
                },
            );
            emit(&sink, 260, Event::WalState { page: ObjectId(7), stamp: 12 });
            emit(&sink, 260, Event::SiteRecover { site: SiteId::Server });
        }
    }
    (sink.finish().expect("sink enabled"), metrics, warmup_end)
}

/// Feeds the known-bad history for `kind` through [`check_trace`] and
/// returns the violation the oracle must produce.
///
/// # Errors
///
/// Returns an error string if the oracle fails to fire (the self-test
/// failing its own self-test).
pub fn prove_oracle_fires(kind: InjectKind) -> Result<Violation, String> {
    let (trace, metrics, warmup_end) = bad_history(kind);
    match check_trace(&trace, &metrics, warmup_end) {
        Err(v) if v.oracle == kind.label() => Ok(v),
        Err(v) => Err(format!(
            "injected a {} violation but the {} oracle fired instead: {v}",
            kind.label(),
            v.oracle
        )),
        Ok(()) => Err(format!(
            "injected a {} violation but every oracle passed — the oracle is dead",
            kind.label()
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_oracle_fires_on_its_injected_violation() {
        for kind in InjectKind::ALL {
            let v = prove_oracle_fires(kind).expect("oracle must fire");
            assert_eq!(v.oracle, kind.label());
            assert!(
                v.at.contains(".rs:"),
                "diagnostic should carry file:line, got {}",
                v.at
            );
        }
    }

    #[test]
    fn labels_round_trip() {
        for kind in InjectKind::ALL {
            assert_eq!(InjectKind::parse(kind.label()), Some(kind));
        }
        assert_eq!(InjectKind::parse("nonsense"), None);
    }
}
