//! `simcheck`: randomized schedule exploration with shrinking.
//!
//! The explorer fans seeds across a fixed cell matrix — system (CE / CS /
//! LS) × update rate × fault profile — runs every case under all three
//! oracles, and on the first failure (lowest case index, so the outcome is
//! identical at every `--jobs` count) greedily shrinks the case to the
//! smallest client count, run length, and fault profile that still fails.
//! Everything is deterministic: the same seeds produce the same report
//! byte-for-byte regardless of worker count, and every reported failure
//! carries a replayable `repro trace` command.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use siteselect_core::experiments::effective_jobs;
use siteselect_core::RunMetrics;
use siteselect_types::{ExperimentConfig, FaultConfig, SimDuration, SystemKind};

use crate::{check_config, Violation};

/// Default base seed for the explorer (`simcheck` in leetspeak-adjacent
/// hex); case `i` runs at `base_seed + i`.
pub const DEFAULT_BASE_SEED: u64 = 0x51AC_0C43;

/// One cell of the exploration matrix.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Cell {
    /// System under test.
    pub system: SystemKind,
    /// Per-access update probability.
    pub update_fraction: f64,
    /// `FaultConfig::chaos` intensity; `0.0` means faults off.
    pub chaos_intensity: f64,
    /// True adds the server crash-restart schedule
    /// (`FaultConfig::chaos_restart`), exercising WAL replay and the
    /// recovery oracle.
    pub restart: bool,
}

/// The fixed exploration matrix: 3 systems × 2 update rates × 3 fault
/// profiles = 18 chaos cells, plus 3 systems × 2 intensities of
/// crash-restart chaos at the write-heavy rate = 24 cells total. Case `i`
/// lands in cell `i % 24`.
#[must_use]
pub fn matrix() -> Vec<Cell> {
    let mut cells = Vec::with_capacity(24);
    for &system in &SystemKind::ALL {
        for &update_fraction in &[0.05, 0.20] {
            for &chaos_intensity in &[0.0, 0.5, 1.0] {
                cells.push(Cell {
                    system,
                    update_fraction,
                    chaos_intensity,
                    restart: false,
                });
            }
        }
    }
    // Crash-restart cells at the write-heavy rate: recovery has losers to
    // roll back only when transactions actually write.
    for &system in &SystemKind::ALL {
        for &chaos_intensity in &[0.5, 1.0] {
            cells.push(Cell {
                system,
                update_fraction: 0.20,
                chaos_intensity,
                restart: true,
            });
        }
    }
    cells
}

/// Everything needed to rebuild one explored run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CaseSpec {
    /// The matrix cell.
    pub cell: Cell,
    /// PRNG seed.
    pub seed: u64,
    /// Cluster size.
    pub clients: u16,
    /// Simulated run length.
    pub duration: SimDuration,
    /// Warm-up cut before measurement opens.
    pub warmup: SimDuration,
}

impl CaseSpec {
    /// The experiment configuration this case runs.
    #[must_use]
    pub fn config(&self) -> ExperimentConfig {
        let mut cfg =
            ExperimentConfig::paper(self.cell.system, self.clients, self.cell.update_fraction);
        cfg.runtime.duration = self.duration;
        cfg.runtime.warmup = self.warmup;
        cfg.runtime.seed = self.seed;
        if self.cell.restart {
            cfg.faults = FaultConfig::chaos_restart(self.cell.chaos_intensity);
        } else if self.cell.chaos_intensity > 0.0 {
            cfg.faults = FaultConfig::chaos(self.cell.chaos_intensity);
        }
        cfg
    }

    /// A shell command that replays this exact run with tracing attached
    /// and the oracles re-judging it.
    #[must_use]
    pub fn replay_command(&self) -> String {
        let mut cmd = format!(
            "cargo run -p siteselect-bench --release --bin repro -- trace \
             --system {} --clients {} --update {} --seed {} --duration {} --warmup {}",
            system_flag(self.cell.system),
            self.clients,
            self.cell.update_fraction,
            self.seed,
            self.duration.as_micros() / 1_000_000,
            self.warmup.as_micros() / 1_000_000,
        );
        if self.cell.chaos_intensity > 0.0 {
            cmd.push_str(&format!(" --chaos {}", self.cell.chaos_intensity));
        }
        if self.cell.restart {
            cmd.push_str(" --restart");
        }
        cmd
    }

    /// Runs the case under all four oracles, attaching the replay command
    /// to any violation.
    ///
    /// # Errors
    ///
    /// Returns the first [`Violation`] an oracle detects.
    pub fn run(&self) -> Result<RunMetrics, Violation> {
        check_config(&self.config()).map_err(|v| v.with_replay(self.replay_command()))
    }
}

/// Short CLI label for a system (`ce` / `cs` / `ls`).
#[must_use]
pub fn system_flag(system: SystemKind) -> &'static str {
    match system {
        SystemKind::Centralized => "ce",
        SystemKind::ClientServer => "cs",
        SystemKind::LoadSharing => "ls",
    }
}

/// Parses a CLI system label (`ce` / `cs` / `ls`, case-insensitive).
#[must_use]
pub fn parse_system(label: &str) -> Option<SystemKind> {
    match label.to_ascii_lowercase().as_str() {
        "ce" | "centralized" => Some(SystemKind::Centralized),
        "cs" | "clientserver" | "client-server" => Some(SystemKind::ClientServer),
        "ls" | "loadsharing" | "load-sharing" => Some(SystemKind::LoadSharing),
        _ => None,
    }
}

/// Exploration parameters.
#[derive(Debug, Clone, Copy)]
pub struct ExploreOptions {
    /// Number of (cell, seed) cases to run.
    pub seeds: u64,
    /// Worker threads; `0` means one per core.
    pub jobs: usize,
    /// Seed of case 0; case `i` uses `base_seed + i`.
    pub base_seed: u64,
    /// Cluster size of every explored case.
    pub clients: u16,
    /// Run length of every explored case.
    pub duration: SimDuration,
    /// Warm-up of every explored case.
    pub warmup: SimDuration,
}

impl Default for ExploreOptions {
    fn default() -> Self {
        ExploreOptions {
            seeds: 72,
            jobs: 0,
            base_seed: DEFAULT_BASE_SEED,
            clients: 8,
            duration: SimDuration::from_secs(150),
            warmup: SimDuration::from_secs(30),
        }
    }
}

/// A minimized failure: the original failing case and its shrunk form.
#[derive(Debug, Clone)]
pub struct Failure {
    /// The case the explorer first caught.
    pub original: CaseSpec,
    /// The smallest case the shrinker still saw fail.
    pub shrunk: CaseSpec,
    /// The violation the shrunk case produces.
    pub violation: Violation,
    /// Number of accepted shrink steps.
    pub shrink_steps: u32,
}

/// The explorer's result.
#[derive(Debug, Clone)]
pub struct ExploreReport {
    /// Cases run before stopping (all of them when everything passed).
    pub cases_run: u64,
    /// Transactions measured across all passing cases.
    pub measured_total: u64,
    /// The minimized failure, if any case failed.
    pub failure: Option<Failure>,
}

impl ExploreReport {
    /// True when every explored case passed every oracle.
    #[must_use]
    pub fn passed(&self) -> bool {
        self.failure.is_none()
    }

    /// Renders the report (the `repro check` output body).
    #[must_use]
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        match &self.failure {
            None => {
                let _ = writeln!(
                    out,
                    "simcheck: {} cases passed serializability, coherence, \
                     deadline-accounting and recovery oracles ({} measured \
                     transactions recounted)",
                    self.cases_run, self.measured_total
                );
            }
            Some(f) => {
                let _ = writeln!(out, "simcheck: FAILED after {} cases", self.cases_run);
                let _ = writeln!(
                    out,
                    "  original: {} {} clients seed {} update {} chaos {}{} duration {}s",
                    system_flag(f.original.cell.system),
                    f.original.clients,
                    f.original.seed,
                    f.original.cell.update_fraction,
                    f.original.cell.chaos_intensity,
                    if f.original.cell.restart { " restart" } else { "" },
                    f.original.duration.as_micros() / 1_000_000,
                );
                let _ = writeln!(
                    out,
                    "  shrunk ({} steps): {} {} clients seed {} update {} chaos {}{} duration {}s",
                    f.shrink_steps,
                    system_flag(f.shrunk.cell.system),
                    f.shrunk.clients,
                    f.shrunk.seed,
                    f.shrunk.cell.update_fraction,
                    f.shrunk.cell.chaos_intensity,
                    if f.shrunk.cell.restart { " restart" } else { "" },
                    f.shrunk.duration.as_micros() / 1_000_000,
                );
                let _ = writeln!(out, "  {}", f.violation);
            }
        }
        out
    }
}

/// Runs the explorer: `opts.seeds` cases across the matrix, in parallel,
/// then shrinks the lowest-index failure (if any).
#[must_use]
pub fn explore(opts: &ExploreOptions) -> ExploreReport {
    let cells = matrix();
    let cases: Vec<CaseSpec> = (0..opts.seeds)
        .map(|i| CaseSpec {
            cell: cells[usize::try_from(i).unwrap_or(usize::MAX) % cells.len()],
            seed: opts.base_seed.wrapping_add(i),
            clients: opts.clients,
            duration: opts.duration,
            warmup: opts.warmup,
        })
        .collect();

    // The parallel map mirrors `experiments::run_many`: workers pull case
    // indices from a shared counter and results are merged into
    // index-ordered slots, so the outcome is identical at every job count.
    let jobs = effective_jobs(opts.jobs, cases.len());
    let mut slots: Vec<Option<Result<RunMetrics, Violation>>> = Vec::new();
    if jobs <= 1 {
        slots.extend(cases.iter().map(|case| Some(case.run())));
    } else {
        slots.resize(cases.len(), None);
        let next = AtomicUsize::new(0);
        let merged: Mutex<Vec<(usize, Result<RunMetrics, Violation>)>> =
            Mutex::new(Vec::with_capacity(cases.len()));
        std::thread::scope(|scope| {
            for _ in 0..jobs {
                scope.spawn(|| {
                    let mut local = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= cases.len() {
                            break;
                        }
                        local.push((i, cases[i].run()));
                    }
                    merged.lock().expect("worker panicked").extend(local);
                });
            }
        });
        for (i, result) in merged.into_inner().expect("worker panicked") {
            slots[i] = Some(result);
        }
    }

    let mut measured_total = 0;
    for (i, slot) in slots.iter().enumerate() {
        match slot.as_ref().expect("every case ran") {
            Ok(metrics) => measured_total += metrics.measured,
            Err(violation) => {
                let original = cases[i];
                let (shrunk, violation, shrink_steps) = shrink(original, violation.clone());
                return ExploreReport {
                    cases_run: opts.seeds,
                    measured_total,
                    failure: Some(Failure {
                        original,
                        shrunk,
                        violation,
                        shrink_steps,
                    }),
                };
            }
        }
    }
    ExploreReport {
        cases_run: opts.seeds,
        measured_total,
        failure: None,
    }
}

/// Greedy deterministic shrinker: repeatedly tries, in a fixed order,
/// halving the client count, dropping one client, halving the run length,
/// and weakening the fault profile — keeping any reduction that still
/// fails — until no step applies. Sequential, so its result is independent
/// of the explorer's `--jobs`.
fn shrink(case: CaseSpec, violation: Violation) -> (CaseSpec, Violation, u32) {
    let mut best = case;
    let mut last = violation;
    let mut steps = 0;
    loop {
        let mut candidates: Vec<CaseSpec> = Vec::new();
        if best.clients > 1 {
            let mut c = best;
            c.clients = (best.clients / 2).max(1);
            candidates.push(c);
            let mut c = best;
            c.clients = best.clients - 1;
            candidates.push(c);
        }
        let half = SimDuration::from_micros(best.duration.as_micros() / 2);
        if half.as_micros() >= best.warmup.as_micros() * 2 {
            let mut c = best;
            c.duration = half;
            candidates.push(c);
        }
        if best.cell.restart {
            // Weakening the fault profile: first try the same chaos without
            // the server crash-restart schedule.
            let mut c = best;
            c.cell.restart = false;
            candidates.push(c);
        }
        if best.cell.chaos_intensity > 0.0 {
            let mut c = best;
            c.cell.chaos_intensity = if best.cell.chaos_intensity > 0.5 { 0.5 } else { 0.0 };
            candidates.push(c);
        }
        let mut reduced = false;
        for candidate in candidates {
            if let Err(v) = candidate.run() {
                best = candidate;
                last = v;
                steps += 1;
                reduced = true;
                break;
            }
        }
        if !reduced {
            return (best, last, steps);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_matrix_covers_all_systems_and_profiles() {
        let cells = matrix();
        assert_eq!(cells.len(), 24);
        for &system in &SystemKind::ALL {
            assert!(cells
                .iter()
                .any(|c| c.system == system && c.chaos_intensity > 0.0));
            assert!(cells
                .iter()
                .any(|c| c.system == system && c.chaos_intensity == 0.0));
            // Every system gets crash-restart coverage, always write-heavy
            // so replay has committed effects and losers to arbitrate.
            assert!(cells
                .iter()
                .any(|c| c.system == system && c.restart && c.update_fraction == 0.20));
        }
    }

    #[test]
    fn system_flags_round_trip() {
        for &system in &SystemKind::ALL {
            assert_eq!(parse_system(system_flag(system)), Some(system));
        }
        assert_eq!(parse_system("bogus"), None);
    }

    #[test]
    fn replay_commands_name_every_knob() {
        let case = CaseSpec {
            cell: Cell {
                system: SystemKind::LoadSharing,
                update_fraction: 0.20,
                chaos_intensity: 0.5,
                restart: false,
            },
            seed: 42,
            clients: 6,
            duration: SimDuration::from_secs(150),
            warmup: SimDuration::from_secs(30),
        };
        let cmd = case.replay_command();
        assert!(cmd.contains("--system ls"), "{cmd}");
        assert!(cmd.contains("--clients 6"), "{cmd}");
        assert!(cmd.contains("--seed 42"), "{cmd}");
        assert!(cmd.contains("--chaos 0.5"), "{cmd}");
        assert!(cmd.contains("--duration 150"), "{cmd}");
        assert!(!cmd.contains("--restart"), "{cmd}");
        let mut restart_case = case;
        restart_case.cell.restart = true;
        let cmd = restart_case.replay_command();
        assert!(cmd.contains("--chaos 0.5"), "{cmd}");
        assert!(cmd.ends_with("--restart"), "{cmd}");
    }

    #[test]
    fn a_small_exploration_passes_and_is_jobs_invariant() {
        let opts = ExploreOptions {
            seeds: 6,
            jobs: 1,
            clients: 4,
            duration: SimDuration::from_secs(120),
            warmup: SimDuration::from_secs(30),
            ..ExploreOptions::default()
        };
        let sequential = explore(&opts);
        assert!(sequential.passed(), "{}", sequential.render());
        let parallel = explore(&ExploreOptions { jobs: 3, ..opts });
        assert_eq!(sequential.render(), parallel.render());
        assert_eq!(sequential.measured_total, parallel.measured_total);
    }
}
