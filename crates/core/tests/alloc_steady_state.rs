//! Asserts the centralized hot loop's allocation discipline: after warm-up,
//! steady-state event processing performs **zero** heap allocations.
//!
//! A counting `#[global_allocator]` wraps the system allocator for this test
//! binary only. The run uses a read-only workload (`update_fraction = 0`) so
//! the append-only WAL — which grows by design — stays quiet and the test
//! isolates the submit→lock→I/O→commit→result path: pooled event-queue
//! slots, inline transaction state, the slab-backed caches, and the
//! pre-sized lock table must all recycle without touching the allocator.

// `GlobalAlloc` is an unsafe trait; this is the one place in the workspace
// that needs it, and the implementation only counts calls before forwarding
// verbatim to the system allocator.
#![allow(unsafe_code)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use siteselect_core::CentralizedSim;
use siteselect_types::{ExperimentConfig, SimDuration, SystemKind};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

// SAFETY: every method forwards verbatim to `System`, which upholds the
// `GlobalAlloc` contract; the counter is a side effect with no aliasing.
unsafe impl GlobalAlloc for CountingAlloc {
    // SAFETY: delegates to `System::alloc` under the caller's contract.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: same layout the caller vouched for.
        unsafe { System.alloc(layout) }
    }

    // SAFETY: delegates to `System::dealloc` under the caller's contract.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: `ptr`/`layout` come from a matching `alloc` per the
        // caller's `GlobalAlloc` obligations.
        unsafe { System.dealloc(ptr, layout) }
    }

    // SAFETY: delegates to `System::realloc` under the caller's contract.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: `ptr`/`layout`/`new_size` forwarded unchanged.
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    // SAFETY: delegates to `System::alloc_zeroed` under the caller's contract.
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: same layout the caller vouched for.
        unsafe { System.alloc_zeroed(layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[test]
fn centralized_steady_state_allocates_nothing() {
    let mut cfg = ExperimentConfig::paper(SystemKind::Centralized, 6, 0.0);
    cfg.runtime.duration = SimDuration::from_secs(200);
    cfg.runtime.warmup = SimDuration::from_secs(40);
    cfg.runtime.seed = 0x5173_5e1e;
    let warmup_end = siteselect_types::SimTime::ZERO + cfg.runtime.warmup;

    let mut sim = CentralizedSim::new(cfg);
    sim.prepare();
    // Warm up: capacities (queue slots, lock-table maps, buffer slabs,
    // scratch vectors) reach their steady-state sizes here.
    while sim.now() < warmup_end {
        assert!(sim.step(), "run drained before the warm-up window ended");
    }

    let before = ALLOCS.load(Ordering::Relaxed);
    let mut measured = 0u64;
    for _ in 0..200 {
        if !sim.step() {
            break;
        }
        measured += 1;
    }
    let after = ALLOCS.load(Ordering::Relaxed);

    assert!(measured >= 100, "too few steady-state events measured: {measured}");
    assert_eq!(
        after - before,
        0,
        "steady-state event processing allocated ({} allocations over {measured} events)",
        after - before
    );
}
