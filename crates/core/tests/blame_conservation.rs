//! Blame conservation: every transaction's blame vector must sum
//! **exactly** — integer microseconds, no tolerance — to its measured
//! end-to-end latency, in all three systems, with and without chaos and
//! crash-restart faults. The attribution partitions `[submit, outcome]`
//! into segments charged to exactly one cause, so any drift means the
//! extractor double-charged or lost time.
//!
//! Also pins one seed's full blame report against
//! `results/blame_golden.json`: the report is deterministic and
//! machine-independent, so any drift means an engine or extractor change
//! silently moved the attribution — regenerate the file deliberately:
//!
//! ```text
//! BLESS=1 cargo test -p siteselect-core --test blame_conservation \
//!     blame_report_matches_golden_pin
//! ```

use siteselect_core::run_experiment_traced;
use siteselect_obs::blame::txn_blames;
use siteselect_obs::{BlameReport, MetricsRegistry, SpanKind};
use siteselect_types::{ExperimentConfig, FaultConfig, SimDuration, SystemKind};

const CAPACITY: usize = 1 << 20;

fn cfg(system: SystemKind, duration_s: u64, faults: Option<FaultConfig>) -> ExperimentConfig {
    let mut cfg = ExperimentConfig::paper(system, 5, 0.20);
    cfg.runtime.duration = SimDuration::from_secs(duration_s);
    cfg.runtime.warmup = SimDuration::from_secs(50);
    if let Some(f) = faults {
        cfg.faults = f;
    }
    cfg
}

/// Checks every transaction of one traced run: exact vector conservation,
/// and a critical path that telescopes gaplessly from submission to
/// outcome. Returns how many transactions were checked.
fn assert_conserved(cfg: &ExperimentConfig, label: &str) -> usize {
    let (_, trace) = run_experiment_traced(cfg, CAPACITY).expect("valid config");
    assert_eq!(
        trace.report.dropped, 0,
        "{label}: ring dropped events; grow CAPACITY so the check sees everything"
    );
    let blames = txn_blames(&trace);
    assert!(!blames.is_empty(), "{label}: no transactions to blame");
    for b in &blames {
        assert_eq!(
            b.vector_sum(),
            b.latency_us(),
            "{label}: {} blame vector {:?} does not sum to its latency",
            b.txn,
            b.vector
        );
        // The path must telescope: starts at submission, ends at the
        // outcome, each segment abutting the next, every length charged
        // to the matching vector slot.
        let mut cursor = b.submit.as_micros();
        let mut from_path = [0u64; SpanKind::COUNT];
        for seg in &b.path {
            assert_eq!(
                seg.start_us, cursor,
                "{label}: {} path has a gap or overlap",
                b.txn
            );
            assert!(seg.end_us > seg.start_us, "{label}: {} empty segment", b.txn);
            from_path[seg.kind.index()] += seg.end_us - seg.start_us;
            cursor = seg.end_us;
        }
        assert_eq!(
            cursor,
            b.end.as_micros(),
            "{label}: {} path does not reach the outcome",
            b.txn
        );
        assert_eq!(
            from_path, b.vector,
            "{label}: {} path and vector disagree",
            b.txn
        );
    }
    blames.len()
}

#[test]
fn blame_conserves_latency_in_clean_runs() {
    for system in SystemKind::ALL {
        assert_conserved(&cfg(system, 300, None), &format!("{system} clean"));
    }
}

#[test]
fn blame_conserves_latency_under_chaos() {
    for system in SystemKind::ALL {
        assert_conserved(
            &cfg(system, 300, Some(FaultConfig::chaos(1.0))),
            &format!("{system} chaos"),
        );
    }
}

#[test]
fn blame_conserves_latency_under_crash_restart() {
    for system in SystemKind::ALL {
        let c = cfg(system, 600, Some(FaultConfig::chaos_restart(1.0)));
        let label = format!("{system} chaos restart");
        assert_conserved(&c, &label);
    }
}

#[test]
fn blame_report_is_deterministic_across_runs() {
    let c = cfg(SystemKind::LoadSharing, 300, Some(FaultConfig::chaos(1.0)));
    let (_, a) = run_experiment_traced(&c, CAPACITY).unwrap();
    let (_, b) = run_experiment_traced(&c, CAPACITY).unwrap();
    let ra = BlameReport::extract(&a, 5, &MetricsRegistry::disabled());
    let rb = BlameReport::extract(&b, 5, &MetricsRegistry::disabled());
    assert_eq!(ra.to_json(), rb.to_json());
    assert_eq!(ra.render(), rb.render());
}

#[test]
fn blame_report_matches_golden_pin() {
    let mut c = ExperimentConfig::paper(SystemKind::LoadSharing, 5, 0.20);
    c.runtime.duration = SimDuration::from_secs(400);
    c.runtime.warmup = SimDuration::from_secs(60);
    c.runtime.seed = 42;
    let (_, trace) = run_experiment_traced(&c, CAPACITY).unwrap();
    let report = BlameReport::extract(&trace, 3, &MetricsRegistry::disabled());
    let got = report.to_json();
    let pinned_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../results/blame_golden.json");
    if std::env::var_os("BLESS").is_some() {
        std::fs::write(pinned_path, &got).expect("write results/blame_golden.json");
        return;
    }
    let pinned = std::fs::read_to_string(pinned_path).expect("read results/blame_golden.json");
    assert_eq!(
        got, pinned,
        "results/blame_golden.json drifted; if the attribution change is \
         intended, regenerate the file (see the module docs)"
    );
}
