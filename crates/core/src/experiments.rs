//! Parameter sweeps that regenerate every figure and table of the paper's
//! evaluation (§5.2).
//!
//! Every sweep cell — one `(clients, system, update-fraction)` run — is an
//! independent deterministic simulation, so the sweeps build their full
//! list of [`ExperimentConfig`]s up front and hand it to [`run_many`],
//! which fans the cells out over [`SweepOptions::jobs`] worker threads and
//! merges the results back in construction order. Output is byte-identical
//! at every job count.

use std::sync::atomic::{AtomicUsize, Ordering};

use siteselect_types::{ConfigError, ExperimentConfig, SimDuration, SystemKind};

use crate::driver::run_experiment;
use crate::metrics::RunMetrics;
use crate::report::{fnum, TextTable};

/// Run-length control for sweeps: the paper-scale defaults take minutes;
/// `quick()` keeps CI and doctests fast.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SweepOptions {
    /// Simulated duration per run.
    pub duration: SimDuration,
    /// Warm-up excluded from statistics.
    pub warmup: SimDuration,
    /// Master seed.
    pub seed: u64,
    /// Worker threads for sweep cells; `0` means one per available core.
    /// Results are merged in cell order, so the choice never affects output.
    pub jobs: usize,
}

impl SweepOptions {
    /// Paper-scale runs (2,000 s simulated, 200 s warm-up).
    #[must_use]
    pub fn paper() -> Self {
        SweepOptions {
            duration: SimDuration::from_secs(2_000),
            warmup: SimDuration::from_secs(200),
            seed: 0x5173_5e1e,
            jobs: 0,
        }
    }

    /// Short runs for tests and smoke checks.
    #[must_use]
    pub fn quick() -> Self {
        SweepOptions {
            duration: SimDuration::from_secs(300),
            warmup: SimDuration::from_secs(50),
            seed: 0x5173_5e1e,
            jobs: 0,
        }
    }

    fn apply(self, cfg: &mut ExperimentConfig) {
        cfg.runtime.duration = self.duration;
        cfg.runtime.warmup = self.warmup;
        cfg.runtime.seed = self.seed;
    }
}

/// Resolves a `jobs` request to an actual worker count: `0` means one per
/// available core, and there is never a reason to spawn more workers than
/// cells.
#[must_use]
pub fn effective_jobs(jobs: usize, cells: usize) -> usize {
    let jobs = if jobs == 0 {
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
    } else {
        jobs
    };
    jobs.max(1).min(cells.max(1))
}

/// Runs every configuration in `cfgs` and returns the metrics in the same
/// order, fanning the runs out over `jobs` scoped worker threads (`0` =
/// one per available core).
///
/// Workers pull cell indices from a shared atomic counter and report
/// `(index, result)` pairs; the merge writes each result into its slot, so
/// the output vector is ordered by `cfgs` position no matter which worker
/// finished first. Combined with each run being a self-contained seeded
/// simulation, this makes the sweep output byte-identical at every job
/// count, including `jobs == 1`, which runs inline without spawning.
///
/// # Errors
///
/// Propagates the first configuration error in `cfgs` order.
pub fn run_many(
    jobs: usize,
    cfgs: &[ExperimentConfig],
) -> Result<Vec<RunMetrics>, ConfigError> {
    let workers = effective_jobs(jobs, cfgs.len());
    if workers <= 1 {
        return cfgs.iter().map(run_experiment).collect();
    }
    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<Result<RunMetrics, ConfigError>>> =
        (0..cfgs.len()).map(|_| None).collect();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut done = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= cfgs.len() {
                            break;
                        }
                        done.push((i, run_experiment(&cfgs[i])));
                    }
                    done
                })
            })
            .collect();
        for handle in handles {
            for (i, result) in handle.join().expect("sweep worker panicked") {
                slots[i] = Some(result);
            }
        }
    });
    slots
        .into_iter()
        .map(|slot| slot.expect("every cell was claimed by a worker"))
        .collect()
}

impl Default for SweepOptions {
    fn default() -> Self {
        SweepOptions::paper()
    }
}

/// The client counts of the paper's figures.
pub const FIGURE_CLIENTS: [u16; 5] = [20, 40, 60, 80, 100];
/// The client counts of Tables 2 and 3.
pub const TABLE_CLIENTS: [u16; 3] = [20, 60, 100];
/// The update percentages of the evaluation.
pub const UPDATE_FRACTIONS: [f64; 3] = [0.01, 0.05, 0.20];

/// One figure: deadline-success percentage per system and client count.
#[derive(Debug, Clone, PartialEq)]
pub struct DeadlineFigure {
    /// Per-access update probability of this figure (0.01 / 0.05 / 0.20).
    pub update_fraction: f64,
    /// `(clients, [CE, CS, LS] success %)` rows.
    pub rows: Vec<(u16, [f64; 3])>,
}

impl DeadlineFigure {
    /// Success series for one system, in client order.
    #[must_use]
    pub fn series(&self, system: SystemKind) -> Vec<f64> {
        let idx = SystemKind::ALL
            .iter()
            .position(|&s| s == system)
            .expect("known system");
        self.rows.iter().map(|(_, v)| v[idx]).collect()
    }

    /// Renders the figure as a text table.
    #[must_use]
    pub fn render(&self) -> String {
        let mut t = TextTable::new(vec![
            "clients".into(),
            "CE-RTDBS %".into(),
            "CS-RTDBS %".into(),
            "LS-CS-RTDBS %".into(),
        ]);
        for (clients, v) in &self.rows {
            t.row(vec![
                clients.to_string(),
                fnum(v[0], 2),
                fnum(v[1], 2),
                fnum(v[2], 2),
            ]);
        }
        format!(
            "Percentage of transactions completed within their deadlines ({}% updates)\n{}",
            self.update_fraction * 100.0,
            t.render()
        )
    }
}

/// Regenerates Figure 3 (1%), Figure 4 (5%) or Figure 5 (20%): the
/// deadline-success curves of the three systems.
///
/// # Errors
///
/// Propagates configuration errors.
pub fn deadline_figure(
    update_fraction: f64,
    clients: &[u16],
    opts: SweepOptions,
) -> Result<DeadlineFigure, ConfigError> {
    let mut cfgs = Vec::with_capacity(clients.len() * SystemKind::ALL.len());
    for &n in clients {
        for system in SystemKind::ALL {
            let mut cfg = ExperimentConfig::paper(system, n, update_fraction);
            opts.apply(&mut cfg);
            cfgs.push(cfg);
        }
    }
    let metrics = run_many(opts.jobs, &cfgs)?;
    let rows = clients
        .iter()
        .zip(metrics.chunks_exact(SystemKind::ALL.len()))
        .map(|(&n, chunk)| {
            let mut vals = [0.0f64; 3];
            for (v, m) in vals.iter_mut().zip(chunk) {
                *v = m.success_percent();
            }
            (n, vals)
        })
        .collect();
    Ok(DeadlineFigure {
        update_fraction,
        rows,
    })
}

/// Table 2: average client cache hit rates, CS vs LS, by update percentage
/// and client count.
#[derive(Debug, Clone, PartialEq)]
pub struct CacheTable {
    /// `(clients, [CS hit% at 1/5/20%], [LS hit% at 1/5/20%])`.
    pub rows: Vec<(u16, [f64; 3], [f64; 3])>,
}

impl CacheTable {
    /// Renders the table in the paper's layout.
    #[must_use]
    pub fn render(&self) -> String {
        let mut t = TextTable::new(vec![
            "clients".into(),
            "CS 1%".into(),
            "CS 5%".into(),
            "CS 20%".into(),
            "LS 1%".into(),
            "LS 5%".into(),
            "LS 20%".into(),
        ]);
        for (clients, cs, ls) in &self.rows {
            t.row(vec![
                clients.to_string(),
                fnum(cs[0], 2),
                fnum(cs[1], 2),
                fnum(cs[2], 2),
                fnum(ls[0], 2),
                fnum(ls[1], 2),
                fnum(ls[2], 2),
            ]);
        }
        format!(
            "Average cache hit rates in the CS-RTDBS and LS-CS-RTDBS\n{}",
            t.render()
        )
    }
}

/// Regenerates Table 2.
///
/// # Errors
///
/// Propagates configuration errors.
pub fn cache_table(clients: &[u16], opts: SweepOptions) -> Result<CacheTable, ConfigError> {
    let mut cfgs = Vec::with_capacity(clients.len() * UPDATE_FRACTIONS.len() * 2);
    for &n in clients {
        for &u in &UPDATE_FRACTIONS {
            for system in [SystemKind::ClientServer, SystemKind::LoadSharing] {
                let mut cfg = ExperimentConfig::paper(system, n, u);
                opts.apply(&mut cfg);
                cfgs.push(cfg);
            }
        }
    }
    let metrics = run_many(opts.jobs, &cfgs)?;
    let rows = clients
        .iter()
        .zip(metrics.chunks_exact(UPDATE_FRACTIONS.len() * 2))
        .map(|(&n, chunk)| {
            let mut cs = [0.0f64; 3];
            let mut ls = [0.0f64; 3];
            for (i, pair) in chunk.chunks_exact(2).enumerate() {
                cs[i] = pair[0].cache.hit_percent();
                ls[i] = pair[1].cache.hit_percent();
            }
            (n, cs, ls)
        })
        .collect();
    Ok(CacheTable { rows })
}

/// Table 3: average object response times (seconds) by requested lock mode
/// at 1% updates.
#[derive(Debug, Clone, PartialEq)]
pub struct ResponseTable {
    /// `(clients, CS [SL, EL], LS [SL, EL])` in seconds.
    pub rows: Vec<(u16, [f64; 2], [f64; 2])>,
}

impl ResponseTable {
    /// Renders the table in the paper's layout.
    #[must_use]
    pub fn render(&self) -> String {
        let mut t = TextTable::new(vec![
            "clients".into(),
            "CS shared".into(),
            "CS exclusive".into(),
            "LS shared".into(),
            "LS exclusive".into(),
        ]);
        for (clients, cs, ls) in &self.rows {
            t.row(vec![
                clients.to_string(),
                fnum(cs[0], 3),
                fnum(cs[1], 3),
                fnum(ls[0], 3),
                fnum(ls[1], 3),
            ]);
        }
        format!(
            "Average object response times in seconds (1% updates)\n{}",
            t.render()
        )
    }
}

/// Regenerates Table 3.
///
/// # Errors
///
/// Propagates configuration errors.
pub fn response_table(clients: &[u16], opts: SweepOptions) -> Result<ResponseTable, ConfigError> {
    let mut cfgs = Vec::with_capacity(clients.len() * 2);
    for &n in clients {
        for system in [SystemKind::ClientServer, SystemKind::LoadSharing] {
            let mut cfg = ExperimentConfig::paper(system, n, 0.01);
            opts.apply(&mut cfg);
            cfgs.push(cfg);
        }
    }
    let metrics = run_many(opts.jobs, &cfgs)?;
    let rows = clients
        .iter()
        .zip(metrics.chunks_exact(2))
        .map(|(&n, pair)| {
            let (cs, ls) = (&pair[0], &pair[1]);
            (
                n,
                [cs.response.shared.mean(), cs.response.exclusive.mean()],
                [ls.response.shared.mean(), ls.response.exclusive.mean()],
            )
        })
        .collect();
    Ok(ResponseTable { rows })
}

/// Table 4: message counts by category (100 clients, 1% updates).
#[derive(Debug, Clone, PartialEq)]
pub struct MessageTable {
    /// `(row label, CS count, LS count)` in the paper's row order.
    pub rows: Vec<(String, u64, u64)>,
}

impl MessageTable {
    /// Renders the table in the paper's layout.
    #[must_use]
    pub fn render(&self) -> String {
        let mut t = TextTable::new(vec![
            "message category".into(),
            "CS-RTDBS".into(),
            "LS-CS-RTDBS".into(),
        ]);
        for (label, cs, ls) in &self.rows {
            let cs_s = if label.contains("Forward") && *cs == 0 {
                "-".to_string()
            } else {
                cs.to_string()
            };
            t.row(vec![label.clone(), cs_s, ls.to_string()]);
        }
        format!("Number of messages passed in the CS-RTDBSs\n{}", t.render())
    }
}

/// Regenerates Table 4 for `clients` clients at 1% updates.
///
/// # Errors
///
/// Propagates configuration errors.
pub fn message_table(clients: u16, opts: SweepOptions) -> Result<MessageTable, ConfigError> {
    let mut cfgs = Vec::with_capacity(2);
    for system in [SystemKind::ClientServer, SystemKind::LoadSharing] {
        let mut cfg = ExperimentConfig::paper(system, clients, 0.01);
        opts.apply(&mut cfg);
        cfgs.push(cfg);
    }
    let metrics = run_many(opts.jobs, &cfgs)?;
    let (cs, ls) = (&metrics[0], &metrics[1]);
    let rows = cs
        .messages
        .table4_rows()
        .iter()
        .zip(ls.messages.table4_rows().iter())
        .map(|((label, c), (_, l))| ((*label).to_string(), *c, *l))
        .collect();
    Ok(MessageTable { rows })
}

/// Fault intensities swept by [`fault_table`]: off, then increasing chaos.
pub const FAULT_INTENSITIES: [f64; 5] = [0.0, 0.25, 0.5, 0.75, 1.0];

/// Graceful-degradation study: deadline-success of CS-RTDBS vs
/// LS-CS-RTDBS under increasing fault intensity, with the observed fault
/// activity alongside. Not part of the paper — it exercises the
/// fault-injection subsystem end to end.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultTable {
    /// Client count of every run.
    pub clients: u16,
    /// Per-intensity measurements.
    pub rows: Vec<FaultRow>,
}

/// One [`FaultTable`] row: `(intensity, [CS, LS] success %, [CS, LS]
/// dropped messages, [CS, LS] site crashes)`.
pub type FaultRow = (f64, [f64; 2], [u64; 2], [u64; 2]);

impl FaultTable {
    /// Renders the degradation table.
    #[must_use]
    pub fn render(&self) -> String {
        let mut t = TextTable::new(vec![
            "intensity".into(),
            "CS-RTDBS %".into(),
            "LS-CS-RTDBS %".into(),
            "CS drops".into(),
            "LS drops".into(),
            "CS crashes".into(),
            "LS crashes".into(),
        ]);
        for (intensity, success, drops, crashes) in &self.rows {
            t.row(vec![
                fnum(*intensity, 2),
                fnum(success[0], 2),
                fnum(success[1], 2),
                drops[0].to_string(),
                drops[1].to_string(),
                crashes[0].to_string(),
                crashes[1].to_string(),
            ]);
        }
        format!(
            "Deadline success under increasing fault intensity ({} clients, 20% updates)\n{}",
            self.clients,
            t.render()
        )
    }
}

/// Runs the graceful-degradation sweep: CS and LS at `clients` clients and
/// 20% updates for each intensity in `intensities`
/// (see [`FaultConfig::chaos`](siteselect_types::FaultConfig::chaos)).
///
/// # Errors
///
/// Propagates configuration errors.
pub fn fault_table(
    clients: u16,
    intensities: &[f64],
    opts: SweepOptions,
) -> Result<FaultTable, ConfigError> {
    use siteselect_types::FaultConfig;
    let mut cfgs = Vec::with_capacity(intensities.len() * 2);
    for &intensity in intensities {
        for system in [SystemKind::ClientServer, SystemKind::LoadSharing] {
            let mut cfg = ExperimentConfig::paper(system, clients, 0.20);
            opts.apply(&mut cfg);
            cfg.faults = FaultConfig::chaos(intensity);
            cfgs.push(cfg);
        }
    }
    let metrics = run_many(opts.jobs, &cfgs)?;
    let rows = intensities
        .iter()
        .zip(metrics.chunks_exact(2))
        .map(|(&intensity, pair)| {
            let mut success = [0.0f64; 2];
            let mut drops = [0u64; 2];
            let mut crashes = [0u64; 2];
            for (i, m) in pair.iter().enumerate() {
                success[i] = m.success_percent();
                drops[i] = m.faults.messages_dropped;
                crashes[i] = m.faults.crashes;
            }
            (intensity, success, drops, crashes)
        })
        .collect();
    Ok(FaultTable { clients, rows })
}

/// Intensities swept by [`restart_table`]'s crash-restart cells. No zero
/// row: the study contrasts recovery against the cliff, and at zero
/// intensity the server never crashes at all.
pub const RESTART_INTENSITIES: [f64; 3] = [0.25, 0.5, 1.0];

/// Crash-restart study: deadline success of CS-RTDBS vs LS-CS-RTDBS when
/// the server itself crashes mid-run, comparing write-ahead-log
/// crash-**restart** (the server replays its log and rejoins) against the
/// same fault schedule with recovery disabled (every crashed site stays
/// dark). The gap between the two columns is what durability buys.
#[derive(Debug, Clone, PartialEq)]
pub struct RestartTable {
    /// Client count of every run.
    pub clients: u16,
    /// Per-intensity measurements.
    pub rows: Vec<RestartRow>,
}

/// One [`RestartTable`] row: `(intensity, [CS, LS] success % with
/// crash-restart recovery, [CS, LS] success % with recovery disabled,
/// [CS, LS] recoveries observed in the restart runs)`.
pub type RestartRow = (f64, [f64; 2], [f64; 2], [u64; 2]);

impl RestartTable {
    /// Renders the recovery-vs-cliff table.
    #[must_use]
    pub fn render(&self) -> String {
        let mut t = TextTable::new(vec![
            "intensity".into(),
            "CS restart %".into(),
            "CS dark %".into(),
            "LS restart %".into(),
            "LS dark %".into(),
            "CS recoveries".into(),
            "LS recoveries".into(),
        ]);
        for (intensity, restart, dark, recoveries) in &self.rows {
            t.row(vec![
                fnum(*intensity, 2),
                fnum(restart[0], 2),
                fnum(dark[0], 2),
                fnum(restart[1], 2),
                fnum(dark[1], 2),
                recoveries[0].to_string(),
                recoveries[1].to_string(),
            ]);
        }
        format!(
            "Server crash-restart vs permanent crash ({} clients, 20% updates)\n{}",
            self.clients,
            t.render()
        )
    }
}

/// Runs the crash-restart sweep: CS and LS at `clients` clients and 20%
/// updates for each intensity in `intensities`, once under
/// [`FaultConfig::chaos_restart`](siteselect_types::FaultConfig::chaos_restart)
/// (crashed sites replay their log and rejoin) and once with
/// `mean_recovery_time` zeroed (crashed sites stay dark for the rest of
/// the run).
///
/// # Errors
///
/// Propagates configuration errors.
pub fn restart_table(
    clients: u16,
    intensities: &[f64],
    opts: SweepOptions,
) -> Result<RestartTable, ConfigError> {
    use siteselect_types::FaultConfig;
    let mut cfgs = Vec::with_capacity(intensities.len() * 4);
    for &intensity in intensities {
        for recovers in [true, false] {
            for system in [SystemKind::ClientServer, SystemKind::LoadSharing] {
                let mut cfg = ExperimentConfig::paper(system, clients, 0.20);
                opts.apply(&mut cfg);
                cfg.faults = FaultConfig::chaos_restart(intensity);
                if !recovers {
                    cfg.faults.mean_recovery_time = SimDuration::ZERO;
                }
                cfgs.push(cfg);
            }
        }
    }
    let metrics = run_many(opts.jobs, &cfgs)?;
    let rows = intensities
        .iter()
        .zip(metrics.chunks_exact(4))
        .map(|(&intensity, quad)| {
            let restart = [quad[0].success_percent(), quad[1].success_percent()];
            let dark = [quad[2].success_percent(), quad[3].success_percent()];
            let recoveries = [quad[0].faults.recoveries, quad[1].faults.recoveries];
            (intensity, restart, dark, recoveries)
        })
        .collect();
    Ok(RestartTable { clients, rows })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> SweepOptions {
        SweepOptions {
            duration: SimDuration::from_secs(200),
            warmup: SimDuration::from_secs(40),
            seed: 7,
            jobs: 0,
        }
    }

    #[test]
    fn effective_jobs_resolves_auto_and_clamps() {
        assert!(effective_jobs(0, 100) >= 1);
        assert_eq!(effective_jobs(8, 3), 3);
        assert_eq!(effective_jobs(2, 100), 2);
        assert_eq!(effective_jobs(0, 0), 1);
    }

    #[test]
    fn run_many_keeps_cell_order_at_any_job_count() {
        let mut cfgs = Vec::new();
        for system in SystemKind::ALL {
            for n in [3u16, 5] {
                let mut cfg = ExperimentConfig::paper(system, n, 0.05);
                tiny().apply(&mut cfg);
                cfgs.push(cfg);
            }
        }
        let sequential = run_many(1, &cfgs).unwrap();
        let parallel = run_many(4, &cfgs).unwrap();
        assert_eq!(sequential.len(), cfgs.len());
        for (s, p) in sequential.iter().zip(&parallel) {
            assert_eq!(format!("{s:?}"), format!("{p:?}"));
        }
    }

    #[test]
    fn sweeps_are_identical_across_job_counts() {
        let seq = SweepOptions { jobs: 1, ..tiny() };
        let par = SweepOptions { jobs: 4, ..tiny() };
        let a = deadline_figure(0.05, &[4, 8], seq).unwrap();
        let b = deadline_figure(0.05, &[4, 8], par).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.render(), b.render());
    }

    #[test]
    fn deadline_figure_has_all_rows_and_series() {
        let f = deadline_figure(0.05, &[4, 8], tiny()).unwrap();
        assert_eq!(f.rows.len(), 2);
        assert_eq!(f.series(SystemKind::Centralized).len(), 2);
        for (_, vals) in &f.rows {
            for v in vals {
                assert!((0.0..=100.0).contains(v));
            }
        }
        let text = f.render();
        assert!(text.contains("5% updates"));
        assert!(text.contains("LS-CS-RTDBS"));
    }

    #[test]
    fn cache_table_shape() {
        let t = cache_table(&[4], tiny()).unwrap();
        assert_eq!(t.rows.len(), 1);
        let (_, cs, ls) = &t.rows[0];
        for v in cs.iter().chain(ls.iter()) {
            assert!((0.0..=100.0).contains(v));
        }
        assert!(t.render().contains("cache hit rates"));
    }

    #[test]
    fn response_table_shape() {
        let t = response_table(&[4], tiny()).unwrap();
        assert_eq!(t.rows.len(), 1);
        assert!(t.render().contains("object response times"));
    }

    #[test]
    fn fault_table_zero_intensity_matches_clean_runs() {
        let t = fault_table(4, &[0.0, 1.0], tiny()).unwrap();
        assert_eq!(t.rows.len(), 2);
        let (_, clean, clean_drops, clean_crashes) = &t.rows[0];
        assert_eq!(*clean_drops, [0, 0], "intensity 0 must inject nothing");
        assert_eq!(*clean_crashes, [0, 0]);
        for v in clean {
            assert!((0.0..=100.0).contains(v));
        }
        let (_, _, chaotic_drops, _) = &t.rows[1];
        assert!(
            chaotic_drops[0] > 0 && chaotic_drops[1] > 0,
            "full chaos must drop messages in both systems"
        );
        assert!(t.render().contains("fault intensity"));
    }

    #[test]
    fn restart_table_shape_and_sane_percentages() {
        let t = restart_table(4, &[1.0], tiny()).unwrap();
        assert_eq!(t.rows.len(), 1);
        let (intensity, restart, dark, _) = &t.rows[0];
        assert!((intensity - 1.0).abs() < f64::EPSILON);
        for v in restart.iter().chain(dark.iter()) {
            assert!((0.0..=100.0).contains(v));
        }
        assert!(t.render().contains("crash-restart vs permanent"));
    }

    #[test]
    fn message_table_has_paper_rows() {
        let t = message_table(4, tiny()).unwrap();
        assert_eq!(t.rows.len(), 5);
        assert!(t.rows[0].0.contains("Request"));
        let rendered = t.render();
        assert!(rendered.contains("LS-CS-RTDBS"));
    }
}
