//! One-call experiment driver.

use siteselect_types::{ConfigError, ExperimentConfig, SystemKind};

use crate::centralized::CentralizedSim;
use crate::clientserver::ClientServerSim;
use crate::metrics::RunMetrics;

/// Validates `cfg` and runs the matching system simulator to completion.
///
/// # Errors
///
/// Returns a [`ConfigError`] if the configuration is inconsistent.
///
/// # Example
///
/// ```
/// use siteselect_core::run_experiment;
/// use siteselect_types::{ExperimentConfig, SimDuration, SystemKind};
///
/// let mut cfg = ExperimentConfig::paper(SystemKind::Centralized, 4, 0.01);
/// cfg.runtime.duration = SimDuration::from_secs(100);
/// cfg.runtime.warmup = SimDuration::from_secs(10);
/// let m = run_experiment(&cfg).unwrap();
/// assert!(m.is_consistent());
/// ```
pub fn run_experiment(cfg: &ExperimentConfig) -> Result<RunMetrics, ConfigError> {
    cfg.validate()?;
    let metrics = match cfg.system {
        SystemKind::Centralized => CentralizedSim::new(cfg.clone()).run(),
        SystemKind::ClientServer | SystemKind::LoadSharing => {
            ClientServerSim::new(cfg.clone()).run()
        }
    };
    debug_assert!(metrics.is_consistent(), "outcome accounting out of balance");
    Ok(metrics)
}

#[cfg(test)]
mod tests {
    use super::*;
    use siteselect_types::SimDuration;

    fn quick(system: SystemKind, clients: u16, updates: f64) -> RunMetrics {
        let mut cfg = ExperimentConfig::paper(system, clients, updates);
        cfg.runtime.duration = SimDuration::from_secs(300);
        cfg.runtime.warmup = SimDuration::from_secs(50);
        run_experiment(&cfg).unwrap()
    }

    #[test]
    fn all_three_systems_run_and_balance() {
        for system in SystemKind::ALL {
            let m = quick(system, 6, 0.05);
            assert!(m.measured > 0, "{system}: no transactions measured");
            assert!(m.is_consistent(), "{system}: inconsistent outcomes");
            assert!(m.success_percent() > 0.0, "{system}: nothing succeeded");
        }
    }

    #[test]
    fn runs_are_deterministic() {
        let a = quick(SystemKind::LoadSharing, 5, 0.20);
        let b = quick(SystemKind::LoadSharing, 5, 0.20);
        assert_eq!(a, b);
    }

    #[test]
    fn seeds_change_results() {
        let mut cfg = ExperimentConfig::paper(SystemKind::ClientServer, 5, 0.05);
        cfg.runtime.duration = SimDuration::from_secs(300);
        cfg.runtime.warmup = SimDuration::from_secs(50);
        let a = run_experiment(&cfg).unwrap();
        let b = run_experiment(&cfg.clone().with_seed(99)).unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn invalid_config_is_rejected() {
        let mut cfg = ExperimentConfig::default();
        cfg.clients = 0;
        assert!(run_experiment(&cfg).is_err());
    }

    #[test]
    fn client_server_reports_cache_and_response_stats() {
        let m = quick(SystemKind::ClientServer, 6, 0.05);
        assert!(m.cache.memory_hits + m.cache.disk_hits + m.cache.misses > 0);
        assert!(m.response.shared.count() + m.response.exclusive.count() > 0);
    }

    #[test]
    fn centralized_reports_server_utilization() {
        let m = quick(SystemKind::Centralized, 6, 0.05);
        assert!(m.server_cpu_utilization > 0.0);
        assert!(m.server_buffer.total() > 0);
    }

    #[test]
    fn load_sharing_reports_ls_activity() {
        let m = quick(SystemKind::LoadSharing, 8, 0.20);
        // At 20% updates with shared hot regions there must be some LS
        // machinery engaged (windows, ships or decompositions).
        let ls = m.load_sharing;
        assert!(
            ls.windows_opened + ls.shipped + ls.decomposed + ls.forward_satisfied > 0,
            "no load-sharing activity at all: {ls:?}"
        );
    }
}
