//! One-call experiment driver.

use siteselect_obs::{EventSink, TraceData};
use siteselect_types::{ConfigError, ExperimentConfig, SystemKind};

use crate::centralized::CentralizedSim;
use crate::clientserver::ClientServerSim;
use crate::metrics::RunMetrics;

/// Validates `cfg` and runs the matching system simulator to completion.
///
/// # Errors
///
/// Returns a [`ConfigError`] if the configuration is inconsistent.
///
/// # Example
///
/// ```
/// use siteselect_core::run_experiment;
/// use siteselect_types::{ExperimentConfig, SimDuration, SystemKind};
///
/// let mut cfg = ExperimentConfig::paper(SystemKind::Centralized, 4, 0.01);
/// cfg.runtime.duration = SimDuration::from_secs(100);
/// cfg.runtime.warmup = SimDuration::from_secs(10);
/// let m = run_experiment(&cfg).unwrap();
/// assert!(m.is_consistent());
/// ```
pub fn run_experiment(cfg: &ExperimentConfig) -> Result<RunMetrics, ConfigError> {
    cfg.validate()?;
    let metrics = match cfg.system {
        SystemKind::Centralized => CentralizedSim::new(cfg.clone()).run(),
        SystemKind::ClientServer | SystemKind::LoadSharing => {
            ClientServerSim::new(cfg.clone()).run()
        }
    };
    debug_assert!(metrics.is_consistent(), "outcome accounting out of balance");
    Ok(metrics)
}

/// Like [`run_experiment`], but with the event-tracing pipeline attached:
/// every engine event lands in a ring buffer of `capacity` records
/// (oldest dropped first; aggregates in the [`siteselect_obs::ObsReport`]
/// still see every event).
///
/// Tracing observes the deterministic simulation without perturbing it:
/// the returned [`RunMetrics`] are identical to an untraced run at the
/// same config, and the trace itself is byte-stable across runs at the
/// same seed.
///
/// # Errors
///
/// Returns a [`ConfigError`] if the configuration is inconsistent.
pub fn run_experiment_traced(
    cfg: &ExperimentConfig,
    capacity: usize,
) -> Result<(RunMetrics, TraceData), ConfigError> {
    cfg.validate()?;
    let sink = EventSink::enabled(capacity);
    let metrics = match cfg.system {
        SystemKind::Centralized => {
            let mut sim = CentralizedSim::new(cfg.clone());
            sim.attach_sink(sink.clone());
            sim.run()
        }
        SystemKind::ClientServer | SystemKind::LoadSharing => {
            let mut sim = ClientServerSim::new(cfg.clone());
            sim.attach_sink(sink.clone());
            sim.run()
        }
    };
    debug_assert!(metrics.is_consistent(), "outcome accounting out of balance");
    // detlint: allow(D9) — the sink was attached unconditionally a few lines up
    let trace = sink.finish().expect("sink was enabled");
    Ok((metrics, trace))
}

#[cfg(test)]
mod tests {
    use super::*;
    use siteselect_types::SimDuration;

    fn quick(system: SystemKind, clients: u16, updates: f64) -> RunMetrics {
        let mut cfg = ExperimentConfig::paper(system, clients, updates);
        cfg.runtime.duration = SimDuration::from_secs(300);
        cfg.runtime.warmup = SimDuration::from_secs(50);
        run_experiment(&cfg).unwrap()
    }

    #[test]
    fn all_three_systems_run_and_balance() {
        for system in SystemKind::ALL {
            let m = quick(system, 6, 0.05);
            assert!(m.measured > 0, "{system}: no transactions measured");
            assert!(m.is_consistent(), "{system}: inconsistent outcomes");
            assert!(m.success_percent() > 0.0, "{system}: nothing succeeded");
        }
    }

    #[test]
    fn runs_are_deterministic() {
        let a = quick(SystemKind::LoadSharing, 5, 0.20);
        let b = quick(SystemKind::LoadSharing, 5, 0.20);
        assert_eq!(a, b);
    }

    #[test]
    fn seeds_change_results() {
        let mut cfg = ExperimentConfig::paper(SystemKind::ClientServer, 5, 0.05);
        cfg.runtime.duration = SimDuration::from_secs(300);
        cfg.runtime.warmup = SimDuration::from_secs(50);
        let a = run_experiment(&cfg).unwrap();
        let b = run_experiment(&cfg.clone().with_seed(99)).unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn invalid_config_is_rejected() {
        let cfg = ExperimentConfig {
            clients: 0,
            ..ExperimentConfig::default()
        };
        assert!(run_experiment(&cfg).is_err());
    }

    #[test]
    fn client_server_reports_cache_and_response_stats() {
        let m = quick(SystemKind::ClientServer, 6, 0.05);
        assert!(m.cache.memory_hits + m.cache.disk_hits + m.cache.misses > 0);
        assert!(m.response.shared.count() + m.response.exclusive.count() > 0);
    }

    #[test]
    fn centralized_reports_server_utilization() {
        let m = quick(SystemKind::Centralized, 6, 0.05);
        assert!(m.server_cpu_utilization > 0.0);
        assert!(m.server_buffer.total() > 0);
    }

    #[test]
    fn chaos_runs_complete_and_stay_balanced() {
        use siteselect_types::FaultConfig;
        for system in [SystemKind::ClientServer, SystemKind::LoadSharing] {
            for intensity in [1.0, 3.0] {
                let mut cfg = ExperimentConfig::paper(system, 6, 0.20);
                cfg.runtime.duration = SimDuration::from_secs(300);
                cfg.runtime.warmup = SimDuration::from_secs(50);
                cfg.faults = FaultConfig::chaos(intensity);
                // The run draining at all proves no transaction hangs: the
                // sweep keeps firing while anything is in flight.
                let m = run_experiment(&cfg).unwrap();
                assert!(m.measured > 0, "{system}@{intensity}: nothing measured");
                assert!(
                    m.is_consistent(),
                    "{system}@{intensity}: outcome accounting out of balance"
                );
                assert!(
                    m.faults.any(),
                    "{system}@{intensity}: chaos injected no observable fault"
                );
                assert!(
                    m.faults.messages_dropped > 0,
                    "{system}@{intensity}: 10%+ loss dropped nothing"
                );
                // Conservation: every measured transaction is either
                // committed on time or accounted to exactly one failure
                // bucket — chaos must not create or lose transactions.
                let f = m.failures;
                assert_eq!(
                    f.total(),
                    f.expired + f.deadlock + f.subtask + f.late + f.shutdown + f.site_crash,
                    "{system}@{intensity}: breakdown total out of sync with its buckets"
                );
                assert_eq!(
                    m.in_time + f.total(),
                    m.measured,
                    "{system}@{intensity}: submitted != committed-on-time + failures"
                );
            }
        }
    }

    #[test]
    fn chaos_runs_are_deterministic() {
        use siteselect_types::FaultConfig;
        let mut cfg = ExperimentConfig::paper(SystemKind::LoadSharing, 5, 0.20);
        cfg.runtime.duration = SimDuration::from_secs(300);
        cfg.runtime.warmup = SimDuration::from_secs(50);
        cfg.faults = FaultConfig::chaos(2.0);
        let a = run_experiment(&cfg).unwrap();
        let b = run_experiment(&cfg).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn handling_knobs_alone_change_nothing() {
        // Lease/backoff settings are failure *handling*: with every
        // injection knob off they must not perturb the run at all.
        let mut cfg = ExperimentConfig::paper(SystemKind::LoadSharing, 5, 0.20);
        cfg.runtime.duration = SimDuration::from_secs(300);
        cfg.runtime.warmup = SimDuration::from_secs(50);
        let a = run_experiment(&cfg).unwrap();
        cfg.faults.callback_lease = SimDuration::from_secs(1);
        cfg.faults.max_retries = 9;
        cfg.faults.retry_backoff_base = SimDuration::from_millis(50);
        let b = run_experiment(&cfg).unwrap();
        assert_eq!(a, b);
        assert!(!a.faults.any());
    }

    #[test]
    fn crash_only_chaos_records_crashes_and_site_crash_losses() {
        use siteselect_types::FaultConfig;
        let mut cfg = ExperimentConfig::paper(SystemKind::ClientServer, 6, 0.20);
        cfg.runtime.duration = SimDuration::from_secs(600);
        cfg.runtime.warmup = SimDuration::from_secs(50);
        cfg.faults = FaultConfig {
            mean_time_to_crash: SimDuration::from_secs(120),
            mean_recovery_time: SimDuration::from_secs(30),
            ..FaultConfig::default()
        };
        let m = run_experiment(&cfg).unwrap();
        assert!(m.faults.crashes > 0, "no crash in 600s at MTTC 120s x6 sites");
        assert!(m.faults.recoveries > 0, "no recovery observed");
        assert!(
            m.failures.site_crash > 0,
            "crashes killed no measured transaction"
        );
        assert!(m.is_consistent());
        // Conservation under crash-only chaos: the breakdown still
        // balances against the measured population.
        assert_eq!(m.in_time + m.failures.total(), m.measured);
    }

    #[test]
    fn server_crash_restart_recovers_in_all_three_systems() {
        use siteselect_types::FaultConfig;
        for system in SystemKind::ALL {
            let mut cfg = ExperimentConfig::paper(system, 6, 0.20);
            cfg.runtime.duration = SimDuration::from_secs(600);
            cfg.runtime.warmup = SimDuration::from_secs(50);
            cfg.faults = FaultConfig {
                mean_time_to_server_crash: SimDuration::from_secs(150),
                mean_recovery_time: SimDuration::from_secs(20),
                ..FaultConfig::default()
            };
            let m = run_experiment(&cfg).unwrap();
            assert!(
                m.faults.crashes > 0,
                "{system}: no server crash in 600s at MTTF 150s"
            );
            assert!(m.faults.recoveries > 0, "{system}: server never rejoined");
            assert!(
                m.is_consistent(),
                "{system}: outcome accounting out of balance"
            );
            assert!(
                m.in_time > 0,
                "{system}: nothing succeeded around the outages"
            );
            let again = run_experiment(&cfg).unwrap();
            assert_eq!(m, again, "{system}: crash-restart run not deterministic");
        }
    }

    #[test]
    fn permanent_server_crash_goes_dark_but_drains() {
        use siteselect_types::FaultConfig;
        for system in SystemKind::ALL {
            let mut cfg = ExperimentConfig::paper(system, 6, 0.20);
            cfg.runtime.duration = SimDuration::from_secs(600);
            cfg.runtime.warmup = SimDuration::from_secs(50);
            cfg.faults = FaultConfig {
                mean_time_to_server_crash: SimDuration::from_secs(100),
                mean_recovery_time: SimDuration::ZERO,
                ..FaultConfig::default()
            };
            // With no recovery time the site stays down; the run must still
            // drain (sweeps reap everything the dead server stranded).
            let m = run_experiment(&cfg).unwrap();
            assert!(m.faults.crashes > 0, "{system}: no crash at MTTF 100s");
            assert_eq!(
                m.faults.recoveries, 0,
                "{system}: permanent crash must not recover"
            );
            assert!(m.is_consistent(), "{system}: accounting out of balance");
        }
    }

    #[test]
    fn tracing_does_not_perturb_results() {
        // The observability pipeline must be a pure observer: attaching a
        // sink changes nothing about the simulation itself, for every
        // system kind, with and without chaos.
        use siteselect_types::FaultConfig;
        for system in SystemKind::ALL {
            let mut cfg = ExperimentConfig::paper(system, 5, 0.20);
            cfg.runtime.duration = SimDuration::from_secs(300);
            cfg.runtime.warmup = SimDuration::from_secs(50);
            let plain = run_experiment(&cfg).unwrap();
            let (traced, trace) = run_experiment_traced(&cfg, 1 << 16).unwrap();
            assert_eq!(plain, traced, "{system}: tracing perturbed the run");
            assert!(trace.report.events > 0, "{system}: no events captured");
            cfg.faults = FaultConfig::chaos(1.0);
            let plain = run_experiment(&cfg).unwrap();
            let (traced, _) = run_experiment_traced(&cfg, 1 << 16).unwrap();
            assert_eq!(plain, traced, "{system}: tracing perturbed chaos run");
        }
    }

    #[test]
    fn traced_runs_are_byte_deterministic() {
        let mut cfg = ExperimentConfig::paper(SystemKind::LoadSharing, 5, 0.20);
        cfg.runtime.duration = SimDuration::from_secs(300);
        cfg.runtime.warmup = SimDuration::from_secs(50);
        let (_, a) = run_experiment_traced(&cfg, 1 << 20).unwrap();
        let (_, b) = run_experiment_traced(&cfg, 1 << 20).unwrap();
        assert_eq!(
            siteselect_obs::export::jsonl(&a.records),
            siteselect_obs::export::jsonl(&b.records)
        );
        assert_eq!(a.report, b.report);
    }

    #[test]
    fn load_sharing_reports_ls_activity() {
        let m = quick(SystemKind::LoadSharing, 8, 0.20);
        // At 20% updates with shared hot regions there must be some LS
        // machinery engaged (windows, ships or decompositions).
        let ls = m.load_sharing;
        assert!(
            ls.windows_opened + ls.shipped + ls.decomposed + ls.forward_satisfied > 0,
            "no load-sharing activity at all: {ls:?}"
        );
    }
}
