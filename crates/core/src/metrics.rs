//! Run metrics: everything the paper's tables and figures report, plus
//! diagnostics.

use siteselect_net::MessageStats;
use siteselect_sim::{OnlineStats, Ratio};
use siteselect_types::{SystemKind, TxnOutcome};

/// Why transactions failed, broken down (diagnostics beyond the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FailureBreakdown {
    /// Dropped because the deadline passed before/while processing.
    pub expired: u64,
    /// Rejected to avoid a wait-for-graph cycle.
    pub deadlock: u64,
    /// A subtask of a decomposed transaction missed the deadline.
    pub subtask: u64,
    /// Committed after the deadline (still a miss in the paper's metric).
    pub late: u64,
    /// In flight when the run ended.
    pub shutdown: u64,
    /// Lost to an injected site crash (in flight at a crashing site, or
    /// arrived while its site was down).
    pub site_crash: u64,
}

impl FailureBreakdown {
    /// Total failures.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.expired + self.deadlock + self.subtask + self.late + self.shutdown + self.site_crash
    }
}

/// Fault-injection and failure-handling activity (all zero when the fault
/// subsystem is off).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultReport {
    /// Site crashes injected.
    pub crashes: u64,
    /// Site recoveries completed.
    pub recoveries: u64,
    /// Messages lost (random loss plus deliveries to crashed sites).
    pub messages_dropped: u64,
    /// Messages given non-zero extra delivery jitter.
    pub messages_delayed: u64,
    /// Callback leases that expired, reclaiming a presumed-dead holder's
    /// lock.
    pub leases_expired: u64,
    /// Client request retries sent after a presumed-lost control message.
    pub retries: u64,
    /// Server disk I/Os served during a slow-disk episode.
    pub slow_disk_ios: u64,
}

impl FaultReport {
    /// True if any fault activity was observed.
    #[must_use]
    pub fn any(&self) -> bool {
        *self != FaultReport::default()
    }
}

/// Client cache behaviour (Table 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheReport {
    /// Accesses served from the memory tier.
    pub memory_hits: u64,
    /// Accesses served from the client disk tier.
    pub disk_hits: u64,
    /// Accesses that had to fetch from the server.
    pub misses: u64,
}

impl CacheReport {
    /// Overall hit percentage (both tiers), the quantity in Table 2.
    /// 0.0 (never NaN) when no access was recorded.
    #[must_use]
    pub fn hit_percent(&self) -> f64 {
        let total = self.memory_hits + self.disk_hits + self.misses;
        Ratio::of(self.memory_hits + self.disk_hits, total).percent()
    }
}

/// Object response times by requested lock mode (Table 3), in seconds.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ResponseReport {
    /// Request-to-receipt latency for shared-lock requests.
    pub shared: OnlineStats,
    /// Request-to-receipt latency for exclusive-lock requests.
    pub exclusive: OnlineStats,
}

/// Load-sharing activity (LS-CS-RTDBS only).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LoadSharingReport {
    /// Transactions shipped to another site (H1 or H2 decision).
    pub shipped: u64,
    /// Transactions executed as parallel subtasks.
    pub decomposed: u64,
    /// Subtasks created in total.
    pub subtasks: u64,
    /// Object requests satisfied by a client-to-client forward (Table 4
    /// row 3).
    pub forward_satisfied: u64,
    /// Collection windows opened.
    pub windows_opened: u64,
    /// Requests H1 declared locally infeasible.
    pub h1_rejections: u64,
}

/// Complete metrics of one run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunMetrics {
    /// System under test.
    pub system: SystemKind,
    /// Cluster size.
    pub clients: u16,
    /// Per-access update probability.
    pub update_fraction: f64,
    /// PRNG seed.
    pub seed: u64,
    /// Transactions that arrived inside the measurement window.
    pub measured: u64,
    /// Of those, committed at or before their deadline — the paper's
    /// headline count.
    pub in_time: u64,
    /// Failure breakdown for the rest.
    pub failures: FailureBreakdown,
    /// Client cache behaviour (zero for the centralized system).
    pub cache: CacheReport,
    /// Object response times by lock mode (client-server systems).
    pub response: ResponseReport,
    /// Network message counts (Table 4 categories included).
    pub messages: MessageStats,
    /// Load-sharing activity (meaningful for LS runs).
    pub load_sharing: LoadSharingReport,
    /// Fault-injection activity (meaningful when faults are enabled).
    pub faults: FaultReport,
    /// End-to-end latency of in-time transactions, seconds.
    pub latency: OnlineStats,
    /// Time transactions spent blocked waiting for objects/locks, seconds.
    pub blocking: OnlineStats,
    /// Mean client CPU utilization in `[0, 1]`.
    pub client_cpu_utilization: f64,
    /// Server CPU utilization in `[0, 1]` (centralized runs).
    pub server_cpu_utilization: f64,
    /// Server buffer hit ratio.
    pub server_buffer: Ratio,
}

impl RunMetrics {
    /// Creates zeroed metrics for a run description.
    #[must_use]
    pub fn new(system: SystemKind, clients: u16, update_fraction: f64, seed: u64) -> Self {
        RunMetrics {
            system,
            clients,
            update_fraction,
            seed,
            measured: 0,
            in_time: 0,
            failures: FailureBreakdown::default(),
            cache: CacheReport::default(),
            response: ResponseReport::default(),
            messages: MessageStats::new(),
            load_sharing: LoadSharingReport::default(),
            faults: FaultReport::default(),
            latency: OnlineStats::new(),
            blocking: OnlineStats::new(),
            client_cpu_utilization: 0.0,
            server_cpu_utilization: 0.0,
            server_buffer: Ratio::new(),
        }
    }

    /// Percentage of measured transactions that met their deadline — the
    /// y-axis of Figures 3–5. 0.0 (never NaN) when nothing was measured;
    /// every percentage helper routes through [`Ratio`] for uniform
    /// division-by-zero handling.
    #[must_use]
    pub fn success_percent(&self) -> f64 {
        Ratio::of(self.in_time, self.measured).percent()
    }

    /// Records a measured transaction outcome.
    pub fn record_outcome(&mut self, outcome: TxnOutcome) {
        use siteselect_types::AbortReason as R;
        self.measured += 1;
        match outcome {
            TxnOutcome::Committed => self.in_time += 1,
            TxnOutcome::CommittedLate => self.failures.late += 1,
            TxnOutcome::Aborted(R::Expired) => self.failures.expired += 1,
            TxnOutcome::Aborted(R::Deadlock) => self.failures.deadlock += 1,
            TxnOutcome::Aborted(R::SubtaskFailure) => self.failures.subtask += 1,
            TxnOutcome::Aborted(R::Shutdown) => self.failures.shutdown += 1,
            TxnOutcome::Aborted(R::SiteCrash) => self.failures.site_crash += 1,
        }
    }

    /// Internal consistency: outcomes must cover every measured
    /// transaction.
    #[must_use]
    pub fn is_consistent(&self) -> bool {
        self.in_time + self.failures.total() == self.measured
    }
}

impl std::fmt::Display for RunMetrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "{} | {} clients | {:.0}% updates | seed {:#x}",
            self.system,
            self.clients,
            self.update_fraction * 100.0,
            self.seed
        )?;
        writeln!(
            f,
            "  deadline success: {:.2}% ({} of {})",
            self.success_percent(),
            self.in_time,
            self.measured
        )?;
        writeln!(
            f,
            "  failures: {} expired, {} deadlock, {} subtask, {} late, {} shutdown",
            self.failures.expired,
            self.failures.deadlock,
            self.failures.subtask,
            self.failures.late,
            self.failures.shutdown
        )?;
        if self.failures.site_crash > 0 || self.faults.any() {
            writeln!(
                f,
                "  faults: {} crash-lost txns | {} crashes, {} recoveries, {} msgs dropped, {} delayed, {} leases expired, {} retries, {} slow I/Os",
                self.failures.site_crash,
                self.faults.crashes,
                self.faults.recoveries,
                self.faults.messages_dropped,
                self.faults.messages_delayed,
                self.faults.leases_expired,
                self.faults.retries,
                self.faults.slow_disk_ios
            )?;
        }
        if self.cache.memory_hits + self.cache.disk_hits + self.cache.misses > 0 {
            writeln!(f, "  cache hit rate: {:.2}%", self.cache.hit_percent())?;
        }
        if self.response.shared.count() + self.response.exclusive.count() > 0 {
            writeln!(
                f,
                "  object response: SL {:.3}s (n={}), EL {:.3}s (n={})",
                self.response.shared.mean(),
                self.response.shared.count(),
                self.response.exclusive.mean(),
                self.response.exclusive.count()
            )?;
        }
        if self.load_sharing.shipped + self.load_sharing.decomposed > 0 {
            writeln!(
                f,
                "  load sharing: {} shipped, {} decomposed ({} subtasks), {} forward-satisfied",
                self.load_sharing.shipped,
                self.load_sharing.decomposed,
                self.load_sharing.subtasks,
                self.load_sharing.forward_satisfied
            )?;
        }
        writeln!(
            f,
            "  latency: mean {:.3}s | blocking: mean {:.3}s | cpu: client {:.1}%, server {:.1}%",
            self.latency.mean(),
            self.blocking.mean(),
            self.client_cpu_utilization * 100.0,
            self.server_cpu_utilization * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use siteselect_types::AbortReason;

    #[test]
    fn outcomes_partition_measured() {
        let mut m = RunMetrics::new(SystemKind::ClientServer, 20, 0.01, 1);
        m.record_outcome(TxnOutcome::Committed);
        m.record_outcome(TxnOutcome::Committed);
        m.record_outcome(TxnOutcome::CommittedLate);
        m.record_outcome(TxnOutcome::Aborted(AbortReason::Expired));
        m.record_outcome(TxnOutcome::Aborted(AbortReason::Deadlock));
        m.record_outcome(TxnOutcome::Aborted(AbortReason::SubtaskFailure));
        m.record_outcome(TxnOutcome::Aborted(AbortReason::Shutdown));
        assert_eq!(m.measured, 7);
        assert_eq!(m.in_time, 2);
        assert_eq!(m.failures.total(), 5);
        assert!(m.is_consistent());
        assert!((m.success_percent() - 2.0 * 100.0 / 7.0).abs() < 1e-9);
    }

    #[test]
    fn empty_metrics_are_consistent() {
        let m = RunMetrics::new(SystemKind::Centralized, 10, 0.05, 2);
        assert!(m.is_consistent());
        assert_eq!(m.success_percent(), 0.0);
    }

    #[test]
    fn cache_hit_percent() {
        let c = CacheReport {
            memory_hits: 70,
            disk_hits: 10,
            misses: 20,
        };
        assert!((c.hit_percent() - 80.0).abs() < 1e-12);
        assert_eq!(CacheReport::default().hit_percent(), 0.0);
    }

    #[test]
    fn display_mentions_key_numbers() {
        let mut m = RunMetrics::new(SystemKind::LoadSharing, 100, 0.20, 3);
        m.record_outcome(TxnOutcome::Committed);
        m.cache.memory_hits = 5;
        m.load_sharing.shipped = 2;
        let s = m.to_string();
        assert!(s.contains("LS-CS-RTDBS"));
        assert!(s.contains("100 clients"));
        assert!(s.contains("deadline success"));
        assert!(s.contains("cache hit rate"));
        assert!(s.contains("shipped"));
    }
}
