//! CPU models for the discrete-event simulator.
//!
//! * [`EdfCpu`] — a single processor scheduled preemptive
//!   Earliest-Deadline-First, as each client schedules its local
//!   transactions (§2: "each client in the system has its own scheduler to
//!   prioritize local transactions … according to the Earliest Deadline
//!   First policy").
//! * [`PsCpu`] — a processor-sharing server CPU with an admission cap, as
//!   the centralized prototype's thread-per-transaction server ("able to
//!   process as many as one hundred transactions simultaneously", §5.1).
//!
//! Both models are event-driven: every scheduling change returns the next
//! completion instant plus a *generation* number; completion events carry
//! the generation so stale events (superseded by later preemptions) are
//! recognized and dropped. This is the standard cancellation-free pattern
//! for priority queues without deletable entries.


use siteselect_types::{InlineVec, SimDuration, SimTime};

/// A `(when, generation)` pair the caller must turn into a scheduled event.
pub type Reschedule = Option<(SimTime, u64)>;

/// Rounds a second count *up* to whole microseconds, so a completion event
/// never fires before the work is actually done (rounding down would leave
/// an infinitesimal residue and a zero-length event loop).
fn ceil_to_micros(secs: f64) -> SimDuration {
    // NaN and non-positive inputs both map to zero work.
    if secs.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
        return SimDuration::ZERO;
    }
    let micros = (secs * 1e6).ceil();
    if micros >= u64::MAX as f64 {
        SimDuration::MAX
    } else {
        SimDuration::from_micros(micros as u64)
    }
}

/// Outcome of delivering a completion event to a CPU model.
///
/// `finished` is an [`InlineVec`] because completions are on the simulator
/// hot loop: the common case (one task done, occasionally a handful tying
/// at the same instant) must not heap-allocate per event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tick<K> {
    /// The event was superseded by a later scheduling change; ignore it.
    Stale,
    /// These tasks finished; the CPU may have scheduled a further
    /// completion.
    Done {
        /// Tasks that completed at this instant.
        finished: InlineVec<K, 8>,
        /// Next completion to schedule, if the CPU is still busy.
        next: Reschedule,
    },
}

#[derive(Debug, Clone, Copy)]
struct EdfJob<K> {
    key: K,
    deadline: SimTime,
    seq: u64,
    remaining: f64, // seconds of work at speed 1.0
}

/// A single preemptive-EDF processor.
///
/// Work is expressed in seconds of demand at speed 1.0; a processor with
/// `speed` 2.0 finishes one second of work in half a second.
///
/// # Example
///
/// ```
/// use siteselect_core::cpu::{EdfCpu, Tick};
/// use siteselect_types::{SimDuration, SimTime};
///
/// let mut cpu = EdfCpu::new(1.0);
/// let (t, generation) = cpu
///     .submit(SimTime::ZERO, 1u64, SimTime::from_secs(10), SimDuration::from_secs(2))
///     .unwrap();
/// assert_eq!(t, SimTime::from_secs(2));
/// match cpu.on_completion(t, generation) {
///     Tick::Done { finished, next } => {
///         assert_eq!(finished.to_vec(), vec![1]);
///         assert!(next.is_none());
///     }
///     Tick::Stale => unreachable!(),
/// }
/// ```
#[derive(Debug)]
pub struct EdfCpu<K = u64> {
    speed: f64,
    running: Option<EdfJob<K>>,
    running_since: SimTime,
    ready: Vec<EdfJob<K>>, // kept sorted by (deadline, seq)
    generation: u64,
    next_seq: u64,
    busy: SimDuration,
    completed: u64,
}

impl<K: Copy + Eq> EdfCpu<K> {
    /// Creates an idle processor with the given relative speed.
    ///
    /// # Panics
    ///
    /// Panics if `speed` is not strictly positive.
    #[must_use]
    pub fn new(speed: f64) -> Self {
        assert!(speed > 0.0, "CPU speed must be positive");
        EdfCpu {
            speed,
            running: None,
            running_since: SimTime::ZERO,
            ready: Vec::new(),
            generation: 0,
            next_seq: 0,
            busy: SimDuration::ZERO,
            completed: 0,
        }
    }

    /// Number of tasks present (running + ready).
    #[must_use]
    pub fn load(&self) -> usize {
        self.ready.len() + usize::from(self.running.is_some())
    }

    /// Total CPU busy time so far.
    #[must_use]
    pub fn busy_time(&self) -> SimDuration {
        self.busy
    }

    /// Tasks completed so far.
    #[must_use]
    pub fn completed(&self) -> u64 {
        self.completed
    }

    fn charge_running(&mut self, now: SimTime) {
        if let Some(run) = &mut self.running {
            let elapsed = now.duration_since(self.running_since);
            run.remaining = (run.remaining - elapsed.as_secs_f64() * self.speed).max(0.0);
            self.busy += elapsed;
            self.running_since = now;
        }
    }

    fn completion_time(&self, now: SimTime) -> SimTime {
        // detlint: allow(D9) — called only from dispatch/on_push paths that just set self.running
        let run = self.running.as_ref().expect("running job");
        now + ceil_to_micros(run.remaining / self.speed)
    }

    fn insert_ready(&mut self, job: EdfJob<K>) {
        let pos = self
            .ready
            .iter()
            .position(|j| (j.deadline, j.seq) > (job.deadline, job.seq))
            .unwrap_or(self.ready.len());
        self.ready.insert(pos, job);
    }

    fn dispatch(&mut self, now: SimTime) -> Reschedule {
        if self.running.is_none() && !self.ready.is_empty() {
            let job = self.ready.remove(0);
            self.running = Some(job);
            self.running_since = now;
        }
        if self.running.is_some() {
            self.generation += 1;
            Some((self.completion_time(now), self.generation))
        } else {
            self.generation += 1; // invalidate any outstanding completion
            None
        }
    }

    /// Submits a task. Returns the next completion to schedule (replacing
    /// any previously returned one).
    pub fn submit(
        &mut self,
        now: SimTime,
        key: K,
        deadline: SimTime,
        demand: SimDuration,
    ) -> Reschedule {
        self.charge_running(now);
        let job = EdfJob {
            key,
            deadline,
            seq: self.next_seq,
            remaining: demand.as_secs_f64(),
        };
        self.next_seq += 1;
        match &self.running {
            Some(run) if (job.deadline, job.seq) < (run.deadline, run.seq) => {
                // Preempt: running job returns to the ready queue.
                // detlint: allow(D9) — the enclosing match arm is Some(run)
                let preempted = self.running.take().expect("checked running");
                self.insert_ready(preempted);
                self.running = Some(job);
                self.running_since = now;
            }
            Some(_) => self.insert_ready(job),
            None => {
                self.running = Some(job);
                self.running_since = now;
            }
        }
        self.generation += 1;
        Some((self.completion_time(now), self.generation))
    }

    /// Delivers a completion event scheduled earlier.
    pub fn on_completion(&mut self, now: SimTime, generation: u64) -> Tick<K> {
        if generation != self.generation {
            return Tick::Stale;
        }
        self.charge_running(now);
        // detlint: allow(D9) — generation matched, so the job that armed this completion still runs
        let run = self.running.take().expect("completion implies a running job");
        debug_assert!(run.remaining <= 1e-9, "completion fired early");
        self.completed += 1;
        let next = self.dispatch(now);
        let mut finished = InlineVec::new();
        finished.push(run.key);
        Tick::Done { finished, next }
    }

    /// Removes a task (aborted transaction). Returns the next completion to
    /// schedule if the removal changed what is running.
    pub fn remove(&mut self, now: SimTime, key: K) -> Reschedule {
        self.charge_running(now);
        if self.running.as_ref().is_some_and(|r| r.key == key) {
            self.running = None;
            return self.dispatch(now);
        }
        let before = self.ready.len();
        self.ready.retain(|j| j.key != key);
        if self.ready.len() == before {
            return None; // unknown task: nothing changes
        }
        None
    }

    /// True if `key` is queued or running.
    #[must_use]
    pub fn contains(&self, key: K) -> bool {
        self.running.as_ref().is_some_and(|r| r.key == key)
            || self.ready.iter().any(|j| j.key == key)
    }
}

#[derive(Debug, Clone, Copy)]
struct PsJob<K> {
    key: K,
    remaining: f64,
}

/// A processor-sharing CPU with an admission cap: up to `max_active` tasks
/// share the processor equally; excess tasks wait in deadline order.
///
/// Models the centralized server's thread pool (up to 100 transaction
/// threads time-sliced by the OS).
#[derive(Debug)]
pub struct PsCpu<K = u64> {
    speed: f64,
    max_active: usize,
    active: Vec<PsJob<K>>,
    waiting: Vec<(SimTime, u64, K, f64)>, // (deadline, seq, key, work), sorted
    last_advance: SimTime,
    generation: u64,
    next_seq: u64,
    busy: SimDuration,
    completed: u64,
}

impl<K: Copy + Eq> PsCpu<K> {
    /// Creates an idle processor-sharing CPU.
    ///
    /// # Panics
    ///
    /// Panics if `speed <= 0` or `max_active == 0`.
    #[must_use]
    pub fn new(speed: f64, max_active: usize) -> Self {
        assert!(speed > 0.0, "CPU speed must be positive");
        assert!(max_active > 0, "PS admission cap must be positive");
        PsCpu {
            speed,
            max_active,
            active: Vec::new(),
            waiting: Vec::new(),
            last_advance: SimTime::ZERO,
            generation: 0,
            next_seq: 0,
            busy: SimDuration::ZERO,
            completed: 0,
        }
    }

    /// Number of tasks currently sharing the processor.
    #[must_use]
    pub fn active_count(&self) -> usize {
        self.active.len()
    }

    /// Number of admitted-but-waiting tasks.
    #[must_use]
    pub fn waiting_count(&self) -> usize {
        self.waiting.len()
    }

    /// Total tasks present.
    #[must_use]
    pub fn load(&self) -> usize {
        self.active.len() + self.waiting.len()
    }

    /// Total busy time (the processor counts as busy while any task is
    /// active).
    #[must_use]
    pub fn busy_time(&self) -> SimDuration {
        self.busy
    }

    /// Tasks completed so far.
    #[must_use]
    pub fn completed(&self) -> u64 {
        self.completed
    }

    fn advance(&mut self, now: SimTime) {
        let dt = now.duration_since(self.last_advance).as_secs_f64();
        self.last_advance = now;
        if self.active.is_empty() || dt <= 0.0 {
            return;
        }
        let rate = self.speed / self.active.len() as f64;
        for j in &mut self.active {
            j.remaining = (j.remaining - dt * rate).max(0.0);
        }
        self.busy += SimDuration::from_secs_f64(dt);
    }

    fn admit(&mut self) {
        while self.active.len() < self.max_active && !self.waiting.is_empty() {
            let (_, _, key, work) = self.waiting.remove(0);
            self.active.push(PsJob {
                key,
                remaining: work,
            });
        }
    }

    fn reschedule(&mut self, now: SimTime) -> Reschedule {
        self.generation += 1;
        let min = self
            .active
            .iter()
            .map(|j| j.remaining)
            .fold(f64::INFINITY, f64::min);
        if min.is_finite() {
            let dt = min * self.active.len() as f64 / self.speed;
            Some((now + ceil_to_micros(dt), self.generation))
        } else {
            None
        }
    }

    /// Submits a task with the given total work. Returns the next
    /// completion to schedule (replacing any previously returned one).
    pub fn submit(
        &mut self,
        now: SimTime,
        key: K,
        deadline: SimTime,
        demand: SimDuration,
    ) -> Reschedule {
        self.advance(now);
        let work = demand.as_secs_f64().max(1e-9);
        if self.active.len() < self.max_active {
            self.active.push(PsJob {
                key,
                remaining: work,
            });
        } else {
            let seq = self.next_seq;
            self.next_seq += 1;
            let pos = self
                .waiting
                .iter()
                .position(|w| (w.0, w.1) > (deadline, seq))
                .unwrap_or(self.waiting.len());
            self.waiting.insert(pos, (deadline, seq, key, work));
        }
        self.reschedule(now)
    }

    /// Delivers a completion tick scheduled earlier.
    pub fn on_completion(&mut self, now: SimTime, generation: u64) -> Tick<K> {
        if generation != self.generation {
            return Tick::Stale;
        }
        self.advance(now);
        let mut finished = InlineVec::new();
        self.active.retain(|j| {
            if j.remaining <= 1e-9 {
                finished.push(j.key);
                false
            } else {
                true
            }
        });
        self.completed += finished.len() as u64;
        self.admit();
        let next = self.reschedule(now);
        Tick::Done { finished, next }
    }

    /// Removes a task (aborted). Returns the next completion to schedule.
    pub fn remove(&mut self, now: SimTime, key: K) -> Reschedule {
        self.advance(now);
        let before = self.load();
        self.active.retain(|j| j.key != key);
        self.waiting.retain(|w| w.2 != key);
        if self.load() == before {
            return None;
        }
        self.admit();
        self.reschedule(now)
    }

    /// True if `key` is active or waiting.
    #[must_use]
    pub fn contains(&self, key: K) -> bool {
        self.active.iter().any(|j| j.key == key) || self.waiting.iter().any(|w| w.2 == key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(n: u64) -> SimTime {
        SimTime::from_secs(n)
    }
    fn d(n: u64) -> SimDuration {
        SimDuration::from_secs(n)
    }

    // ---- EdfCpu ----

    #[test]
    fn edf_runs_single_job() {
        let mut cpu = EdfCpu::new(1.0);
        let (t, g) = cpu.submit(s(0), 1u64, s(100), d(5)).unwrap();
        assert_eq!(t, s(5));
        match cpu.on_completion(t, g) {
            Tick::Done { finished, next } => {
                assert_eq!(finished.to_vec(), vec![1]);
                assert!(next.is_none());
            }
            Tick::Stale => panic!("not stale"),
        }
        assert_eq!(cpu.completed(), 1);
        assert_eq!(cpu.busy_time(), d(5));
    }

    #[test]
    fn edf_speed_scales_completion() {
        let mut cpu = EdfCpu::new(2.0);
        let (t, _) = cpu.submit(s(0), 1u64, s(100), d(10)).unwrap();
        assert_eq!(t, s(5));
    }

    #[test]
    fn edf_preemption_by_earlier_deadline() {
        let mut cpu = EdfCpu::new(1.0);
        let (_, g1) = cpu.submit(s(0), 1u64, s(100), d(10)).unwrap();
        // At t=4, job 2 with an earlier deadline arrives and preempts.
        let (t2, g2) = cpu.submit(s(4), 2u64, s(50), d(3)).unwrap();
        assert_eq!(t2, s(7));
        assert_eq!(cpu.on_completion(s(10), g1), Tick::Stale);
        match cpu.on_completion(t2, g2) {
            Tick::Done { finished, next } => {
                assert_eq!(finished.to_vec(), vec![2]);
                // Job 1 resumes with 6s left: completes at 7 + 6 = 13.
                let (t3, g3) = next.unwrap();
                assert_eq!(t3, s(13));
                match cpu.on_completion(t3, g3) {
                    Tick::Done { finished, next } => {
                        assert_eq!(finished.to_vec(), vec![1]);
                        assert!(next.is_none());
                    }
                    Tick::Stale => panic!(),
                }
            }
            Tick::Stale => panic!(),
        }
    }

    #[test]
    fn edf_later_deadline_does_not_preempt() {
        let mut cpu = EdfCpu::new(1.0);
        cpu.submit(s(0), 1u64, s(10), d(5));
        let (t, g) = cpu.submit(s(1), 2u64, s(99), d(1)).unwrap();
        assert_eq!(t, s(5)); // job 1 still finishes first
        match cpu.on_completion(t, g) {
            Tick::Done { finished, next } => {
                assert_eq!(finished.to_vec(), vec![1]);
                assert_eq!(next.unwrap().0, s(6));
            }
            Tick::Stale => panic!(),
        }
    }

    #[test]
    fn edf_remove_running_promotes_next() {
        let mut cpu = EdfCpu::new(1.0);
        cpu.submit(s(0), 1u64, s(10), d(5));
        cpu.submit(s(0), 2u64, s(20), d(4));
        let next = cpu.remove(s(2), 1u64);
        let (t, g) = next.unwrap();
        assert_eq!(t, s(6)); // job 2 starts at 2, runs 4s
        match cpu.on_completion(t, g) {
            Tick::Done { finished, .. } => assert_eq!(finished.to_vec(), vec![2]),
            Tick::Stale => panic!(),
        }
    }

    #[test]
    fn edf_remove_queued_is_silent() {
        let mut cpu = EdfCpu::new(1.0);
        let (t1, _g1) = cpu.submit(s(0), 1u64, s(10), d(5)).unwrap();
        // Submitting job 2 re-issues the schedule for the still-running job 1.
        let (t1b, g1b) = cpu.submit(s(0), 2u64, s(20), d(4)).unwrap();
        assert_eq!(t1, t1b);
        assert!(cpu.contains(2));
        // Removing the queued job does not disturb the running one: no new
        // schedule is needed and the latest completion event stays valid.
        assert!(cpu.remove(s(1), 2u64).is_none());
        assert!(!cpu.contains(2));
        match cpu.on_completion(t1b, g1b) {
            Tick::Done { finished, next } => {
                assert_eq!(finished.to_vec(), vec![1]);
                assert!(next.is_none());
            }
            Tick::Stale => panic!("the running job's completion must stay valid"),
        }
    }

    #[test]
    fn edf_fifo_among_equal_deadlines() {
        let mut cpu = EdfCpu::new(1.0);
        cpu.submit(s(0), 1u64, s(10), d(1));
        cpu.submit(s(0), 2u64, s(10), d(1));
        let (t, g) = cpu.submit(s(0), 3u64, s(10), d(1)).unwrap();
        assert_eq!(t, s(1));
        let mut order = Vec::new();
        let mut tick = cpu.on_completion(t, g);
        loop {
            match tick {
                Tick::Done { finished, next } => {
                    order.extend(finished.iter().copied());
                    match next {
                        Some((tn, gn)) => tick = cpu.on_completion(tn, gn),
                        None => break,
                    }
                }
                Tick::Stale => panic!(),
            }
        }
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn edf_load_tracking() {
        let mut cpu = EdfCpu::new(1.0);
        assert_eq!(cpu.load(), 0);
        cpu.submit(s(0), 1u64, s(10), d(5));
        cpu.submit(s(0), 2u64, s(20), d(5));
        assert_eq!(cpu.load(), 2);
        assert!(cpu.contains(1));
        assert!(!cpu.contains(9));
    }

    // ---- PsCpu ----

    #[test]
    fn ps_single_job_like_fcfs() {
        let mut cpu = PsCpu::new(1.0, 10);
        let (t, g) = cpu.submit(s(0), 1u64, s(99), d(4)).unwrap();
        assert_eq!(t, s(4));
        match cpu.on_completion(t, g) {
            Tick::Done { finished, next } => {
                assert_eq!(finished.to_vec(), vec![1]);
                assert!(next.is_none());
            }
            Tick::Stale => panic!(),
        }
    }

    #[test]
    fn ps_two_jobs_share_equally() {
        let mut cpu = PsCpu::new(1.0, 10);
        cpu.submit(s(0), 1u64, s(99), d(4));
        let (t, g) = cpu.submit(s(0), 2u64, s(99), d(4)).unwrap();
        // Both need 4s of work at half speed: done at 8s, simultaneously.
        assert_eq!(t, s(8));
        match cpu.on_completion(t, g) {
            Tick::Done { finished, next } => {
                assert_eq!(finished.len(), 2);
                assert!(next.is_none());
            }
            Tick::Stale => panic!(),
        }
        assert_eq!(cpu.completed(), 2);
    }

    #[test]
    fn ps_unequal_jobs_finish_in_order() {
        let mut cpu = PsCpu::new(1.0, 10);
        cpu.submit(s(0), 1u64, s(99), d(2));
        let (t1, g1) = cpu.submit(s(0), 2u64, s(99), d(6)).unwrap();
        // Job 1: 2s work at rate 1/2 => done at t=4.
        assert_eq!(t1, s(4));
        match cpu.on_completion(t1, g1) {
            Tick::Done { finished, next } => {
                assert_eq!(finished.to_vec(), vec![1]);
                // Job 2 had 6-2=4s left, now alone: done at 4+4=8.
                let (t2, g2) = next.unwrap();
                assert_eq!(t2, s(8));
                match cpu.on_completion(t2, g2) {
                    Tick::Done { finished, .. } => assert_eq!(finished.to_vec(), vec![2]),
                    Tick::Stale => panic!(),
                }
            }
            Tick::Stale => panic!(),
        }
    }

    #[test]
    fn ps_admission_cap_queues_by_deadline() {
        let mut cpu = PsCpu::new(1.0, 1);
        cpu.submit(s(0), 1u64, s(10), d(2));
        cpu.submit(s(0), 2u64, s(30), d(2));
        let (t, g) = cpu.submit(s(0), 3u64, s(20), d(2)).unwrap();
        assert_eq!(cpu.active_count(), 1);
        assert_eq!(cpu.waiting_count(), 2);
        assert_eq!(t, s(2));
        match cpu.on_completion(t, g) {
            Tick::Done { finished, next } => {
                assert_eq!(finished.to_vec(), vec![1]);
                // Deadline order: job 3 (deadline 20) admitted before job 2.
                let (t2, g2) = next.unwrap();
                match cpu.on_completion(t2, g2) {
                    Tick::Done { finished, .. } => assert_eq!(finished.to_vec(), vec![3]),
                    Tick::Stale => panic!(),
                }
            }
            Tick::Stale => panic!(),
        }
    }

    #[test]
    fn ps_stale_generation_ignored() {
        let mut cpu = PsCpu::new(1.0, 10);
        let (t1, g1) = cpu.submit(s(0), 1u64, s(99), d(4)).unwrap();
        let (_t2, _g2) = cpu.submit(s(1), 2u64, s(99), d(4)).unwrap();
        assert_eq!(cpu.on_completion(t1, g1), Tick::Stale);
    }

    #[test]
    fn ps_remove_active_job() {
        let mut cpu = PsCpu::new(1.0, 10);
        cpu.submit(s(0), 1u64, s(99), d(4));
        cpu.submit(s(0), 2u64, s(99), d(4));
        let next = cpu.remove(s(2), 1u64);
        // Job 2 consumed 1s of work by t=2 (rate 1/2); 3s left alone => t=5.
        let (t, g) = next.unwrap();
        assert_eq!(t, s(5));
        match cpu.on_completion(t, g) {
            Tick::Done { finished, .. } => assert_eq!(finished.to_vec(), vec![2]),
            Tick::Stale => panic!(),
        }
        assert!(cpu.remove(s(6), 42u64).is_none());
    }

    #[test]
    fn ps_busy_time_accumulates_wall_clock() {
        let mut cpu = PsCpu::new(1.0, 10);
        cpu.submit(s(0), 1u64, s(99), d(2));
        let (t, g) = cpu.submit(s(0), 2u64, s(99), d(2)).unwrap();
        cpu.on_completion(t, g);
        assert_eq!(cpu.busy_time(), d(4)); // busy from 0 to 4
    }

    #[test]
    fn ps_speed_scales() {
        let mut cpu = PsCpu::new(4.0, 100);
        let (t, _) = cpu.submit(s(0), 1u64, s(99), d(8)).unwrap();
        assert_eq!(t, s(2));
    }
}
