//! Plain-text table rendering for experiment reports.

/// A simple column-aligned text table.
///
/// # Example
///
/// ```
/// use siteselect_core::report::TextTable;
///
/// let mut t = TextTable::new(vec!["clients".into(), "success %".into()]);
/// t.row(vec!["20".into(), "91.3".into()]);
/// let s = t.render();
/// assert!(s.contains("clients"));
/// assert!(s.contains("91.3"));
/// ```
#[derive(Debug, Clone)]
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    #[must_use]
    pub fn new(headers: Vec<String>) -> Self {
        TextTable {
            headers,
            rows: Vec::new(),
        }
    }

    /// Appends a row (padded/truncated to the header width).
    pub fn row(&mut self, mut cells: Vec<String>) {
        cells.resize(self.headers.len(), String::new());
        self.rows.push(cells);
    }

    /// Number of data rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the table has no data rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with aligned columns and a separator line.
    #[must_use]
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(cols) {
                // detlint: allow(D9) — i < cols == widths.len() via take(cols)
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            // Zip instead of indexing: a row wider than the header row
            // renders its extra cells unaligned rather than panicking.
            for (i, (cell, width)) in cells.iter().zip(widths).enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{cell:>width$}"));
            }
            for cell in cells.iter().skip(widths.len()) {
                line.push_str("  ");
                line.push_str(cell);
            }
            line
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols.saturating_sub(1));
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Formats a float with the given number of decimals.
#[must_use]
pub fn fnum(v: f64, decimals: usize) -> String {
    format!("{v:.decimals$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(vec!["a".into(), "long header".into()]);
        t.row(vec!["1".into(), "2".into()]);
        t.row(vec!["100".into(), "x".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[1].chars().all(|c| c == '-'));
        // All lines same width alignment: last column right-aligned.
        assert!(lines[2].ends_with('2'));
        assert!(lines[3].ends_with('x'));
    }

    #[test]
    fn short_rows_are_padded() {
        let mut t = TextTable::new(vec!["a".into(), "b".into(), "c".into()]);
        t.row(vec!["1".into()]);
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
        let s = t.render();
        assert!(s.lines().count() == 3);
    }

    #[test]
    fn fnum_formats() {
        assert_eq!(fnum(3.45678, 2), "3.46");
        assert_eq!(fnum(10.0, 0), "10");
    }
}
