//! The client-server real-time database (CS-RTDBS) and its load-sharing
//! extension (LS-CS-RTDBS), as one event-driven simulator.
//!
//! The CS system implements the paper's §2 model: transactions execute at
//! client workstations, objects and their **locks** are cached across
//! transactions, the server keeps a global client-granularity lock table and
//! recalls (calls back) conflicting locks, downgrading an exclusive holder
//! to shared when the requester only reads. Clients schedule locally with
//! preemptive EDF and drop transactions whose deadlines have passed.
//!
//! The LS system (§3–4) adds, behind `config.load_sharing` flags:
//! * **H1** admission (`now + n·ATL ≤ deadline`), falling back to remote
//!   placement when the local queue is infeasible;
//! * **H2** site selection (fewest conflicting locks, load as tiebreak) fed
//!   by a grant-all-or-conflict-info first request round;
//! * **transaction shipping** over the directory server;
//! * **transaction decomposition** into parallel subtasks at the sites that
//!   cache the data;
//! * **object request scheduling** (deadline-ordered server queues, expired
//!   requests refused);
//! * **grouped locks**: collection windows + forward lists, with the
//!   client-to-client object hops that give the 2n+1 message economics.

mod client;
mod server;

use std::collections::{BTreeMap, HashMap};

use siteselect_locks::{CallbackTracker, ForwardList, LockTable, QueueDiscipline, WaitForGraph, WindowManager};
use siteselect_net::{Delivery, Fabric};
use siteselect_obs::EventSink;
use siteselect_sim::{EventQueue, Prng};
use siteselect_storage::{ClientCache, DiskModel, DurableStore, RecoveryOutcome};
use siteselect_types::{
    AbortReason, AccessSpec, ClientId, ExperimentConfig, InlineVec, LockMode, ObjectId,
    ObjectMap, ObjectSet, SimDuration, SimTime, SiteId, SystemKind, TransactionId,
    TransactionSpec, TxnOutcome,
};
use siteselect_workload::Trace;

use crate::cpu::EdfCpu;
use crate::metrics::RunMetrics;

/// Transaction/subtask key used across the simulator (subtask keys embed
/// the subtask index in otherwise-unused bits of the transaction id).
pub(crate) type TKey = u64;

/// Builds the key of subtask `index` of transaction key `parent`.
pub(crate) fn subtask_key(parent: TKey, index: u8) -> TKey {
    debug_assert_eq!(parent & (0xFF << 40), 0, "sequence bits 40..48 in use");
    parent | (u64::from(index) + 1) << 40
}

/// One requested object in a client→server request batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Want {
    pub object: ObjectId,
    pub mode: LockMode,
    /// False when the client still caches the data and only needs a
    /// stronger lock.
    pub needs_data: bool,
    /// Deadline of the earliest requesting transaction (drives the server's
    /// deadline-ordered request scheduling).
    pub deadline: SimTime,
}

/// Messages exchanged between sites (the payload of `Ev::Deliver`).
#[derive(Debug, Clone)]
pub(crate) enum Msg {
    /// Client → server: per-object requests of one transaction, physically
    /// batched. `grant_all` marks the LS first round ("grant everything or
    /// tell me who conflicts").
    RequestBatch {
        txn: TKey,
        client: ClientId,
        wants: Vec<Want>,
        grant_all: bool,
    },
    /// Server → client: granted objects/locks of one batch.
    GrantBatch {
        items: Vec<(ObjectId, LockMode, bool)>, // (object, mode, with_data)
    },
    /// Server → client: the LS grant-all round failed; here is who holds
    /// what (input to H2).
    ConflictReport {
        txn: TKey,
        conflicts: Vec<(ObjectId, Vec<(ClientId, LockMode)>)>,
    },
    /// Server → client: request refused (wait-for cycle or expired
    /// deadline).
    Rejected { txn: TKey, expired: bool },
    /// Server → client: give up your lock on `object`; `desired` lets an
    /// exclusive holder downgrade for a reader. A forward list rides along
    /// in the grouped-lock path.
    Recall {
        object: ObjectId,
        desired: LockMode,
        forward: Option<ForwardList>,
    },
    /// Client → server: object returned (with data). `downgraded` keeps a
    /// shared lock at the client.
    ObjectReturn {
        object: ObjectId,
        from: ClientId,
        downgraded: bool,
    },
    /// Client → server: callback answered without data (copy was clean or
    /// already evicted; `had_copy` false means the forward list, if any,
    /// must be served by the server).
    CallbackAck {
        object: ObjectId,
        from: ClientId,
        had_copy: bool,
    },
    /// Client → server: these waiting requests died with their transaction.
    CancelWants {
        client: ClientId,
        objects: Vec<ObjectId>,
    },
    /// Client → server: where are these objects, and how loaded is
    /// everyone? (H1/H2 and decomposition input.)
    LoadQuery { txn: TKey, objects: Vec<ObjectId> },
    /// Server → client: locations and loads.
    LoadReply {
        txn: TKey,
        locations: Vec<(ObjectId, Vec<(ClientId, LockMode)>)>,
        loads: Vec<(ClientId, usize, f64)>,
    },
    /// Client → client (via directory): object hops down a forward list.
    /// `mode` is the receiver's granted mode; `rest` is the remainder of
    /// the list.
    ObjectForward {
        object: ObjectId,
        mode: LockMode,
        rest: ForwardList,
    },
    /// Client → client (via directory): a whole transaction moves.
    /// `sent_at` stamps the ship decision so delivery can span the travel.
    TxnShip { spec: TransactionSpec, sent_at: SimTime },
    /// Client → client (via directory): outcome of a shipped transaction,
    /// with what the origin needs to score it at delivery time. `sent_at`
    /// stamps the remote commit so delivery can span the return hop.
    TxnShipResult {
        txn: TransactionId,
        committed: bool,
        deadline: SimTime,
        arrival: SimTime,
        sent_at: SimTime,
    },
    /// Client → client (via directory): one subtask of a decomposed
    /// transaction. `sent_at` stamps the decomposition decision.
    SubtaskShip {
        parent: TKey,
        index: u8,
        origin: ClientId,
        spec: TransactionSpec,
        sent_at: SimTime,
    },
    /// Client → client (via directory): subtask outcome; `sent_at` stamps
    /// the subtask's completion at the remote site.
    SubtaskResult { parent: TKey, ok: bool, sent_at: SimTime },
}

/// Simulator events.
#[derive(Debug)]
pub(crate) enum Ev {
    /// A transaction is initiated at its origin client.
    Arrive(usize),
    /// One or more messages reach `to` at the same instant. Messages that
    /// share a delivery time and destination ride in one event (batched
    /// fabric delivery); the vector is pooled by [`ClusterQueue`].
    Deliver { to: SiteDest, msgs: Vec<Msg> },
    /// A client CPU completion tick.
    ClientCpu { client: usize, generation: u64 },
    /// A client's disk-tier cache promotion finished. `scheduled_at` is
    /// when the I/O was issued (start of the disk span).
    ClientDiskReady {
        client: usize,
        txn: TKey,
        object: ObjectId,
        scheduled_at: SimTime,
    },
    /// Server finished fetching objects from disk for a grant batch.
    /// `txn` / `scheduled_at` attribute the disk span to the requesting
    /// transaction.
    ServerFetchDone {
        to: ClientId,
        txn: TKey,
        items: Vec<(ObjectId, LockMode, bool)>,
        scheduled_at: SimTime,
    },
    /// A grouped-lock collection window closed.
    WindowClose { object: ObjectId },
    /// Statistics window opens.
    EndWarmup,
    /// Periodic pruning of expired transactions and waiters.
    Sweep,
    /// Fault injection: a client site crashes (from the pre-generated
    /// schedule).
    SiteCrash { client: usize },
    /// Fault injection: a crashed client site comes back up, cold.
    SiteRecover { client: usize },
    /// Fault injection: the server crashes (from the pre-generated
    /// schedule). Volatile state is lost; the durable store survives.
    ServerCrash,
    /// The server finished log replay and rejoins.
    ServerRecover,
    /// Failure handling: check whether a fetch is still unanswered and
    /// retransmit its request (capped exponential backoff).
    RetryFetch {
        client: usize,
        object: ObjectId,
        /// The retry round this event belongs to (stale events mismatch).
        attempt: u32,
        /// Issue time of the fetch this retry guards (stale events
        /// mismatch).
        sent_at: SimTime,
    },
}

/// Delivery destination (server or a client).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum SiteDest {
    Server,
    Client(ClientId),
}

/// The simulator's event queue plus a one-slot staging buffer that batches
/// fabric deliveries: consecutive messages bound for the same destination
/// at the same instant are pushed as one `Ev::Deliver` carrying the whole
/// group, so a burst on one link costs one queue operation instead of one
/// per message.
///
/// Ordering is preserved exactly: the staged group is flushed before any
/// other push (so an unrelated same-timestamp event can never be reordered
/// around it) and before every pop. Group vectors are recycled through a
/// small pool, keeping steady-state delivery scheduling off the allocator.
pub(crate) struct ClusterQueue {
    q: EventQueue<Ev>,
    staged_at: SimTime,
    staged_to: SiteDest,
    staged: Vec<Msg>,
    pool: Vec<Vec<Msg>>,
}

impl ClusterQueue {
    fn new() -> Self {
        ClusterQueue {
            q: EventQueue::new(),
            staged_at: SimTime::ZERO,
            staged_to: SiteDest::Server,
            staged: Vec::new(),
            pool: Vec::new(),
        }
    }

    /// Pushes any staged delivery group as one event.
    fn flush(&mut self) {
        if !self.staged.is_empty() {
            let msgs = std::mem::replace(&mut self.staged, self.pool.pop().unwrap_or_default());
            self.q.push(self.staged_at, Ev::Deliver { to: self.staged_to, msgs });
        }
    }

    /// Stages a message delivery, merging it into the current group when
    /// the `(time, destination)` matches.
    pub(crate) fn stage_delivery(&mut self, at: SimTime, to: SiteDest, msg: Msg) {
        if !self.staged.is_empty() && (self.staged_at != at || self.staged_to != to) {
            self.flush();
        }
        self.staged_at = at;
        self.staged_to = to;
        self.staged.push(msg);
    }

    /// Returns a drained group vector to the pool for reuse.
    pub(crate) fn recycle(&mut self, mut msgs: Vec<Msg>) {
        if self.pool.len() < 8 {
            msgs.clear();
            self.pool.push(msgs);
        }
    }

    pub(crate) fn push(&mut self, at: SimTime, ev: Ev) {
        self.flush();
        self.q.push(at, ev);
    }

    pub(crate) fn pop(&mut self) -> Option<(SimTime, Ev)> {
        self.flush();
        self.q.pop()
    }

    pub(crate) fn len(&self) -> usize {
        self.q.len() + usize::from(!self.staged.is_empty())
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Why an object fetch is outstanding at a client.
#[derive(Debug)]
pub(crate) struct Fetch {
    pub mode: LockMode,
    pub sent_at: SimTime,
    pub waiters: Vec<TKey>,
    /// True once the request actually went to the server (a fetch created
    /// while a batch is being assembled is not yet on the wire).
    pub sent: bool,
    /// Retransmissions sent so far (failure handling; always 0 with faults
    /// off).
    pub attempts: u32,
}

/// A pending lock revocation at a client, answered when the last local user
/// releases the object.
#[derive(Debug)]
pub(crate) struct Revoke {
    /// What the remote requester wants (plain callback path).
    pub desired: LockMode,
    /// Remaining forward list to serve (grouped-lock path).
    pub forward: Option<ForwardList>,
}

/// Progress of one object within a transaction's acquisition phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Need {
    /// Waiting for the server (request outstanding or staged).
    Fetch,
    /// Cached lock covers; waiting for a local lock conflict to clear.
    LocalWait,
    /// Local lock granted; promoting the object from the disk cache tier.
    DiskPromote,
    /// Ready.
    Held,
}

/// What kind of unit of work a `TxnRun` is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum RunKind {
    /// A transaction executing at its origin.
    Normal,
    /// A transaction shipped here from `origin`.
    Shipped { origin: ClientId },
    /// Subtask `index` of `parent`, reporting to `origin`.
    Subtask {
        parent: TKey,
        index: u8,
        origin: ClientId,
    },
}

/// Lifecycle state of a `TxnRun`.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum RunState {
    /// LS: waiting for the LoadReply that feeds H1/H2/decomposition.
    AwaitInfo { reason: InfoReason },
    /// LS: grant-all round outstanding.
    AwaitGrantAll,
    /// Collecting objects and locks.
    Acquiring,
    /// On the CPU.
    Executing,
    /// Parent of a decomposition waiting for subtask results.
    AwaitSubtasks { pending: u8, failed: bool },
    /// Waiting for the synthesis CPU slice.
    Synthesis,
}

/// Why a LoadQuery was sent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum InfoReason {
    /// H1 said the local queue is infeasible; pick a site with H2.
    H1Infeasible,
    /// Decomposition placement lookup.
    Decompose,
}

/// The objects a `TxnRun` must assemble, in struct-of-arrays layout:
/// three parallel inline vectors (object, lock mode, progress) kept sorted
/// by object id. Transactions touch 5–15 objects, so entries live inline
/// (no per-transaction map nodes) and lookups are short linear scans; the
/// sorted order reproduces the ascending iteration the previous `BTreeMap`
/// gave, which release loops depend on for determinism.
#[derive(Debug, Default)]
pub(crate) struct NeededSet {
    objs: InlineVec<ObjectId, 16>,
    modes: InlineVec<LockMode, 16>,
    needs: InlineVec<Need, 16>,
}

impl NeededSet {
    fn pos(&self, object: ObjectId) -> Option<usize> {
        self.objs.iter().position(|&o| o == object)
    }

    /// Inserts or replaces the entry for `object`.
    pub(crate) fn insert(&mut self, object: ObjectId, mode: LockMode, need: Need) {
        match self.pos(object) {
            Some(i) => {
                self.modes.set(i, mode);
                self.needs.set(i, need);
            }
            None => {
                let at = self
                    .objs
                    .iter()
                    .position(|&o| o > object)
                    .unwrap_or(self.objs.len());
                self.objs.insert(at, object);
                self.modes.insert(at, mode);
                self.needs.insert(at, need);
            }
        }
    }

    /// The recorded (mode, progress) of `object`, if present.
    pub(crate) fn get(&self, object: ObjectId) -> Option<(LockMode, Need)> {
        self.pos(object)
            .map(|i| (self.modes.get_copy(i), self.needs.get_copy(i)))
    }

    /// Updates the progress of `object`; no-op if absent.
    pub(crate) fn set_need(&mut self, object: ObjectId, need: Need) {
        if let Some(i) = self.pos(object) {
            self.needs.set(i, need);
        }
    }

    /// The objects of this set, ascending.
    pub(crate) fn objects(&self) -> impl Iterator<Item = ObjectId> + '_ {
        self.objs.iter().copied()
    }

    /// True once every entry is `Need::Held`.
    pub(crate) fn all_held(&self) -> bool {
        self.needs.iter().all(|&n| n == Need::Held)
    }
}

/// One executing transaction/subtask at a client.
#[derive(Debug)]
pub(crate) struct TxnRun {
    pub spec: TransactionSpec,
    pub kind: RunKind,
    pub state: RunState,
    pub needed: NeededSet,
    pub acquire_started: SimTime,
    /// When the transaction reached the CPU (feeds the ATL estimate of H1).
    pub exec_started: SimTime,
}

impl TxnRun {
    pub(crate) fn ready(&self) -> bool {
        self.state == RunState::Acquiring && self.needed.all_held()
    }
}

/// Per-client state.
pub(crate) struct ClientState {
    pub id: ClientId,
    pub cache: ClientCache,
    pub cached_locks: ObjectMap<LockMode>,
    pub dirty: ObjectSet,
    pub local_locks: LockTable<TKey>,
    pub local_wfg: WaitForGraph<TKey>,
    pub cpu: EdfCpu<TKey>,
    pub disk: DiskModel,
    pub txns: HashMap<TKey, TxnRun>,
    pub fetches: HashMap<ObjectId, Fetch>,
    pub revokes: HashMap<ObjectId, Revoke>,
    /// Running average latency of locally completed transactions (ATL in
    /// H1).
    pub atl_sum: f64,
    pub atl_count: u64,
    /// Trace-only: start time and blocking holder of in-progress local
    /// lock waits, keyed `(txn, object)`. Populated only while a sink is
    /// attached — pure observer, never read by simulation logic.
    pub lock_wait_from: HashMap<(TKey, ObjectId), (SimTime, Option<TKey>)>,
}

impl ClientState {
    pub(crate) fn atl(&self) -> f64 {
        if self.atl_count == 0 {
            // No history yet: optimistic prior (about one CPU demand) so H1
            // only starts shedding load once real latencies are observed.
            1.0
        } else {
            self.atl_sum / self.atl_count as f64
        }
    }

    /// Number of incomplete local units of work.
    pub(crate) fn load(&self) -> usize {
        self.txns.len()
    }

    /// H1's `n`: transactions ahead of a newcomer in the local priority
    /// queue (the EDF CPU queue — blocked transactions consume no CPU).
    pub(crate) fn queue_ahead(&self) -> usize {
        self.cpu.load()
    }
}

/// Info the server tracks for a lock-table-queued want.
#[derive(Debug, Clone, Copy)]
pub(crate) struct WantInfo {
    pub mode: LockMode,
    pub needs_data: bool,
    pub deadline: SimTime,
    /// The requesting transaction (for rejection notices).
    pub txn: TKey,
    /// When the want entered the server's lock queue (start of the
    /// lock-wait span emitted at grant time).
    pub queued_at: SimTime,
}

/// The server's index of lock-table-queued wants, keyed `(object, client)`.
///
/// Stored as one small vector per client: a client has at most a handful of
/// requests queued at once, so a linear scan beats hashing the composite
/// key, and `refresh_wfg`'s per-client iteration becomes a direct slice
/// walk instead of a filter over the whole map.
pub(crate) struct WaitingWants {
    per_client: Vec<Vec<(ObjectId, WantInfo)>>,
}

impl WaitingWants {
    fn new(clients: usize) -> Self {
        WaitingWants {
            per_client: vec![Vec::new(); clients],
        }
    }

    /// Records (or replaces) the want of `client` on `object`.
    pub(crate) fn insert(&mut self, object: ObjectId, client: ClientId, info: WantInfo) {
        // detlint: allow(D9) — per_client is sized to the client count at construction
        let list = &mut self.per_client[client.index()];
        match list.iter_mut().find(|(o, _)| *o == object) {
            Some(slot) => slot.1 = info,
            None => list.push((object, info)),
        }
    }

    /// Removes and returns the want of `client` on `object`, if any.
    pub(crate) fn remove(&mut self, object: ObjectId, client: ClientId) -> Option<WantInfo> {
        // detlint: allow(D9) — per_client is sized to the client count at construction
        let list = &mut self.per_client[client.index()];
        let pos = list.iter().position(|(o, _)| *o == object)?;
        Some(list.remove(pos).1)
    }

    /// True if `client` has a want queued on `object`.
    pub(crate) fn contains(&self, object: ObjectId, client: ClientId) -> bool {
        // detlint: allow(D9) — per_client is sized to the client count at construction
        self.per_client[client.index()]
            .iter()
            .any(|(o, _)| *o == object)
    }

    /// All queued wants of `client`, in insertion order.
    pub(crate) fn of_client(&self, client: ClientId) -> &[(ObjectId, WantInfo)] {
        // detlint: allow(D9) — per_client is sized to the client count at construction
        &self.per_client[client.index()]
    }
}

/// Server-side state.
pub(crate) struct ServerState {
    pub locks: LockTable<ClientId>,
    pub wfg: WaitForGraph<ClientId>,
    pub callbacks: CallbackTracker,
    pub windows: WindowManager,
    pub buffer: ClientCache,
    pub disk: DiskModel,
    /// Forward lists currently travelling client→client, as shipped.
    pub routing: ObjectMap<ForwardList>,
    /// Lock-table-queued requests awaiting grant: data to ship on grant.
    pub waiting_wants: WaitingWants,
    /// WAL-backed durable home of the database: every data-carrying object
    /// return is applied here under a server-local pseudo-transaction, so a
    /// crash-restart replays the newest committed versions.
    pub store: DurableStore,
    /// Sequence counter for the pseudo-transactions above (tagged with the
    /// high bit so they can never collide with workload transaction ids).
    pub pseudo_seq: u64,
}

/// Fault-injection runtime state. `active` is false unless the experiment
/// config enables an injection knob, and every fault code path is gated on
/// it, so a default run schedules no fault events and draws no fault
/// randomness.
pub(crate) struct FaultRuntime {
    /// True if `cfg.faults.injects_faults()`.
    pub active: bool,
    /// Liveness of each client site (all true with faults off).
    pub up: Vec<bool>,
    /// Liveness of the server (true with faults off).
    pub server_up: bool,
    /// Pre-crash in-flight deliveries refused at a crashed destination
    /// (fabric-level drops are counted by the fabric itself).
    pub gate_dropped: u64,
    /// Crash-restart randomness: the torn staged-write tail kept by a
    /// server crash and the reboot lag before replay starts. Its own stream
    /// so restart draws never perturb the crash schedule.
    pub crash_prng: Prng,
    /// Replay summary carried from a server crash to its `ServerRecover`.
    pub pending_recovery: Option<RecoveryOutcome>,
    /// When the server went down (start of the site-scoped replay span
    /// emitted at rejoin).
    pub server_crashed_at: Option<SimTime>,
}

impl FaultRuntime {
    fn new(active: bool, clients: usize, seed: u64) -> Self {
        FaultRuntime {
            active,
            up: vec![true; clients],
            server_up: true,
            gate_dropped: 0,
            crash_prng: Prng::seed_from_u64(seed).derive(0xFA_E5),
            pending_recovery: None,
            server_crashed_at: None,
        }
    }
}

/// Discrete-event simulator of CS-RTDBS / LS-CS-RTDBS.
pub struct ClientServerSim {
    pub(crate) cfg: ExperimentConfig,
    pub(crate) ls: bool,
    pub(crate) now: SimTime,
    pub(crate) queue: ClusterQueue,
    pub(crate) fabric: Fabric,
    pub(crate) clients: Vec<ClientState>,
    pub(crate) server: ServerState,
    pub(crate) warmup_end: SimTime,
    pub(crate) metrics: RunMetrics,
    pub(crate) inflight: usize,
    /// Parent transactions of decompositions also count in `inflight`.
    pub(crate) specs: Vec<TransactionSpec>,
    pub(crate) faults: FaultRuntime,
    pub(crate) sink: EventSink,
}

impl ClientServerSim {
    /// Builds the simulator for `cfg`. `cfg.system` selects CS or LS
    /// behaviour.
    ///
    /// # Panics
    ///
    /// Panics if called with a centralized config.
    #[must_use]
    pub fn new(cfg: ExperimentConfig) -> Self {
        assert!(
            cfg.system != SystemKind::Centralized,
            "use CentralizedSim for CE-RTDBS"
        );
        let ls = cfg.system == SystemKind::LoadSharing;
        // The server's wait queue stays FIFO even under LS: deadline-ordered
        // waiter service (§3.3) is realized where it measurably helps — the
        // forward lists are deadline-ordered and expired requests are
        // refused — while EDF-ordering the lock queue itself breaks up
        // naturally batched reader grants and lowers aggregate success.
        let discipline = QueueDiscipline::Fifo;
        let clients: Vec<ClientState> = (0..cfg.clients)
            .map(|i| ClientState {
                id: ClientId(i),
                cache: ClientCache::new(
                    cfg.client.memory_cache_objects,
                    cfg.client.disk_cache_objects,
                ),
                cached_locks: ObjectMap::new(),
                dirty: ObjectSet::new(),
                local_locks: LockTable::new(QueueDiscipline::Deadline),
                local_wfg: WaitForGraph::new(),
                cpu: EdfCpu::new(cfg.cpu.client_speed),
                disk: DiskModel::new(cfg.client.disk.page_service_time),
                txns: HashMap::new(),
                fetches: HashMap::new(),
                revokes: HashMap::new(),
                atl_sum: 0.0,
                atl_count: 0,
                lock_wait_from: HashMap::new(),
            })
            .collect();
        let server = ServerState {
            locks: LockTable::new(discipline),
            wfg: WaitForGraph::new(),
            callbacks: CallbackTracker::new(),
            windows: WindowManager::new(cfg.load_sharing.collection_window),
            buffer: ClientCache::new(cfg.server.buffer_objects, 0),
            disk: DiskModel::new(cfg.server.disk.page_service_time),
            routing: ObjectMap::new(),
            waiting_wants: WaitingWants::new(usize::from(cfg.clients)),
            store: DurableStore::new(cfg.database.num_objects, cfg.server.buffer_objects.max(1)),
            pseudo_seq: 0,
        };
        let warmup_end = SimTime::ZERO + cfg.runtime.warmup;
        let metrics = RunMetrics::new(
            cfg.system,
            cfg.clients,
            cfg.workload.update_fraction,
            cfg.runtime.seed,
        );
        let faults = FaultRuntime::new(cfg.faults.injects_faults(), clients.len(), cfg.runtime.seed);
        let mut fabric = Fabric::new(cfg.network, cfg.database.object_size_bytes);
        if faults.active {
            // A dedicated PRNG stream for the fabric: loss and jitter draws
            // never perturb the workload's random sequence.
            let prng = Prng::seed_from_u64(cfg.runtime.seed).derive(0xFA_B1);
            fabric.enable_faults(cfg.faults, prng);
        }
        ClientServerSim {
            fabric,
            ls,
            now: SimTime::ZERO,
            queue: ClusterQueue::new(),
            clients,
            server,
            warmup_end,
            metrics,
            inflight: 0,
            specs: Vec::new(),
            faults,
            sink: EventSink::disabled(),
            cfg,
        }
    }

    /// Enables event tracing: the sink is shared with the fabric and the
    /// server's window/callback managers so every layer stamps the same
    /// timeline.
    pub fn attach_sink(&mut self, sink: EventSink) {
        self.fabric.set_sink(sink.clone());
        self.server.windows.set_sink(sink.clone());
        self.server.callbacks.set_sink(sink.clone());
        self.sink = sink;
    }

    /// Pre-generates the whole fault schedule (crashes, recoveries and
    /// slow-disk episodes) from seed-derived PRNG streams, so two runs with
    /// the same seed inject identical faults regardless of workload
    /// interleaving.
    fn schedule_faults(&mut self) {
        let f = self.cfg.faults;
        let duration = self.cfg.runtime.duration;
        let end = SimTime::ZERO + duration;
        if !f.mean_time_to_crash.is_zero() {
            let crash_base = Prng::seed_from_u64(self.cfg.runtime.seed).derive(0xFA_C2);
            for ci in 0..self.clients.len() {
                let mut prng = crash_base.derive(ci as u64);
                let mut t = SimTime::ZERO;
                loop {
                    t += prng.exp_duration(f.mean_time_to_crash);
                    if t >= end {
                        break;
                    }
                    self.queue.push(t, Ev::SiteCrash { client: ci });
                    if f.mean_recovery_time.is_zero() {
                        break; // this site stays down for the rest of the run
                    }
                    t += prng.exp_duration(f.mean_recovery_time);
                    if t >= end {
                        break;
                    }
                    self.queue.push(t, Ev::SiteRecover { client: ci });
                }
            }
        }
        if !f.mean_time_to_server_crash.is_zero() {
            let mut prng = Prng::seed_from_u64(self.cfg.runtime.seed).derive(0xFA_E4);
            let mut t = SimTime::ZERO;
            loop {
                t += prng.exp_duration(f.mean_time_to_server_crash);
                if t >= end {
                    break;
                }
                self.queue.push(t, Ev::ServerCrash);
                if f.mean_recovery_time.is_zero() {
                    break; // permanent: the site goes dark, no replay
                }
                // Recovery is self-scheduled by the crash handler (its time
                // depends on log length); space the next crash out past the
                // expected outage so the schedule stays plausible.
                t += prng.exp_duration(f.mean_recovery_time);
            }
        }
        if !f.mean_time_to_slow_disk.is_zero() {
            let mut prng = Prng::seed_from_u64(self.cfg.runtime.seed).derive(0xFA_D3);
            let mut episodes = Vec::new();
            let mut t = SimTime::ZERO;
            loop {
                t += prng.exp_duration(f.mean_time_to_slow_disk);
                if t >= end {
                    break;
                }
                let until = t + f.slow_disk_duration;
                episodes.push((t, until));
                t = until;
            }
            self.server.disk.set_slow_episodes(episodes, f.slow_disk_factor);
        }
    }

    /// Runs the experiment to completion and returns its metrics.
    #[must_use]
    pub fn run(mut self) -> RunMetrics {
        let trace = Trace::generate(
            &self.cfg.workload,
            self.cfg.cpu.txn_cpu_fraction,
            self.cfg.database.num_objects,
            self.cfg.clients,
            self.cfg.runtime.duration,
            self.cfg.runtime.seed,
        );
        self.specs = trace.transactions().to_vec();
        for (i, spec) in self.specs.iter().enumerate() {
            self.queue.push(spec.arrival, Ev::Arrive(i));
        }
        if self.faults.active {
            self.schedule_faults();
        }
        self.queue.push(self.warmup_end, Ev::EndWarmup);
        self.queue.push(SimTime::from_secs(1), Ev::Sweep);
        // The server's lock table sees every object id sooner or later;
        // pre-sizing its slab keeps first-touch requests off the allocator
        // mid-run. Client-local tables only ever cover each site's cached
        // working set, so they are left to grow amortized on demand.
        self.server
            .locks
            .reserve_objects(self.cfg.database.num_objects as usize);
        while let Some((t, ev)) = self.queue.pop() {
            debug_assert!(t >= self.now, "time went backwards");
            self.now = t;
            self.handle(ev);
        }
        self.finalize()
    }

    fn finalize(mut self) -> RunMetrics {
        let span = self
            .now
            .duration_since(SimTime::ZERO)
            .as_secs_f64()
            .max(1e-9);
        let busy: f64 = self
            .clients
            .iter()
            .map(|c| c.cpu.busy_time().as_secs_f64())
            .sum();
        self.metrics.client_cpu_utilization =
            (busy / (span * self.clients.len() as f64)).min(1.0);
        self.metrics.load_sharing.windows_opened = self.server.windows.total_opened();
        self.metrics.messages = self.fabric.stats().clone();
        self.metrics.faults.messages_dropped =
            self.fabric.dropped_messages() + self.faults.gate_dropped;
        self.metrics.faults.messages_delayed = self.fabric.delayed_messages();
        self.metrics.faults.slow_disk_ios = self.server.disk.slow_ios();
        self.metrics
    }

    /// True unless fault injection has `client` currently crashed.
    pub(crate) fn site_up(&self, client: ClientId) -> bool {
        self.faults.up.get(client.index()).copied().unwrap_or(true)
    }

    /// Schedules (or accounts for the loss of) a fault-aware send.
    pub(crate) fn push_delivery(&mut self, delivery: Delivery, to: SiteDest, msg: Msg) {
        match delivery {
            Delivery::Delivered(t) => self.queue.stage_delivery(t, to, msg),
            Delivery::Dropped => self.on_dropped_delivery(msg),
        }
    }

    /// Accounting for a message that will never arrive. Most losses are
    /// recovered by retries, leases or deadline sweeps; the ones that carry
    /// a transaction (or the only record of one) must settle its outcome
    /// here or `inflight` leaks and the run never drains.
    fn on_dropped_delivery(&mut self, msg: Msg) {
        match msg {
            // The travelling transaction is gone; its origin's timeout
            // scores it as a crash loss.
            Msg::TxnShip { spec, .. } => {
                self.inflight -= 1;
                if self.measured_arrival(spec.arrival) {
                    self.record_outcome_at(
                        SiteId::Client(spec.origin),
                        spec.id,
                        TxnOutcome::Aborted(AbortReason::SiteCrash),
                    );
                }
            }
            // The origin can no longer learn the outcome (it crashed, or
            // the result was lost): settle the shipped transaction now.
            Msg::TxnShipResult { txn, arrival, .. } => {
                self.inflight -= 1;
                if self.measured_arrival(arrival) {
                    self.record_outcome_at(
                        SiteId::Client(txn.origin()),
                        txn,
                        TxnOutcome::Aborted(AbortReason::SiteCrash),
                    );
                }
            }
            // The object died in transit: the chain is broken, so the
            // server's own copy becomes authoritative again and later
            // requests must not keep batching onto the dead route.
            Msg::ObjectForward { object, .. } => {
                self.server.routing.remove(object);
            }
            // Everything else is recovered by retries (requests/grants),
            // leases (recalls/acks/returns) or the deadline sweeps
            // (queries, subtask traffic).
            _ => {}
        }
    }

    fn handle(&mut self, ev: Ev) {
        match ev {
            Ev::Arrive(i) => self.on_arrive(i),
            Ev::Deliver { to, mut msgs } => {
                // Messages of one group arrive back-to-back at the same
                // instant; liveness cannot change between them, so the
                // crash-refusal gate is evaluated per message against the
                // same state it would have seen ungrouped.
                for msg in msgs.drain(..) {
                    match to {
                        SiteDest::Server => {
                            // Crash refusal for deliveries already in
                            // flight when the server went down (new sends
                            // are refused by the fabric itself).
                            if self.faults.server_up {
                                self.server_on_msg(msg);
                            } else {
                                self.faults.gate_dropped += 1;
                                self.on_dropped_delivery(msg);
                            }
                        }
                        SiteDest::Client(c) => {
                            // Crash refusal for deliveries already in
                            // flight when the destination went down (new
                            // sends are refused by the fabric itself).
                            if self.site_up(c) {
                                self.client_on_msg(c, msg);
                            } else {
                                self.faults.gate_dropped += 1;
                                self.on_dropped_delivery(msg);
                            }
                        }
                    }
                }
                self.queue.recycle(msgs);
            }
            Ev::ClientCpu { client, generation } => self.on_client_cpu(client, generation),
            Ev::ClientDiskReady {
                client,
                txn,
                object,
                scheduled_at,
            } => self.on_client_disk_ready(client, txn, object, scheduled_at),
            Ev::ServerFetchDone {
                to,
                txn,
                items,
                scheduled_at,
            } => {
                // A fetch issued before a crash died with the server's
                // volatile state; the client's retry machinery re-requests.
                if self.faults.server_up {
                    self.emit_span(
                        SiteId::Server,
                        txn,
                        siteselect_obs::SpanKind::Disk,
                        scheduled_at,
                        None,
                    );
                    self.server_ship_now(to, items);
                }
            }
            Ev::WindowClose { object } => {
                // Windows were wiped by the crash; a stale close is a no-op.
                if self.faults.server_up {
                    self.server_on_window_close(object);
                }
            }
            Ev::EndWarmup => self.fabric.reset_stats(),
            Ev::Sweep => self.on_sweep(),
            Ev::SiteCrash { client } => self.on_site_crash(client),
            Ev::SiteRecover { client } => self.on_site_recover(client),
            Ev::ServerCrash => self.on_server_crash(),
            Ev::ServerRecover => self.on_server_recover(),
            Ev::RetryFetch {
                client,
                object,
                attempt,
                sent_at,
            } => self.on_retry_fetch(client, object, attempt, sent_at),
        }
    }

    pub(crate) fn measured_arrival(&self, arrival: SimTime) -> bool {
        arrival >= self.warmup_end
    }

    /// Emits a causal span ending now for transaction key `txn` (tracing
    /// only; zero-length spans are elided). Subtask keys are folded back to
    /// their root by the blame extractor.
    pub(crate) fn emit_span(
        &self,
        site: SiteId,
        txn: TKey,
        kind: siteselect_obs::SpanKind,
        start: SimTime,
        blocker: Option<TKey>,
    ) {
        if start >= self.now {
            return;
        }
        self.sink.emit(self.now, site, || siteselect_obs::Event::Span {
            txn: Some(TransactionId::from_raw(txn)),
            kind,
            start,
            blocker: blocker.map(TransactionId::from_raw),
        });
    }

    /// Records a measured transaction outcome in the metrics and stamps a
    /// matching `Outcome` record on the trace, so the deadline-accounting
    /// oracle can recount the report from the event stream alone.
    pub(crate) fn record_outcome_at(
        &mut self,
        site: SiteId,
        txn: TransactionId,
        outcome: TxnOutcome,
    ) {
        self.sink
            .emit(self.now, site, || siteselect_obs::Event::Outcome { txn, outcome });
        self.metrics.record_outcome(outcome);
    }

    /// Partitions a decomposable transaction's accesses by their current
    /// holding site: objects exclusively or primarily cached at one client
    /// form that client's subtask; unheld objects stay with the origin.
    pub(crate) fn group_by_location(
        origin: ClientId,
        accesses: &[AccessSpec],
        locations: &[(ObjectId, Vec<(ClientId, LockMode)>)],
    ) -> Vec<(ClientId, Vec<AccessSpec>)> {
        let map: HashMap<ObjectId, &Vec<(ClientId, LockMode)>> =
            locations.iter().map(|(o, v)| (*o, v)).collect();
        let mut groups: BTreeMap<ClientId, Vec<AccessSpec>> = BTreeMap::new();
        for a in accesses {
            let site = map
                .get(&a.object)
                .and_then(|holders| {
                    holders
                        .iter()
                        .find(|(_, m)| m.is_exclusive())
                        .or_else(|| holders.first())
                })
                .map_or(origin, |&(c, _)| c);
            groups.entry(site).or_default().push(*a);
        }
        groups.into_iter().collect()
    }

    fn on_sweep(&mut self) {
        self.sweep_expired_txns();
        if self.faults.server_up {
            self.server_sweep();
        }
        if self.inflight > 0 || !self.queue.is_empty() {
            self.queue
                .push(self.now + SimDuration::from_secs(1), Ev::Sweep);
        }
    }
}

impl std::fmt::Debug for ClientServerSim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClientServerSim")
            .field("system", &self.cfg.system)
            .field("now", &self.now)
            .field("clients", &self.clients.len())
            .field("inflight", &self.inflight)
            .field("events", &self.queue.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn subtask_keys_are_distinct_from_parents_and_each_other() {
        let parent = siteselect_types::TransactionId::new(ClientId(3), 77).as_u64();
        let mut seen = std::collections::HashSet::new();
        seen.insert(parent);
        for i in 0..10u8 {
            assert!(seen.insert(subtask_key(parent, i)), "collision at {i}");
        }
    }

    #[test]
    fn grouping_by_location_respects_exclusive_holders() {
        let origin = ClientId(0);
        let accesses = vec![
            AccessSpec::read(ObjectId(1)),
            AccessSpec::read(ObjectId(2)),
            AccessSpec::write(ObjectId(3)),
        ];
        let locations = vec![
            (
                ObjectId(1),
                vec![(ClientId(5), LockMode::Shared), (ClientId(6), LockMode::Exclusive)],
            ),
            (ObjectId(2), vec![(ClientId(5), LockMode::Shared)]),
            (ObjectId(3), vec![]),
        ];
        let groups = ClientServerSim::group_by_location(origin, &accesses, &locations);
        // obj1 -> client 6 (EL holder wins), obj2 -> client 5, obj3 -> origin.
        assert_eq!(groups.len(), 3);
        let find = |c: u16| {
            groups
                .iter()
                .find(|(id, _)| *id == ClientId(c))
                .map(|(_, v)| v.clone())
                .unwrap()
        };
        assert_eq!(find(6), vec![AccessSpec::read(ObjectId(1))]);
        assert_eq!(find(5), vec![AccessSpec::read(ObjectId(2))]);
        assert_eq!(find(0), vec![AccessSpec::write(ObjectId(3))]);
    }

    #[test]
    fn unlisted_objects_default_to_origin() {
        let groups = ClientServerSim::group_by_location(
            ClientId(2),
            &[AccessSpec::read(ObjectId(9))],
            &[],
        );
        assert_eq!(groups, vec![(ClientId(2), vec![AccessSpec::read(ObjectId(9))])]);
    }
}
