//! Server-side behaviour: the global client-granularity lock table,
//! callback recalls with downgrade, wait-for-graph admission, grant-all
//! rounds, collection windows / forward lists, location & load queries, and
//! the buffer/disk path that ships object payloads.

use siteselect_locks::{
    Acquire, CallbackTracker, ForwardEntry, ForwardList, LockTable, QueueDiscipline, Waiter,
    WaitForGraph, WindowManager, WindowOffer,
};
use siteselect_net::{Delivery, MessageKind};
use siteselect_storage::{ClientCache, DurableStore};
use siteselect_types::{AbortReason, ClientId, LockMode, ObjectId, ObjectMap, SimTime, SiteId, TransactionId};

use super::{ClientServerSim, Ev, Msg, SiteDest, TKey, WaitingWants, Want, WantInfo};

impl ClientServerSim {
    pub(crate) fn server_on_msg(&mut self, msg: Msg) {
        match msg {
            Msg::RequestBatch {
                txn,
                client,
                wants,
                grant_all,
            } => {
                if grant_all {
                    self.server_grant_all(txn, client, wants);
                } else {
                    for w in wants {
                        self.server_handle_want(txn, client, w);
                    }
                }
            }
            Msg::ObjectReturn {
                object,
                from,
                downgraded,
            } => self.server_on_return(object, from, downgraded),
            Msg::CallbackAck {
                object,
                from,
                had_copy,
            } => self.server_on_ack(object, from, had_copy),
            Msg::CancelWants { client, objects } => {
                for object in objects {
                    let (_, grants) = self.server.locks.cancel_wait(object, client);
                    self.server.waiting_wants.remove(object, client);
                    self.server_apply_grants(object, grants);
                }
                self.refresh_wfg(client);
            }
            Msg::LoadQuery { txn, objects } => self.server_on_load_query(txn, objects),
            _ => unreachable!("client message delivered to server"),
        }
    }

    // ------------------------------------------------------------------
    // Grant-all (LS first round)
    // ------------------------------------------------------------------

    /// The LS first round: the batch is processed exactly like a CS batch
    /// (grantable wants ship at once, the rest queue with callbacks or
    /// collection windows), and — when anything conflicted — the locations
    /// of the conflicting holders ride back to the client (§4), which may
    /// then cancel its queued requests and ship the transaction to a
    /// better site (H2).
    fn server_grant_all(&mut self, txn: TKey, client: ClientId, wants: Vec<Want>) {
        let conflicts: Vec<(ObjectId, Vec<(ClientId, LockMode)>)> = wants
            .iter()
            .filter_map(|w| {
                let holders: Vec<(ClientId, LockMode)> = self
                    .server
                    .locks
                    .holders(w.object)
                    .into_iter()
                    .filter(|&(h, m)| h != client && !m.compatible_with(w.mode))
                    .collect();
                let holders = self.with_routing_holders(w.object, holders);
                (!holders.is_empty()).then_some((w.object, holders))
            })
            .collect();
        for w in wants {
            self.server_handle_want(txn, client, w);
        }
        if !conflicts.is_empty() {
            let delivery = self.fabric.try_send(
                self.now,
                SiteId::Server,
                SiteId::Client(client),
                MessageKind::ConflictInfo,
                0,
            );
            self.push_delivery(
                delivery,
                SiteDest::Client(client),
                Msg::ConflictReport { txn, conflicts },
            );
        }
    }

    /// Reports the tail of a travelling forward list as the object's
    /// location (§4: "the server refers to the object's forward list and
    /// reports the last client in the list").
    fn with_routing_holders(
        &self,
        object: ObjectId,
        holders: Vec<(ClientId, LockMode)>,
    ) -> Vec<(ClientId, LockMode)> {
        if holders.is_empty() {
            if let Some(list) = self.server.routing.get(object) {
                if let Some(last) = list.last_client() {
                    return vec![(last, LockMode::Exclusive)];
                }
            }
        }
        holders
    }

    // ------------------------------------------------------------------
    // Individual requests (CS path and LS commit-local)
    // ------------------------------------------------------------------

    fn server_handle_want(&mut self, txn: TKey, client: ClientId, w: Want) {
        let ls = self.ls && self.cfg.load_sharing.forward_lists_enabled;
        // §3.3: the server refuses to work for already-expired requests.
        if self.ls && self.cfg.load_sharing.request_scheduling_enabled && w.deadline < self.now {
            self.server_reject(client, txn, true);
            return;
        }
        // Failure handling: a retransmit from a holder whose cached lock is
        // being called back must not be answered — the grant or re-ship
        // would cross the holder's own callback ack on the wire, and the
        // ack releases the lock, so a conflicting grant could coexist with
        // the re-shipped copy. Drop it; the ack (or the lease) settles the
        // lock and the client's next retry or deadline sweep settles the
        // transaction.
        if self.faults.active
            && self
                .server
                .callbacks
                .outstanding(w.object)
                .contains(&client)
        {
            return;
        }
        if let Some(held) = self.server.locks.held_mode(w.object, client) {
            if held.covers(w.mode) {
                self.server_ship(txn, client, vec![(w.object, w.mode, w.needs_data)]);
                return;
            }
        }
        // A travelling forward list leaves the lock table empty; the chain
        // tail stands in as the holder so the request batches behind the
        // chain instead of being granted against the in-flight copies.
        let holders = self.with_routing_holders(w.object, self.server.locks.holders(w.object));
        let conflicting: Vec<ClientId> = holders
            .iter()
            .filter(|&&(h, m)| h != client && !m.compatible_with(w.mode))
            .map(|&(h, _)| h)
            .collect();

        // Grouped-lock path: requests that arrive while the object is
        // already being chased (an outstanding recall, an open window, or a
        // travelling forward list) are *batched* instead of queued — the
        // first conflicting request always goes through the plain callback
        // immediately, so grouping never delays the uncontended case.
        // A routed object always batches: the server's copy is stale while
        // the chain travels (a chain client may write), so nothing may be
        // granted from it — not even to the chain's own tail, for whom
        // `conflicting` filters to empty.
        let forward_eligible = ls
            && (self.server.routing.contains(w.object)
                || (!conflicting.is_empty()
                    && (self.server.windows.is_open(w.object)
                        || self.server.callbacks.is_recalling(w.object))));
        if forward_eligible {
            let entry = ForwardEntry {
                client,
                txn: TransactionId::from_raw(txn),
                deadline: w.deadline,
                mode: w.mode,
            };
            if let WindowOffer::Opened { closes_at } =
                self.server.windows.offer(w.object, entry, self.now)
            {
                self.queue
                    .push(closes_at, Ev::WindowClose { object: w.object });
            }
            return;
        }

        self.server_want_plain(txn, client, w, conflicting);
    }

    /// The plain (CS-RTDBS) path: queue in the lock table under deadlock
    /// avoidance and recall conflicting cached locks.
    fn server_want_plain(&mut self, txn: TKey, client: ClientId, w: Want, conflicting: Vec<ClientId>) {
        // Failure handling: a retransmitted request whose original is still
        // queued must not double-queue in the lock table.
        if self.faults.active && self.server.waiting_wants.contains(w.object, client) {
            return;
        }
        if self.server.wfg.would_deadlock(client, &conflicting) {
            self.server_reject(client, txn, false);
            return;
        }
        match self
            .server
            .locks
            .request(w.object, client, w.mode, w.deadline)
        {
            Acquire::Granted | Acquire::AlreadyHeld | Acquire::Upgraded => {
                self.server_ship(txn, client, vec![(w.object, w.mode, w.needs_data)]);
            }
            Acquire::Blocked { conflicts } => {
                self.server.waiting_wants.insert(
                    w.object,
                    client,
                    WantInfo {
                        mode: w.mode,
                        needs_data: w.needs_data,
                        deadline: w.deadline,
                        txn,
                        queued_at: self.now,
                    },
                );
                self.server.wfg.add_waits(client, conflicts);
                // Call back the conflicting cached locks.
                let targets = self.server.callbacks.begin_at(
                    w.object,
                    conflicting.clone(),
                    w.mode,
                    self.now,
                );
                for t in targets {
                    let delivery = self.fabric.try_send(
                        self.now,
                        SiteId::Server,
                        SiteId::Client(t),
                        MessageKind::Recall,
                        0,
                    );
                    // A lost recall is recovered by the callback lease: the
                    // server presumes the silent holder dead and reclaims.
                    self.push_delivery(
                        delivery,
                        SiteDest::Client(t),
                        Msg::Recall {
                            object: w.object,
                            desired: w.mode,
                            forward: None,
                        },
                    );
                }
            }
        }
    }

    fn server_reject(&mut self, client: ClientId, txn: TKey, expired: bool) {
        self.sink.emit(self.now, SiteId::Server, || {
            siteselect_obs::Event::ServerReject {
                txn: TransactionId::from_raw(txn),
                expired,
            }
        });
        let delivery = self.fabric.try_send(
            self.now,
            SiteId::Server,
            SiteId::Client(client),
            MessageKind::ConflictInfo,
            0,
        );
        self.push_delivery(delivery, SiteDest::Client(client), Msg::Rejected { txn, expired });
    }

    // ------------------------------------------------------------------
    // Shipping
    // ------------------------------------------------------------------

    /// Ships granted `(object, mode, with_data)` items to `client`. Items
    /// already in the server buffer go on the wire immediately; items that
    /// miss ship when their disk reads complete, so a buffered object is
    /// never delayed behind a co-requested miss. `txn` attributes the disk
    /// span of a miss to the requesting transaction.
    pub(crate) fn server_ship(
        &mut self,
        txn: TKey,
        client: ClientId,
        items: Vec<(ObjectId, LockMode, bool)>,
    ) {
        let mut ready = Vec::new();
        let mut missed = Vec::new();
        for item in items {
            let (object, _, with_data) = item;
            if with_data {
                let hit = self.server.buffer.probe(object).is_some();
                if self.now >= self.warmup_end {
                    self.metrics.server_buffer.record(hit);
                }
                if hit {
                    ready.push(item);
                } else {
                    self.server.buffer.insert(object);
                    missed.push(item);
                }
            } else {
                ready.push(item);
            }
        }
        if !ready.is_empty() {
            self.server_ship_now(client, ready);
        }
        if !missed.is_empty() {
            let done = self
                .server
                .disk
                .schedule_batch(self.now, missed.len() as u32);
            self.queue.push(
                done,
                Ev::ServerFetchDone {
                    to: client,
                    txn,
                    items: missed,
                    scheduled_at: self.now,
                },
            );
        }
    }

    /// Puts the grant batch on the wire (buffer already warm).
    pub(crate) fn server_ship_now(&mut self, to: ClientId, items: Vec<(ObjectId, LockMode, bool)>) {
        let with_data = items.iter().filter(|(_, _, d)| *d).count() as u32;
        let lock_only = items.len() as u32 - with_data;
        let mut delivery = Delivery::Delivered(self.now);
        if with_data > 0 {
            delivery = self.fabric.try_send_counted(
                self.now,
                SiteId::Server,
                SiteId::Client(to),
                MessageKind::ObjectSend,
                with_data,
                with_data,
            );
        }
        if lock_only > 0 {
            let locks = self.fabric.try_send_counted(
                self.now,
                SiteId::Server,
                SiteId::Client(to),
                MessageKind::LockGrant,
                0,
                lock_only,
            );
            // The batch resolves as one unit: losing either frame loses it
            // (the client's retries re-request everything outstanding).
            delivery = match (delivery, locks) {
                (Delivery::Delivered(a), Delivery::Delivered(b)) => Delivery::Delivered(a.max(b)),
                _ => Delivery::Dropped,
            };
        }
        self.push_delivery(delivery, SiteDest::Client(to), Msg::GrantBatch { items });
    }

    // ------------------------------------------------------------------
    // Returns, acks and grant cascades
    // ------------------------------------------------------------------

    fn server_on_return(&mut self, object: ObjectId, from: ClientId, downgraded: bool) {
        self.server.buffer.insert(object);
        // Durable apply: a returned object carries the newest committed
        // version, so it is WAL-logged and force-committed under a
        // server-local pseudo-transaction before any volatile bookkeeping —
        // a crash from here on replays this write instead of losing it.
        self.server.pseudo_seq += 1;
        let pseudo = (1u64 << 63) | self.server.pseudo_seq;
        let checkpoints = self.server.store.checkpoints();
        let stamp = self.server.store.write(pseudo, object);
        self.server.store.commit(pseudo);
        self.sink.emit(self.now, SiteId::Server, || {
            siteselect_obs::Event::WalWrite {
                txn: TransactionId::from_raw(pseudo),
                page: object,
                stamp,
            }
        });
        self.sink.emit(self.now, SiteId::Server, || {
            siteselect_obs::Event::WalCommit {
                txn: TransactionId::from_raw(pseudo),
            }
        });
        if self.server.store.checkpoints() > checkpoints {
            let active = self.server.store.active_txns() as u32;
            let log_records = self.server.store.log_records();
            self.sink.emit(self.now, SiteId::Server, || {
                siteselect_obs::Event::WalCheckpoint {
                    active,
                    log_records,
                }
            });
        }
        self.server.callbacks.acknowledge(object, from);
        self.sink.emit(self.now, SiteId::Server, || {
            siteselect_obs::Event::CallbackAcked { object, from }
        });
        // The end of a forward chain: the object is home again.
        self.server.routing.remove(object);
        let grants = if downgraded {
            self.server.locks.downgrade(object, from)
        } else {
            self.server.locks.release(object, from)
        };
        self.server_apply_grants(object, grants);
    }

    fn server_on_ack(&mut self, object: ObjectId, from: ClientId, had_copy: bool) {
        self.server.callbacks.acknowledge(object, from);
        self.sink.emit(self.now, SiteId::Server, || {
            siteselect_obs::Event::CallbackAcked { object, from }
        });
        let grants = self.server.locks.release(object, from);
        self.server_apply_grants(object, grants);
        if !had_copy {
            // The recalled holder could not serve the forward list that
            // rode on the callback; the server serves it from its own copy.
            if let Some(list) = self.server.routing.remove(object) {
                self.serve_list_from_server(object, list);
            }
        }
    }

    /// Completes grants that cascaded out of a release/downgrade/cancel.
    pub(crate) fn server_apply_grants(&mut self, object: ObjectId, granted: Vec<Waiter<ClientId>>) {
        for w in granted {
            let client = w.owner;
            let Some(info) = self.server.waiting_wants.remove(object, client) else {
                // No want on file (cancelled or raced): undo the grant.
                let grants = self.server_undo_grant(object, client, w.upgrade);
                self.server_apply_grants(object, grants);
                continue;
            };
            self.refresh_wfg(client);
            if self.ls
                && self.cfg.load_sharing.request_scheduling_enabled
                && info.deadline < self.now
            {
                // §3.3: do not ship to a transaction that already missed.
                let grants = self.server_undo_grant(object, client, w.upgrade);
                self.server_reject(client, info.txn, true);
                self.server_apply_grants(object, grants);
                continue;
            }
            // The want waited in the server's lock queue from enqueue to
            // this grant.
            self.emit_span(
                SiteId::Server,
                info.txn,
                siteselect_obs::SpanKind::LockWait,
                info.queued_at,
                None,
            );
            self.server_ship(info.txn, client, vec![(object, info.mode, info.needs_data)]);
        }
    }

    /// Takes back a cascaded grant that will never ship. An upgrade grant
    /// converted the client's held shared lock in place, and the client
    /// still caches that shared copy — so it reverts to shared; anything
    /// else is released outright.
    fn server_undo_grant(
        &mut self,
        object: ObjectId,
        client: ClientId,
        upgrade: bool,
    ) -> Vec<Waiter<ClientId>> {
        if upgrade {
            self.server.locks.downgrade(object, client)
        } else {
            self.server.locks.release(object, client)
        }
    }

    /// Recomputes a client's wait-for edges from its queued wants.
    pub(crate) fn refresh_wfg(&mut self, client: ClientId) {
        self.server.wfg.clear_waits(client);
        let wants: Vec<(ObjectId, LockMode)> = self
            .server
            .waiting_wants
            .of_client(client)
            .iter()
            .map(|&(o, info)| (o, info.mode))
            .collect();
        for (object, mode) in wants {
            let conflicts = self.server.locks.conflicting_holders(object, client, mode);
            self.server.wfg.add_waits(client, conflicts);
        }
    }

    // ------------------------------------------------------------------
    // Collection windows and forward lists
    // ------------------------------------------------------------------

    pub(crate) fn server_on_window_close(&mut self, object: ObjectId) {
        let Some(list) = self.server.windows.close_at(object, self.now) else {
            return;
        };
        let still_busy = self.server.routing.contains(object)
            || self.server.callbacks.is_recalling(object);
        if still_busy {
            // The object is still travelling or being recalled for the
            // plain-path waiter: keep collecting until it comes home.
            self.server_reoffer_window(object, list);
            return;
        }
        if list.len() == 1 {
            // A window that collected only one request gains nothing from
            // grouping: serve it as a plain recall, which also lets an
            // exclusive holder downgrade and keep its cached copy.
            let e = list.entries()[0];
            let w = Want {
                object,
                mode: e.mode,
                needs_data: true,
                deadline: e.deadline,
            };
            let conflicting: Vec<ClientId> = self
                .server
                .locks
                .holders(object)
                .into_iter()
                .filter(|&(h, m)| h != e.client && !m.compatible_with(e.mode))
                .map(|(h, _)| h)
                .collect();
            self.server_want_plain(e.txn.as_u64(), e.client, w, conflicting);
            return;
        }
        let holders = self.server.locks.holders(object);
        let el_holder = holders
            .iter()
            .find(|(_, m)| m.is_exclusive())
            .map(|&(h, _)| h);
        match el_holder {
            Some(holder) if self.server.locks.waiters(object).is_empty() => {
                // One recall carries the whole forward list; the holder
                // ships the object down the chain and the last client
                // returns it (2n+1 messages, §3.4).
                let delivery = self.fabric.try_send(
                    self.now,
                    SiteId::Server,
                    SiteId::Client(holder),
                    MessageKind::Recall,
                    0,
                );
                if delivery == Delivery::Dropped {
                    // The chain never started, so the holder keeps its
                    // lock — the table entry is what fences its cached
                    // exclusive from later grants. A callback lease makes
                    // the loss recoverable (a dead holder is reclaimed at
                    // expiry); until then the batch keeps collecting.
                    self.server
                        .callbacks
                        .begin_at(object, [holder], LockMode::Exclusive, self.now);
                    self.server_reoffer_window(object, list);
                    return;
                }
                self.server.routing.insert(object, list.clone());
                let grants = self.server.locks.release(object, holder);
                debug_assert!(grants.is_empty(), "no queue behind a routed object");
                self.push_delivery(
                    delivery,
                    SiteDest::Client(holder),
                    Msg::Recall {
                        object,
                        desired: LockMode::Exclusive,
                        forward: Some(list),
                    },
                );
            }
            Some(_) => {
                // A holder remains but plain-path waiters are queued: let
                // the callback complete and collect a little longer.
                self.server_reoffer_window(object, list);
            }
            None if holders.is_empty() => {
                // The object is home: serve the batch from the server's own
                // copy as a client-to-client chain.
                self.serve_list_from_server(object, list);
            }
            None => {
                // Shared cached copies remain. A batch of shared requests
                // can be served alongside them, but an exclusive entry
                // needs the cached copies called back first.
                if list
                    .entries()
                    .iter()
                    .all(|e| e.mode == LockMode::Shared)
                {
                    self.serve_list_from_server(object, list);
                    return;
                }
                let targets = self.server.callbacks.begin_at(
                    object,
                    holders.iter().map(|&(h, _)| h),
                    LockMode::Exclusive,
                    self.now,
                );
                for t in targets {
                    let delivery = self.fabric.try_send(
                        self.now,
                        SiteId::Server,
                        SiteId::Client(t),
                        MessageKind::Recall,
                        0,
                    );
                    // A lost recall is recovered by the callback lease.
                    self.push_delivery(
                        delivery,
                        SiteDest::Client(t),
                        Msg::Recall {
                            object,
                            desired: LockMode::Exclusive,
                            forward: None,
                        },
                    );
                }
                self.server_reoffer_window(object, list);
            }
        }
    }

    /// Puts a closed window's entries back into a fresh collection window
    /// (the object is not yet servable) and schedules its close.
    fn server_reoffer_window(&mut self, object: ObjectId, list: ForwardList) {
        let mut reopen_close = None;
        for e in list.entries().iter().copied() {
            if let WindowOffer::Opened { closes_at } =
                self.server.windows.offer(object, e, self.now)
            {
                reopen_close = Some(closes_at);
            }
        }
        if let Some(at) = reopen_close {
            self.queue.push(at, Ev::WindowClose { object });
        }
    }

    /// Ships a forward list starting from the server's copy of the object.
    pub(crate) fn serve_list_from_server(&mut self, object: ObjectId, mut list: ForwardList) {
        // Skip expired requesters and (failure handling) crashed ones.
        let next = loop {
            let (next, _skipped) = list.pop_next_live(self.now);
            match next {
                Some(e) if !self.site_up(e.client) => continue,
                other => break other,
            }
        };
        let Some(entry) = next else {
            return; // every requester expired or crashed; the object stays home
        };
        self.server.buffer.insert(object);
        if list.is_empty() {
            // Single live entry: an ordinary tracked grant.
            match self
                .server
                .locks
                .request(object, entry.client, entry.mode, entry.deadline)
            {
                Acquire::Granted | Acquire::AlreadyHeld | Acquire::Upgraded => {
                    self.server_ship(entry.txn.as_u64(), entry.client, vec![(object, entry.mode, true)]);
                }
                Acquire::Blocked { .. } => {
                    // Another client claimed the object in the meantime:
                    // fall back to the plain path.
                    self.server.waiting_wants.insert(
                        object,
                        entry.client,
                        WantInfo {
                            mode: entry.mode,
                            needs_data: true,
                            deadline: entry.deadline,
                            txn: entry.txn.as_u64(),
                            queued_at: self.now,
                        },
                    );
                }
            }
            return;
        }
        // A real chain: route it untracked; the last client returns the
        // object.
        self.server.routing.insert(object, list.clone());
        let to = entry.client;
        self.sink.emit(self.now, SiteId::Server, || {
            siteselect_obs::Event::ForwardHop { object, to }
        });
        let delivery = self.fabric.try_send(
            self.now,
            SiteId::Server,
            SiteId::Client(entry.client),
            MessageKind::ObjectSend,
            1,
        );
        // A dropped ObjectForward clears the routing entry again (see
        // `on_dropped_delivery`).
        self.push_delivery(
            delivery,
            SiteDest::Client(entry.client),
            Msg::ObjectForward {
                object,
                mode: entry.mode,
                rest: list,
            },
        );
    }

    // ------------------------------------------------------------------
    // Location / load queries
    // ------------------------------------------------------------------

    fn server_on_load_query(&mut self, txn: TKey, objects: Vec<ObjectId>) {
        let locations: Vec<(ObjectId, Vec<(ClientId, LockMode)>)> = objects
            .iter()
            .map(|&o| {
                let holders = self.server.locks.holders(o);
                (o, self.with_routing_holders(o, holders))
            })
            .collect();
        // Load information is piggybacked on the constant client-server
        // traffic (§4), so the server's view is current: read it live.
        let loads: Vec<(ClientId, usize, f64)> = self
            .clients
            .iter()
            .map(|c| (c.id, c.load(), c.atl()))
            .collect();
        let client = TransactionId::from_raw(txn).origin();
        let delivery = self.fabric.try_send(
            self.now,
            SiteId::Server,
            SiteId::Client(client),
            MessageKind::LoadReply,
            0,
        );
        // A lost reply leaves the transaction in AwaitInfo until the
        // deadline sweep reaps it — a miss, never a hang.
        self.push_delivery(
            delivery,
            SiteDest::Client(client),
            Msg::LoadReply {
                txn,
                locations,
                loads,
            },
        );
    }

    // ------------------------------------------------------------------
    // Sweeps
    // ------------------------------------------------------------------

    pub(crate) fn server_sweep(&mut self) {
        self.reclaim_expired_leases();
        let (expired, grants) = self.server.locks.cancel_expired(self.now);
        let mut touched: Vec<ClientId> = Vec::new();
        for (object, waiter) in expired {
            self.server.waiting_wants.remove(object, waiter.owner);
            if !touched.contains(&waiter.owner) {
                touched.push(waiter.owner);
            }
        }
        for client in touched {
            self.refresh_wfg(client);
        }
        for (object, waiters) in grants {
            self.server_apply_grants(object, waiters);
        }
    }

    /// Failure handling: callbacks unanswered past the lease are presumed
    /// lost with their holder. The server reclaims the lock, fences the
    /// holder's cached copy (so a zombie or recovered site cannot serve
    /// stale data) and grants the waiters from its own copy. Inert unless
    /// faults are injected and a non-zero lease is configured.
    fn reclaim_expired_leases(&mut self) {
        let lease = self.cfg.faults.callback_lease;
        if !self.faults.active || lease.is_zero() {
            return;
        }
        for (object, holder) in self.server.callbacks.expired(self.now, lease) {
            self.metrics.faults.leases_expired += 1;
            self.sink.emit(self.now, SiteId::Server, || {
                siteselect_obs::Event::LeaseExpired { object, holder }
            });
            self.server.callbacks.acknowledge(object, holder);
            let grants = self.server.locks.release(object, holder);
            // Fence the presumed-dead holder. If it was merely slow, the
            // invalidation is conservative but safe: it must re-fetch.
            let c = &mut self.clients[holder.index()];
            c.cached_locks.remove(object);
            c.cache.invalidate(object);
            c.dirty.remove(object);
            c.revokes.remove(&object);
            self.sink.emit(self.now, SiteId::Server, || {
                siteselect_obs::Event::CacheDrop {
                    client: holder,
                    object,
                }
            });
            // The fence must also kill the holder's in-flight local users
            // of the object: a zombie that already read the fenced copy
            // would otherwise commit against locks the server has re-granted
            // (its commit would fail the lease check in a real system).
            let zombies: Vec<TKey> = self.clients[holder.index()]
                .local_locks
                .holders(object)
                .into_iter()
                .map(|(owner, _)| owner)
                .collect();
            for key in zombies {
                self.abort_txn(holder.index(), key, AbortReason::SiteCrash);
            }
            self.server_apply_grants(object, grants);
        }
        // A forward chain whose every requester deadline has passed can no
        // longer terminate by itself (a crashed intermediary may have
        // swallowed the object): the server's copy becomes authoritative
        // again, which also lets stalled collection windows drain.
        let now = self.now;
        self.server
            .routing
            .retain(|_, l| l.entries().iter().any(|e| e.deadline >= now));
    }

    // ------------------------------------------------------------------
    // Server crash-restart
    // ------------------------------------------------------------------

    /// The server crashes: volatile state (lock table, WFG, callback and
    /// window managers, buffer pool, routing and queued wants, plus the
    /// staged log tail past a random cut) is lost; the WAL and the durable
    /// pages survive. Clients keep running against their caches — their
    /// outstanding requests die silently and are re-driven by retries or
    /// reaped by the deadline sweeps.
    pub(crate) fn on_server_crash(&mut self) {
        if !self.faults.server_up {
            return; // scheduled crash landed while already down
        }
        self.faults.server_up = false;
        self.faults.server_crashed_at = Some(self.now);
        self.metrics.faults.crashes += 1;
        self.sink.emit(self.now, SiteId::Server, || {
            siteselect_obs::Event::SiteCrash {
                site: SiteId::Server,
            }
        });
        self.fabric.set_site_down(SiteId::Server);
        let clients = self.clients.len();
        self.server.locks = LockTable::new(QueueDiscipline::Fifo);
        self.server.wfg = WaitForGraph::new();
        self.server.callbacks = CallbackTracker::new();
        self.server.callbacks.set_sink(self.sink.clone());
        self.server.windows = WindowManager::new(self.cfg.load_sharing.collection_window);
        self.server.windows.set_sink(self.sink.clone());
        self.server.buffer = ClientCache::new(self.cfg.server.buffer_objects, 0);
        self.server.routing = ObjectMap::new();
        self.server.waiting_wants = WaitingWants::new(clients);
        if self.cfg.faults.mean_recovery_time.is_zero() {
            return; // permanent crash: the site stays dark
        }
        // Crash the durable store (a random cut of the staged tail may
        // leave a torn final record) and replay its surviving log.
        let frames = self.cfg.server.buffer_objects.max(1);
        let keep = self
            .faults
            .crash_prng
            .below_usize(self.server.store.staged_len() + 1);
        let dead = std::mem::replace(&mut self.server.store, DurableStore::new(1, 1));
        let (log, disk) = dead.crash(keep);
        let (recovered, outcome) = DurableStore::restart(&log, disk, frames);
        self.server.store = recovered;
        // Reboot lag, then the replay's I/O at the (possibly slow) disk.
        let back = self.now
            + self
                .faults
                .crash_prng
                .exp_duration(self.cfg.faults.mean_recovery_time);
        let ios = u32::try_from(outcome.replay_ios()).unwrap_or(u32::MAX);
        let ready = if ios == 0 {
            back
        } else {
            self.server.disk.schedule_batch(back, ios)
        };
        self.faults.pending_recovery = Some(outcome);
        self.queue.push(ready, Ev::ServerRecover);
    }

    /// Replay finished: the server rejoins with only durable state, then
    /// re-derives its client-granularity lock table from the surviving
    /// clients' cached locks — the model's stand-in for clients
    /// revalidating their leases on reconnect (the callback table starts
    /// empty and is rebuilt on demand). A cached copy that no longer fits
    /// (possible only via a grant in flight at the crash instant) is fenced
    /// so its holder must re-fetch.
    pub(crate) fn on_server_recover(&mut self) {
        self.faults.server_up = true;
        self.fabric.set_site_up(SiteId::Server);
        self.metrics.faults.recoveries += 1;
        let outcome = self.faults.pending_recovery.take().unwrap_or_default();
        let (redo, undone) = (outcome.redo_applied, outcome.undone);
        let (losers, replay_ios) = (outcome.losers.len() as u32, outcome.replay_ios());
        self.sink.emit(self.now, SiteId::Server, || {
            siteselect_obs::Event::RecoveryDone {
                site: SiteId::Server,
                redo,
                undone,
                losers,
                replay_ios,
            }
        });
        // Post-replay durable state, in ascending page order: the recovery
        // oracle checks these stamps against the committed history.
        if self.sink.is_enabled() {
            for (page, stamp) in self.server.store.stamps() {
                self.sink.emit(self.now, SiteId::Server, || {
                    siteselect_obs::Event::WalState { page, stamp }
                });
            }
        }
        for ci in 0..self.clients.len() {
            if !self.faults.up[ci] {
                continue; // a crashed client has nothing to revalidate
            }
            let id = self.clients[ci].id;
            let locks: Vec<(ObjectId, LockMode)> = self.clients[ci]
                .cached_locks
                .iter()
                .map(|(o, m)| (o, *m))
                .collect();
            for (object, mode) in locks {
                match self.server.locks.request(object, id, mode, SimTime::MAX) {
                    Acquire::Granted | Acquire::AlreadyHeld | Acquire::Upgraded => {}
                    Acquire::Blocked { .. } => {
                        let _ = self.server.locks.cancel_wait(object, id);
                        let c = &mut self.clients[ci];
                        c.cached_locks.remove(object);
                        c.cache.invalidate(object);
                        c.dirty.remove(object);
                        c.revokes.remove(&object);
                        self.sink.emit(self.now, SiteId::Server, || {
                            siteselect_obs::Event::CacheDrop { client: id, object }
                        });
                    }
                }
            }
        }
        self.sink.emit(self.now, SiteId::Server, || {
            siteselect_obs::Event::SiteRecover {
                site: SiteId::Server,
            }
        });
        // Site-scoped replay span: the outage window (down + WAL replay
        // until rejoin) blames every transaction it overlaps.
        if let Some(start) = self.faults.server_crashed_at.take() {
            self.sink.emit(self.now, SiteId::Server, || {
                siteselect_obs::Event::Span {
                    txn: None,
                    kind: siteselect_obs::SpanKind::Replay,
                    start,
                    blocker: None,
                }
            });
        }
        // The rebuilt lock table remembers nothing of the transactional
        // (non-cached) grants that were in flight at the crash, so a
        // transaction alive across the outage could commit against locks
        // the server has silently re-granted. On reconnect every such
        // in-flight transaction aborts instead — which also cancels its
        // outstanding fetches, disarming the post-recovery retry storm.
        for ci in 0..self.clients.len() {
            if !self.faults.up[ci] {
                continue; // a crashed client's work already died with it
            }
            let mut stranded: Vec<TKey> =
                self.clients[ci].txns.keys().copied().collect();
            stranded.sort_unstable();
            for key in stranded {
                self.abort_txn(ci, key, AbortReason::SiteCrash);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use siteselect_types::{ExperimentConfig, SimTime, SystemKind};

    fn sim(system: SystemKind) -> ClientServerSim {
        let mut cfg = ExperimentConfig::paper(system, 4, 0.05);
        cfg.runtime.duration = siteselect_types::SimDuration::from_secs(50);
        cfg.runtime.warmup = siteselect_types::SimDuration::from_secs(5);
        ClientServerSim::new(cfg)
    }

    #[test]
    fn grant_all_round_grants_free_objects_and_reports_conflicts() {
        let mut s = sim(SystemKind::LoadSharing);
        // Client 1 holds object 1 exclusively; object 2 is free.
        s.server
            .locks
            .request(ObjectId(1), ClientId(1), LockMode::Exclusive, SimTime::MAX);
        let wants = vec![
            Want {
                object: ObjectId(1),
                mode: LockMode::Exclusive,
                needs_data: true,
                deadline: SimTime::from_secs(100),
            },
            Want {
                object: ObjectId(2),
                mode: LockMode::Shared,
                needs_data: true,
                deadline: SimTime::from_secs(100),
            },
        ];
        s.server_on_msg(Msg::RequestBatch {
            txn: 7,
            client: ClientId(0),
            wants,
            grant_all: true,
        });
        // The free object was granted immediately...
        assert_eq!(
            s.server.locks.held_mode(ObjectId(2), ClientId(0)),
            Some(LockMode::Shared)
        );
        // ...the conflicted one queued with a recall to the holder...
        assert!(s.server.callbacks.is_recalling(ObjectId(1)));
        // ...and a conflict report went out alongside the grant.
        let kinds: Vec<&Msg> = Vec::new();
        drop(kinds);
        assert!(s.server.waiting_wants.contains(ObjectId(1), ClientId(0)));
    }

    #[test]
    fn routing_location_reports_last_client() {
        let mut s = sim(SystemKind::LoadSharing);
        let mut list = ForwardList::new(ObjectId(3));
        list.push(ForwardEntry {
            client: ClientId(2),
            txn: TransactionId::new(ClientId(2), 1),
            deadline: SimTime::from_secs(50),
            mode: LockMode::Exclusive,
        });
        list.push(ForwardEntry {
            client: ClientId(3),
            txn: TransactionId::new(ClientId(3), 1),
            deadline: SimTime::from_secs(80),
            mode: LockMode::Exclusive,
        });
        s.server.routing.insert(ObjectId(3), list);
        let holders = s.with_routing_holders(ObjectId(3), vec![]);
        assert_eq!(holders, vec![(ClientId(3), LockMode::Exclusive)]);
    }
}
