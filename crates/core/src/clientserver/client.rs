//! Client-side behaviour: transaction admission (H1), acquisition of
//! objects and locks, local EDF execution, callback handling with
//! downgrade, forward-list hops, shipping and decomposition.

use siteselect_locks::{Acquire, ForwardList};
use siteselect_net::MessageKind;
use siteselect_storage::CacheTier;
use siteselect_types::{
    AbortReason, AccessSpec, ClientId, LockMode, ObjectId, SimTime, SiteId, TransactionId,
    TxnOutcome,
};

use super::{
    subtask_key, ClientServerSim, Ev, Fetch, InfoReason, Msg, Need, Revoke, RunKind, RunState,
    SiteDest, TKey, TxnRun, Want,
};

/// Fraction of a decomposed transaction's CPU demand spent synthesizing the
/// subtask answers at the origin (§3.2's "answer synthesis" phase).
const SYNTHESIS_FRACTION: f64 = 0.1;

impl ClientServerSim {
    // ------------------------------------------------------------------
    // Messaging helpers
    // ------------------------------------------------------------------

    pub(crate) fn send_to_server(
        &mut self,
        from: ClientId,
        kind: MessageKind,
        objects: u32,
        logical: u32,
        msg: Msg,
    ) {
        let delivery =
            self.fabric
                .try_send_counted(self.now, SiteId::Client(from), SiteId::Server, kind, objects, logical);
        self.push_delivery(delivery, SiteDest::Server, msg);
    }

    pub(crate) fn send_to_client(
        &mut self,
        from: SiteDest,
        to: ClientId,
        kind: MessageKind,
        objects: u32,
        msg: Msg,
    ) {
        let from_site = match from {
            SiteDest::Server => SiteId::Server,
            SiteDest::Client(c) => SiteId::Client(c),
        };
        let to_site = SiteId::Client(to);
        let client_to_client = matches!(from, SiteDest::Client(_));
        let delivery = if client_to_client && self.cfg.load_sharing.directory_enabled {
            self.fabric
                .try_send_via_directory(self.now, from_site, to_site, kind, objects)
        } else {
            self.fabric.try_send(self.now, from_site, to_site, kind, objects)
        };
        self.push_delivery(delivery, SiteDest::Client(to), msg);
    }

    // ------------------------------------------------------------------
    // Arrival, H1 and routing
    // ------------------------------------------------------------------

    pub(crate) fn on_arrive(&mut self, i: usize) {
        let spec = self.specs[i].clone();
        let key = spec.id.as_u64();
        let ci = spec.origin.index();
        if !self.site_up(spec.origin) {
            // The originating workstation is crashed: the transaction is
            // lost with it (a dead site submits nothing).
            if self.measured_arrival(spec.arrival) {
                self.record_outcome_at(
                    SiteId::Client(spec.origin),
                    spec.id,
                    TxnOutcome::Aborted(AbortReason::SiteCrash),
                );
            }
            return;
        }
        self.inflight += 1;
        self.sink.emit(self.now, SiteId::Client(spec.origin), || {
            siteselect_obs::Event::TxnSubmit {
                txn: spec.id,
                deadline: spec.deadline,
                accesses: spec.accesses.len() as u32,
            }
        });
        let run = TxnRun {
            kind: RunKind::Normal,
            state: RunState::Acquiring,
            needed: Default::default(),
            acquire_started: self.now,
            exec_started: self.now,
            spec,
        };
        self.admit(ci, key, run);
    }

    /// Routes a fresh unit of work at client `ci` through the LS heuristics
    /// or straight into acquisition.
    pub(crate) fn admit(&mut self, ci: usize, key: TKey, run: TxnRun) {
        let spec_deadline = run.spec.deadline;
        if run.spec.is_expired(self.now) {
            // Dead on arrival (e.g. shipped transaction that travelled too
            // long).
            self.clients[ci].txns.insert(key, run);
            self.abort_txn(ci, key, AbortReason::Expired);
            return;
        }
        let is_plain = matches!(run.kind, RunKind::Normal);
        let ls_cfg = self.cfg.load_sharing;
        if self.ls && is_plain {
            let c = &self.clients[ci];
            let feasible = !ls_cfg.h1_enabled || {
                let n = c.queue_ahead() as f64;
                let projected = self.now + siteselect_types::SimDuration::from_secs_f64(n * c.atl());
                let ok = projected <= spec_deadline;
                let (txn, queue_ahead) = (run.spec.id, c.queue_ahead() as u64);
                let atl_us =
                    siteselect_types::SimDuration::from_secs_f64(c.atl()).as_micros();
                self.sink.emit(self.now, SiteId::Client(run.spec.origin), || {
                    let (projected, deadline) = (projected, spec_deadline);
                    if ok {
                        siteselect_obs::Event::H1Admit { txn, queue_ahead, atl_us, projected, deadline }
                    } else {
                        siteselect_obs::Event::H1Reject { txn, queue_ahead, atl_us, projected, deadline }
                    }
                });
                ok
            };
            let objects: Vec<ObjectId> = run.spec.objects().collect();
            if !feasible {
                if self.measured_arrival(run.spec.arrival) {
                    self.metrics.load_sharing.h1_rejections += 1;
                }
                let origin = run.spec.origin;
                let mut run = run;
                run.state = RunState::AwaitInfo {
                    reason: InfoReason::H1Infeasible,
                };
                self.clients[ci].txns.insert(key, run);
                self.send_to_server(
                    origin,
                    MessageKind::LoadQuery,
                    0,
                    1,
                    Msg::LoadQuery { txn: key, objects },
                );
                return;
            }
            if run.spec.decomposable && ls_cfg.decomposition_enabled && run.spec.accesses.len() > 1
            {
                let origin = run.spec.origin;
                let mut run = run;
                run.state = RunState::AwaitInfo {
                    reason: InfoReason::Decompose,
                };
                self.clients[ci].txns.insert(key, run);
                self.send_to_server(
                    origin,
                    MessageKind::LoadQuery,
                    0,
                    1,
                    Msg::LoadQuery { txn: key, objects },
                );
                return;
            }
        }
        self.clients[ci].txns.insert(key, run);
        self.begin_acquisition(ci, key, self.ls);
    }

    // ------------------------------------------------------------------
    // Acquisition
    // ------------------------------------------------------------------

    /// Classifies every access of `key` and sends one batched request for
    /// the objects the client cannot serve locally.
    pub(crate) fn begin_acquisition(&mut self, ci: usize, key: TKey, grant_all: bool) {
        let Some(run) = self.clients[ci].txns.get(&key) else {
            return;
        };
        let accesses: Vec<AccessSpec> = run.spec.accesses.clone();
        let measured = self.measured_arrival(run.spec.arrival);
        let deadline = run.spec.deadline;
        if let Some(run) = self.clients[ci].txns.get_mut(&key) {
            run.state = RunState::Acquiring;
            run.acquire_started = self.now;
        }
        let mut wants: Vec<Want> = Vec::new();
        for a in accesses {
            let mode = a.mode();
            // Table 2 accounting: a hit is data present in either tier.
            let tier = self.clients[ci].cache.probe(a.object);
            if measured {
                match tier {
                    Some(CacheTier::Memory) => self.metrics.cache.memory_hits += 1,
                    Some(CacheTier::Disk) => self.metrics.cache.disk_hits += 1,
                    None => self.metrics.cache.misses += 1,
                }
            }
            let c = &self.clients[ci];
            let covered = c
                .cached_locks
                .get(a.object)
                .is_some_and(|m| m.covers(mode));
            let usable = covered && tier.is_some() && !c.revokes.contains_key(&a.object);
            if usable {
                let promote = tier == Some(CacheTier::Disk);
                if self.request_local_lock(ci, key, a.object, mode, promote) {
                    return; // transaction aborted (local deadlock)
                }
            } else {
                let needs_data = tier.is_none() || c.revokes.contains_key(&a.object);
                if let Some(run) = self.clients[ci].txns.get_mut(&key) {
                    run.needed.insert(a.object, mode, Need::Fetch);
                }
                if let Some(w) = self.join_fetch(ci, key, a.object, mode, needs_data, deadline) {
                    wants.push(w);
                }
            }
        }
        if wants.is_empty() {
            self.check_ready(ci, key);
            return;
        }
        let client = self.clients[ci].id;
        let logical = wants.len() as u32;
        let use_grant_all = grant_all && self.ls;
        if use_grant_all {
            if let Some(run) = self.clients[ci].txns.get_mut(&key) {
                run.state = RunState::AwaitGrantAll;
            }
        }
        self.send_to_server(
            client,
            MessageKind::ObjectRequest,
            0,
            logical,
            Msg::RequestBatch {
                txn: key,
                client,
                wants,
                grant_all: use_grant_all,
            },
        );
    }

    /// Joins (or creates) the outstanding fetch of `object`; returns the
    /// `Want` to transmit if a new/stronger request must go to the server.
    fn join_fetch(
        &mut self,
        ci: usize,
        key: TKey,
        object: ObjectId,
        mode: LockMode,
        needs_data: bool,
        deadline: SimTime,
    ) -> Option<Want> {
        let c = &mut self.clients[ci];
        if let Some(f) = c.fetches.get_mut(&object) {
            if !f.waiters.contains(&key) {
                f.waiters.push(key);
            }
            if f.mode.covers(mode) {
                return None;
            }
            if !f.sent {
                // Still staged: strengthen in place.
                f.mode = LockMode::Exclusive;
                return None;
            }
            // Already on the wire in a weaker mode; the upgrade is issued
            // when the weak grant resolves (see resolve_fetch).
            return None;
        }
        c.fetches.insert(
            object,
            Fetch {
                mode,
                sent_at: self.now,
                waiters: vec![key],
                sent: true,
                attempts: 0,
            },
        );
        // Failure handling: guard the fresh request with a retry timer in
        // case it (or its grant) is lost.
        if self.faults.active && self.cfg.faults.max_retries > 0 {
            self.queue.push(
                self.now + self.cfg.faults.retry_backoff_base,
                Ev::RetryFetch {
                    client: ci,
                    object,
                    attempt: 0,
                    sent_at: self.now,
                },
            );
        }
        Some(Want {
            object,
            mode,
            needs_data,
            deadline,
        })
    }

    /// Requests the local (transaction-level) lock. Returns `true` if the
    /// transaction was aborted to avoid a local deadlock.
    fn request_local_lock(
        &mut self,
        ci: usize,
        key: TKey,
        object: ObjectId,
        mode: LockMode,
        promote: bool,
    ) -> bool {
        let deadline = self.clients[ci]
            .txns
            .get(&key)
            .map_or(SimTime::MAX, |r| r.spec.deadline);
        let c = &mut self.clients[ci];
        let conflicts = c.local_locks.conflicting_holders(object, key, mode);
        if c.local_wfg.would_deadlock(key, &conflicts) {
            self.abort_txn(ci, key, AbortReason::Deadlock);
            return true;
        }
        match c.local_locks.request(object, key, mode, deadline) {
            Acquire::Granted | Acquire::AlreadyHeld | Acquire::Upgraded => {
                let unit = TransactionId::from_raw(key);
                let (holder, exclusive) = (c.id, mode == LockMode::Exclusive);
                self.sink.emit(self.now, SiteId::Client(holder), || {
                    siteselect_obs::Event::LockHeld {
                        txn: unit,
                        object,
                        exclusive,
                    }
                });
                if promote {
                    let done = c.disk.schedule_io(self.now);
                    if let Some(run) = c.txns.get_mut(&key) {
                        run.needed.insert(object, mode, Need::DiskPromote);
                    }
                    self.queue.push(
                        done,
                        Ev::ClientDiskReady {
                            client: ci,
                            txn: key,
                            object,
                            scheduled_at: self.now,
                        },
                    );
                } else if let Some(run) = c.txns.get_mut(&key) {
                    run.needed.insert(object, mode, Need::Held);
                }
            }
            Acquire::Blocked { conflicts } => {
                let blocker = conflicts.first().copied();
                c.local_wfg.add_waits(key, conflicts);
                if let Some(run) = c.txns.get_mut(&key) {
                    run.needed.insert(object, mode, Need::LocalWait);
                    let (txn, origin) = (run.spec.id, run.spec.origin);
                    self.sink.emit(self.now, SiteId::Client(origin), || {
                        siteselect_obs::Event::LockWait { txn, object }
                    });
                }
                // Trace-only wait-start bookkeeping for the lock-wait span
                // emitted when the wait resolves (pure observer).
                if self.sink.is_enabled() {
                    self.clients[ci]
                        .lock_wait_from
                        .insert((key, object), (self.now, blocker));
                }
            }
        }
        false
    }

    pub(crate) fn on_client_disk_ready(
        &mut self,
        ci: usize,
        key: TKey,
        object: ObjectId,
        scheduled_at: SimTime,
    ) {
        let id = self.clients[ci].id;
        self.emit_span(
            SiteId::Client(id),
            key,
            siteselect_obs::SpanKind::Disk,
            scheduled_at,
            None,
        );
        let Some(run) = self.clients[ci].txns.get_mut(&key) else {
            return;
        };
        if run.needed.get(object).is_some_and(|(_, n)| n == Need::DiskPromote) {
            run.needed.set_need(object, Need::Held);
        }
        self.check_ready(ci, key);
    }

    // ------------------------------------------------------------------
    // Message handling
    // ------------------------------------------------------------------

    pub(crate) fn client_on_msg(&mut self, to: ClientId, msg: Msg) {
        let ci = to.index();
        match msg {
            Msg::GrantBatch { items } => {
                for (object, mode, with_data) in items {
                    self.resolve_fetch(ci, object, mode, with_data);
                }
            }
            Msg::ConflictReport { txn, conflicts } => self.on_conflict_report(ci, txn, conflicts),
            Msg::Rejected { txn, expired } => {
                let reason = if expired {
                    AbortReason::Expired
                } else {
                    AbortReason::Deadlock
                };
                // The server rejected one object of the batch: the
                // transaction as a whole cannot proceed.
                self.abort_txn(ci, txn, reason);
            }
            Msg::Recall {
                object,
                desired,
                forward,
            } => self.on_recall(ci, object, desired, forward),
            Msg::ObjectForward { object, mode, rest } => {
                if self.now >= self.warmup_end {
                    self.metrics.load_sharing.forward_satisfied += 1;
                }
                // Receiving a forwarded object: it must keep moving after
                // local use (the last client returns it to the server).
                self.clients[ci].revokes.insert(
                    object,
                    Revoke {
                        desired: LockMode::Exclusive,
                        forward: Some(rest),
                    },
                );
                self.resolve_fetch(ci, object, mode, true);
                // If no local transaction wanted it any more, move it on
                // immediately.
                self.try_execute_revoke(ci, object);
            }
            Msg::TxnShip { spec, sent_at } => {
                let key = spec.id.as_u64();
                // The shipped transaction travelled the fabric from the
                // ship decision to this delivery.
                self.emit_span(
                    SiteId::Client(to),
                    key,
                    siteselect_obs::SpanKind::Net,
                    sent_at,
                    None,
                );
                let origin = spec.origin;
                let run = TxnRun {
                    kind: RunKind::Shipped { origin },
                    state: RunState::Acquiring,
                    needed: Default::default(),
                    acquire_started: self.now,
                    exec_started: self.now,
                    spec,
                };
                self.admit(ci, key, run);
            }
            Msg::TxnShipResult {
                txn,
                committed,
                deadline,
                arrival,
                sent_at,
            } => {
                // Commit protocol: the remote outcome travelled back to its
                // origin from the remote commit/abort to this delivery.
                self.emit_span(
                    SiteId::Client(to),
                    txn.as_u64(),
                    siteselect_obs::SpanKind::Commit,
                    sent_at,
                    None,
                );
                // Origin scores the shipped transaction when the result
                // arrives back.
                self.inflight -= 1;
                if self.measured_arrival(arrival) {
                    let outcome = if committed && self.now <= deadline {
                        TxnOutcome::Committed
                    } else if committed {
                        TxnOutcome::CommittedLate
                    } else {
                        TxnOutcome::Aborted(AbortReason::Expired)
                    };
                    self.record_outcome_at(SiteId::Client(to), txn, outcome);
                    if outcome == TxnOutcome::Committed {
                        self.metrics
                            .latency
                            .push_duration(self.now.duration_since(arrival));
                    }
                }
            }
            Msg::SubtaskShip {
                parent,
                index,
                origin,
                spec,
                sent_at,
            } => {
                let key = subtask_key(parent, index);
                self.emit_span(
                    SiteId::Client(to),
                    key,
                    siteselect_obs::SpanKind::Net,
                    sent_at,
                    None,
                );
                let run = TxnRun {
                    kind: RunKind::Subtask {
                        parent,
                        index,
                        origin,
                    },
                    state: RunState::Acquiring,
                    needed: Default::default(),
                    acquire_started: self.now,
                    exec_started: self.now,
                    spec,
                };
                self.admit(ci, key, run);
            }
            Msg::SubtaskResult { parent, ok, sent_at } => {
                self.emit_span(
                    SiteId::Client(to),
                    parent,
                    siteselect_obs::SpanKind::Commit,
                    sent_at,
                    None,
                );
                self.on_subtask_result(ci, parent, ok);
            }
            Msg::LoadReply {
                txn,
                locations,
                loads,
            } => self.on_load_reply(ci, txn, locations, loads),
            // Server-bound messages never arrive here.
            Msg::RequestBatch { .. }
            | Msg::ObjectReturn { .. }
            | Msg::CallbackAck { .. }
            | Msg::CancelWants { .. }
            | Msg::LoadQuery { .. } => unreachable!("server message delivered to client"),
        }
    }

    /// An object/lock grant arrived: record response time, install the
    /// cached lock (and data), and unblock waiting transactions.
    fn resolve_fetch(&mut self, ci: usize, object: ObjectId, mode: LockMode, with_data: bool) {
        let c = &mut self.clients[ci];
        let fetch = c.fetches.remove(&object);
        let prior = c.cached_locks.get(object).copied();
        let installed = prior.map_or(mode, |p| p.stronger(mode));
        c.cached_locks.insert(object, installed);
        let holder = c.id;
        self.sink.emit(self.now, SiteId::Client(holder), || {
            siteselect_obs::Event::CacheInstall {
                client: holder,
                object,
                exclusive: installed.is_exclusive(),
            }
        });
        let c = &mut self.clients[ci];
        if with_data {
            c.cache.insert(object);
            c.dirty.remove(object);
        }
        let Some(fetch) = fetch else {
            return; // unsolicited (request was cancelled): keep the cache
        };
        if fetch.sent_at >= self.warmup_end {
            let dt = self.now.duration_since(fetch.sent_at).as_secs_f64();
            match fetch.mode {
                LockMode::Shared => self.metrics.response.shared.push(dt),
                LockMode::Exclusive => self.metrics.response.exclusive.push(dt),
            }
        }
        // Every waiter spent the fetch round-trip on the network (interior
        // server-side spans — disk, lock queue — carve themselves out by
        // priority in the blame extractor).
        for &key in &fetch.waiters {
            self.emit_span(
                SiteId::Client(holder),
                key,
                siteselect_obs::SpanKind::Net,
                fetch.sent_at,
                None,
            );
        }
        for key in fetch.waiters {
            let (need_mode, deadline) = {
                let Some(run) = self.clients[ci].txns.get_mut(&key) else {
                    continue;
                };
                // A grant-all round that came back as grants: acquisition
                // continues normally.
                if run.state == RunState::AwaitGrantAll {
                    run.state = RunState::Acquiring;
                }
                match run.needed.get(object) {
                    Some((need_mode, Need::Fetch)) => (need_mode, run.spec.deadline),
                    _ => continue,
                }
            };
            // The lock installed above can vanish mid-loop: an earlier
            // waiter's completed acquisition may release local locks and
            // let a queued revoke execute, surrendering the cached lock
            // again. For later waiters that is indistinguishable from a
            // too-weak grant — fall through to the re-request path.
            let granted_mode = self.clients[ci].cached_locks.get(object).copied();
            if granted_mode.is_some_and(|m| m.covers(need_mode))
                && self.clients[ci].cache.contains(object)
            {
                let promote =
                    self.clients[ci].cache.peek(object) == Some(CacheTier::Disk);
                if self.request_local_lock(ci, key, object, need_mode, promote) {
                    continue;
                }
                self.check_ready(ci, key);
            } else {
                // Granted mode too weak (or data still missing): go again.
                let needs_data = !self.clients[ci].cache.contains(object);
                if let Some(w) =
                    self.join_fetch(ci, key, object, need_mode, needs_data, deadline)
                {
                    let client = self.clients[ci].id;
                    self.send_to_server(
                        client,
                        MessageKind::ObjectRequest,
                        0,
                        1,
                        Msg::RequestBatch {
                            txn: key,
                            client,
                            wants: vec![w],
                            grant_all: false,
                        },
                    );
                }
            }
        }
    }

    /// LS: the grant-all round failed; run H2 and either ship the
    /// transaction or commit to local processing.
    fn on_conflict_report(
        &mut self,
        ci: usize,
        key: TKey,
        conflicts: Vec<(ObjectId, Vec<(ClientId, LockMode)>)>,
    ) {
        let Some(run) = self.clients[ci].txns.get(&key) else {
            return;
        };
        // The transaction may already have left AwaitGrantAll if another
        // fetch resolved in the meantime; the conflict answer still stands
        // for whatever it is still waiting on.
        if !matches!(run.state, RunState::AwaitGrantAll | RunState::Acquiring) {
            return;
        }
        let shipped = !matches!(run.kind, RunKind::Normal);
        let self_id = self.clients[ci].id;
        let txn = run.spec.id;
        let accesses: Vec<AccessSpec> = run.spec.accesses.clone();
        // H2 decision wait: the grant-all round from batch send to this
        // conflict report.
        self.emit_span(
            SiteId::Client(self_id),
            key,
            siteselect_obs::SpanKind::Decision,
            run.acquire_started,
            None,
        );
        if self.cfg.load_sharing.h2_enabled && !shipped {
            let best = Self::h2_choose(self_id, &accesses, &conflicts, &[]);
            self.sink.emit(self.now, SiteId::Client(self_id), || {
                Self::h2_choose_event(txn, self_id, best, &accesses, &conflicts)
            });
            // Ship only when the destination substantially reduces the
            // conflicting-lock count and already caches a significant share
            // of the transaction's data (§3.1: transaction-shipping pays
            // when "a significant percentage of a transaction's required
            // data is already cached at another site"). Shipping cancels
            // the requests the server has queued on our behalf.
            let ls = self.cfg.load_sharing;
            let best_score = Self::h2_score(best, &accesses, &conflicts) as f64;
            let origin_score = Self::h2_score(self_id, &accesses, &conflicts) as f64;
            if best != self_id
                && self.site_up(best)
                && best_score <= ls.ship_conflict_ratio * origin_score
                && Self::holds_fraction(best, &accesses, &conflicts) >= ls.ship_locality_min
            {
                self.ship_txn(ci, key, best);
                return;
            }
        }
        // Otherwise nothing to do: the server already queued the blocked
        // requests and will ship the objects as soon as possible (§4).
        if let Some(run) = self.clients[ci].txns.get_mut(&key) {
            if run.state == RunState::AwaitGrantAll {
                run.state = RunState::Acquiring;
            }
        }
        self.check_ready(ci, key);
    }

    /// Builds the `H2Choose` trace event: every scored candidate in
    /// evaluation order (origin first, then holders as discovered).
    fn h2_choose_event(
        txn: siteselect_types::TransactionId,
        origin: ClientId,
        chosen: ClientId,
        accesses: &[AccessSpec],
        locations: &[(ObjectId, Vec<(ClientId, LockMode)>)],
    ) -> siteselect_obs::Event {
        let mut candidates: Vec<ClientId> = vec![origin];
        for (_, holders) in locations {
            for &(c, _) in holders {
                if !candidates.contains(&c) {
                    candidates.push(c);
                }
            }
        }
        siteselect_obs::Event::H2Choose {
            txn,
            origin: SiteId::Client(origin),
            chosen: SiteId::Client(chosen),
            candidates: candidates
                .into_iter()
                .map(|c| siteselect_obs::H2Candidate {
                    site: SiteId::Client(c),
                    score: Self::h2_score(c, accesses, locations) as u64,
                })
                .collect(),
        }
    }

    /// H2: the site at which the transaction would wait for the fewest
    /// conflicting locks; `loads` breaks ties.
    pub(crate) fn h2_choose(
        origin: ClientId,
        accesses: &[AccessSpec],
        locations: &[(ObjectId, Vec<(ClientId, LockMode)>)],
        loads: &[(ClientId, usize, f64)],
    ) -> ClientId {
        let load_of = |c: ClientId| {
            loads
                .iter()
                .find(|(id, _, _)| *id == c)
                .map_or(0, |&(_, l, _)| l)
        };
        let mut candidates: Vec<ClientId> = vec![origin];
        for (_, holders) in locations {
            for &(c, _) in holders {
                if !candidates.contains(&c) {
                    candidates.push(c);
                }
            }
        }
        let origin_score = Self::h2_score(origin, accesses, locations);
        let best = candidates
            .into_iter()
            .map(|c| (Self::h2_score(c, accesses, locations), load_of(c), c.0, c))
            .min()
            .map_or(origin, |(_, _, _, c)| c);
        // Ship only for a strict improvement in conflicting locks.
        if Self::h2_score(best, accesses, locations) < origin_score {
            best
        } else {
            origin
        }
    }

    /// Fraction of the transaction's objects on which `site` holds a lock —
    /// the proxy for "how much of the required data is cached there".
    pub(crate) fn holds_fraction(
        site: ClientId,
        accesses: &[AccessSpec],
        locations: &[(ObjectId, Vec<(ClientId, LockMode)>)],
    ) -> f64 {
        if accesses.is_empty() {
            return 0.0;
        }
        let held = accesses
            .iter()
            .filter(|a| {
                locations
                    .iter()
                    .find(|(o, _)| *o == a.object)
                    .is_some_and(|(_, holders)| holders.iter().any(|(h, _)| *h == site))
            })
            .count();
        held as f64 / accesses.len() as f64
    }

    /// The number of conflicting locks transaction `accesses` would wait
    /// for if executed at `site` (the quantity H2 minimizes).
    pub(crate) fn h2_score(
        site: ClientId,
        accesses: &[AccessSpec],
        locations: &[(ObjectId, Vec<(ClientId, LockMode)>)],
    ) -> usize {
        accesses
            .iter()
            .map(|a| {
                let mode = a.mode();
                locations
                    .iter()
                    .find(|(o, _)| *o == a.object)
                    .map_or(0, |(_, holders)| {
                        holders
                            .iter()
                            .filter(|(h, m)| *h != site && !m.compatible_with(mode))
                            .count()
                    })
            })
            .sum()
    }

    fn on_load_reply(
        &mut self,
        ci: usize,
        key: TKey,
        locations: Vec<(ObjectId, Vec<(ClientId, LockMode)>)>,
        loads: Vec<(ClientId, usize, f64)>,
    ) {
        let Some(run) = self.clients[ci].txns.get(&key) else {
            return;
        };
        let RunState::AwaitInfo { reason } = run.state else {
            return;
        };
        let self_id = self.clients[ci].id;
        let txn = run.spec.id;
        let accesses: Vec<AccessSpec> = run.spec.accesses.clone();
        // The load-query round the transaction waited on: H1-infeasible
        // admission handling, or the decomposition placement lookup.
        self.emit_span(
            SiteId::Client(self_id),
            key,
            match reason {
                InfoReason::H1Infeasible => siteselect_obs::SpanKind::Admission,
                InfoReason::Decompose => siteselect_obs::SpanKind::Decision,
            },
            run.acquire_started,
            None,
        );
        match reason {
            InfoReason::H1Infeasible => {
                let best = if self.cfg.load_sharing.h2_enabled {
                    let best = Self::h2_choose(self_id, &accesses, &locations, &loads);
                    self.sink.emit(self.now, SiteId::Client(self_id), || {
                        Self::h2_choose_event(txn, self_id, best, &accesses, &locations)
                    });
                    best
                } else {
                    // Without H2, fall back to the least-loaded site.
                    loads
                        .iter()
                        .map(|&(c, l, _)| (l, c.0, c))
                        .min()
                        .map_or(self_id, |(_, _, c)| c)
                };
                if best != self_id && self.site_up(best) {
                    self.ship_txn(ci, key, best);
                } else {
                    // Best site is home, or the chosen site is crashed:
                    // local processing degrades gracefully.
                    self.begin_acquisition(ci, key, true);
                }
            }
            InfoReason::Decompose => {
                let raw = Self::group_by_location(self_id, &accesses, &locations);
                // Keep decomposition worthwhile: remote groups must carry at
                // least two objects (a single-object fetch is cheaper than a
                // subtask) and the fan-out is capped at four sites, as in
                // the paper's illustration.
                let mut origin_accs: Vec<AccessSpec> = Vec::new();
                let mut groups: Vec<(ClientId, Vec<AccessSpec>)> = Vec::new();
                for (site, accs) in raw {
                    if site == self_id || !self.site_up(site) || accs.len() < 2 || groups.len() >= 4
                    {
                        origin_accs.extend(accs);
                    } else {
                        groups.push((site, accs));
                    }
                }
                if !origin_accs.is_empty() {
                    groups.push((self_id, origin_accs));
                }
                if groups.len() >= 2 {
                    self.decompose(ci, key, groups);
                } else {
                    self.begin_acquisition(ci, key, true);
                }
            }
        }
    }

    fn decompose(&mut self, ci: usize, key: TKey, groups: Vec<(ClientId, Vec<AccessSpec>)>) {
        let Some(run) = self.clients[ci].txns.get_mut(&key) else {
            return;
        };
        let parent_spec = run.spec.clone();
        let total = parent_spec.accesses.len().max(1) as f64;
        run.state = RunState::AwaitSubtasks {
            pending: groups.len() as u8,
            failed: false,
        };
        if self.measured_arrival(parent_spec.arrival) {
            self.metrics.load_sharing.decomposed += 1;
            self.metrics.load_sharing.subtasks += groups.len() as u64;
        }
        let subtasks = groups.len() as u32;
        self.sink
            .emit(self.now, SiteId::Client(parent_spec.origin), || {
                siteselect_obs::Event::Decomposed {
                    txn: parent_spec.id,
                    subtasks,
                }
            });
        let origin = self.clients[ci].id;
        for (index, (site, accesses)) in groups.into_iter().enumerate() {
            let index = index as u8;
            let share = accesses.len() as f64 / total;
            let mut spec = parent_spec.clone();
            spec.accesses = accesses;
            spec.cpu_demand = parent_spec
                .cpu_demand
                .mul_f64((1.0 - SYNTHESIS_FRACTION) * share);
            spec.decomposable = false;
            if site == origin {
                let skey = subtask_key(key, index);
                let run = TxnRun {
                    kind: RunKind::Subtask {
                        parent: key,
                        index,
                        origin,
                    },
                    state: RunState::Acquiring,
                    needed: Default::default(),
                    acquire_started: self.now,
                    exec_started: self.now,
                    spec,
                };
                self.clients[ci].txns.insert(skey, run);
                self.begin_acquisition(ci, skey, self.ls);
            } else {
                self.send_to_client(
                    SiteDest::Client(origin),
                    site,
                    MessageKind::SubtaskShip,
                    0,
                    Msg::SubtaskShip {
                        parent: key,
                        index,
                        origin,
                        spec,
                        sent_at: self.now,
                    },
                );
            }
        }
    }

    fn on_subtask_result(&mut self, ci: usize, parent: TKey, ok: bool) {
        let Some(run) = self.clients[ci].txns.get_mut(&parent) else {
            return; // parent already aborted (e.g. expired)
        };
        let RunState::AwaitSubtasks { pending, failed } = run.state else {
            return;
        };
        let pending = pending - 1;
        let failed = failed || !ok;
        run.state = RunState::AwaitSubtasks { pending, failed };
        if pending > 0 {
            return;
        }
        if failed {
            self.abort_txn(ci, parent, AbortReason::SubtaskFailure);
            return;
        }
        // Synthesis phase: combine the subtask answers.
        let (deadline, demand) = (
            run.spec.deadline,
            run.spec.cpu_demand.mul_f64(SYNTHESIS_FRACTION),
        );
        run.state = RunState::Synthesis;
        run.exec_started = self.now;
        let resched = self.clients[ci].cpu.submit(self.now, parent, deadline, demand);
        if let Some((t, generation)) = resched {
            self.queue.push(
                t,
                Ev::ClientCpu {
                    client: ci,
                    generation,
                },
            );
        }
    }

    pub(crate) fn ship_txn(&mut self, ci: usize, key: TKey, dest: ClientId) {
        let Some(run) = self.clients[ci].txns.remove(&key) else {
            return;
        };
        if self.measured_arrival(run.spec.arrival) {
            self.metrics.load_sharing.shipped += 1;
        }
        let txn = run.spec.id;
        self.sink
            .emit(self.now, SiteId::Client(self.clients[ci].id), || {
                siteselect_obs::Event::Shipped {
                    txn,
                    to: SiteId::Client(dest),
                }
            });
        // The origin-side episode ends without committing anything: local
        // locks are released here and the unit re-executes (as a fresh
        // lock episode) at the destination.
        self.sink
            .emit(self.now, SiteId::Client(self.clients[ci].id), || {
                siteselect_obs::Event::UnitEnd {
                    txn,
                    committed: false,
                }
            });
        self.detach_txn(ci, key, &run);
        let from = self.clients[ci].id;
        self.send_to_client(
            SiteDest::Client(from),
            dest,
            MessageKind::TxnShip,
            0,
            Msg::TxnShip {
                spec: run.spec,
                sent_at: self.now,
            },
        );
    }

    /// Releases everything `key` holds or awaits at client `ci`.
    fn detach_txn(&mut self, ci: usize, key: TKey, run: &TxnRun) {
        // Close out lock waits still open at detach (an aborted/shipped
        // unit stops waiting now).
        if self.sink.is_enabled() {
            let id = self.clients[ci].id;
            let mut open: Vec<(ObjectId, SimTime, Option<TKey>)> = self.clients[ci]
                .lock_wait_from
                .iter()
                .filter(|((k, _), _)| *k == key)
                .map(|(&(_, o), &(t, b))| (o, t, b))
                .collect();
            open.sort_unstable_by_key(|&(o, _, _)| o);
            for (object, started, blocker) in open {
                self.clients[ci].lock_wait_from.remove(&(key, object));
                self.emit_span(
                    SiteId::Client(id),
                    key,
                    siteselect_obs::SpanKind::LockWait,
                    started,
                    blocker,
                );
            }
        }
        // Local locks and queued local waits.
        let grants = self.clients[ci].local_locks.release_all(key);
        self.clients[ci].local_wfg.remove_node(key);
        for (object, waiters) in grants {
            let keys: Vec<TKey> = waiters.iter().map(|w| w.owner).collect();
            self.on_local_grants(ci, object, keys);
        }
        // Pending revokes may now be executable.
        let held: Vec<ObjectId> = run.needed.objects().collect();
        for object in held {
            self.try_execute_revoke(ci, object);
        }
        // Outstanding fetches.
        let mut cancelled: Vec<ObjectId> = Vec::new();
        let c = &mut self.clients[ci];
        c.fetches.retain(|&object, f| {
            f.waiters.retain(|&w| w != key);
            if f.waiters.is_empty() {
                if f.sent {
                    cancelled.push(object);
                }
                false
            } else {
                true
            }
        });
        if !cancelled.is_empty() {
            cancelled.sort_unstable(); // retain walks hash order
            let client = self.clients[ci].id;
            self.send_to_server(
                client,
                MessageKind::ObjectRequest,
                0,
                1,
                Msg::CancelWants {
                    client,
                    objects: cancelled,
                },
            );
        }
    }

    // ------------------------------------------------------------------
    // Callbacks, downgrades and forward hops
    // ------------------------------------------------------------------

    fn on_recall(
        &mut self,
        ci: usize,
        object: ObjectId,
        desired: LockMode,
        forward: Option<ForwardList>,
    ) {
        let c = &mut self.clients[ci];
        if !c.cached_locks.contains(object) {
            // We no longer hold it (silently evicted): answer immediately.
            let from = c.id;
            let had_copy = c.cache.contains(object);
            self.send_to_server(
                from,
                MessageKind::CallbackAck,
                0,
                1,
                Msg::CallbackAck {
                    object,
                    from,
                    had_copy,
                },
            );
            return;
        }
        c.revokes.insert(object, Revoke { desired, forward });
        // Queued local waiters can no longer rely on the cached lock.
        self.requeue_local_waiters(ci, object);
        self.try_execute_revoke(ci, object);
    }

    /// Converts local-wait transactions on `object` into server fetches
    /// (their cached lock is being revoked or downgraded).
    fn requeue_local_waiters(&mut self, ci: usize, object: ObjectId) {
        let waiters: Vec<TKey> = self.clients[ci]
            .local_locks
            .waiters(object)
            .iter()
            .map(|w| w.owner)
            .collect();
        for key in waiters {
            let Some(run) = self.clients[ci].txns.get(&key) else {
                continue;
            };
            let Some((mode, Need::LocalWait)) = run.needed.get(object) else {
                continue;
            };
            let deadline = run.spec.deadline;
            let (_, grants) = self.clients[ci].local_locks.cancel_wait(object, key);
            // The local wait ends here (it converts into a server fetch).
            if let Some((started, blocker)) =
                self.clients[ci].lock_wait_from.remove(&(key, object))
            {
                let id = self.clients[ci].id;
                self.emit_span(
                    SiteId::Client(id),
                    key,
                    siteselect_obs::SpanKind::LockWait,
                    started,
                    blocker,
                );
            }
            if let Some(run) = self.clients[ci].txns.get_mut(&key) {
                run.needed.insert(object, mode, Need::Fetch);
            }
            let keys: Vec<TKey> = grants.iter().map(|w| w.owner).collect();
            self.on_local_grants(ci, object, keys);
            if let Some(w) = self.join_fetch(ci, key, object, mode, true, deadline) {
                let client = self.clients[ci].id;
                self.send_to_server(
                    client,
                    MessageKind::ObjectRequest,
                    0,
                    1,
                    Msg::RequestBatch {
                        txn: key,
                        client,
                        wants: vec![w],
                        grant_all: false,
                    },
                );
            }
        }
    }

    /// Executes a pending revocation once no local transaction holds the
    /// object.
    pub(crate) fn try_execute_revoke(&mut self, ci: usize, object: ObjectId) {
        let c = &self.clients[ci];
        if !c.revokes.contains_key(&object) {
            return;
        }
        if !c.local_locks.holders(object).is_empty() {
            return; // active local users finish first
        }
        let revoke = self.clients[ci]
            .revokes
            .remove(&object)
            .expect("checked above");
        let from = self.clients[ci].id;
        let held = self.clients[ci].cached_locks.get(object).copied();
        let has_data = self.clients[ci].cache.contains(object);

        if let Some(mut list) = revoke.forward {
            // Grouped-lock hop: ship the object to the next live entry.
            if !has_data {
                self.clients[ci].cached_locks.remove(object);
                self.sink.emit(self.now, SiteId::Client(from), || {
                    siteselect_obs::Event::CacheDrop { client: from, object }
                });
                self.send_to_server(
                    from,
                    MessageKind::CallbackAck,
                    0,
                    1,
                    Msg::CallbackAck {
                        object,
                        from,
                        had_copy: false,
                    },
                );
                return;
            }
            self.clients[ci].cached_locks.remove(object);
            self.clients[ci].cache.invalidate(object);
            self.clients[ci].dirty.remove(object);
            self.sink.emit(self.now, SiteId::Client(from), || {
                siteselect_obs::Event::CacheDrop { client: from, object }
            });
            // Skip entries whose deadline passed and (failure handling)
            // entries whose client is crashed — forwarding to a dead site
            // would strand the object.
            let next = loop {
                let (next, _skipped) = list.pop_next_live(self.now);
                match next {
                    Some(e) if !self.site_up(e.client) => continue,
                    other => break other,
                }
            };
            match next {
                Some(entry) => {
                    let to = entry.client;
                    self.sink.emit(self.now, SiteId::Client(from), || {
                        siteselect_obs::Event::ForwardHop { object, to }
                    });
                    self.send_to_client(
                        SiteDest::Client(from),
                        entry.client,
                        MessageKind::ObjectForward,
                        1,
                        Msg::ObjectForward {
                            object,
                            mode: entry.mode,
                            rest: list,
                        },
                    );
                }
                None => {
                    // Everyone on the list expired: hand the object home.
                    self.send_to_server(
                        from,
                        MessageKind::ObjectReturn,
                        1,
                        1,
                        Msg::ObjectReturn {
                            object,
                            from,
                            downgraded: false,
                        },
                    );
                }
            }
            return;
        }

        // Plain callback path.
        let downgrade = revoke.desired == LockMode::Shared
            && held == Some(LockMode::Exclusive)
            && has_data;
        if downgrade {
            self.clients[ci]
                .cached_locks
                .insert(object, LockMode::Shared);
            self.clients[ci].dirty.remove(object);
            self.sink.emit(self.now, SiteId::Client(from), || {
                siteselect_obs::Event::CacheDowngrade { client: from, object }
            });
            self.send_to_server(
                from,
                MessageKind::ObjectReturn,
                1,
                1,
                Msg::ObjectReturn {
                    object,
                    from,
                    downgraded: true,
                },
            );
            return;
        }
        self.clients[ci].cached_locks.remove(object);
        self.sink.emit(self.now, SiteId::Client(from), || {
            siteselect_obs::Event::CacheDrop { client: from, object }
        });
        let send_data = held == Some(LockMode::Exclusive) && has_data;
        self.clients[ci].cache.invalidate(object);
        self.clients[ci].dirty.remove(object);
        if send_data {
            self.send_to_server(
                from,
                MessageKind::ObjectReturn,
                1,
                1,
                Msg::ObjectReturn {
                    object,
                    from,
                    downgraded: false,
                },
            );
        } else {
            self.send_to_server(
                from,
                MessageKind::CallbackAck,
                0,
                1,
                Msg::CallbackAck {
                    object,
                    from,
                    had_copy: has_data,
                },
            );
        }
    }

    /// Local lock grants cascading from a release.
    pub(crate) fn on_local_grants(&mut self, ci: usize, object: ObjectId, keys: Vec<TKey>) {
        for key in keys {
            let Some(run) = self.clients[ci].txns.get(&key) else {
                // Granted to a transaction that no longer exists.
                let grants = self.clients[ci].local_locks.release(object, key);
                let more: Vec<TKey> = grants.iter().map(|w| w.owner).collect();
                self.on_local_grants(ci, object, more);
                continue;
            };
            let Some((mode, status)) = run.needed.get(object) else {
                continue;
            };
            if status != Need::LocalWait {
                continue;
            }
            self.clients[ci].local_wfg.clear_waits(key);
            // The local lock wait ends with this grant.
            if let Some((started, blocker)) =
                self.clients[ci].lock_wait_from.remove(&(key, object))
            {
                let id = self.clients[ci].id;
                self.emit_span(
                    SiteId::Client(id),
                    key,
                    siteselect_obs::SpanKind::LockWait,
                    started,
                    blocker,
                );
            }
            let c = &self.clients[ci];
            let covered = c
                .cached_locks
                .get(object)
                .is_some_and(|m| m.covers(mode));
            if covered && c.cache.contains(object) {
                let promote = c.cache.peek(object) == Some(CacheTier::Disk);
                let unit = TransactionId::from_raw(key);
                let (holder, exclusive) = (c.id, mode == LockMode::Exclusive);
                self.sink.emit(self.now, SiteId::Client(holder), || {
                    siteselect_obs::Event::LockHeld {
                        txn: unit,
                        object,
                        exclusive,
                    }
                });
                if promote {
                    let done = self.clients[ci].disk.schedule_io(self.now);
                    if let Some(run) = self.clients[ci].txns.get_mut(&key) {
                        run.needed.insert(object, mode, Need::DiskPromote);
                    }
                    self.queue.push(
                        done,
                        Ev::ClientDiskReady {
                            client: ci,
                            txn: key,
                            object,
                            scheduled_at: self.now,
                        },
                    );
                } else {
                    if let Some(run) = self.clients[ci].txns.get_mut(&key) {
                        run.needed.insert(object, mode, Need::Held);
                    }
                    self.check_ready(ci, key);
                }
            } else {
                // Cached lock vanished while queued: fetch from the server.
                let deadline = self.clients[ci]
                    .txns
                    .get(&key)
                    .map_or(SimTime::MAX, |r| r.spec.deadline);
                self.clients[ci].local_locks.release(object, key);
                if let Some(run) = self.clients[ci].txns.get_mut(&key) {
                    run.needed.insert(object, mode, Need::Fetch);
                }
                if let Some(w) = self.join_fetch(ci, key, object, mode, true, deadline) {
                    let client = self.clients[ci].id;
                    self.send_to_server(
                        client,
                        MessageKind::ObjectRequest,
                        0,
                        1,
                        Msg::RequestBatch {
                            txn: key,
                            client,
                            wants: vec![w],
                            grant_all: false,
                        },
                    );
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Execution and completion
    // ------------------------------------------------------------------

    pub(crate) fn check_ready(&mut self, ci: usize, key: TKey) {
        let Some(run) = self.clients[ci].txns.get(&key) else {
            return;
        };
        if !run.ready() {
            return;
        }
        if run.spec.is_expired(self.now) {
            self.abort_txn(ci, key, AbortReason::Expired);
            return;
        }
        let measured = self.measured_arrival(run.spec.arrival);
        let blocked = self.now.duration_since(run.acquire_started);
        if measured {
            self.metrics.blocking.push_duration(blocked);
        }
        let (deadline, demand) = (run.spec.deadline, run.spec.cpu_demand);
        let txn = run.spec.id;
        if let Some(run) = self.clients[ci].txns.get_mut(&key) {
            run.state = RunState::Executing;
            run.exec_started = self.now;
        }
        self.sink
            .emit(self.now, SiteId::Client(self.clients[ci].id), || {
                siteselect_obs::Event::ExecStart { txn }
            });
        let resched = self.clients[ci].cpu.submit(self.now, key, deadline, demand);
        if let Some((t, generation)) = resched {
            self.queue.push(
                t,
                Ev::ClientCpu {
                    client: ci,
                    generation,
                },
            );
        }
    }

    pub(crate) fn on_client_cpu(&mut self, ci: usize, generation: u64) {
        match self.clients[ci].cpu.on_completion(self.now, generation) {
            crate::cpu::Tick::Stale => {}
            crate::cpu::Tick::Done { finished, next } => {
                if let Some((t, generation)) = next {
                    self.queue.push(
                        t,
                        Ev::ClientCpu {
                            client: ci,
                            generation,
                        },
                    );
                }
                for &key in finished.iter() {
                    self.commit_txn(ci, key);
                }
            }
        }
    }

    fn commit_txn(&mut self, ci: usize, key: TKey) {
        let Some(run) = self.clients[ci].txns.remove(&key) else {
            return;
        };
        // Mark updated objects dirty in the cache (they carry the newest
        // version under the exclusive lock).
        if run.state == RunState::Executing {
            let writes: Vec<ObjectId> = run.spec.write_set().collect();
            for o in writes {
                if self.clients[ci].cache.contains(o) {
                    self.clients[ci].dirty.insert(o);
                }
            }
        }
        let unit = TransactionId::from_raw(key);
        self.sink
            .emit(self.now, SiteId::Client(self.clients[ci].id), || {
                siteselect_obs::Event::UnitEnd {
                    txn: unit,
                    committed: true,
                }
            });
        self.detach_txn(ci, key, &run);
        // ATL bookkeeping for H1: the paper's "average execution time for
        // all completed transactions" — the CPU-resident span.
        let exec_time = self.now.duration_since(run.exec_started).as_secs_f64();
        self.clients[ci].atl_sum += exec_time;
        self.clients[ci].atl_count += 1;

        let committed = self.now <= run.spec.deadline;
        let measured = self.measured_arrival(run.spec.arrival);
        if matches!(run.kind, RunKind::Normal) {
            let txn = run.spec.id;
            let latency_us = self.now.duration_since(run.spec.arrival).as_micros();
            let slack_us = run.spec.deadline.as_micros() as i64 - self.now.as_micros() as i64;
            self.sink
                .emit(self.now, SiteId::Client(self.clients[ci].id), || {
                    siteselect_obs::Event::Commit {
                        txn,
                        latency_us,
                        slack_us,
                    }
                });
        }
        match run.kind {
            RunKind::Normal => {
                self.inflight -= 1;
                if measured {
                    let outcome = if committed {
                        TxnOutcome::Committed
                    } else {
                        TxnOutcome::CommittedLate
                    };
                    self.record_outcome_at(
                        SiteId::Client(self.clients[ci].id),
                        run.spec.id,
                        outcome,
                    );
                    if committed {
                        self.metrics
                            .latency
                            .push_duration(self.now.duration_since(run.spec.arrival));
                    }
                }
            }
            RunKind::Shipped { origin } => {
                let from = self.clients[ci].id;
                self.send_to_client(
                    SiteDest::Client(from),
                    origin,
                    MessageKind::TxnShipResult,
                    0,
                    Msg::TxnShipResult {
                        txn: run.spec.id,
                        committed,
                        deadline: run.spec.deadline,
                        arrival: run.spec.arrival,
                        sent_at: self.now,
                    },
                );
            }
            RunKind::Subtask {
                parent,
                index: _,
                origin,
            } => {
                let from = self.clients[ci].id;
                if origin == from {
                    self.on_subtask_result(ci, parent, committed);
                } else {
                    self.send_to_client(
                        SiteDest::Client(from),
                        origin,
                        MessageKind::SubtaskResult,
                        0,
                        Msg::SubtaskResult {
                            parent,
                            ok: committed,
                            sent_at: self.now,
                        },
                    );
                }
            }
        }
    }

    pub(crate) fn abort_txn(&mut self, ci: usize, key: TKey, reason: AbortReason) {
        let Some(run) = self.clients[ci].txns.remove(&key) else {
            return;
        };
        if matches!(run.state, RunState::Executing | RunState::Synthesis) {
            if let Some((t, generation)) = self.clients[ci].cpu.remove(self.now, key) {
                self.queue.push(
                    t,
                    Ev::ClientCpu {
                        client: ci,
                        generation,
                    },
                );
            }
        }
        self.detach_txn(ci, key, &run);
        let measured = self.measured_arrival(run.spec.arrival);
        let txn = run.spec.id;
        self.sink
            .emit(self.now, SiteId::Client(self.clients[ci].id), || {
                siteselect_obs::Event::Abort { txn, reason }
            });
        let unit = TransactionId::from_raw(key);
        self.sink
            .emit(self.now, SiteId::Client(self.clients[ci].id), || {
                siteselect_obs::Event::UnitEnd {
                    txn: unit,
                    committed: false,
                }
            });
        match run.kind {
            RunKind::Normal => {
                self.inflight -= 1;
                if measured {
                    self.record_outcome_at(
                        SiteId::Client(self.clients[ci].id),
                        run.spec.id,
                        TxnOutcome::Aborted(reason),
                    );
                }
            }
            RunKind::Shipped { origin } => {
                let from = self.clients[ci].id;
                self.send_to_client(
                    SiteDest::Client(from),
                    origin,
                    MessageKind::TxnShipResult,
                    0,
                    Msg::TxnShipResult {
                        txn: run.spec.id,
                        committed: false,
                        deadline: run.spec.deadline,
                        arrival: run.spec.arrival,
                        sent_at: self.now,
                    },
                );
            }
            RunKind::Subtask {
                parent,
                index: _,
                origin,
            } => {
                let from = self.clients[ci].id;
                if origin == from {
                    self.on_subtask_result(ci, parent, false);
                } else {
                    self.send_to_client(
                        SiteDest::Client(from),
                        origin,
                        MessageKind::SubtaskResult,
                        0,
                        Msg::SubtaskResult {
                            parent,
                            ok: false,
                            sent_at: self.now,
                        },
                    );
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Fault injection and failure handling
    // ------------------------------------------------------------------

    /// A client site crashes: every resident unit of work dies, all
    /// volatile state (caches, cached locks, local lock table) is lost, and
    /// the fabric refuses deliveries until recovery. The site sends
    /// nothing on its way down — the rest of the system learns of the
    /// failure only through timeouts and lease expiry.
    pub(crate) fn on_site_crash(&mut self, ci: usize) {
        if !self.faults.up[ci] {
            return; // already down (schedules can overlap at run end)
        }
        self.faults.up[ci] = false;
        self.metrics.faults.crashes += 1;
        let id = self.clients[ci].id;
        self.sink.emit(self.now, SiteId::Client(id), || {
            siteselect_obs::Event::SiteCrash {
                site: SiteId::Client(id),
            }
        });
        self.fabric.set_site_down(SiteId::Client(id));
        let mut keys: Vec<TKey> = self.clients[ci].txns.keys().copied().collect();
        keys.sort_unstable(); // hash order is process-random; kills cascade
        for key in keys {
            self.kill_run_on_crash(ci, key);
        }
        self.sink.emit(self.now, SiteId::Client(id), || {
            siteselect_obs::Event::CacheWipe { client: id }
        });
        let cfg = self.cfg.client;
        let c = &mut self.clients[ci];
        c.cached_locks.clear();
        c.dirty.clear();
        c.fetches.clear();
        c.revokes.clear();
        c.lock_wait_from.clear();
        c.cache = siteselect_storage::ClientCache::new(
            cfg.memory_cache_objects,
            cfg.disk_cache_objects,
        );
        c.local_locks =
            siteselect_locks::LockTable::new(siteselect_locks::QueueDiscipline::Deadline);
        c.local_wfg = siteselect_locks::WaitForGraph::new();
    }

    /// Silent death of one unit of work in a crash. Unlike
    /// [`abort_txn`](Self::abort_txn) nothing is sent: remote interest is
    /// settled by a synthetic timeout result, and whatever the site held at
    /// the server is reclaimed by callback leases.
    fn kill_run_on_crash(&mut self, ci: usize, key: TKey) {
        let Some(run) = self.clients[ci].txns.remove(&key) else {
            return;
        };
        if matches!(run.state, RunState::Executing | RunState::Synthesis) {
            if let Some((t, generation)) = self.clients[ci].cpu.remove(self.now, key) {
                self.queue.push(
                    t,
                    Ev::ClientCpu {
                        client: ci,
                        generation,
                    },
                );
            }
        }
        let unit = TransactionId::from_raw(key);
        let site = self.clients[ci].id;
        self.sink.emit(self.now, SiteId::Client(site), || {
            siteselect_obs::Event::UnitEnd {
                txn: unit,
                committed: false,
            }
        });
        match run.kind {
            RunKind::Normal => {
                self.inflight -= 1;
                if self.measured_arrival(run.spec.arrival) {
                    self.record_outcome_at(
                        SiteId::Client(site),
                        run.spec.id,
                        TxnOutcome::Aborted(AbortReason::SiteCrash),
                    );
                }
            }
            // The origin is still waiting; model its failure detector as a
            // synthetic failed result that fires after the full backoff
            // cap (pushed straight to the event queue — a dead site puts
            // nothing on the wire).
            RunKind::Shipped { origin } => {
                self.queue.push(
                    self.now.saturating_add(self.cfg.faults.retry_backoff_cap),
                    Ev::Deliver {
                        to: SiteDest::Client(origin),
                        msgs: vec![Msg::TxnShipResult {
                            txn: run.spec.id,
                            committed: false,
                            deadline: run.spec.deadline,
                            arrival: run.spec.arrival,
                            sent_at: self.now,
                        }],
                    },
                );
            }
            RunKind::Subtask {
                parent,
                index: _,
                origin,
            } => {
                self.queue.push(
                    self.now.saturating_add(self.cfg.faults.retry_backoff_cap),
                    Ev::Deliver {
                        to: SiteDest::Client(origin),
                        msgs: vec![Msg::SubtaskResult {
                            parent,
                            ok: false,
                            sent_at: self.now,
                        }],
                    },
                );
            }
        }
    }

    /// A crashed site comes back up, cold: it accepts traffic again but
    /// remembers nothing (its caches were wiped at crash time).
    pub(crate) fn on_site_recover(&mut self, ci: usize) {
        if self.faults.up[ci] {
            return;
        }
        self.faults.up[ci] = true;
        self.metrics.faults.recoveries += 1;
        let id = self.clients[ci].id;
        self.sink.emit(self.now, SiteId::Client(id), || {
            siteselect_obs::Event::SiteRecover {
                site: SiteId::Client(id),
            }
        });
        self.fabric.set_site_up(SiteId::Client(id));
    }

    /// Retry timer for an outstanding fetch: if the fetch `sent_at` is
    /// still unanswered, retransmit the request and re-arm with doubled
    /// (capped) backoff. Stale timers — the fetch resolved, was replaced,
    /// or a newer retry round superseded this one — mismatch and do
    /// nothing.
    pub(crate) fn on_retry_fetch(
        &mut self,
        ci: usize,
        object: ObjectId,
        attempt: u32,
        sent_at: SimTime,
    ) {
        let f = self.cfg.faults;
        if !self.faults.active || !self.faults.up[ci] {
            return;
        }
        let Some(fetch) = self.clients[ci].fetches.get(&object) else {
            return; // answered (or cancelled) in time
        };
        if !fetch.sent || fetch.sent_at != sent_at || fetch.attempts != attempt {
            return; // stale timer
        }
        if attempt >= f.max_retries {
            return; // budget exhausted; the deadline sweep settles waiters
        }
        let mode = fetch.mode;
        // Re-issue on behalf of the earliest-deadline surviving waiter.
        let Some((txn, deadline)) = fetch
            .waiters
            .iter()
            .filter_map(|&k| {
                self.clients[ci]
                    .txns
                    .get(&k)
                    .map(|r| (k, r.spec.deadline))
            })
            .min_by_key(|&(k, d)| (d, k))
        else {
            return;
        };
        if let Some(fetch) = self.clients[ci].fetches.get_mut(&object) {
            fetch.attempts = attempt + 1;
        }
        self.metrics.faults.retries += 1;
        let needs_data = !self.clients[ci].cache.contains(object);
        let client = self.clients[ci].id;
        if let Some(id) = self.clients[ci].txns.get(&txn).map(|r| r.spec.id) {
            self.sink.emit(self.now, SiteId::Client(client), || {
                siteselect_obs::Event::RetrySent { txn: id }
            });
        }
        // The dead time from the (lost) send to this retransmission is a
        // retry/backoff episode, carved out of the fetch's network span.
        self.emit_span(
            SiteId::Client(client),
            txn,
            siteselect_obs::SpanKind::Retry,
            sent_at,
            None,
        );
        self.send_to_server(
            client,
            MessageKind::ObjectRequest,
            0,
            1,
            Msg::RequestBatch {
                txn,
                client,
                wants: vec![Want {
                    object,
                    mode,
                    needs_data,
                    deadline,
                }],
                grant_all: false,
            },
        );
        let backoff = f
            .retry_backoff_base
            .mul_f64(f64::from(2u32.saturating_pow(attempt + 1)))
            .min(f.retry_backoff_cap);
        self.queue.push(
            self.now + backoff,
            Ev::RetryFetch {
                client: ci,
                object,
                attempt: attempt + 1,
                sent_at,
            },
        );
    }

    /// Drops transactions whose deadline passed while they were not yet
    /// executing ("tasks that have missed their deadlines are not processed
    /// at all", §2).
    pub(crate) fn sweep_expired_txns(&mut self) {
        for ci in 0..self.clients.len() {
            let mut expired: Vec<TKey> = self.clients[ci]
                .txns
                .iter()
                .filter(|(_, r)| r.spec.is_expired(self.now))
                .map(|(&k, _)| k)
                .collect();
            // HashMap order is process-random and the abort cascade is
            // order-sensitive; sort for cross-invocation reproducibility.
            expired.sort_unstable();
            for key in expired {
                self.abort_txn(ci, key, AbortReason::Expired);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn loc(
        o: u32,
        holders: &[(u16, LockMode)],
    ) -> (ObjectId, Vec<(ClientId, LockMode)>) {
        (
            ObjectId(o),
            holders.iter().map(|&(c, m)| (ClientId(c), m)).collect(),
        )
    }

    #[test]
    fn h2_prefers_the_site_holding_the_conflicting_locks() {
        let accesses = vec![AccessSpec::write(ObjectId(1)), AccessSpec::write(ObjectId(2))];
        let locations = vec![
            loc(1, &[(5, LockMode::Exclusive)]),
            loc(2, &[(5, LockMode::Exclusive)]),
        ];
        let best = ClientServerSim::h2_choose(ClientId(0), &accesses, &locations, &[]);
        assert_eq!(best, ClientId(5));
    }

    #[test]
    fn h2_stays_home_without_strict_improvement() {
        let accesses = vec![AccessSpec::read(ObjectId(1))];
        // A shared lock elsewhere does not conflict with a read.
        let locations = vec![loc(1, &[(5, LockMode::Shared)])];
        let best = ClientServerSim::h2_choose(ClientId(0), &accesses, &locations, &[]);
        assert_eq!(best, ClientId(0));
    }

    #[test]
    fn h2_counts_conflicts_per_site() {
        let accesses = vec![AccessSpec::write(ObjectId(1)), AccessSpec::write(ObjectId(2))];
        // Client 5 holds obj1 EL; client 6 holds obj2 EL. Either site still
        // waits for one conflicting lock; origin waits for two. Tie between
        // 5 and 6 broken by id.
        let locations = vec![
            loc(1, &[(5, LockMode::Exclusive)]),
            loc(2, &[(6, LockMode::Exclusive)]),
        ];
        let best = ClientServerSim::h2_choose(ClientId(0), &accesses, &locations, &[]);
        assert_eq!(best, ClientId(5));
    }

    #[test]
    fn h2_breaks_ties_by_load() {
        let accesses = vec![AccessSpec::write(ObjectId(1)), AccessSpec::write(ObjectId(2))];
        let locations = vec![
            loc(1, &[(5, LockMode::Exclusive)]),
            loc(2, &[(6, LockMode::Exclusive)]),
        ];
        let loads = vec![(ClientId(5), 10, 1.0), (ClientId(6), 1, 1.0)];
        let best = ClientServerSim::h2_choose(ClientId(0), &accesses, &locations, &loads);
        assert_eq!(best, ClientId(6));
    }
}
