//! The three real-time database system models of *Kanitkar & Delis, "Site
//! Selection for Real-Time Client Request Handling" (ICDCS 1999)* and the
//! paper's load-sharing algorithm, as deterministic discrete-event
//! simulations.
//!
//! * [`CentralizedSim`] — CE-RTDBS: all processing at the server.
//! * [`ClientServerSim`] — CS-RTDBS and LS-CS-RTDBS: object-shipping
//!   client-server with callback locking; the LS variant adds transaction
//!   shipping (heuristics H1/H2), transaction decomposition, deadline-
//!   ordered object request scheduling and grouped locks / forward lists.
//! * [`run_experiment`] — one-call driver returning [`RunMetrics`].
//! * [`experiments`] — parameter sweeps that regenerate every figure and
//!   table of the paper's evaluation.
//!
//! # Example
//!
//! ```
//! use siteselect_core::run_experiment;
//! use siteselect_types::{ExperimentConfig, SimDuration, SystemKind};
//!
//! let mut cfg = ExperimentConfig::paper(SystemKind::ClientServer, 4, 0.05);
//! cfg.runtime.duration = SimDuration::from_secs(120); // keep the doctest fast
//! cfg.runtime.warmup = SimDuration::from_secs(20);
//! let metrics = run_experiment(&cfg).unwrap();
//! assert!(metrics.measured > 0);
//! assert!(metrics.is_consistent());
//! ```

pub mod centralized;
pub mod clientserver;
pub mod cpu;
pub mod driver;
pub mod experiments;
pub mod metrics;
pub mod report;

pub use centralized::CentralizedSim;
pub use clientserver::ClientServerSim;
pub use driver::{run_experiment, run_experiment_traced};
pub use metrics::{
    CacheReport, FailureBreakdown, FaultReport, LoadSharingReport, ResponseReport, RunMetrics,
};
