//! The centralized real-time database (CE-RTDBS, §2).
//!
//! Clients are terminals: they forward transactions to the server and
//! receive results. The server schedules transactions Earliest-Deadline-
//! First, executes up to `max_concurrent_txns` of them concurrently on a
//! processor-sharing CPU (the prototype's thread-per-transaction design),
//! locks objects with strict 2PL under wait-for-graph deadlock avoidance,
//! and reads missed pages through its 5,000-object buffer. Transactions
//! whose deadline has passed are dropped, not processed.
//!
//! Every update transaction writes through an ARIES-lite [`DurableStore`]
//! (write-ahead log, force-at-commit, fuzzy checkpoints). Under the
//! crash-restart fault mode (`faults.mean_time_to_server_crash`) the server
//! loses its volatile state mid-run, replays its log — charged to the seeded
//! disk model, so slow-disk episodes stretch recovery — and rejoins with
//! in-flight transactions aborted as losers. With faults off the durable
//! layer charges no simulated time and draws no randomness, so fault-free
//! runs are byte-identical to a build without it.

use std::collections::HashMap;

use siteselect_net::{Delivery, Fabric, MessageKind};
use siteselect_obs::{Event, EventSink, SpanKind};
use siteselect_sim::{EventQueue, Prng};
use siteselect_storage::ClientCache;
use siteselect_storage::DiskModel;
use siteselect_storage::{DurableStore, RecoveryOutcome};
use siteselect_locks::{Acquire, LockTable, QueueDiscipline, WaitForGraph};
use siteselect_types::{
    AbortReason, ExperimentConfig, InlineVec, LockMode, ObjectId, SimDuration, SimTime, SiteId,
    TransactionId, TransactionSpec, TxnOutcome,
};
use siteselect_workload::Trace;

use crate::cpu::{PsCpu, Tick};
use crate::metrics::RunMetrics;

type Key = u64;

#[derive(Debug)]
enum Ev {
    /// A transaction is initiated at its client terminal.
    Arrive(usize),
    /// Transaction submission arrives at the server.
    Submit(usize),
    /// Buffer/disk I/O for a transaction finished.
    IoDone(Key),
    /// Processor-sharing completion tick.
    CpuTick(u64),
    /// Commit result reaches the originating client; carries what is needed
    /// to score the transaction at delivery time.
    Result {
        txn: TransactionId,
        measured: bool,
        deadline: SimTime,
        arrival: SimTime,
        /// When the server sent the result (start of the commit-ack hop).
        sent_at: SimTime,
    },
    /// Periodic pruning of expired lock waiters.
    Sweep,
    /// Fault injection: the server crashes (from the pre-generated
    /// schedule), losing all volatile state.
    ServerCrash,
    /// The server finished replaying its log and rejoins.
    ServerRecover,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Locks,
    Io,
    Cpu,
    Done,
}

/// Per-transaction server state. The spec itself stays in the simulator's
/// arena ([`CentralizedSim::specs`]) and is referenced by index, and the
/// blocked list is inline (the paper's transactions touch at most 15
/// objects), so creating and retiring one of these never heap-allocates.
#[derive(Debug)]
struct CeTxn {
    /// Index of this transaction's spec in [`CentralizedSim::specs`].
    spec: u32,
    phase: Phase,
    blocked: InlineVec<ObjectId, 16>,
    wait_started: SimTime,
    blocked_total: SimDuration,
    /// Trace-only: the first conflicting holder seen at submit, reported as
    /// the blocker on the lock-wait span.
    blocked_on: Option<TransactionId>,
    /// When the buffer/disk read batch was issued (start of the disk span).
    io_started: SimTime,
}

/// Discrete-event simulator of the centralized system.
pub struct CentralizedSim {
    cfg: ExperimentConfig,
    now: SimTime,
    queue: EventQueue<Ev>,
    fabric: Fabric,
    cpu: PsCpu<Key>,
    locks: LockTable<Key>,
    wfg: WaitForGraph<Key>,
    buffer: ClientCache,
    disk: DiskModel,
    /// WAL-guarded durable page store; update transactions write through it.
    store: DurableStore,
    /// The generated trace, arena-style: transactions reference their spec
    /// by index instead of carrying a clone through the pipeline.
    specs: Vec<TransactionSpec>,
    txns: HashMap<Key, CeTxn>,
    /// Recycled buffer for the lock-grant path's still-blocked walk.
    scratch_objs: Vec<ObjectId>,
    inflight: usize,
    warmup_end: SimTime,
    metrics: RunMetrics,
    /// True if `cfg.faults.injects_faults()`; every fault code path is gated
    /// on it, so a default run draws no fault randomness.
    faults_active: bool,
    /// False while the server is crashed and replaying its log.
    server_up: bool,
    /// In-flight submissions refused because the server was down when they
    /// arrived (fabric-level drops are counted by the fabric itself).
    gate_dropped: u64,
    /// Dedicated stream for crash-time draws: the torn log tail cut and the
    /// reboot lag. Never advanced with faults off.
    crash_prng: Prng,
    /// Replay outcome of the crash being recovered from, reported in the
    /// `RecoveryDone` event when the server rejoins.
    pending_recovery: Option<RecoveryOutcome>,
    /// When the crash being recovered from happened (start of the replay
    /// span stamped at rejoin).
    crashed_at: Option<SimTime>,
    sink: EventSink,
}

impl CentralizedSim {
    /// Builds the simulator for `cfg` (the trace is generated internally
    /// from the config's workload and seed).
    #[must_use]
    pub fn new(cfg: ExperimentConfig) -> Self {
        let warmup_end = SimTime::ZERO + cfg.runtime.warmup;
        let metrics = RunMetrics::new(
            cfg.system,
            cfg.clients,
            cfg.workload.update_fraction,
            cfg.runtime.seed,
        );
        let faults_active = cfg.faults.injects_faults();
        let mut fabric = Fabric::new(cfg.network, cfg.database.object_size_bytes);
        if faults_active {
            // A dedicated PRNG stream for the fabric: loss and jitter draws
            // never perturb the workload's random sequence.
            let prng = Prng::seed_from_u64(cfg.runtime.seed).derive(0xFA_B1);
            fabric.enable_faults(cfg.faults, prng);
        }
        CentralizedSim {
            fabric,
            cpu: PsCpu::new(cfg.cpu.server_speed, cfg.server.max_concurrent_txns),
            locks: LockTable::new(QueueDiscipline::Deadline),
            wfg: WaitForGraph::new(),
            buffer: ClientCache::new(cfg.server.buffer_objects, 0),
            disk: DiskModel::new(cfg.server.disk.page_service_time),
            store: DurableStore::new(cfg.database.num_objects, cfg.server.buffer_objects.max(1)),
            specs: Vec::new(),
            txns: HashMap::new(),
            scratch_objs: Vec::new(),
            inflight: 0,
            now: SimTime::ZERO,
            queue: EventQueue::new(),
            warmup_end,
            metrics,
            faults_active,
            server_up: true,
            gate_dropped: 0,
            crash_prng: Prng::seed_from_u64(cfg.runtime.seed).derive(0xFA_E5),
            pending_recovery: None,
            crashed_at: None,
            sink: EventSink::disabled(),
            cfg,
        }
    }

    /// Routes structured events from this engine (and its fabric) into
    /// `sink`. Tracing is off by default; see [`siteselect_obs`].
    pub fn attach_sink(&mut self, sink: EventSink) {
        self.fabric.set_sink(sink.clone());
        self.sink = sink;
    }

    /// Runs the experiment to completion and returns its metrics.
    #[must_use]
    pub fn run(mut self) -> RunMetrics {
        self.prepare();
        while self.step() {}
        self.finalize()
    }

    /// Generates the trace and seeds the event queue. Split out of
    /// [`run`](Self::run) so harnesses can pump events one at a time (the
    /// steady-state allocation test snapshots the allocator between steps).
    pub fn prepare(&mut self) {
        let trace = Trace::generate(
            &self.cfg.workload,
            self.cfg.cpu.txn_cpu_fraction,
            self.cfg.database.num_objects,
            self.cfg.clients,
            self.cfg.runtime.duration,
            self.cfg.runtime.seed,
        );
        self.specs = trace.into_transactions();
        // Arrivals fire at the client terminals; the submission message is
        // sent at arrival time so fabric bookings stay chronological.
        for (i, spec) in self.specs.iter().enumerate() {
            self.queue.push(spec.arrival, Ev::Arrive(i));
        }
        if self.faults_active {
            self.schedule_faults();
        }
        self.queue
            .push(self.warmup_end.max(SimTime::from_secs(1)), Ev::Sweep);
        // The buffer and lock table see every object id sooner or later;
        // pre-sizing their slabs keeps first-touch insertions off the
        // allocator mid-run.
        self.buffer.reserve_ids(self.cfg.database.num_objects as usize);
        self.locks.reserve_objects(self.cfg.database.num_objects as usize);
    }

    /// Processes the next event; returns `false` once the queue is drained.
    pub fn step(&mut self) -> bool {
        let Some((t, ev)) = self.queue.pop() else {
            return false;
        };
        debug_assert!(t >= self.now, "time went backwards");
        self.now = t;
        self.handle(ev);
        true
    }

    /// Current simulated time.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Closes out the run and returns its metrics.
    #[must_use]
    pub fn finalize(mut self) -> RunMetrics {
        let span = self
            .now
            .duration_since(SimTime::ZERO)
            .as_secs_f64()
            .max(1e-9);
        self.metrics.server_cpu_utilization =
            (self.cpu.busy_time().as_secs_f64() / span).min(1.0);
        self.metrics.messages = self.fabric.stats().clone();
        self.metrics.faults.messages_dropped = self.fabric.dropped_messages() + self.gate_dropped;
        self.metrics.faults.messages_delayed = self.fabric.delayed_messages();
        self.metrics.faults.slow_disk_ios = self.disk.slow_ios();
        self.metrics
    }

    /// Pre-generates the fault schedule (server crashes and slow-disk
    /// episodes) from seed-derived PRNG streams, so two runs with the same
    /// seed inject identical faults regardless of workload interleaving.
    /// Recovery times are *not* pre-generated: how long a restart takes
    /// depends on the log replayed, so it is computed at crash time.
    fn schedule_faults(&mut self) {
        let f = self.cfg.faults;
        let end = SimTime::ZERO + self.cfg.runtime.duration;
        if !f.mean_time_to_server_crash.is_zero() {
            let mut prng = Prng::seed_from_u64(self.cfg.runtime.seed).derive(0xFA_E4);
            let mut t = SimTime::ZERO;
            loop {
                t += prng.exp_duration(f.mean_time_to_server_crash);
                if t >= end {
                    break;
                }
                self.queue.push(t, Ev::ServerCrash);
                if f.mean_recovery_time.is_zero() {
                    break; // permanent crash: the server never rejoins
                }
            }
        }
        if !f.mean_time_to_slow_disk.is_zero() {
            let mut prng = Prng::seed_from_u64(self.cfg.runtime.seed).derive(0xFA_D3);
            let mut episodes = Vec::new();
            let mut t = SimTime::ZERO;
            loop {
                t += prng.exp_duration(f.mean_time_to_slow_disk);
                if t >= end {
                    break;
                }
                let until = t + f.slow_disk_duration;
                episodes.push((t, until));
                t = until;
            }
            self.disk.set_slow_episodes(episodes, f.slow_disk_factor);
        }
    }

    fn measured_at(&self, i: usize) -> bool {
        self.specs[i].arrival >= self.warmup_end
    }

    fn handle(&mut self, ev: Ev) {
        match ev {
            Ev::Arrive(i) => {
                let spec = &self.specs[i];
                let (txn, deadline, origin) = (spec.id, spec.deadline, spec.origin);
                let accesses = spec.accesses.len() as u32;
                self.sink
                    .emit(self.now, SiteId::Client(origin), || Event::TxnSubmit {
                        txn,
                        deadline,
                        accesses,
                    });
                if self.faults_active {
                    // Fault-aware path: the submission may be lost to random
                    // loss or refused by a crashed server.
                    match self.fabric.try_send(
                        self.now,
                        SiteId::Client(origin),
                        SiteId::Server,
                        MessageKind::TxnSubmit,
                        0,
                    ) {
                        Delivery::Delivered(t) => self.queue.push(t, Ev::Submit(i)),
                        Delivery::Dropped => self.record_crash_loss(i),
                    }
                } else {
                    let delivery = self.fabric.send(
                        self.now,
                        SiteId::Client(origin),
                        SiteId::Server,
                        MessageKind::TxnSubmit,
                        0,
                    );
                    self.queue.push(delivery, Ev::Submit(i));
                }
            }
            Ev::Submit(i) => self.on_submit(i),
            Ev::IoDone(key) => self.on_io_done(key),
            Ev::CpuTick(generation) => self.on_cpu_tick(generation),
            Ev::Result {
                txn,
                measured,
                deadline,
                arrival,
                sent_at,
            } => self.on_result(txn, measured, deadline, arrival, sent_at),
            Ev::Sweep => self.on_sweep(),
            Ev::ServerCrash => self.on_server_crash(),
            Ev::ServerRecover => self.on_server_recover(),
        }
    }

    /// Emits a causal span `[start, now)` for `txn`, eliding zero-length
    /// spans (nothing to blame). Free when tracing is off.
    fn emit_span(
        &self,
        site: SiteId,
        txn: TransactionId,
        kind: SpanKind,
        start: SimTime,
        blocker: Option<TransactionId>,
    ) {
        if start >= self.now {
            return;
        }
        self.sink.emit(self.now, site, || Event::Span {
            txn: Some(txn),
            kind,
            start,
            blocker,
        });
    }

    /// Closes out the span of the phase `txn` dies in, so aborted
    /// transactions still account for the wait that killed them.
    fn emit_phase_span(&self, txn: &CeTxn) {
        let id = self.specs[txn.spec as usize].id;
        match txn.phase {
            Phase::Locks => self.emit_span(
                SiteId::Server,
                id,
                SpanKind::LockWait,
                txn.wait_started,
                txn.blocked_on,
            ),
            Phase::Io => {
                self.emit_span(SiteId::Server, id, SpanKind::Disk, txn.io_started, None);
            }
            Phase::Cpu | Phase::Done => {}
        }
    }

    /// Settles a transaction whose submission (or only record of it) was
    /// lost to a crash or message loss: the origin's timeout scores it.
    fn record_crash_loss(&mut self, i: usize) {
        if self.measured_at(i) {
            let (id, origin) = (self.specs[i].id, self.specs[i].origin);
            self.sink
                .emit(self.now, SiteId::Client(origin), || Event::Outcome {
                    txn: id,
                    outcome: TxnOutcome::Aborted(AbortReason::SiteCrash),
                });
            self.metrics
                .record_outcome(TxnOutcome::Aborted(AbortReason::SiteCrash));
        }
    }

    fn on_submit(&mut self, i: usize) {
        let (id, arrival, deadline) = {
            let spec = &self.specs[i];
            (spec.id, spec.arrival, spec.deadline)
        };
        // The submission hop: sent at arrival from the client terminal,
        // delivered (or refused) now.
        self.emit_span(SiteId::Server, id, SpanKind::Net, arrival, None);
        if !self.server_up {
            // In flight when the server went down: refused at the door.
            self.gate_dropped += 1;
            self.record_crash_loss(i);
            return;
        }
        let key = id.as_u64();
        if self.specs[i].is_expired(self.now) {
            self.finish(i, TxnOutcome::Aborted(AbortReason::Expired));
            return;
        }
        self.inflight += 1;
        let mut txn = CeTxn {
            spec: i as u32,
            phase: Phase::Locks,
            blocked: InlineVec::new(),
            wait_started: self.now,
            blocked_total: SimDuration::ZERO,
            blocked_on: None,
            io_started: self.now,
        };
        // Acquire all locks up front (the access set is known, §5.1). The
        // spec borrow coexists with the lock/WFG/sink calls because those
        // only touch their own fields.
        let mut deadlocked = false;
        for access in &self.specs[i].accesses {
            let mode = access.mode();
            let conflicts = self.locks.conflicting_holders(access.object, key, mode);
            if self.wfg.would_deadlock(key, &conflicts) {
                deadlocked = true;
                break;
            }
            match self.locks.request(access.object, key, mode, deadline) {
                Acquire::Granted | Acquire::AlreadyHeld | Acquire::Upgraded => {
                    let (object, exclusive) = (access.object, mode == LockMode::Exclusive);
                    self.sink.emit(self.now, SiteId::Server, || Event::LockHeld {
                        txn: id,
                        object,
                        exclusive,
                    });
                }
                Acquire::Blocked { conflicts } => {
                    let object = access.object;
                    self.sink.emit(self.now, SiteId::Server, || Event::LockWait {
                        txn: id,
                        object,
                    });
                    if txn.blocked_on.is_none() {
                        txn.blocked_on = conflicts.first().copied().map(TransactionId::from_raw);
                    }
                    txn.blocked.push(access.object);
                    self.wfg.add_waits(key, conflicts);
                }
            }
        }
        if deadlocked {
            self.abort(key, txn, AbortReason::Deadlock);
            return;
        }
        let ready = txn.blocked.is_empty();
        self.txns.insert(key, txn);
        if ready {
            self.start_io(key);
        }
    }

    /// Removes every trace of an un-inserted transaction.
    fn abort(&mut self, key: Key, txn: CeTxn, reason: AbortReason) {
        let i = txn.spec as usize;
        let id = self.specs[i].id;
        self.emit_phase_span(&txn);
        self.sink
            .emit(self.now, SiteId::Server, || Event::Abort { txn: id, reason });
        self.sink.emit(self.now, SiteId::Server, || Event::UnitEnd {
            txn: id,
            committed: false,
        });
        if self.store.has_updates(key) {
            // Roll the logged page writes back in place (compensation
            // records keep replay honest if a crash follows).
            self.store.abort(key);
            self.sink
                .emit(self.now, SiteId::Server, || Event::WalAbort { txn: id });
        }
        self.release_locks(key);
        self.wfg.remove_node(key);
        self.inflight -= 1;
        self.send_result(i, false);
        if self.measured_at(i) {
            self.sink.emit(self.now, SiteId::Server, || Event::Outcome {
                txn: id,
                outcome: TxnOutcome::Aborted(reason),
            });
            self.metrics.record_outcome(TxnOutcome::Aborted(reason));
            self.metrics.blocking.push_duration(txn.blocked_total);
        }
    }

    fn abort_inflight(&mut self, key: Key, reason: AbortReason) {
        if let Some(txn) = self.txns.remove(&key) {
            if txn.phase == Phase::Cpu {
                if let Some((t, g)) = self.cpu.remove(self.now, key) {
                    self.queue.push(t, Ev::CpuTick(g));
                }
            }
            self.abort(key, txn, reason);
        }
    }

    fn release_locks(&mut self, key: Key) {
        let grants = self.locks.release_all(key);
        self.wfg.remove_node(key);
        for (object, waiters) in grants {
            for w in waiters {
                self.on_lock_granted(object, w.owner);
            }
        }
    }

    fn on_lock_granted(&mut self, object: ObjectId, key: Key) {
        let Some(txn) = self.txns.get_mut(&key) else {
            // Granted to a transaction that already aborted: free it again,
            // cascading to any waiters unblocked by the release.
            let grants = self.locks.release(object, key);
            for w in grants {
                self.on_lock_granted(object, w.owner);
            }
            return;
        };
        txn.blocked.retain(|&o| o != object);
        let i = txn.spec as usize;
        // Copy the still-blocked set into a recycled scratch buffer: the
        // WFG refresh below needs `&mut self` calls the txn borrow would
        // otherwise outlaw, and a fresh Vec here would allocate per grant.
        let mut still = std::mem::take(&mut self.scratch_objs);
        still.clear();
        still.extend(txn.blocked.iter().copied());
        let id = self.specs[i].id;
        let exclusive = self.specs[i].required_mode(object) == Some(LockMode::Exclusive);
        self.sink.emit(self.now, SiteId::Server, || Event::LockHeld {
            txn: id,
            object,
            exclusive,
        });
        // Refresh this waiter's wait-for edges against current holders.
        self.wfg.clear_waits(key);
        if self.specs[i].is_expired(self.now) {
            still.clear();
            self.scratch_objs = still;
            self.abort_inflight(key, AbortReason::Expired);
            return;
        }
        for &o in &still {
            let mode = self.specs[i].required_mode(o).unwrap_or(LockMode::Shared);
            let conflicts = self.locks.conflicting_holders(o, key, mode);
            self.wfg.add_waits(key, conflicts);
        }
        still.clear();
        self.scratch_objs = still;
        let ready = self
            .txns
            .get(&key)
            .is_some_and(|t| t.blocked.is_empty() && t.phase == Phase::Locks);
        if ready {
            self.start_io(key);
        }
    }

    fn start_io(&mut self, key: Key) {
        let Some(txn) = self.txns.get_mut(&key) else {
            return;
        };
        txn.blocked_total += self.now.duration_since(txn.wait_started);
        let (i, wait_started, blocked_on) = (txn.spec as usize, txn.wait_started, txn.blocked_on);
        txn.phase = Phase::Io;
        txn.io_started = self.now;
        let id = self.specs[i].id;
        let measured = self.specs[i].arrival >= self.warmup_end;
        self.emit_span(SiteId::Server, id, SpanKind::LockWait, wait_started, blocked_on);
        let mut misses = 0u32;
        for o in self.specs[i].objects() {
            let hit = self.buffer.probe(o).is_some();
            if !hit {
                misses += 1;
                self.buffer.insert(o);
            }
            if measured {
                self.metrics.server_buffer.record(hit);
            }
        }
        let done = if misses == 0 {
            self.now
        } else {
            self.disk.schedule_batch(self.now, misses)
        };
        self.queue.push(done, Ev::IoDone(key));
    }

    fn on_io_done(&mut self, key: Key) {
        let (i, io_started) = {
            let Some(txn) = self.txns.get_mut(&key) else {
                return;
            };
            (txn.spec as usize, txn.io_started)
        };
        if self.specs[i].is_expired(self.now) {
            self.abort_inflight(key, AbortReason::Expired);
            return;
        }
        self.txns.get_mut(&key).expect("present above").phase = Phase::Cpu;
        let (id, deadline, demand) = {
            let spec = &self.specs[i];
            (spec.id, spec.deadline, spec.cpu_demand)
        };
        self.emit_span(SiteId::Server, id, SpanKind::Disk, io_started, None);
        // The pages are in memory and the locks are held: log the update
        // transaction's page writes now, so a crash during its CPU phase
        // leaves genuine losers for recovery to roll back.
        for a in &self.specs[i].accesses {
            if a.mode() != LockMode::Exclusive {
                continue;
            }
            let object = a.object;
            let stamp = self.store.write(key, object);
            self.sink.emit(self.now, SiteId::Server, || Event::WalWrite {
                txn: id,
                page: object,
                stamp,
            });
        }
        self.sink
            .emit(self.now, SiteId::Server, || Event::ExecStart { txn: id });
        if let Some((t, g)) = self.cpu.submit(self.now, key, deadline, demand) {
            self.queue.push(t, Ev::CpuTick(g));
        }
    }

    fn on_cpu_tick(&mut self, generation: u64) {
        match self.cpu.on_completion(self.now, generation) {
            Tick::Stale => {}
            Tick::Done { finished, next } => {
                if let Some((t, g)) = next {
                    self.queue.push(t, Ev::CpuTick(g));
                }
                for &key in finished.iter() {
                    self.commit(key);
                }
            }
        }
    }

    fn commit(&mut self, key: Key) {
        let Some(mut txn) = self.txns.remove(&key) else {
            return;
        };
        txn.phase = Phase::Done;
        let i = txn.spec as usize;
        let id = self.specs[i].id;
        let latency_us = self.now.duration_since(self.specs[i].arrival).as_micros();
        let slack_us = self.specs[i].deadline.as_micros() as i64 - self.now.as_micros() as i64;
        self.sink.emit(self.now, SiteId::Server, || Event::Commit {
            txn: id,
            latency_us,
            slack_us,
        });
        self.sink.emit(self.now, SiteId::Server, || Event::UnitEnd {
            txn: id,
            committed: true,
        });
        if self.store.has_updates(key) {
            // Force the commit record before acknowledging (WAL rule).
            let checkpoints = self.store.checkpoints();
            self.store.commit(key);
            self.sink
                .emit(self.now, SiteId::Server, || Event::WalCommit { txn: id });
            if self.store.checkpoints() > checkpoints {
                let active = self.store.active_txns() as u32;
                let log_records = self.store.log_records();
                self.sink.emit(self.now, SiteId::Server, || Event::WalCheckpoint {
                    active,
                    log_records,
                });
            }
        }
        self.release_locks(key);
        self.inflight -= 1;
        self.send_result(i, true);
        if self.measured_at(i) {
            self.metrics.blocking.push_duration(txn.blocked_total);
        }
    }

    fn send_result(&mut self, i: usize, committed: bool) {
        let (id, origin, deadline, arrival) = {
            let spec = &self.specs[i];
            (spec.id, spec.origin, spec.deadline, spec.arrival)
        };
        let delivery = if self.faults_active {
            self.fabric.try_send(
                self.now,
                SiteId::Server,
                SiteId::Client(origin),
                MessageKind::TxnResult,
                0,
            )
        } else {
            Delivery::Delivered(self.fabric.send(
                self.now,
                SiteId::Server,
                SiteId::Client(origin),
                MessageKind::TxnResult,
                0,
            ))
        };
        if committed {
            match delivery {
                Delivery::Delivered(t) => self.queue.push(
                    t,
                    Ev::Result {
                        txn: id,
                        measured: arrival >= self.warmup_end,
                        deadline,
                        arrival,
                        sent_at: self.now,
                    },
                ),
                // The commit is durable but the client never learns of it:
                // the origin's timeout scores the transaction as lost.
                Delivery::Dropped => self.record_crash_loss(i),
            }
        }
    }

    fn on_result(
        &mut self,
        txn: TransactionId,
        measured: bool,
        deadline: SimTime,
        arrival: SimTime,
        sent_at: SimTime,
    ) {
        // Only commits route through here; aborts are recorded at abort
        // time. The deadline test uses the instant the user-facing client
        // learns the result.
        self.emit_span(SiteId::Client(txn.origin()), txn, SpanKind::Commit, sent_at, None);
        if measured {
            let outcome = if self.now <= deadline {
                TxnOutcome::Committed
            } else {
                TxnOutcome::CommittedLate
            };
            self.sink
                .emit(self.now, SiteId::Client(txn.origin()), || Event::Outcome {
                    txn,
                    outcome,
                });
            self.metrics.record_outcome(outcome);
            self.metrics
                .latency
                .push_duration(self.now.duration_since(arrival));
        }
    }

    fn finish(&mut self, i: usize, outcome: TxnOutcome) {
        self.send_result(i, false);
        if self.measured_at(i) {
            let id = self.specs[i].id;
            self.sink
                .emit(self.now, SiteId::Server, || Event::Outcome { txn: id, outcome });
            self.metrics.record_outcome(outcome);
        }
    }

    fn on_sweep(&mut self) {
        // Drop transactions that missed their deadline, including ones on
        // the CPU ("tasks that have missed their deadlines are not
        // processed at all", §2) — this is what keeps the overloaded
        // centralized server doing useful work for feasible transactions.
        let mut dead: Vec<Key> = self
            .txns
            .iter()
            .filter(|(_, t)| self.specs[t.spec as usize].is_expired(self.now))
            .map(|(&k, _)| k)
            .collect();
        // HashMap iteration order is process-random; the abort cascade
        // (lock grants, CPU reschedules) is order-sensitive, so sort to
        // keep runs reproducible across invocations.
        dead.sort_unstable();
        for key in dead {
            self.abort_inflight(key, AbortReason::Expired);
        }
        let (expired, grants) = self.locks.cancel_expired(self.now);
        for (_obj, waiter) in expired {
            self.abort_inflight(waiter.owner, AbortReason::Expired);
        }
        for (object, waiters) in grants {
            for w in waiters {
                self.on_lock_granted(object, w.owner);
            }
        }
        if self.inflight > 0 || !self.queue.is_empty() {
            self.queue
                .push(self.now + SimDuration::from_secs(1), Ev::Sweep);
        }
    }

    /// The server crashes: volatile state (buffer pool, lock table, WFG and
    /// the staged log tail past a random cut) is lost and every in-flight
    /// transaction becomes a recovery loser. The log is replayed
    /// immediately in host terms, but its I/O cost is charged to the seeded
    /// disk model, so the rejoin time reflects the log length and any
    /// slow-disk episode in force.
    fn on_server_crash(&mut self) {
        if !self.server_up {
            return; // scheduled crash landed while already down
        }
        self.server_up = false;
        self.metrics.faults.crashes += 1;
        self.sink.emit(self.now, SiteId::Server, || Event::SiteCrash {
            site: SiteId::Server,
        });
        self.fabric.set_site_down(SiteId::Server);
        let mut keys: Vec<Key> = self
            .txns
            .keys()
            .copied()
            .collect();
        // HashMap iteration order is process-random; sort so the abort
        // cascade stays reproducible across invocations.
        keys.sort_unstable();
        for key in keys {
            let Some(txn) = self.txns.remove(&key) else {
                continue;
            };
            if txn.phase == Phase::Cpu {
                if let Some((t, g)) = self.cpu.remove(self.now, key) {
                    self.queue.push(t, Ev::CpuTick(g));
                }
            }
            let i = txn.spec as usize;
            let id = self.specs[i].id;
            self.emit_phase_span(&txn);
            self.sink.emit(self.now, SiteId::Server, || Event::Abort {
                txn: id,
                reason: AbortReason::SiteCrash,
            });
            self.sink.emit(self.now, SiteId::Server, || Event::UnitEnd {
                txn: id,
                committed: false,
            });
            // No `store.abort`: logged-but-uncommitted writes are genuine
            // losers for replay to roll back. No result message either —
            // the server is down; the origin's timeout scores the loss.
            self.inflight -= 1;
            if self.measured_at(i) {
                self.sink.emit(self.now, SiteId::Server, || Event::Outcome {
                    txn: id,
                    outcome: TxnOutcome::Aborted(AbortReason::SiteCrash),
                });
                self.metrics
                    .record_outcome(TxnOutcome::Aborted(AbortReason::SiteCrash));
                self.metrics.blocking.push_duration(txn.blocked_total);
            }
        }
        self.locks = LockTable::new(QueueDiscipline::Deadline);
        self.locks.reserve_objects(self.cfg.database.num_objects as usize);
        self.wfg = WaitForGraph::new();
        self.buffer = ClientCache::new(self.cfg.server.buffer_objects, 0);
        self.crashed_at = Some(self.now);
        if self.cfg.faults.mean_recovery_time.is_zero() {
            return; // permanent crash: the site stays dark
        }
        // Crash the durable store (a random cut of the staged tail may
        // leave a torn final record) and replay its surviving log.
        let frames = self.cfg.server.buffer_objects.max(1);
        let keep = self.crash_prng.below_usize(self.store.staged_len() + 1);
        let dead = std::mem::replace(&mut self.store, DurableStore::new(1, 1));
        let (log, disk) = dead.crash(keep);
        let (recovered, outcome) = DurableStore::restart(&log, disk, frames);
        self.store = recovered;
        // Reboot lag, then the replay's I/O at the (possibly slow) disk.
        let back = self.now + self.crash_prng.exp_duration(self.cfg.faults.mean_recovery_time);
        let ios = u32::try_from(outcome.replay_ios()).unwrap_or(u32::MAX);
        let ready = if ios == 0 {
            back
        } else {
            self.disk.schedule_batch(back, ios)
        };
        self.pending_recovery = Some(outcome);
        self.queue.push(ready, Ev::ServerRecover);
    }

    /// Replay finished: the server rejoins with only durable state.
    fn on_server_recover(&mut self) {
        self.server_up = true;
        self.fabric.set_site_up(SiteId::Server);
        self.metrics.faults.recoveries += 1;
        let outcome = self.pending_recovery.take().unwrap_or_default();
        let (redo, undone) = (outcome.redo_applied, outcome.undone);
        let (losers, replay_ios) = (outcome.losers.len() as u32, outcome.replay_ios());
        self.sink.emit(self.now, SiteId::Server, || Event::RecoveryDone {
            site: SiteId::Server,
            redo,
            undone,
            losers,
            replay_ios,
        });
        // Post-replay durable state, in ascending page order: the recovery
        // oracle checks these stamps against the committed history.
        if self.sink.is_enabled() {
            for (page, stamp) in self.store.stamps() {
                self.sink
                    .emit(self.now, SiteId::Server, || Event::WalState { page, stamp });
            }
        }
        // Site-scoped replay span (`txn: None`): the outage window is
        // charged to every transaction whose life overlaps it.
        if let Some(start) = self.crashed_at.take() {
            if start < self.now {
                self.sink.emit(self.now, SiteId::Server, || Event::Span {
                    txn: None,
                    kind: SpanKind::Replay,
                    start,
                    blocker: None,
                });
            }
        }
        self.sink.emit(self.now, SiteId::Server, || Event::SiteRecover {
            site: SiteId::Server,
        });
    }
}

impl std::fmt::Debug for CentralizedSim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CentralizedSim")
            .field("now", &self.now)
            .field("inflight", &self.inflight)
            .field("events", &self.queue.len())
            .finish()
    }
}
