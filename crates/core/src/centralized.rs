//! The centralized real-time database (CE-RTDBS, §2).
//!
//! Clients are terminals: they forward transactions to the server and
//! receive results. The server schedules transactions Earliest-Deadline-
//! First, executes up to `max_concurrent_txns` of them concurrently on a
//! processor-sharing CPU (the prototype's thread-per-transaction design),
//! locks objects with strict 2PL under wait-for-graph deadlock avoidance,
//! and reads missed pages through its 5,000-object buffer. Transactions
//! whose deadline has passed are dropped, not processed.

use std::collections::HashMap;

use siteselect_net::{Fabric, MessageKind};
use siteselect_obs::{Event, EventSink};
use siteselect_sim::EventQueue;
use siteselect_storage::ClientCache;
use siteselect_storage::DiskModel;
use siteselect_locks::{Acquire, LockTable, QueueDiscipline, WaitForGraph};
use siteselect_types::{
    AbortReason, ExperimentConfig, LockMode, ObjectId, SimDuration, SimTime, SiteId,
    TransactionId, TransactionSpec, TxnOutcome,
};
use siteselect_workload::Trace;

use crate::cpu::{PsCpu, Tick};
use crate::metrics::RunMetrics;

type Key = u64;

#[derive(Debug)]
enum Ev {
    /// A transaction is initiated at its client terminal.
    Arrive(usize),
    /// Transaction submission arrives at the server.
    Submit(usize),
    /// Buffer/disk I/O for a transaction finished.
    IoDone(Key),
    /// Processor-sharing completion tick.
    CpuTick(u64),
    /// Commit result reaches the originating client; carries what is needed
    /// to score the transaction at delivery time.
    Result {
        txn: TransactionId,
        measured: bool,
        deadline: SimTime,
        arrival: SimTime,
    },
    /// Periodic pruning of expired lock waiters.
    Sweep,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Locks,
    Io,
    Cpu,
    Done,
}

#[derive(Debug)]
struct CeTxn {
    spec: TransactionSpec,
    phase: Phase,
    blocked: Vec<ObjectId>,
    wait_started: SimTime,
    blocked_total: SimDuration,
}

/// Discrete-event simulator of the centralized system.
pub struct CentralizedSim {
    cfg: ExperimentConfig,
    now: SimTime,
    queue: EventQueue<Ev>,
    fabric: Fabric,
    cpu: PsCpu<Key>,
    locks: LockTable<Key>,
    wfg: WaitForGraph<Key>,
    buffer: ClientCache,
    disk: DiskModel,
    txns: HashMap<Key, CeTxn>,
    inflight: usize,
    warmup_end: SimTime,
    metrics: RunMetrics,
    sink: EventSink,
}

impl CentralizedSim {
    /// Builds the simulator for `cfg` (the trace is generated internally
    /// from the config's workload and seed).
    #[must_use]
    pub fn new(cfg: ExperimentConfig) -> Self {
        let warmup_end = SimTime::ZERO + cfg.runtime.warmup;
        let metrics = RunMetrics::new(
            cfg.system,
            cfg.clients,
            cfg.workload.update_fraction,
            cfg.runtime.seed,
        );
        CentralizedSim {
            fabric: Fabric::new(cfg.network, cfg.database.object_size_bytes),
            cpu: PsCpu::new(cfg.cpu.server_speed, cfg.server.max_concurrent_txns),
            locks: LockTable::new(QueueDiscipline::Deadline),
            wfg: WaitForGraph::new(),
            buffer: ClientCache::new(cfg.server.buffer_objects, 0),
            disk: DiskModel::new(cfg.server.disk.page_service_time),
            txns: HashMap::new(),
            inflight: 0,
            now: SimTime::ZERO,
            queue: EventQueue::new(),
            warmup_end,
            metrics,
            sink: EventSink::disabled(),
            cfg,
        }
    }

    /// Routes structured events from this engine (and its fabric) into
    /// `sink`. Tracing is off by default; see [`siteselect_obs`].
    pub fn attach_sink(&mut self, sink: EventSink) {
        self.fabric.set_sink(sink.clone());
        self.sink = sink;
    }

    /// Runs the experiment to completion and returns its metrics.
    #[must_use]
    pub fn run(mut self) -> RunMetrics {
        let trace = Trace::generate(
            &self.cfg.workload,
            self.cfg.cpu.txn_cpu_fraction,
            self.cfg.database.num_objects,
            self.cfg.clients,
            self.cfg.runtime.duration,
            self.cfg.runtime.seed,
        );
        // Arrivals fire at the client terminals; the submission message is
        // sent at arrival time so fabric bookings stay chronological.
        for (i, spec) in trace.transactions().iter().enumerate() {
            self.queue.push(spec.arrival, Ev::Arrive(i));
        }
        self.queue
            .push(self.warmup_end.max(SimTime::from_secs(1)), Ev::Sweep);
        let specs: Vec<TransactionSpec> = trace.transactions().to_vec();
        while let Some((t, ev)) = self.queue.pop() {
            debug_assert!(t >= self.now, "time went backwards");
            self.now = t;
            self.handle(ev, &specs);
        }
        let span = self
            .now
            .duration_since(SimTime::ZERO)
            .as_secs_f64()
            .max(1e-9);
        self.metrics.server_cpu_utilization =
            (self.cpu.busy_time().as_secs_f64() / span).min(1.0);
        self.metrics.messages = self.fabric.stats().clone();
        self.metrics
    }

    fn measured(&self, spec: &TransactionSpec) -> bool {
        spec.arrival >= self.warmup_end
    }

    fn handle(&mut self, ev: Ev, specs: &[TransactionSpec]) {
        match ev {
            Ev::Arrive(i) => {
                let spec = &specs[i];
                let (txn, deadline) = (spec.id, spec.deadline);
                let accesses = spec.accesses.len() as u32;
                self.sink.emit(self.now, SiteId::Client(spec.origin), || {
                    Event::TxnSubmit {
                        txn,
                        deadline,
                        accesses,
                    }
                });
                let delivery = self.fabric.send(
                    self.now,
                    SiteId::Client(spec.origin),
                    SiteId::Server,
                    MessageKind::TxnSubmit,
                    0,
                );
                self.queue.push(delivery, Ev::Submit(i));
            }
            Ev::Submit(i) => self.on_submit(&specs[i]),
            Ev::IoDone(key) => self.on_io_done(key),
            Ev::CpuTick(generation) => self.on_cpu_tick(generation),
            Ev::Result {
                txn,
                measured,
                deadline,
                arrival,
            } => self.on_result(txn, measured, deadline, arrival),
            Ev::Sweep => self.on_sweep(),
        }
    }

    fn on_submit(&mut self, spec: &TransactionSpec) {
        let key = spec.id.as_u64();
        if spec.is_expired(self.now) {
            self.finish(spec.clone(), TxnOutcome::Aborted(AbortReason::Expired));
            return;
        }
        self.inflight += 1;
        let mut txn = CeTxn {
            spec: spec.clone(),
            phase: Phase::Locks,
            blocked: Vec::new(),
            wait_started: self.now,
            blocked_total: SimDuration::ZERO,
        };
        // Acquire all locks up front (the access set is known, §5.1).
        let mut deadlocked = false;
        for access in &spec.accesses {
            let mode = access.mode();
            let conflicts = self.locks.conflicting_holders(access.object, key, mode);
            if self.wfg.would_deadlock(key, &conflicts) {
                deadlocked = true;
                break;
            }
            match self.locks.request(access.object, key, mode, spec.deadline) {
                Acquire::Granted | Acquire::AlreadyHeld | Acquire::Upgraded => {
                    let (id, object, exclusive) =
                        (spec.id, access.object, mode == LockMode::Exclusive);
                    self.sink.emit(self.now, SiteId::Server, || Event::LockHeld {
                        txn: id,
                        object,
                        exclusive,
                    });
                }
                Acquire::Blocked { conflicts } => {
                    let (id, object) = (spec.id, access.object);
                    self.sink.emit(self.now, SiteId::Server, || Event::LockWait {
                        txn: id,
                        object,
                    });
                    txn.blocked.push(access.object);
                    self.wfg.add_waits(key, conflicts);
                }
            }
        }
        if deadlocked {
            self.abort(key, txn, AbortReason::Deadlock);
            return;
        }
        let ready = txn.blocked.is_empty();
        self.txns.insert(key, txn);
        if ready {
            self.start_io(key);
        }
    }

    /// Removes every trace of an un-inserted transaction.
    fn abort(&mut self, key: Key, txn: CeTxn, reason: AbortReason) {
        let id = txn.spec.id;
        self.sink
            .emit(self.now, SiteId::Server, || Event::Abort { txn: id, reason });
        self.sink.emit(self.now, SiteId::Server, || Event::UnitEnd {
            txn: id,
            committed: false,
        });
        self.release_locks(key);
        self.wfg.remove_node(key);
        self.inflight -= 1;
        self.send_result(key, &txn.spec, false);
        if self.measured(&txn.spec) {
            self.sink.emit(self.now, SiteId::Server, || Event::Outcome {
                txn: id,
                outcome: TxnOutcome::Aborted(reason),
            });
            self.metrics.record_outcome(TxnOutcome::Aborted(reason));
            self.metrics.blocking.push_duration(txn.blocked_total);
        }
    }

    fn abort_inflight(&mut self, key: Key, reason: AbortReason) {
        if let Some(txn) = self.txns.remove(&key) {
            if txn.phase == Phase::Cpu {
                if let Some((t, g)) = self.cpu.remove(self.now, key) {
                    self.queue.push(t, Ev::CpuTick(g));
                }
            }
            self.abort(key, txn, reason);
        }
    }

    fn release_locks(&mut self, key: Key) {
        let grants = self.locks.release_all(key);
        self.wfg.remove_node(key);
        for (object, waiters) in grants {
            for w in waiters {
                self.on_lock_granted(object, w.owner);
            }
        }
    }

    fn on_lock_granted(&mut self, object: ObjectId, key: Key) {
        let Some(txn) = self.txns.get_mut(&key) else {
            // Granted to a transaction that already aborted: free it again,
            // cascading to any waiters unblocked by the release.
            let grants = self.locks.release(object, key);
            for w in grants {
                self.on_lock_granted(object, w.owner);
            }
            return;
        };
        txn.blocked.retain(|&o| o != object);
        let id = txn.spec.id;
        let exclusive = txn.spec.required_mode(object) == Some(LockMode::Exclusive);
        self.sink.emit(self.now, SiteId::Server, || Event::LockHeld {
            txn: id,
            object,
            exclusive,
        });
        // Refresh this waiter's wait-for edges against current holders.
        self.wfg.clear_waits(key);
        let still_blocked = txn.blocked.clone();
        let deadline_passed = txn.spec.is_expired(self.now);
        if deadline_passed {
            self.abort_inflight(key, AbortReason::Expired);
            return;
        }
        for o in still_blocked {
            let mode = self
                .txns
                .get(&key)
                .and_then(|t| t.spec.required_mode(o))
                .unwrap_or(LockMode::Shared);
            let conflicts = self.locks.conflicting_holders(o, key, mode);
            self.wfg.add_waits(key, conflicts);
        }
        let ready = self
            .txns
            .get(&key)
            .is_some_and(|t| t.blocked.is_empty() && t.phase == Phase::Locks);
        if ready {
            self.start_io(key);
        }
    }

    fn start_io(&mut self, key: Key) {
        let Some(txn) = self.txns.get_mut(&key) else {
            return;
        };
        txn.blocked_total += self.now.duration_since(txn.wait_started);
        txn.phase = Phase::Io;
        let objects: Vec<ObjectId> = txn.spec.objects().collect();
        let measured = txn.spec.arrival >= self.warmup_end;
        let mut misses = 0u32;
        for o in objects {
            let hit = self.buffer.probe(o).is_some();
            if !hit {
                misses += 1;
                self.buffer.insert(o);
            }
            if measured {
                self.metrics.server_buffer.record(hit);
            }
        }
        let done = if misses == 0 {
            self.now
        } else {
            self.disk.schedule_batch(self.now, misses)
        };
        self.queue.push(done, Ev::IoDone(key));
    }

    fn on_io_done(&mut self, key: Key) {
        let Some(txn) = self.txns.get_mut(&key) else {
            return;
        };
        if txn.spec.is_expired(self.now) {
            self.abort_inflight(key, AbortReason::Expired);
            return;
        }
        txn.phase = Phase::Cpu;
        let deadline = txn.spec.deadline;
        let demand = txn.spec.cpu_demand;
        let id = txn.spec.id;
        self.sink
            .emit(self.now, SiteId::Server, || Event::ExecStart { txn: id });
        if let Some((t, g)) = self.cpu.submit(self.now, key, deadline, demand) {
            self.queue.push(t, Ev::CpuTick(g));
        }
    }

    fn on_cpu_tick(&mut self, generation: u64) {
        match self.cpu.on_completion(self.now, generation) {
            Tick::Stale => {}
            Tick::Done { finished, next } => {
                if let Some((t, g)) = next {
                    self.queue.push(t, Ev::CpuTick(g));
                }
                for key in finished {
                    self.commit(key);
                }
            }
        }
    }

    fn commit(&mut self, key: Key) {
        let Some(mut txn) = self.txns.remove(&key) else {
            return;
        };
        txn.phase = Phase::Done;
        let id = txn.spec.id;
        let latency_us = self.now.duration_since(txn.spec.arrival).as_micros();
        let slack_us = txn.spec.deadline.as_micros() as i64 - self.now.as_micros() as i64;
        self.sink.emit(self.now, SiteId::Server, || Event::Commit {
            txn: id,
            latency_us,
            slack_us,
        });
        self.sink.emit(self.now, SiteId::Server, || Event::UnitEnd {
            txn: id,
            committed: true,
        });
        self.release_locks(key);
        self.inflight -= 1;
        let spec = txn.spec.clone();
        self.send_result(key, &spec, true);
        if self.measured(&spec) {
            self.metrics.blocking.push_duration(txn.blocked_total);
        }
    }

    fn send_result(&mut self, _key: Key, spec: &TransactionSpec, committed: bool) {
        let delivery = self.fabric.send(
            self.now,
            SiteId::Server,
            SiteId::Client(spec.origin),
            MessageKind::TxnResult,
            0,
        );
        if committed {
            self.queue.push(
                delivery,
                Ev::Result {
                    txn: spec.id,
                    measured: self.measured(spec),
                    deadline: spec.deadline,
                    arrival: spec.arrival,
                },
            );
        }
    }

    fn on_result(&mut self, txn: TransactionId, measured: bool, deadline: SimTime, arrival: SimTime) {
        // Only commits route through here; aborts are recorded at abort
        // time. The deadline test uses the instant the user-facing client
        // learns the result.
        if measured {
            let outcome = if self.now <= deadline {
                TxnOutcome::Committed
            } else {
                TxnOutcome::CommittedLate
            };
            self.sink
                .emit(self.now, SiteId::Client(txn.origin()), || Event::Outcome {
                    txn,
                    outcome,
                });
            self.metrics.record_outcome(outcome);
            self.metrics
                .latency
                .push_duration(self.now.duration_since(arrival));
        }
    }

    fn finish(&mut self, spec: TransactionSpec, outcome: TxnOutcome) {
        self.send_result(spec.id.as_u64(), &spec, false);
        if self.measured(&spec) {
            let id = spec.id;
            self.sink
                .emit(self.now, SiteId::Server, || Event::Outcome { txn: id, outcome });
            self.metrics.record_outcome(outcome);
        }
    }

    fn on_sweep(&mut self) {
        // Drop transactions that missed their deadline, including ones on
        // the CPU ("tasks that have missed their deadlines are not
        // processed at all", §2) — this is what keeps the overloaded
        // centralized server doing useful work for feasible transactions.
        let mut dead: Vec<Key> = self
            .txns // detlint: allow(D2) — keys are collected and sorted below
            .iter()
            .filter(|(_, t)| t.spec.is_expired(self.now))
            .map(|(&k, _)| k)
            .collect();
        // HashMap iteration order is process-random; the abort cascade
        // (lock grants, CPU reschedules) is order-sensitive, so sort to
        // keep runs reproducible across invocations.
        dead.sort_unstable();
        for key in dead {
            self.abort_inflight(key, AbortReason::Expired);
        }
        let (expired, grants) = self.locks.cancel_expired(self.now);
        for (_obj, waiter) in expired {
            self.abort_inflight(waiter.owner, AbortReason::Expired);
        }
        for (object, waiters) in grants {
            for w in waiters {
                self.on_lock_granted(object, w.owner);
            }
        }
        if self.inflight > 0 || !self.queue.is_empty() {
            self.queue
                .push(self.now + SimDuration::from_secs(1), Ev::Sweep);
        }
    }
}

impl std::fmt::Debug for CentralizedSim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CentralizedSim")
            .field("now", &self.now)
            .field("inflight", &self.inflight)
            .field("events", &self.queue.len())
            .finish()
    }
}
