//! Deterministic pseudo-random number generation.
//!
//! The simulator carries its own xoshiro256++ implementation instead of
//! depending on `rand`'s generators so that results are bit-identical across
//! platform and dependency upgrades. Seeding goes through SplitMix64, the
//! recommended initializer for the xoshiro family.

use siteselect_types::SimDuration;

/// SplitMix64 step, used to expand a 64-bit seed into generator state.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic xoshiro256++ pseudo-random number generator.
///
/// # Example
///
/// ```
/// use siteselect_sim::Prng;
///
/// let mut a = Prng::seed_from_u64(7);
/// let mut b = Prng::seed_from_u64(7);
/// assert_eq!(a.next_u64(), b.next_u64()); // same seed, same stream
/// let p = a.next_f64();
/// assert!((0.0..1.0).contains(&p));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Prng {
    s: [u64; 4],
}

impl Prng {
    /// Creates a generator from a 64-bit seed.
    #[must_use]
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        // xoshiro must not start from the all-zero state; SplitMix64 cannot
        // produce four consecutive zeros, but guard anyway.
        let s = if s == [0, 0, 0, 0] { [1, 2, 3, 4] } else { s };
        Prng { s }
    }

    /// Derives an independent child generator for a named stream.
    ///
    /// Used to give each client / subsystem its own stream so that adding a
    /// consumer never perturbs another's samples.
    #[must_use]
    pub fn derive(&self, stream: u64) -> Prng {
        // Mix the stream id into a fresh seed drawn from this generator's
        // current state without advancing it.
        let base = self
            .s
            .iter()
            .fold(0xcbf2_9ce4_8422_2325u64, |acc, &w| {
                (acc ^ w).wrapping_mul(0x100_0000_01b3)
            });
        Prng::seed_from_u64(base ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// Next raw 64-bit output (xoshiro256++).
    pub fn next_u64(&mut self) -> u64 {
        let [s0, s1, s2, s3] = &mut self.s;
        let result = s0.wrapping_add(*s3).rotate_left(23).wrapping_add(*s0);
        let t = *s1 << 17;
        *s2 ^= *s0;
        *s3 ^= *s1;
        *s1 ^= *s2;
        *s0 ^= *s3;
        *s2 ^= t;
        *s3 = s3.rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)` using Lemire's unbiased method.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "Prng::below requires a positive bound");
        // Lemire's multiply-shift with rejection for exactness.
        let mut x = self.next_u64();
        let mut m = (x as u128) * (bound as u128);
        let mut l = m as u64;
        if l < bound {
            let t = bound.wrapping_neg() % bound;
            while l < t {
                x = self.next_u64();
                m = (x as u128) * (bound as u128);
                l = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform `usize` in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn below_usize(&mut self, bound: usize) -> usize {
        self.below(bound as u64) as usize
    }

    /// Uniform integer in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "Prng::range_u64 requires lo < hi");
        lo + self.below(hi - lo)
    }

    /// Bernoulli trial with success probability `p` (clamped to `[0, 1]`).
    pub fn bernoulli(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        self.next_f64() < p
    }

    /// Exponentially distributed sample with the given mean.
    ///
    /// Returns 0.0 for a non-positive mean.
    pub fn exp_f64(&mut self, mean: f64) -> f64 {
        if mean <= 0.0 {
            return 0.0;
        }
        // Inverse CDF; 1 - U avoids ln(0).
        let u = 1.0 - self.next_f64();
        -mean * u.ln()
    }

    /// Exponentially distributed simulated duration with the given mean.
    pub fn exp_duration(&mut self, mean: SimDuration) -> SimDuration {
        SimDuration::from_secs_f64(self.exp_f64(mean.as_secs_f64()))
    }

    /// Chooses one element of a non-empty slice uniformly.
    ///
    /// # Panics
    ///
    /// Panics if the slice is empty.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "Prng::choose requires a non-empty slice");
        // detlint: allow(D9) — below_usize(len) < len, and len > 0 is asserted
        &items[self.below_usize(items.len())]
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.below_usize(i + 1);
            items.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = Prng::seed_from_u64(123);
        let mut b = Prng::seed_from_u64(123);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Prng::seed_from_u64(1);
        let mut b = Prng::seed_from_u64(2);
        let same = (0..100).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 5);
    }

    #[test]
    fn derive_gives_independent_streams() {
        let root = Prng::seed_from_u64(99);
        let mut c1 = root.derive(1);
        let mut c2 = root.derive(2);
        let mut c1_again = root.derive(1);
        assert_eq!(c1.next_u64(), c1_again.next_u64());
        let overlap = (0..100).filter(|_| c1.next_u64() == c2.next_u64()).count();
        assert!(overlap < 5);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Prng::seed_from_u64(5);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn below_is_unbiased_enough() {
        let mut r = Prng::seed_from_u64(7);
        let mut counts = [0u32; 10];
        let n = 100_000;
        for _ in 0..n {
            counts[r.below(10) as usize] += 1;
        }
        for &c in &counts {
            let expected = n as f64 / 10.0;
            assert!(
                (c as f64 - expected).abs() < expected * 0.05,
                "bucket count {c} too far from {expected}"
            );
        }
    }

    #[test]
    fn range_bounds_respected() {
        let mut r = Prng::seed_from_u64(11);
        for _ in 0..10_000 {
            let x = r.range_u64(100, 110);
            assert!((100..110).contains(&x));
        }
    }

    #[test]
    fn bernoulli_extremes_and_mean() {
        let mut r = Prng::seed_from_u64(13);
        assert!(!r.bernoulli(0.0));
        assert!(r.bernoulli(1.0));
        let hits = (0..100_000).filter(|_| r.bernoulli(0.3)).count();
        assert!((hits as f64 / 100_000.0 - 0.3).abs() < 0.01);
    }

    #[test]
    fn exponential_mean_is_close() {
        let mut r = Prng::seed_from_u64(17);
        let n = 200_000;
        let sum: f64 = (0..n).map(|_| r.exp_f64(2.5)).sum();
        let mean = sum / n as f64;
        assert!((mean - 2.5).abs() < 0.05, "measured mean {mean}");
        assert_eq!(r.exp_f64(0.0), 0.0);
        assert_eq!(r.exp_f64(-3.0), 0.0);
    }

    #[test]
    fn exp_duration_positive_mean() {
        let mut r = Prng::seed_from_u64(19);
        let mean = SimDuration::from_secs(10);
        let n = 50_000u64;
        let total: f64 = (0..n).map(|_| r.exp_duration(mean).as_secs_f64()).sum();
        let m = total / n as f64;
        assert!((m - 10.0).abs() < 0.2, "measured mean {m}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = Prng::seed_from_u64(23);
        let mut v: Vec<u32> = (0..100).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, (0..100).collect::<Vec<_>>()); // overwhelmingly likely
    }

    #[test]
    fn choose_returns_member() {
        let mut r = Prng::seed_from_u64(29);
        let items = [10, 20, 30];
        for _ in 0..100 {
            assert!(items.contains(r.choose(&items)));
        }
    }

    #[test]
    #[should_panic(expected = "positive bound")]
    fn below_zero_panics() {
        Prng::seed_from_u64(1).below(0);
    }
}
