//! Discrete-event simulation kernel for the `siteselect` workspace.
//!
//! Three building blocks, all deterministic:
//!
//! * [`EventQueue`] — a time-ordered event queue with FIFO tie-breaking, so
//!   identical inputs replay identically;
//! * [`Prng`] — an in-tree xoshiro256++ generator (seeded via SplitMix64)
//!   with the sampling helpers the simulator needs, independent of external
//!   crate version drift;
//! * [`stats`] — streaming statistics: Welford mean/variance, fixed-bucket
//!   histograms with percentile queries, ratios, time-weighted averages and
//!   labelled counters.
//!
//! # Example
//!
//! ```
//! use siteselect_sim::EventQueue;
//! use siteselect_types::SimTime;
//!
//! let mut q: EventQueue<&str> = EventQueue::new();
//! q.push(SimTime::from_secs(2), "b");
//! q.push(SimTime::from_secs(1), "a");
//! q.push(SimTime::from_secs(2), "c"); // same instant: FIFO order preserved
//! let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
//! assert_eq!(order, vec!["a", "b", "c"]);
//! ```

pub mod queue;
pub mod rng;
pub mod stats;

pub use queue::EventQueue;
pub use rng::Prng;
pub use stats::{Counter, Histogram, OnlineStats, Ratio, TimeWeighted};
