//! Streaming statistics for simulation metrics.

use std::collections::BTreeMap;
use std::fmt;

use siteselect_types::{SimDuration, SimTime};

/// Streaming mean/variance/min/max via Welford's algorithm.
///
/// # Example
///
/// ```
/// use siteselect_sim::OnlineStats;
///
/// let mut s = OnlineStats::new();
/// for x in [1.0, 2.0, 3.0] {
///     s.push(x);
/// }
/// assert_eq!(s.mean(), 2.0);
/// assert_eq!(s.count(), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct OnlineStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Creates an empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        OnlineStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds a sample.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Adds a duration sample, in seconds.
    pub fn push_duration(&mut self, d: SimDuration) {
        self.push(d.as_secs_f64());
    }

    /// Number of samples.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean (0.0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance (0.0 with fewer than two samples).
    #[must_use]
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Sample standard deviation.
    #[must_use]
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest sample (`None` when empty).
    #[must_use]
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest sample (`None` when empty).
    #[must_use]
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Merges another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl fmt::Display for OnlineStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.count == 0 {
            write!(f, "n=0")
        } else {
            write!(
                f,
                "n={} mean={:.4} sd={:.4} min={:.4} max={:.4}",
                self.count,
                self.mean(),
                self.std_dev(),
                self.min,
                self.max
            )
        }
    }
}

/// A fixed-bucket histogram over `[lo, hi)` with overflow/underflow buckets,
/// supporting percentile queries.
///
/// # Example
///
/// ```
/// use siteselect_sim::Histogram;
///
/// let mut h = Histogram::linear(0.0, 10.0, 10);
/// for x in 0..10 {
///     h.record(x as f64 + 0.5);
/// }
/// assert_eq!(h.count(), 10);
/// assert!(h.percentile(50.0).unwrap() >= 4.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    buckets: Vec<u64>,
    underflow: u64,
    overflow: u64,
    count: u64,
}

impl Histogram {
    /// Creates a histogram with `n` equal-width buckets over `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi` or `n == 0`.
    #[must_use]
    pub fn linear(lo: f64, hi: f64, n: usize) -> Self {
        assert!(lo < hi, "histogram range must be non-empty");
        assert!(n > 0, "histogram needs at least one bucket");
        Histogram {
            lo,
            hi,
            buckets: vec![0; n],
            underflow: 0,
            overflow: 0,
            count: 0,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, x: f64) {
        self.count += 1;
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let width = (self.hi - self.lo) / self.buckets.len() as f64;
            let idx = ((x - self.lo) / width) as usize;
            let idx = idx.min(self.buckets.len() - 1);
            // detlint: allow(D9) — idx is clamped to len-1 on the line above
            self.buckets[idx] += 1;
        }
    }

    /// Total samples recorded, including under/overflow.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Approximate percentile (`p` in `[0, 100]`), computed by linear
    /// interpolation within the containing bucket. Returns `None` when empty.
    /// Underflow samples are treated as `lo`, overflow samples as `hi`.
    #[must_use]
    pub fn percentile(&self, p: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let p = p.clamp(0.0, 100.0);
        let target = (p / 100.0 * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = self.underflow;
        if target <= seen {
            return Some(self.lo);
        }
        let width = (self.hi - self.lo) / self.buckets.len() as f64;
        for (i, &c) in self.buckets.iter().enumerate() {
            if target <= seen + c {
                let within = (target - seen) as f64 / c.max(1) as f64;
                return Some(self.lo + width * (i as f64 + within));
            }
            seen += c;
        }
        Some(self.hi)
    }

    /// Iterates over `(bucket_lower_bound, count)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (f64, u64)> + '_ {
        let width = (self.hi - self.lo) / self.buckets.len() as f64;
        self.buckets
            .iter()
            .enumerate()
            .map(move |(i, &c)| (self.lo + width * i as f64, c))
    }
}

/// A hit/total ratio (cache hit rates, deadline success rates).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Ratio {
    hits: u64,
    total: u64,
}

impl Ratio {
    /// Creates a zeroed ratio.
    #[must_use]
    pub fn new() -> Self {
        Ratio::default()
    }

    /// Builds a ratio from already-tallied counts, for one-shot percentage
    /// queries with uniform division-by-zero handling.
    ///
    /// # Example
    ///
    /// ```
    /// use siteselect_sim::Ratio;
    ///
    /// assert_eq!(Ratio::of(3, 4).percent(), 75.0);
    /// assert_eq!(Ratio::of(0, 0).percent(), 0.0); // never NaN
    /// ```
    #[must_use]
    pub fn of(hits: u64, total: u64) -> Self {
        Ratio { hits, total }
    }

    /// Records an event; `hit` marks it a success.
    pub fn record(&mut self, hit: bool) {
        self.total += 1;
        if hit {
            self.hits += 1;
        }
    }

    /// Successes so far.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Events so far.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Success fraction in `[0, 1]`; 0.0 when empty.
    #[must_use]
    pub fn fraction(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.hits as f64 / self.total as f64
        }
    }

    /// Success percentage in `[0, 100]`.
    #[must_use]
    pub fn percent(&self) -> f64 {
        self.fraction() * 100.0
    }

    /// Merges another ratio into this one.
    pub fn merge(&mut self, other: Ratio) {
        self.hits += other.hits;
        self.total += other.total;
    }
}

impl fmt::Display for Ratio {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{} ({:.2}%)", self.hits, self.total, self.percent())
    }
}

/// Time-weighted average of a piecewise-constant signal (queue lengths,
/// utilization).
#[derive(Debug, Clone, PartialEq)]
pub struct TimeWeighted {
    last_time: SimTime,
    last_value: f64,
    weighted_sum: f64,
    started: SimTime,
}

impl TimeWeighted {
    /// Creates a tracker with initial `value` at time `start`.
    #[must_use]
    pub fn new(start: SimTime, value: f64) -> Self {
        TimeWeighted {
            last_time: start,
            last_value: value,
            weighted_sum: 0.0,
            started: start,
        }
    }

    /// Updates the signal to `value` at time `now` (must not precede the
    /// previous update).
    pub fn set(&mut self, now: SimTime, value: f64) {
        let dt = now.duration_since(self.last_time).as_secs_f64();
        self.weighted_sum += self.last_value * dt;
        self.last_time = now;
        self.last_value = value;
    }

    /// Adds `delta` to the current value at time `now`.
    pub fn add(&mut self, now: SimTime, delta: f64) {
        let v = self.last_value + delta;
        self.set(now, v);
    }

    /// Current value of the signal.
    #[must_use]
    pub fn value(&self) -> f64 {
        self.last_value
    }

    /// Time-weighted average over `[start, now]`.
    #[must_use]
    pub fn average(&self, now: SimTime) -> f64 {
        let dt_tail = now.duration_since(self.last_time).as_secs_f64();
        let span = now.duration_since(self.started).as_secs_f64();
        if span <= 0.0 {
            return self.last_value;
        }
        (self.weighted_sum + self.last_value * dt_tail) / span
    }
}

/// A set of labelled monotone counters with deterministic iteration order.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Counter {
    counts: BTreeMap<String, u64>,
}

impl Counter {
    /// Creates an empty counter set.
    #[must_use]
    pub fn new() -> Self {
        Counter::default()
    }

    /// Adds `n` to the counter named `key`.
    pub fn add(&mut self, key: &str, n: u64) {
        *self.counts.entry(key.to_owned()).or_insert(0) += n;
    }

    /// Increments the counter named `key` by one.
    pub fn incr(&mut self, key: &str) {
        self.add(key, 1);
    }

    /// Current value of `key` (zero if never touched).
    #[must_use]
    pub fn get(&self, key: &str) -> u64 {
        self.counts.get(key).copied().unwrap_or(0)
    }

    /// Iterates over `(label, count)` in label order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counts.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// Merges another counter set into this one.
    pub fn merge(&mut self, other: &Counter) {
        for (k, v) in other.iter() {
            self.add(k, v);
        }
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.counts.is_empty() {
            return write!(f, "(no counters)");
        }
        for (k, v) in self.iter() {
            writeln!(f, "{k}: {v}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_direct_computation() {
        let data = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut s = OnlineStats::new();
        for &x in &data {
            s.push(x);
        }
        let mean: f64 = data.iter().sum::<f64>() / data.len() as f64;
        let var: f64 =
            data.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (data.len() - 1) as f64;
        assert!((s.mean() - mean).abs() < 1e-12);
        assert!((s.variance() - var).abs() < 1e-12);
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(9.0));
    }

    #[test]
    fn welford_merge_equals_sequential() {
        let mut all = OnlineStats::new();
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        for i in 0..100 {
            let x = (i as f64).sin() * 10.0;
            all.push(x);
            if i % 2 == 0 {
                a.push(x);
            } else {
                b.push(x);
            }
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert!((a.mean() - all.mean()).abs() < 1e-9);
        assert!((a.variance() - all.variance()).abs() < 1e-9);
    }

    #[test]
    fn empty_stats_are_safe() {
        let s = OnlineStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
        assert_eq!(s.to_string(), "n=0");
    }

    #[test]
    fn merge_into_empty() {
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        b.push(3.0);
        b.push(5.0);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.mean(), 4.0);
        let mut c = OnlineStats::new();
        b.merge(&c); // merging empty is a no-op
        assert_eq!(b.count(), 2);
        c.push(1.0);
        assert_eq!(c.count(), 1);
    }

    #[test]
    fn histogram_percentiles() {
        let mut h = Histogram::linear(0.0, 100.0, 100);
        for i in 0..1000 {
            h.record((i % 100) as f64);
        }
        let p50 = h.percentile(50.0).unwrap();
        assert!((45.0..=55.0).contains(&p50), "p50={p50}");
        let p99 = h.percentile(99.0).unwrap();
        assert!(p99 >= 95.0, "p99={p99}");
        assert_eq!(h.percentile(0.0).unwrap().floor(), 0.0);
    }

    #[test]
    fn histogram_overflow_underflow() {
        let mut h = Histogram::linear(0.0, 10.0, 10);
        h.record(-5.0);
        h.record(50.0);
        h.record(5.0);
        assert_eq!(h.count(), 3);
        assert_eq!(h.percentile(1.0), Some(0.0)); // underflow clamps to lo
        assert_eq!(h.percentile(100.0), Some(10.0)); // overflow clamps to hi
    }

    #[test]
    fn histogram_empty_returns_none() {
        let h = Histogram::linear(0.0, 1.0, 4);
        assert_eq!(h.percentile(50.0), None);
        assert_eq!(h.iter().count(), 4);
    }

    #[test]
    fn ratio_accumulates() {
        let mut r = Ratio::new();
        for i in 0..10 {
            r.record(i < 7);
        }
        assert_eq!(r.hits(), 7);
        assert_eq!(r.total(), 10);
        assert!((r.percent() - 70.0).abs() < 1e-12);
        let mut other = Ratio::new();
        other.record(true);
        r.merge(other);
        assert_eq!(r.hits(), 8);
        assert_eq!(r.total(), 11);
        assert!(r.to_string().contains('%'));
    }

    #[test]
    fn ratio_empty_is_zero() {
        assert_eq!(Ratio::new().fraction(), 0.0);
    }

    #[test]
    fn time_weighted_average() {
        let mut tw = TimeWeighted::new(SimTime::ZERO, 0.0);
        tw.set(SimTime::from_secs(10), 2.0); // 0 for 10s
        tw.set(SimTime::from_secs(20), 4.0); // 2 for 10s
        let avg = tw.average(SimTime::from_secs(30)); // 4 for 10s
        assert!((avg - 2.0).abs() < 1e-12, "avg={avg}");
        assert_eq!(tw.value(), 4.0);
    }

    #[test]
    fn time_weighted_add_and_zero_span() {
        let mut tw = TimeWeighted::new(SimTime::from_secs(5), 1.0);
        assert_eq!(tw.average(SimTime::from_secs(5)), 1.0);
        tw.add(SimTime::from_secs(10), 2.0);
        assert_eq!(tw.value(), 3.0);
    }

    #[test]
    fn counters_merge_and_iterate_in_order() {
        let mut a = Counter::new();
        a.incr("b_second");
        a.add("a_first", 5);
        let mut b = Counter::new();
        b.add("b_second", 2);
        a.merge(&b);
        assert_eq!(a.get("b_second"), 3);
        assert_eq!(a.get("a_first"), 5);
        assert_eq!(a.get("missing"), 0);
        let keys: Vec<_> = a.iter().map(|(k, _)| k).collect();
        assert_eq!(keys, vec!["a_first", "b_second"]);
        assert!(!a.to_string().is_empty());
        assert_eq!(Counter::new().to_string(), "(no counters)");
    }
}
