//! A deterministic, time-ordered event queue.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use siteselect_types::SimTime;

/// One queued event: fire time plus an insertion sequence number used to
/// break ties FIFO.
struct Entry<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap and we want the earliest event
        // (and, within one instant, the lowest sequence number) on top.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A future-event list for discrete-event simulation.
///
/// Events scheduled for the same instant are delivered in insertion order,
/// which makes runs bit-reproducible: the simulator never depends on hash
/// ordering or allocation addresses.
///
/// # Example
///
/// ```
/// use siteselect_sim::EventQueue;
/// use siteselect_types::SimTime;
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_secs(5), 'x');
/// assert_eq!(q.peek_time(), Some(SimTime::from_secs(5)));
/// assert_eq!(q.pop(), Some((SimTime::from_secs(5), 'x')));
/// assert!(q.is_empty());
/// ```
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    pushed: u64,
    popped: u64,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    #[must_use]
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            pushed: 0,
            popped: 0,
        }
    }

    /// Creates an empty queue with pre-allocated capacity.
    #[must_use]
    pub fn with_capacity(cap: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(cap),
            next_seq: 0,
            pushed: 0,
            popped: 0,
        }
    }

    /// Schedules `event` to fire at `at`.
    pub fn push(&mut self, at: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.pushed += 1;
        self.heap.push(Entry { at, seq, event });
    }

    /// Removes and returns the earliest event, if any.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let e = self.heap.pop()?;
        self.popped += 1;
        Some((e.at, e.event))
    }

    /// The fire time of the earliest queued event.
    #[must_use]
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// Removes and returns the earliest event if it is due at or before
    /// `deadline`; leaves the queue untouched otherwise.
    ///
    /// This is the bounded-drain primitive: callers that would otherwise
    /// write `if q.peek_time() <= Some(t) { q.pop() }` get the check and
    /// the removal in one call, with the entry moved out of the heap only
    /// when it actually fires.
    ///
    /// ```
    /// use siteselect_sim::EventQueue;
    /// use siteselect_types::SimTime;
    ///
    /// let mut q = EventQueue::new();
    /// q.push(SimTime::from_secs(5), 'x');
    /// assert_eq!(q.pop_before(SimTime::from_secs(4)), None);
    /// assert_eq!(q.pop_before(SimTime::from_secs(5)), Some((SimTime::from_secs(5), 'x')));
    /// ```
    pub fn pop_before(&mut self, deadline: SimTime) -> Option<(SimTime, E)> {
        match self.heap.peek() {
            Some(e) if e.at <= deadline => self.pop(),
            _ => None,
        }
    }

    /// Number of queued events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are queued.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total events ever scheduled (for engine statistics).
    #[must_use]
    pub fn total_pushed(&self) -> u64 {
        self.pushed
    }

    /// Total events ever delivered.
    #[must_use]
    pub fn total_popped(&self) -> u64 {
        self.popped
    }

    /// Drops all queued events.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

impl<E> std::fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("len", &self.heap.len())
            .field("next_time", &self.peek_time())
            .field("pushed", &self.pushed)
            .field("popped", &self.popped)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(3), 3);
        q.push(SimTime::from_secs(1), 1);
        q.push(SimTime::from_secs(2), 2);
        let got: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(got, vec![1, 2, 3]);
    }

    #[test]
    fn fifo_within_same_instant() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1);
        for i in 0..100 {
            q.push(t, i);
        }
        let got: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn interleaved_push_pop_keeps_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(10), 'c');
        q.push(SimTime::from_secs(1), 'a');
        assert_eq!(q.pop().unwrap().1, 'a');
        q.push(SimTime::from_secs(5), 'b');
        assert_eq!(q.pop().unwrap().1, 'b');
        assert_eq!(q.pop().unwrap().1, 'c');
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn counters_and_capacity() {
        let mut q = EventQueue::with_capacity(8);
        assert!(q.is_empty());
        q.push(SimTime::ZERO, ());
        q.push(SimTime::ZERO, ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.total_pushed(), 2);
        q.pop();
        assert_eq!(q.total_popped(), 1);
        q.clear();
        assert!(q.is_empty());
        // Counters survive a clear.
        assert_eq!(q.total_pushed(), 2);
    }

    #[test]
    fn peek_does_not_consume() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(7), 1);
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(7)));
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn pop_before_respects_deadline_and_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(2), 'b');
        q.push(SimTime::from_secs(1), 'a');
        q.push(SimTime::from_secs(9), 'z');
        let mut drained = Vec::new();
        while let Some((_, e)) = q.pop_before(SimTime::from_secs(5)) {
            drained.push(e);
        }
        assert_eq!(drained, vec!['a', 'b']);
        assert_eq!(q.len(), 1);
        // The deadline is inclusive.
        assert_eq!(q.pop_before(SimTime::from_secs(9)).unwrap().1, 'z');
        // Empty queue: no event, no panic.
        assert_eq!(q.pop_before(SimTime::from_secs(100)), None);
        assert_eq!(q.total_popped(), 3);
    }

    #[test]
    fn debug_output_is_nonempty() {
        let q: EventQueue<u8> = EventQueue::new();
        assert!(format!("{q:?}").contains("EventQueue"));
    }
}
