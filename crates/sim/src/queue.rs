//! A deterministic, time-ordered event queue.
//!
//! Implemented as a hierarchical bucketed timer wheel rather than a binary
//! heap: eleven levels of 64 slots each cover the full 64-bit microsecond
//! range, so a push is a couple of bit operations and a pop is an `O(1)`
//! take from the current drain bucket, with the occasional lazy cascade of
//! a higher-level slot as simulated time advances. A `BinaryHeap` pays a
//! `log n` sift plus an `Entry` memmove chain on every operation; the
//! wheel pays neither on the hot path, which is what the million-events
//! per-second engines need.

use siteselect_types::SimTime;

/// One queued event: fire time plus an insertion sequence number used to
/// break ties FIFO.
struct Entry<E> {
    at: u64,
    seq: u64,
    event: E,
}

/// Bits of time consumed per wheel level.
const SLOT_BITS: u32 = 6;
/// Slots per level.
const SLOTS: usize = 1 << SLOT_BITS;
/// Levels needed to span a full 64-bit tick range (`11 * 6 = 66 >= 64`).
const LEVELS: usize = 11;

/// One wheel level: 64 buckets plus an occupancy bitmask so the earliest
/// non-empty bucket is a single `trailing_zeros`.
struct Level<E> {
    occupied: u64,
    slots: [Vec<Entry<E>>; SLOTS],
}

/// Initial capacity of every wheel slot. Slots allocate lazily on first
/// push, which would dribble one small allocation per first-touched bucket
/// across a run's steady state; seeding each with one grow's worth keeps the
/// hot loop allocation-free (a slot only reallocates past this when a
/// cascade actually lands five or more entries in one bucket).
const SLOT_SEED_CAP: usize = 4;

impl<E> Level<E> {
    fn new() -> Self {
        Level {
            occupied: 0,
            slots: std::array::from_fn(|_| Vec::with_capacity(SLOT_SEED_CAP)),
        }
    }
}

/// A future-event list for discrete-event simulation.
///
/// Events scheduled for the same instant are delivered in insertion order,
/// which makes runs bit-reproducible: the simulator never depends on hash
/// ordering or allocation addresses.
///
/// # Example
///
/// ```
/// use siteselect_sim::EventQueue;
/// use siteselect_types::SimTime;
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_secs(5), 'x');
/// assert_eq!(q.peek_time(), Some(SimTime::from_secs(5)));
/// assert_eq!(q.pop(), Some((SimTime::from_secs(5), 'x')));
/// assert!(q.is_empty());
/// ```
pub struct EventQueue<E> {
    levels: Box<[Level<E>; LEVELS]>,
    /// The wheel origin: the bucket time of the current drain, and a lower
    /// bound on every placed slot entry. Events pushed into the past
    /// (allowed, like a heap) bypass the wheel and merge into the drain.
    cursor: u64,
    /// The earliest bucket, moved out of its slot and sorted descending by
    /// `(at, seq)` so `pop` is a `Vec::pop` and `peek_time` reads the
    /// tail. Invariant: non-empty whenever `len > 0`.
    drain: Vec<Entry<E>>,
    /// Reused cascade buffer (capacity recycles across cascades).
    scratch: Vec<Entry<E>>,
    len: usize,
    /// Doubles as the total-pushed counter: every push takes one number.
    next_seq: u64,
    popped: u64,
}

/// Level index for a time that differs from the cursor in `xor` (non-zero).
fn level_of(xor: u64) -> usize {
    ((63 - xor.leading_zeros()) / SLOT_BITS) as usize
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    #[must_use]
    pub fn new() -> Self {
        Self::with_capacity(0)
    }

    /// Creates an empty queue with pre-allocated capacity.
    #[must_use]
    pub fn with_capacity(cap: usize) -> Self {
        EventQueue {
            levels: Box::new(std::array::from_fn(|_| Level::new())),
            cursor: 0,
            drain: Vec::with_capacity(cap),
            scratch: Vec::new(),
            len: 0,
            next_seq: 0,
            popped: 0,
        }
    }

    /// Schedules `event` to fire at `at`.
    pub fn push(&mut self, at: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        let t = at.as_micros();
        let entry = Entry { at: t, seq, event };
        if self.len == 0 {
            // Re-basing on the first push keeps the common drain-then-
            // refill pattern entirely inside the drain fast path.
            self.cursor = t;
            self.drain.push(entry);
        } else if t < self.cursor {
            // A push into the past (relative to the wheel origin). The
            // drain is sorted descending by (at, seq); splice the entry in
            // so it pops in heap order. New sequence numbers are globally
            // largest, so among equal times it lands before its peers
            // (popped last), exactly as a heap would order it.
            // A fresh sequence number is globally largest, so the entry is
            // the queue's new minimum exactly when its time is strictly
            // earliest: tail append. Equal-or-later times binary-search.
            match self.drain.last() {
                Some(tail) if t < tail.at => self.drain.push(entry),
                _ => {
                    let pos = self
                        .drain
                        .partition_point(|e| (e.at, e.seq) > (t, seq));
                    self.drain.insert(pos, entry);
                }
            }
        } else {
            self.place(entry);
        }
        self.len += 1;
    }

    /// Files a wheel entry (`entry.at >= self.cursor`) into its level/slot.
    fn place(&mut self, entry: Entry<E>) {
        let xor = entry.at ^ self.cursor;
        let lvl = if xor == 0 { 0 } else { level_of(xor) };
        let slot = ((entry.at >> (SLOT_BITS * lvl as u32)) & (SLOTS as u64 - 1)) as usize;
        // detlint: allow(D9) — level_of(x) <= 63/SLOT_BITS = 10 < LEVELS; slot is masked to SLOTS-1
        self.levels[lvl].slots[slot].push(entry);
        // detlint: allow(D9) — same bounds as the line above
        self.levels[lvl].occupied |= 1 << slot;
    }

    /// Restores the drain invariant: advances the cursor to the earliest
    /// occupied bucket, cascading higher-level slots down as needed, and
    /// moves that bucket into the (empty) drain, sorted for FIFO pops.
    #[cold]
    fn settle(&mut self) {
        debug_assert!(self.drain.is_empty() && self.len > 0);
        loop {
            // detlint: allow(D9) — 0 < LEVELS, a compile-time constant
            let occ0 = self.levels[0].occupied;
            if occ0 != 0 {
                let slot = occ0.trailing_zeros() as usize;
                let bucket = (self.cursor & !(SLOTS as u64 - 1)) | slot as u64;
                debug_assert!(bucket >= self.cursor);
                self.cursor = bucket;
                // detlint: allow(D9) — trailing_zeros of a nonzero u64 is <= 63 < SLOTS
                self.levels[0].occupied &= !(1u64 << slot);
                // detlint: allow(D9) — same bounds as the line above
                std::mem::swap(&mut self.levels[0].slots[slot], &mut self.drain);
                // A level-0 bucket is one exact tick, but cascades append
                // out of sequence order; one in-place sort restores FIFO.
                self.drain
                    .sort_unstable_by_key(|e| std::cmp::Reverse((e.at, e.seq)));
                return;
            }
            let lvl = (1..LEVELS)
                // detlint: allow(D9) — l ranges over 1..LEVELS
                .find(|&l| self.levels[l].occupied != 0)
                // detlint: allow(D9) — len > 0 implies some occupied bucket
                .expect("len > 0 but every level is empty");
            // detlint: allow(D9) — lvl < LEVELS from the find above
            let slot = self.levels[lvl].occupied.trailing_zeros() as usize;
            // detlint: allow(D9) — lvl < LEVELS; slot <= 63 < SLOTS (nonzero occupied)
            self.levels[lvl].occupied &= !(1u64 << slot);
            let shift = SLOT_BITS * lvl as u32;
            // Bits strictly above this level; empty at the top level, where
            // the plain shift would overflow.
            let above = u64::MAX.checked_shl(shift + SLOT_BITS).unwrap_or(0);
            let base = (self.cursor & above) | ((slot as u64) << shift);
            debug_assert!(base > self.cursor);
            self.cursor = base;
            debug_assert!(self.scratch.is_empty());
            // detlint: allow(D9) — lvl < LEVELS and slot < SLOTS as established above
            std::mem::swap(&mut self.levels[lvl].slots[slot], &mut self.scratch);
            while let Some(e) = self.scratch.pop() {
                debug_assert!(e.at >= self.cursor);
                self.place(e);
            }
            // detlint: allow(D9) — same bounds as the swap above
            std::mem::swap(&mut self.levels[lvl].slots[slot], &mut self.scratch);
        }
    }

    /// Removes and returns the earliest event, if any.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let e = self.drain.pop()?;
        self.popped += 1;
        self.len -= 1;
        if self.drain.is_empty() && self.len > 0 {
            self.settle();
        }
        Some((SimTime::from_micros(e.at), e.event))
    }

    /// The fire time of the earliest queued event.
    #[must_use]
    pub fn peek_time(&self) -> Option<SimTime> {
        self.drain.last().map(|e| SimTime::from_micros(e.at))
    }

    /// Removes and returns the earliest event if it is due at or before
    /// `deadline`; leaves the queue untouched otherwise.
    ///
    /// This is the bounded-drain primitive: callers that would otherwise
    /// write `if q.peek_time() <= Some(t) { q.pop() }` get the check and
    /// the removal in one call, with the entry moved out of its bucket only
    /// when it actually fires.
    ///
    /// ```
    /// use siteselect_sim::EventQueue;
    /// use siteselect_types::SimTime;
    ///
    /// let mut q = EventQueue::new();
    /// q.push(SimTime::from_secs(5), 'x');
    /// assert_eq!(q.pop_before(SimTime::from_secs(4)), None);
    /// assert_eq!(q.pop_before(SimTime::from_secs(5)), Some((SimTime::from_secs(5), 'x')));
    /// ```
    pub fn pop_before(&mut self, deadline: SimTime) -> Option<(SimTime, E)> {
        match self.drain.last() {
            Some(e) if e.at <= deadline.as_micros() => self.pop(),
            _ => None,
        }
    }

    /// Number of queued events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no events are queued.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Total events ever scheduled (for engine statistics).
    #[must_use]
    pub fn total_pushed(&self) -> u64 {
        self.next_seq
    }

    /// Total events ever delivered.
    #[must_use]
    pub fn total_popped(&self) -> u64 {
        self.popped
    }

    /// Drops all queued events.
    pub fn clear(&mut self) {
        self.drain.clear();
        for level in self.levels.iter_mut() {
            while level.occupied != 0 {
                let slot = level.occupied.trailing_zeros() as usize;
                level.occupied &= !(1u64 << slot);
                // detlint: allow(D9) — trailing_zeros of a nonzero u64 is <= 63 < SLOTS
                level.slots[slot].clear();
            }
        }
        self.len = 0;
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

impl<E> std::fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("len", &self.len)
            .field("next_time", &self.peek_time())
            .field("pushed", &self.next_seq)
            .field("popped", &self.popped)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(3), 3);
        q.push(SimTime::from_secs(1), 1);
        q.push(SimTime::from_secs(2), 2);
        let got: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(got, vec![1, 2, 3]);
    }

    #[test]
    fn fifo_within_same_instant() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1);
        for i in 0..100 {
            q.push(t, i);
        }
        let got: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn interleaved_push_pop_keeps_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(10), 'c');
        q.push(SimTime::from_secs(1), 'a');
        assert_eq!(q.pop().unwrap().1, 'a');
        q.push(SimTime::from_secs(5), 'b');
        assert_eq!(q.pop().unwrap().1, 'b');
        assert_eq!(q.pop().unwrap().1, 'c');
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn counters_and_capacity() {
        let mut q = EventQueue::with_capacity(8);
        assert!(q.is_empty());
        q.push(SimTime::ZERO, ());
        q.push(SimTime::ZERO, ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.total_pushed(), 2);
        q.pop();
        assert_eq!(q.total_popped(), 1);
        q.clear();
        assert!(q.is_empty());
        // Counters survive a clear.
        assert_eq!(q.total_pushed(), 2);
    }

    #[test]
    fn peek_does_not_consume() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(7), 1);
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(7)));
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn pop_before_respects_deadline_and_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(2), 'b');
        q.push(SimTime::from_secs(1), 'a');
        q.push(SimTime::from_secs(9), 'z');
        let mut drained = Vec::new();
        while let Some((_, e)) = q.pop_before(SimTime::from_secs(5)) {
            drained.push(e);
        }
        assert_eq!(drained, vec!['a', 'b']);
        assert_eq!(q.len(), 1);
        // The deadline is inclusive.
        assert_eq!(q.pop_before(SimTime::from_secs(9)).unwrap().1, 'z');
        // Empty queue: no event, no panic.
        assert_eq!(q.pop_before(SimTime::from_secs(100)), None);
        assert_eq!(q.total_popped(), 3);
    }

    #[test]
    fn debug_output_is_nonempty() {
        let q: EventQueue<u8> = EventQueue::new();
        assert!(format!("{q:?}").contains("EventQueue"));
    }

    #[test]
    fn push_into_the_past_pops_first() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_micros(100), 'b');
        assert_eq!(q.pop().unwrap().1, 'b');
        // The wheel origin sits at t=100; a heap would still accept and
        // order earlier times.
        q.push(SimTime::from_micros(7), 'a');
        q.push(SimTime::from_micros(100), 'c');
        q.push(SimTime::from_micros(7), 'z');
        assert_eq!(q.pop(), Some((SimTime::from_micros(7), 'a')));
        assert_eq!(q.pop(), Some((SimTime::from_micros(7), 'z')));
        assert_eq!(q.pop(), Some((SimTime::from_micros(100), 'c')));
    }

    #[test]
    fn far_future_times_cross_every_level() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_micros(u64::MAX), 'w');
        q.push(SimTime::from_micros(u64::MAX / 2), 'v');
        q.push(SimTime::from_micros(3), 'a');
        assert_eq!(q.pop().unwrap().1, 'a');
        assert_eq!(q.pop().unwrap().1, 'v');
        assert_eq!(q.pop().unwrap().1, 'w');
        assert!(q.is_empty());
    }

    #[test]
    fn cascaded_equal_times_stay_fifo() {
        // Two entries at one far instant, pushed from different wheel
        // origins so they reach the shared level-0 bucket by different
        // cascade paths; the drain sort must restore sequence order.
        let mut q = EventQueue::new();
        let t = SimTime::from_micros(1 << 13);
        q.push(t, 'a');
        q.push(SimTime::from_micros(10), 'x');
        q.pop(); // advances the cursor to 10
        q.push(t, 'b');
        assert_eq!(q.pop(), Some((t, 'a')));
        assert_eq!(q.pop(), Some((t, 'b')));
    }
}

