//! Network model for the `siteselect` cluster.
//!
//! The paper's test environment is five machines on a **10 Mbps shared
//! Ethernet**. This crate models that wire: every transmission occupies the
//! shared medium for `bytes × 8 / bandwidth`, transmissions serialize FIFO,
//! and each message additionally pays a propagation/protocol latency. An
//! idealized switched topology (per-ordered-pair links) is available for
//! ablations.
//!
//! [`MessageKind`] enumerates the protocol vocabulary and carries the wire
//! sizes; [`MessageStats`] accumulates the per-category counts behind the
//! paper's Table 4; [`Fabric`] computes delivery times, including
//! client-to-client routes through the LS system's **directory server**
//! (which exists precisely so that peer traffic does not transit the
//! database server, §5.1).
//!
//! # Example
//!
//! ```
//! use siteselect_net::{Fabric, MessageKind};
//! use siteselect_types::{ClientId, NetworkConfig, SimTime, SiteId};
//!
//! let mut fabric = Fabric::new(NetworkConfig::default(), 2_048);
//! let delivery = fabric.send(
//!     SimTime::ZERO,
//!     SiteId::Client(ClientId(0)),
//!     SiteId::Server,
//!     MessageKind::ObjectRequest,
//!     0,
//! );
//! assert!(delivery > SimTime::ZERO);
//! assert_eq!(fabric.stats().count(MessageKind::ObjectRequest), 1);
//! ```

pub mod fabric;
pub mod message;
pub mod stats;

pub use fabric::{Delivery, Fabric};
pub use message::MessageKind;
pub use stats::MessageStats;
