//! Delivery-time computation over the shared or switched LAN.

use std::collections::{HashMap, HashSet};

use siteselect_obs::{Event, EventSink};
use siteselect_sim::Prng;
use siteselect_types::{FaultConfig, LanKind, NetworkConfig, SimDuration, SimTime, SiteId};

use crate::message::MessageKind;
use crate::stats::MessageStats;

/// Outcome of a fault-aware send ([`Fabric::try_send`] and friends).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Delivery {
    /// The message arrives at the destination at this instant.
    Delivered(SimTime),
    /// The message was lost — dropped by the fault layer or addressed to a
    /// crashed site. No delivery event should be scheduled; recovery is the
    /// sender's problem (retry or lease expiry).
    Dropped,
}

impl Delivery {
    /// The delivery instant, or `None` if the message was lost.
    #[must_use]
    pub fn time(self) -> Option<SimTime> {
        match self {
            Delivery::Delivered(t) => Some(t),
            Delivery::Dropped => None,
        }
    }
}

/// Fault-injection state, present only after [`Fabric::enable_faults`] (or
/// the first liveness update). Message loss and jitter draw from a PRNG
/// stream dedicated to the fabric so enabling faults does not perturb the
/// workload's random sequence.
#[derive(Debug)]
struct FaultState {
    cfg: FaultConfig,
    prng: Prng,
    down: HashSet<SiteId>,
    dropped: u64,
    delayed: u64,
    /// Last delivery instant per directed link. Jitter must not reorder a
    /// link (channels are sessions): a later send arrives no earlier than
    /// the deliveries before it. Without faults the medium is already FIFO
    /// (per-link serialization plus constant latency), so this floor only
    /// matters when jitter is injected.
    last_delivery: HashMap<(SiteId, SiteId), SimTime>,
}

/// The cluster interconnect.
///
/// For [`LanKind::SharedEthernet`] all transmissions serialize on one medium
/// (the paper's 10 Mbps segment); for [`LanKind::Switched`] each ordered
/// `(from, to)` pair owns a private link. Every transmission costs
/// `bytes × 8 / bandwidth` of medium time plus a fixed propagation latency.
///
/// Client-to-client messages in the load-sharing system are relayed by the
/// **directory server** ([`Fabric::send_via_directory`]): two transmissions,
/// one logical message.
#[derive(Debug)]
pub struct Fabric {
    cfg: NetworkConfig,
    object_bytes: u32,
    shared_busy_until: SimTime,
    link_busy_until: HashMap<(SiteId, SiteId), SimTime>,
    stats: MessageStats,
    faults: Option<FaultState>,
    sink: EventSink,
}

impl Fabric {
    /// Creates a fabric with the given configuration and object payload
    /// size.
    #[must_use]
    pub fn new(cfg: NetworkConfig, object_bytes: u32) -> Self {
        Fabric {
            cfg,
            object_bytes,
            shared_busy_until: SimTime::ZERO,
            link_busy_until: HashMap::new(),
            stats: MessageStats::new(),
            faults: None,
            sink: EventSink::disabled(),
        }
    }

    /// Attaches an event sink; fault-layer drops and delays are emitted at
    /// the destination site with the would-be delivery time.
    pub fn set_sink(&mut self, sink: EventSink) {
        self.sink = sink;
    }

    /// Arms the fault layer: subsequent `try_send*` calls may drop or delay
    /// messages according to `cfg`, drawing from `prng`. A fabric without
    /// this call behaves exactly as before the fault subsystem existed.
    pub fn enable_faults(&mut self, cfg: FaultConfig, prng: Prng) {
        self.faults = Some(FaultState {
            cfg,
            prng,
            down: HashSet::new(),
            dropped: 0,
            delayed: 0,
            last_delivery: HashMap::new(),
        });
    }

    fn fault_state(&mut self) -> &mut FaultState {
        self.faults.get_or_insert_with(|| FaultState {
            cfg: FaultConfig::default(),
            prng: Prng::seed_from_u64(0),
            down: HashSet::new(),
            dropped: 0,
            delayed: 0,
            last_delivery: HashMap::new(),
        })
    }

    /// Marks `site` crashed: every message addressed to it is dropped until
    /// [`set_site_up`](Self::set_site_up). Usable without
    /// [`enable_faults`](Self::enable_faults) for pure liveness tracking.
    pub fn set_site_down(&mut self, site: SiteId) {
        self.fault_state().down.insert(site);
    }

    /// Marks `site` recovered; deliveries to it resume.
    pub fn set_site_up(&mut self, site: SiteId) {
        self.fault_state().down.remove(&site);
    }

    /// True unless `site` is currently marked crashed.
    #[must_use]
    pub fn is_site_up(&self, site: SiteId) -> bool {
        self.faults.as_ref().is_none_or(|f| !f.down.contains(&site))
    }

    /// Messages lost so far (random loss plus deliveries to crashed sites).
    #[must_use]
    pub fn dropped_messages(&self) -> u64 {
        self.faults.as_ref().map_or(0, |f| f.dropped)
    }

    /// Messages that received non-zero extra jitter so far.
    #[must_use]
    pub fn delayed_messages(&self) -> u64 {
        self.faults.as_ref().map_or(0, |f| f.delayed)
    }

    /// Applies loss, crash-refusal and jitter to a computed delivery time.
    /// The frame has already occupied the wire — losses happen at the
    /// receiver, so a dropped message still pays transmission time and is
    /// counted in the message statistics. Delivered messages never overtake
    /// an earlier delivery on the same directed link, even when jittered.
    fn apply_faults(&mut self, from: SiteId, to: SiteId, delivery: SimTime) -> Delivery {
        let Some(state) = self.faults.as_mut() else {
            return Delivery::Delivered(delivery);
        };
        if state.down.contains(&to) {
            state.dropped += 1;
            self.sink
                .emit(delivery, to, || Event::MsgDropped { to });
            return Delivery::Dropped;
        }
        if state.cfg.loss_probability > 0.0 && state.prng.bernoulli(state.cfg.loss_probability) {
            state.dropped += 1;
            self.sink
                .emit(delivery, to, || Event::MsgDropped { to });
            return Delivery::Dropped;
        }
        let mut at = delivery;
        if !state.cfg.max_delay_jitter.is_zero() {
            let jitter =
                SimDuration::from_micros(state.prng.below(state.cfg.max_delay_jitter.as_micros() + 1));
            if !jitter.is_zero() {
                state.delayed += 1;
                let jitter_us = jitter.as_micros();
                at = delivery + jitter;
                self.sink
                    .emit(at, to, || Event::MsgDelayed { to, jitter_us });
            }
        }
        // FIFO floor: a jittered predecessor on this link delays everything
        // behind it rather than being overtaken (a recall must not pass the
        // grant it revokes).
        let link = (from, to);
        if let Some(&floor) = state.last_delivery.get(&link) {
            at = at.max(floor);
        }
        state.last_delivery.insert(link, at);
        Delivery::Delivered(at)
    }

    /// Transmission time for `bytes` on the wire.
    #[must_use]
    pub fn tx_time(&self, bytes: u32) -> SimDuration {
        SimDuration::from_secs_f64(f64::from(bytes) * 8.0 / self.cfg.bandwidth_bps as f64)
    }

    fn transmit(&mut self, now: SimTime, from: SiteId, to: SiteId, bytes: u32) -> SimTime {
        let tx = self.tx_time(bytes);
        let start = match self.cfg.kind {
            LanKind::SharedEthernet => {
                let s = self.shared_busy_until.max(now);
                self.shared_busy_until = s + tx;
                s
            }
            LanKind::Switched => {
                let key = (from, to);
                let busy = self.link_busy_until.get(&key).copied().unwrap_or(SimTime::ZERO);
                let s = busy.max(now);
                self.link_busy_until.insert(key, s + tx);
                s
            }
        };
        start + tx + self.cfg.latency
    }

    /// Sends one message; returns its delivery time at `to`.
    ///
    /// `objects` is the number of object payloads carried (0 for control
    /// messages).
    pub fn send(
        &mut self,
        now: SimTime,
        from: SiteId,
        to: SiteId,
        kind: MessageKind,
        objects: u32,
    ) -> SimTime {
        let bytes = kind.wire_bytes(&self.cfg, self.object_bytes, objects);
        let delivery = self.transmit(now, from, to, bytes);
        self.stats.record(kind, 1, u64::from(bytes));
        delivery
    }

    /// Sends one physical frame that carries `logical` per-object protocol
    /// messages of the same kind (a batched request or grant). The frame
    /// pays for `objects` object payloads; statistics count `logical`
    /// messages.
    ///
    /// # Panics
    ///
    /// Panics if `logical` is zero.
    pub fn send_counted(
        &mut self,
        now: SimTime,
        from: SiteId,
        to: SiteId,
        kind: MessageKind,
        objects: u32,
        logical: u32,
    ) -> SimTime {
        assert!(logical > 0, "a batch must carry at least one message");
        let bytes = kind.wire_bytes(&self.cfg, self.object_bytes, objects)
            + (logical - 1) * self.cfg.control_bytes / 4;
        let delivery = self.transmit(now, from, to, bytes);
        self.stats
            .record_multi(kind, u64::from(logical), 1, u64::from(bytes));
        delivery
    }

    /// Resets the message statistics (warm-up boundary); medium booking
    /// state is untouched.
    pub fn reset_stats(&mut self) {
        self.stats.reset();
    }

    /// Sends a client-to-client message relayed through the directory
    /// server: the directory stores-and-forwards, so the second hop starts
    /// when the first is delivered. Counts one logical message and two
    /// transmissions.
    pub fn send_via_directory(
        &mut self,
        now: SimTime,
        from: SiteId,
        to: SiteId,
        kind: MessageKind,
        objects: u32,
    ) -> SimTime {
        let bytes = kind.wire_bytes(&self.cfg, self.object_bytes, objects);
        let hop1 = self.transmit(now, from, SiteId::Directory, bytes);
        let hop2 = self.transmit(hop1, SiteId::Directory, to, bytes);
        self.stats.record(kind, 2, 2 * u64::from(bytes));
        hop2
    }

    /// Fault-aware [`send`](Self::send): the frame pays wire time either
    /// way, but the fault layer may lose it (random loss or crashed
    /// destination) or add delivery jitter. Identical to `send` when faults
    /// are not enabled.
    pub fn try_send(
        &mut self,
        now: SimTime,
        from: SiteId,
        to: SiteId,
        kind: MessageKind,
        objects: u32,
    ) -> Delivery {
        let delivery = self.send(now, from, to, kind, objects);
        self.apply_faults(from, to, delivery)
    }

    /// Fault-aware [`send_counted`](Self::send_counted); the whole batch is
    /// lost or delivered as one frame.
    ///
    /// # Panics
    ///
    /// Panics if `logical` is zero.
    pub fn try_send_counted(
        &mut self,
        now: SimTime,
        from: SiteId,
        to: SiteId,
        kind: MessageKind,
        objects: u32,
        logical: u32,
    ) -> Delivery {
        let delivery = self.send_counted(now, from, to, kind, objects, logical);
        self.apply_faults(from, to, delivery)
    }

    /// Fault-aware [`send_via_directory`](Self::send_via_directory); loss
    /// and jitter apply to the relayed message as a whole.
    pub fn try_send_via_directory(
        &mut self,
        now: SimTime,
        from: SiteId,
        to: SiteId,
        kind: MessageKind,
        objects: u32,
    ) -> Delivery {
        let delivery = self.send_via_directory(now, from, to, kind, objects);
        self.apply_faults(from, to, delivery)
    }

    /// Cumulative message statistics.
    #[must_use]
    pub fn stats(&self) -> &MessageStats {
        &self.stats
    }

    /// Utilization proxy: when the shared medium frees up.
    #[must_use]
    pub fn busy_until(&self) -> SimTime {
        self.shared_busy_until
    }

    /// The configured object payload size in bytes.
    #[must_use]
    pub fn object_bytes(&self) -> u32 {
        self.object_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use siteselect_types::ClientId;

    fn site(c: u16) -> SiteId {
        SiteId::Client(ClientId(c))
    }

    fn fabric(kind: LanKind) -> Fabric {
        let cfg = NetworkConfig {
            kind,
            bandwidth_bps: 10_000_000,
            latency: SimDuration::from_micros(500),
            control_bytes: 128,
            header_bytes: 64,
        };
        Fabric::new(cfg, 2_048)
    }

    #[test]
    fn control_message_timing() {
        let mut f = fabric(LanKind::SharedEthernet);
        let d = f.send(SimTime::ZERO, site(0), SiteId::Server, MessageKind::ObjectRequest, 0);
        // 128B * 8 / 10Mbps = 102.4 us, + 500 us latency.
        let expected = SimDuration::from_micros(102) + SimDuration::from_micros(500);
        let got = d.duration_since(SimTime::ZERO);
        assert!(
            (got.as_secs_f64() - expected.as_secs_f64()).abs() < 2e-6,
            "got {got}"
        );
    }

    #[test]
    fn object_payload_is_slower() {
        let mut f = fabric(LanKind::SharedEthernet);
        let control = f.send(SimTime::ZERO, site(0), SiteId::Server, MessageKind::ObjectRequest, 0);
        let mut f2 = fabric(LanKind::SharedEthernet);
        let data = f2.send(SimTime::ZERO, SiteId::Server, site(0), MessageKind::ObjectSend, 1);
        assert!(data > control);
        // 2240B*8/10M = 1.792ms + 0.5ms
        assert!((data.as_secs_f64() - 0.002292).abs() < 1e-5);
    }

    #[test]
    fn shared_medium_serializes() {
        let mut f = fabric(LanKind::SharedEthernet);
        let d1 = f.send(SimTime::ZERO, site(0), SiteId::Server, MessageKind::ObjectSend, 1);
        let d2 = f.send(SimTime::ZERO, site(1), SiteId::Server, MessageKind::ObjectSend, 1);
        // Second transmission waits for the first to clear the wire.
        assert!(d2 > d1);
        assert!(d2.as_secs_f64() > 2.0 * 0.0017);
    }

    #[test]
    fn switched_links_are_independent() {
        let mut f = fabric(LanKind::Switched);
        let d1 = f.send(SimTime::ZERO, site(0), SiteId::Server, MessageKind::ObjectSend, 1);
        let d2 = f.send(SimTime::ZERO, site(1), SiteId::Server, MessageKind::ObjectSend, 1);
        assert_eq!(d1, d2); // distinct (from, to) pairs do not contend
        let d3 = f.send(SimTime::ZERO, site(0), SiteId::Server, MessageKind::ObjectSend, 1);
        assert!(d3 > d1); // same pair serializes
    }

    #[test]
    fn directory_relay_is_two_hops() {
        let mut shared = fabric(LanKind::SharedEthernet);
        let direct = shared.send(SimTime::ZERO, site(0), site(1), MessageKind::ObjectForward, 1);
        let mut relayed = fabric(LanKind::SharedEthernet);
        let via = relayed.send_via_directory(
            SimTime::ZERO,
            site(0),
            site(1),
            MessageKind::ObjectForward,
            1,
        );
        assert!(via > direct);
        assert_eq!(relayed.stats().count(MessageKind::ObjectForward), 1);
        assert_eq!(relayed.stats().total_transmissions(), 2);
        assert_eq!(
            relayed.stats().total_bytes(),
            2 * u64::from(MessageKind::ObjectForward.wire_bytes(
                &NetworkConfig::default(),
                2_048,
                1
            ))
        );
    }

    #[test]
    fn stats_count_by_kind() {
        let mut f = fabric(LanKind::SharedEthernet);
        for _ in 0..3 {
            f.send(SimTime::ZERO, site(0), SiteId::Server, MessageKind::ObjectRequest, 0);
        }
        f.send(SimTime::ZERO, SiteId::Server, site(0), MessageKind::Recall, 0);
        assert_eq!(f.stats().count(MessageKind::ObjectRequest), 3);
        assert_eq!(f.stats().count(MessageKind::Recall), 1);
        assert_eq!(f.stats().total_messages(), 4);
    }

    #[test]
    fn counted_batch_records_logical_messages_with_one_transmission() {
        let mut f = fabric(LanKind::SharedEthernet);
        f.send_counted(SimTime::ZERO, site(0), SiteId::Server, MessageKind::ObjectRequest, 0, 8);
        assert_eq!(f.stats().count(MessageKind::ObjectRequest), 8);
        assert_eq!(f.stats().total_transmissions(), 1);
        // The frame grows a little per extra logical message.
        let single = MessageKind::ObjectRequest.wire_bytes(&NetworkConfig::default(), 2_048, 0);
        assert!(f.stats().total_bytes() > u64::from(single));
    }

    #[test]
    #[should_panic(expected = "at least one message")]
    fn counted_batch_of_zero_panics() {
        let mut f = fabric(LanKind::SharedEthernet);
        f.send_counted(SimTime::ZERO, site(0), SiteId::Server, MessageKind::ObjectRequest, 0, 0);
    }

    #[test]
    fn reset_stats_zeroes_counters_but_keeps_medium_state() {
        let mut f = fabric(LanKind::SharedEthernet);
        f.send(SimTime::ZERO, site(0), SiteId::Server, MessageKind::ObjectSend, 1);
        let busy = f.busy_until();
        f.reset_stats();
        assert_eq!(f.stats().total_messages(), 0);
        assert_eq!(f.busy_until(), busy);
    }

    #[test]
    fn faults_off_try_send_equals_send() {
        let mut plain = fabric(LanKind::SharedEthernet);
        let mut faulty = fabric(LanKind::SharedEthernet);
        for i in 0..10 {
            let d = plain.send(SimTime::ZERO, site(i), SiteId::Server, MessageKind::ObjectSend, 1);
            let t = faulty.try_send(SimTime::ZERO, site(i), SiteId::Server, MessageKind::ObjectSend, 1);
            assert_eq!(t, Delivery::Delivered(d));
        }
        assert_eq!(faulty.dropped_messages(), 0);
        assert_eq!(faulty.delayed_messages(), 0);
    }

    #[test]
    fn crashed_destination_drops_but_pays_wire_time() {
        let mut f = fabric(LanKind::SharedEthernet);
        f.set_site_down(site(1));
        assert!(!f.is_site_up(site(1)));
        assert!(f.is_site_up(site(0)));
        let busy_before = f.busy_until();
        let d = f.try_send(SimTime::ZERO, SiteId::Server, site(1), MessageKind::ObjectSend, 1);
        assert_eq!(d, Delivery::Dropped);
        assert_eq!(d.time(), None);
        assert!(f.busy_until() > busy_before, "dropped frame still occupied the wire");
        assert_eq!(f.stats().count(MessageKind::ObjectSend), 1);
        assert_eq!(f.dropped_messages(), 1);

        f.set_site_up(site(1));
        let d = f.try_send(SimTime::ZERO, SiteId::Server, site(1), MessageKind::ObjectSend, 1);
        assert!(matches!(d, Delivery::Delivered(_)));
    }

    #[test]
    fn certain_loss_drops_everything_and_zero_loss_drops_nothing() {
        let mut f = fabric(LanKind::SharedEthernet);
        f.enable_faults(
            siteselect_types::FaultConfig {
                loss_probability: 1.0,
                ..siteselect_types::FaultConfig::default()
            },
            Prng::seed_from_u64(7),
        );
        for _ in 0..20 {
            let d = f.try_send(SimTime::ZERO, site(0), SiteId::Server, MessageKind::ObjectRequest, 0);
            assert_eq!(d, Delivery::Dropped);
        }
        assert_eq!(f.dropped_messages(), 20);

        let mut f = fabric(LanKind::SharedEthernet);
        f.enable_faults(siteselect_types::FaultConfig::default(), Prng::seed_from_u64(7));
        for _ in 0..20 {
            let d = f.try_send(SimTime::ZERO, site(0), SiteId::Server, MessageKind::ObjectRequest, 0);
            assert!(matches!(d, Delivery::Delivered(_)));
        }
        assert_eq!(f.dropped_messages(), 0);
    }

    #[test]
    fn jitter_never_delivers_earlier_and_is_bounded() {
        let jitter_cap = SimDuration::from_millis(5);
        let mut plain = fabric(LanKind::Switched);
        let mut f = fabric(LanKind::Switched);
        f.enable_faults(
            siteselect_types::FaultConfig {
                max_delay_jitter: jitter_cap,
                ..siteselect_types::FaultConfig::default()
            },
            Prng::seed_from_u64(99),
        );
        for i in 0..50u16 {
            let base =
                plain.send(SimTime::ZERO, site(i), SiteId::Server, MessageKind::ObjectRequest, 0);
            let Delivery::Delivered(t) =
                f.try_send(SimTime::ZERO, site(i), SiteId::Server, MessageKind::ObjectRequest, 0)
            else {
                panic!("jitter alone never drops");
            };
            assert!(t >= base);
            assert!(t.duration_since(base) <= jitter_cap);
        }
        assert!(f.delayed_messages() > 0);
    }

    #[test]
    fn jitter_never_reorders_a_link() {
        let mut f = fabric(LanKind::Switched);
        f.enable_faults(
            siteselect_types::FaultConfig {
                max_delay_jitter: SimDuration::from_millis(50),
                ..siteselect_types::FaultConfig::default()
            },
            Prng::seed_from_u64(3),
        );
        // Alternate big and small frames: without the FIFO floor a lightly
        // jittered control message would overtake a heavily jittered data
        // frame sent just before it.
        let mut now = SimTime::ZERO;
        let mut last = SimTime::ZERO;
        for i in 0..200u32 {
            now += SimDuration::from_micros(200);
            let (kind, objects) = if i % 2 == 0 {
                (MessageKind::ObjectSend, 1)
            } else {
                (MessageKind::Recall, 0)
            };
            if let Delivery::Delivered(t) = f.try_send(now, SiteId::Server, site(1), kind, objects)
            {
                assert!(t >= last, "delivery {t} overtook {last}");
                last = t;
            }
        }
        assert!(f.delayed_messages() > 0, "jitter must actually have fired");
    }

    #[test]
    fn later_sends_on_idle_medium_pay_no_queueing() {
        let mut f = fabric(LanKind::SharedEthernet);
        f.send(SimTime::ZERO, site(0), SiteId::Server, MessageKind::ObjectSend, 1);
        let t = SimTime::from_secs(10);
        let d = f.send(t, site(1), SiteId::Server, MessageKind::ObjectRequest, 0);
        assert!(d.duration_since(t).as_secs_f64() < 0.001);
    }
}
