//! The protocol message vocabulary and its wire sizes.

use siteselect_types::NetworkConfig;

/// Every message category exchanged by the three systems.
///
/// The variants marked *(Table 4)* correspond one-to-one to the rows of the
/// paper's message-count table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum MessageKind {
    // -- Centralized system --
    /// Client submits a transaction to the server for execution.
    TxnSubmit,
    /// Server reports a transaction's outcome to its client.
    TxnResult,

    // -- Client-server object/lock traffic --
    /// *(Table 4)* Object/lock request, client → server.
    ObjectRequest,
    /// *(Table 4)* Object shipped with its lock, server → client (2 KB payload).
    ObjectSend,
    /// Lock granted without data (client has the object cached but needed a
    /// stronger lock), server → client.
    LockGrant,
    /// *(Table 4)* Lock callback / recall, server → client.
    Recall,
    /// *(Table 4)* Object returned to the server (2 KB payload when dirty or
    /// revoked), client → server.
    ObjectReturn,
    /// Callback acknowledged without returning data (clean downgrade),
    /// client → server.
    CallbackAck,
    /// Conflict report: locations of conflicting holders instead of the
    /// objects, server → client (LS §4).
    ConflictInfo,

    // -- Load-sharing traffic --
    /// *(Table 4)* Object forwarded client → client down a forward list
    /// (2 KB payload).
    ObjectForward,
    /// Whole transaction shipped to a better site, client → client.
    TxnShip,
    /// Result of a shipped transaction reported back to its origin.
    TxnShipResult,
    /// Subtask of a decomposed transaction shipped to a site.
    SubtaskShip,
    /// Subtask result returned to the decomposition origin.
    SubtaskResult,
    /// Client asks the server for object locations and client loads.
    LoadQuery,
    /// Server replies with locations/loads.
    LoadReply,
}

impl MessageKind {
    /// All kinds, in declaration order (for iteration in reports).
    pub const ALL: [MessageKind; 16] = [
        MessageKind::TxnSubmit,
        MessageKind::TxnResult,
        MessageKind::ObjectRequest,
        MessageKind::ObjectSend,
        MessageKind::LockGrant,
        MessageKind::Recall,
        MessageKind::ObjectReturn,
        MessageKind::CallbackAck,
        MessageKind::ConflictInfo,
        MessageKind::ObjectForward,
        MessageKind::TxnShip,
        MessageKind::TxnShipResult,
        MessageKind::SubtaskShip,
        MessageKind::SubtaskResult,
        MessageKind::LoadQuery,
        MessageKind::LoadReply,
    ];

    /// Stable dense index (for counters).
    #[must_use]
    pub fn index(self) -> usize {
        Self::ALL
            .iter()
            .position(|&k| k == self)
            .expect("kind listed in ALL")
    }

    /// True if this kind normally carries object payloads.
    #[must_use]
    pub fn carries_objects(self) -> bool {
        matches!(
            self,
            MessageKind::ObjectSend | MessageKind::ObjectReturn | MessageKind::ObjectForward
        )
    }

    /// Wire size in bytes when carrying `objects` object payloads of
    /// `object_bytes` each. Control messages use the configured control
    /// size; transaction shipments carry a descriptor (~4× control).
    #[must_use]
    pub fn wire_bytes(self, cfg: &NetworkConfig, object_bytes: u32, objects: u32) -> u32 {
        let base = match self {
            MessageKind::TxnShip | MessageKind::SubtaskShip => cfg.control_bytes * 4,
            MessageKind::LoadReply | MessageKind::ConflictInfo => cfg.control_bytes * 2,
            _ => cfg.control_bytes,
        };
        if objects > 0 {
            base + cfg.header_bytes + objects * object_bytes
        } else {
            base
        }
    }

    /// Human-readable label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            MessageKind::TxnSubmit => "txn submit (client to server)",
            MessageKind::TxnResult => "txn result (server to client)",
            MessageKind::ObjectRequest => "object request (client to server)",
            MessageKind::ObjectSend => "object sent (server to client)",
            MessageKind::LockGrant => "lock grant without data (server to client)",
            MessageKind::Recall => "object recall (server to client)",
            MessageKind::ObjectReturn => "object returned (client to server)",
            MessageKind::CallbackAck => "callback ack / downgrade (client to server)",
            MessageKind::ConflictInfo => "conflict info (server to client)",
            MessageKind::ObjectForward => "object forwarded via forward list (client to client)",
            MessageKind::TxnShip => "transaction shipped (client to client)",
            MessageKind::TxnShipResult => "shipped txn result (client to client)",
            MessageKind::SubtaskShip => "subtask shipped (client to client)",
            MessageKind::SubtaskResult => "subtask result (client to client)",
            MessageKind::LoadQuery => "load/location query (client to server)",
            MessageKind::LoadReply => "load/location reply (server to client)",
        }
    }
}

impl std::fmt::Display for MessageKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_is_complete_and_indices_dense() {
        for (i, k) in MessageKind::ALL.iter().enumerate() {
            assert_eq!(k.index(), i);
        }
    }

    #[test]
    fn wire_sizes() {
        let cfg = NetworkConfig::default(); // control 128, header 64
        assert_eq!(
            MessageKind::ObjectRequest.wire_bytes(&cfg, 2_048, 0),
            128
        );
        assert_eq!(
            MessageKind::ObjectSend.wire_bytes(&cfg, 2_048, 1),
            128 + 64 + 2_048
        );
        assert_eq!(
            MessageKind::ObjectSend.wire_bytes(&cfg, 2_048, 3),
            128 + 64 + 3 * 2_048
        );
        assert_eq!(MessageKind::TxnShip.wire_bytes(&cfg, 2_048, 0), 512);
        assert_eq!(MessageKind::ConflictInfo.wire_bytes(&cfg, 2_048, 0), 256);
    }

    #[test]
    fn payload_kinds_flagged() {
        assert!(MessageKind::ObjectSend.carries_objects());
        assert!(MessageKind::ObjectForward.carries_objects());
        assert!(MessageKind::ObjectReturn.carries_objects());
        assert!(!MessageKind::Recall.carries_objects());
        assert!(!MessageKind::TxnShip.carries_objects());
    }

    #[test]
    fn labels_are_distinct_and_nonempty() {
        let mut labels: Vec<_> = MessageKind::ALL.iter().map(|k| k.label()).collect();
        labels.sort_unstable();
        let n = labels.len();
        labels.dedup();
        assert_eq!(labels.len(), n);
        assert!(MessageKind::Recall.to_string().contains("recall"));
    }
}
