//! Per-category message accounting — the data behind the paper's Table 4.


use crate::message::MessageKind;

/// Counts of logical messages and wire transmissions by category.
///
/// A message routed through the directory server is *one logical message*
/// (one Table 4 row increment) but *two wire transmissions*; both are
/// tracked.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MessageStats {
    by_kind: Vec<u64>,
    bytes_by_kind: Vec<u64>,
    transmissions: u64,
    total_bytes: u64,
}

impl MessageStats {
    /// Creates zeroed statistics.
    #[must_use]
    pub fn new() -> Self {
        MessageStats {
            by_kind: vec![0; MessageKind::ALL.len()],
            bytes_by_kind: vec![0; MessageKind::ALL.len()],
            transmissions: 0,
            total_bytes: 0,
        }
    }

    /// Records one logical message of `kind` that used `transmissions` wire
    /// transmissions totalling `bytes` bytes.
    pub fn record(&mut self, kind: MessageKind, transmissions: u64, bytes: u64) {
        self.record_multi(kind, 1, transmissions, bytes);
    }

    /// Records `logical` logical messages of `kind` that were physically
    /// batched into `transmissions` wire transmissions totalling `bytes`
    /// bytes. Used when one wire frame carries several per-object requests
    /// or grants (the paper's message counts are per object).
    pub fn record_multi(&mut self, kind: MessageKind, logical: u64, transmissions: u64, bytes: u64) {
        self.by_kind[kind.index()] += logical;
        self.bytes_by_kind[kind.index()] += bytes;
        self.transmissions += transmissions;
        self.total_bytes += bytes;
    }

    /// Resets every counter to zero (warm-up boundary).
    pub fn reset(&mut self) {
        *self = MessageStats::new();
    }

    /// Logical messages of `kind`.
    #[must_use]
    pub fn count(&self, kind: MessageKind) -> u64 {
        self.by_kind[kind.index()]
    }

    /// Bytes carried by messages of `kind`.
    #[must_use]
    pub fn bytes(&self, kind: MessageKind) -> u64 {
        self.bytes_by_kind[kind.index()]
    }

    /// Total logical messages.
    #[must_use]
    pub fn total_messages(&self) -> u64 {
        self.by_kind.iter().sum()
    }

    /// Total wire transmissions (≥ total messages when a directory relays).
    #[must_use]
    pub fn total_transmissions(&self) -> u64 {
        self.transmissions
    }

    /// Total bytes on the wire.
    #[must_use]
    pub fn total_bytes(&self) -> u64 {
        self.total_bytes
    }

    /// Merges another accumulator into this one.
    pub fn merge(&mut self, other: &MessageStats) {
        for i in 0..self.by_kind.len() {
            self.by_kind[i] += other.by_kind[i];
            self.bytes_by_kind[i] += other.bytes_by_kind[i];
        }
        self.transmissions += other.transmissions;
        self.total_bytes += other.total_bytes;
    }

    /// The five Table 4 rows, in the paper's order:
    /// (object requests, objects sent, forward-list satisfactions, recalls,
    /// objects returned).
    #[must_use]
    pub fn table4_rows(&self) -> [(&'static str, u64); 5] {
        [
            (
                "Object Request Messages (client to server)",
                self.count(MessageKind::ObjectRequest),
            ),
            (
                "Objects Sent (server to client)",
                self.count(MessageKind::ObjectSend),
            ),
            (
                "Object Requests Satisfied Using Forward Lists (client to client)",
                self.count(MessageKind::ObjectForward),
            ),
            (
                "Objects Recall Messages (server to client)",
                self.count(MessageKind::Recall),
            ),
            (
                "Objects Returned (client to server)",
                self.count(MessageKind::ObjectReturn),
            ),
        ]
    }
}

impl Default for MessageStats {
    fn default() -> Self {
        MessageStats::new()
    }
}

impl std::fmt::Display for MessageStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for k in MessageKind::ALL {
            let c = self.count(k);
            if c > 0 {
                writeln!(f, "{:>10}  {}", c, k.label())?;
            }
        }
        writeln!(
            f,
            "{:>10}  total messages ({} transmissions, {} bytes)",
            self.total_messages(),
            self.transmissions,
            self.total_bytes
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_query() {
        let mut s = MessageStats::new();
        s.record(MessageKind::ObjectRequest, 1, 128);
        s.record(MessageKind::ObjectRequest, 1, 128);
        s.record(MessageKind::ObjectForward, 2, 4_480);
        assert_eq!(s.count(MessageKind::ObjectRequest), 2);
        assert_eq!(s.count(MessageKind::ObjectForward), 1);
        assert_eq!(s.total_messages(), 3);
        assert_eq!(s.total_transmissions(), 4);
        assert_eq!(s.total_bytes(), 256 + 4_480);
        assert_eq!(s.bytes(MessageKind::ObjectRequest), 256);
    }

    #[test]
    fn table4_rows_in_paper_order() {
        let mut s = MessageStats::new();
        s.record(MessageKind::ObjectRequest, 1, 1);
        s.record(MessageKind::ObjectSend, 1, 1);
        s.record(MessageKind::ObjectSend, 1, 1);
        s.record(MessageKind::Recall, 1, 1);
        let rows = s.table4_rows();
        assert!(rows[0].0.contains("Request"));
        assert_eq!(rows[0].1, 1);
        assert_eq!(rows[1].1, 2);
        assert_eq!(rows[2].1, 0);
        assert_eq!(rows[3].1, 1);
        assert_eq!(rows[4].1, 0);
    }

    #[test]
    fn merge_adds() {
        let mut a = MessageStats::new();
        let mut b = MessageStats::new();
        a.record(MessageKind::Recall, 1, 10);
        b.record(MessageKind::Recall, 1, 20);
        b.record(MessageKind::TxnShip, 2, 30);
        a.merge(&b);
        assert_eq!(a.count(MessageKind::Recall), 2);
        assert_eq!(a.count(MessageKind::TxnShip), 1);
        assert_eq!(a.total_bytes(), 60);
        assert_eq!(a.total_transmissions(), 4);
    }

    #[test]
    fn display_mentions_totals() {
        let mut s = MessageStats::new();
        s.record(MessageKind::ObjectSend, 1, 2_240);
        let text = s.to_string();
        assert!(text.contains("object sent"));
        assert!(text.contains("total messages"));
    }
}
