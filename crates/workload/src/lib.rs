//! Workload generation for the `siteselect` experiments.
//!
//! Reproduces the paper's Table 1 workload: per-client Poisson transaction
//! arrivals (mean inter-arrival 10 s), exponential transaction lengths
//! (mean 10 s) and deadlines (mean offset 20 s), ten objects per transaction
//! on average, a configurable per-access update probability, 10% decomposable
//! transactions, and the **Localized-RW** access pattern (75% of accesses
//! uniform within a per-client hot region, 25% Zipf over the remainder).
//!
//! # Example
//!
//! ```
//! use siteselect_sim::Prng;
//! use siteselect_types::{ClientId, SimDuration, WorkloadConfig};
//! use siteselect_workload::TransactionGenerator;
//!
//! let cfg = WorkloadConfig::default();
//! let mut gen = TransactionGenerator::new(
//!     ClientId(0),
//!     &cfg,
//!     0.1,        // CPU fraction of nominal length
//!     10_000,     // database objects
//!     20,         // clients in the cluster
//!     Prng::seed_from_u64(1),
//! );
//! let txns = gen.generate_until(SimDuration::from_secs(100));
//! assert!(!txns.is_empty());
//! assert!(txns.windows(2).all(|w| w[0].arrival <= w[1].arrival));
//! ```

pub mod access;
pub mod dist;
pub mod trace;
pub mod txngen;

pub use access::LocalizedRw;
pub use dist::Zipf;
pub use trace::{Trace, TraceSummary};
pub use txngen::TransactionGenerator;
