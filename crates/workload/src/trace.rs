//! Workload traces: a merged, arrival-ordered stream of transactions for a
//! whole cluster, recordable and replayable so every system model runs on
//! byte-identical input.

use siteselect_sim::Prng;
use siteselect_types::{ClientId, SimDuration, TransactionSpec, WorkloadConfig};

use crate::txngen::TransactionGenerator;

/// Aggregate description of a trace, for reports and sanity checks.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceSummary {
    /// Number of transactions.
    pub transactions: usize,
    /// Fraction of transactions writing at least one object.
    pub update_txn_fraction: f64,
    /// Fraction of individual accesses that are writes.
    pub update_access_fraction: f64,
    /// Fraction of decomposable transactions.
    pub decomposable_fraction: f64,
    /// Mean accesses per transaction.
    pub mean_accesses: f64,
    /// Mean deadline offset in seconds.
    pub mean_deadline_offset_secs: f64,
}

/// A cluster-wide workload trace, ordered by arrival time.
///
/// # Example
///
/// ```
/// use siteselect_types::{SimDuration, WorkloadConfig};
/// use siteselect_workload::Trace;
///
/// let trace = Trace::generate(&WorkloadConfig::default(), 0.1, 10_000, 4,
///                             SimDuration::from_secs(200), 7);
/// assert!(trace.len() > 0);
/// let s = trace.summary();
/// assert!(s.mean_accesses > 5.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Trace {
    transactions: Vec<TransactionSpec>,
}

impl Trace {
    /// Generates a trace for `num_clients` clients over `duration`, merging
    /// the per-client streams in arrival order. `seed` derives one
    /// independent PRNG stream per client.
    #[must_use]
    pub fn generate(
        cfg: &WorkloadConfig,
        cpu_fraction: f64,
        db_size: u32,
        num_clients: u16,
        duration: SimDuration,
        seed: u64,
    ) -> Self {
        let root = Prng::seed_from_u64(seed);
        let mut all = Vec::new();
        for c in 0..num_clients {
            let mut gen = TransactionGenerator::new(
                ClientId(c),
                cfg,
                cpu_fraction,
                db_size,
                num_clients,
                root.derive(u64::from(c) + 1),
            );
            all.extend(gen.generate_until(duration));
        }
        // Stable sort by (arrival, id) for full determinism.
        all.sort_by_key(|t| (t.arrival, t.id));
        Trace { transactions: all }
    }

    /// Builds a trace from explicit transactions (sorted on construction).
    #[must_use]
    pub fn from_transactions(mut transactions: Vec<TransactionSpec>) -> Self {
        transactions.sort_by_key(|t| (t.arrival, t.id));
        Trace { transactions }
    }

    /// The transactions, in arrival order.
    #[must_use]
    pub fn transactions(&self) -> &[TransactionSpec] {
        &self.transactions
    }

    /// Consumes the trace, yielding its transactions in arrival order
    /// without copying them.
    #[must_use]
    pub fn into_transactions(self) -> Vec<TransactionSpec> {
        self.transactions
    }

    /// Number of transactions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.transactions.len()
    }

    /// True if the trace is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.transactions.is_empty()
    }

    /// Iterates over the transactions of one client, in order.
    pub fn for_client(&self, client: ClientId) -> impl Iterator<Item = &TransactionSpec> {
        self.transactions.iter().filter(move |t| t.origin == client)
    }

    /// Computes aggregate statistics.
    #[must_use]
    pub fn summary(&self) -> TraceSummary {
        let n = self.transactions.len();
        if n == 0 {
            return TraceSummary {
                transactions: 0,
                update_txn_fraction: 0.0,
                update_access_fraction: 0.0,
                decomposable_fraction: 0.0,
                mean_accesses: 0.0,
                mean_deadline_offset_secs: 0.0,
            };
        }
        let mut update_txns = 0usize;
        let mut writes = 0usize;
        let mut accesses = 0usize;
        let mut decomposable = 0usize;
        let mut offset = 0.0f64;
        for t in &self.transactions {
            if t.is_update() {
                update_txns += 1;
            }
            accesses += t.accesses.len();
            writes += t.accesses.iter().filter(|a| a.write).count();
            if t.decomposable {
                decomposable += 1;
            }
            offset += t.deadline.duration_since(t.arrival).as_secs_f64();
        }
        TraceSummary {
            transactions: n,
            update_txn_fraction: update_txns as f64 / n as f64,
            update_access_fraction: if accesses == 0 {
                0.0
            } else {
                writes as f64 / accesses as f64
            },
            decomposable_fraction: decomposable as f64 / n as f64,
            mean_accesses: accesses as f64 / n as f64,
            mean_deadline_offset_secs: offset / n as f64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use siteselect_types::SimTime;

    fn trace(clients: u16, seed: u64) -> Trace {
        Trace::generate(
            &WorkloadConfig::default(),
            0.1,
            10_000,
            clients,
            SimDuration::from_secs(500),
            seed,
        )
    }

    #[test]
    fn merged_trace_is_arrival_ordered() {
        let t = trace(8, 1);
        assert!(t.len() > 100);
        for w in t.transactions().windows(2) {
            assert!(w[0].arrival <= w[1].arrival);
        }
    }

    #[test]
    fn every_client_contributes() {
        let t = trace(8, 2);
        for c in 0..8 {
            assert!(
                t.for_client(ClientId(c)).count() > 10,
                "client {c} underrepresented"
            );
        }
    }

    #[test]
    fn deterministic_by_seed() {
        assert_eq!(trace(4, 3), trace(4, 3));
        assert_ne!(trace(4, 3), trace(4, 4));
    }

    #[test]
    fn adding_clients_preserves_existing_streams() {
        let small = trace(4, 5);
        let large = trace(8, 5);
        // The per-client streams differ only through the access pattern's
        // hot-region placement, which depends on cluster size; ids and
        // arrival processes must match exactly.
        let small_c0: Vec<_> = small.for_client(ClientId(0)).map(|t| t.id).collect();
        let large_c0: Vec<_> = large.for_client(ClientId(0)).map(|t| t.id).collect();
        assert_eq!(small_c0, large_c0);
        let small_arr: Vec<_> = small.for_client(ClientId(0)).map(|t| t.arrival).collect();
        let large_arr: Vec<_> = large.for_client(ClientId(0)).map(|t| t.arrival).collect();
        assert_eq!(small_arr, large_arr);
    }

    #[test]
    fn summary_reflects_configuration() {
        let t = Trace::generate(
            &WorkloadConfig {
                update_fraction: 0.2,
                ..WorkloadConfig::default()
            },
            0.1,
            10_000,
            10,
            SimDuration::from_secs(2_000),
            6,
        );
        let s = t.summary();
        assert_eq!(s.transactions, t.len());
        assert!((s.update_access_fraction - 0.2).abs() < 0.03);
        assert!((s.mean_accesses - 10.0).abs() < 0.5);
        assert!((s.mean_deadline_offset_secs - 20.0).abs() < 2.0);
        assert!((s.decomposable_fraction - 0.1).abs() < 0.05);
        assert!(s.update_txn_fraction >= s.update_access_fraction);
    }

    #[test]
    fn empty_trace_summary_is_zeroed() {
        let t = Trace::from_transactions(vec![]);
        assert!(t.is_empty());
        let s = t.summary();
        assert_eq!(s.transactions, 0);
        assert_eq!(s.mean_accesses, 0.0);
    }

    #[test]
    fn from_transactions_sorts() {
        let mut t1 = trace(2, 7).transactions()[0].clone();
        let mut t2 = t1.clone();
        t1.arrival = SimTime::from_secs(100);
        t2.arrival = SimTime::from_secs(50);
        let tr = Trace::from_transactions(vec![t1, t2]);
        assert_eq!(tr.transactions()[0].arrival, SimTime::from_secs(50));
    }
}
