//! Per-client real-time transaction stream generation (Table 1).

use siteselect_sim::Prng;
use siteselect_types::{
    AccessSpec, ClientId, DeadlinePolicy, SimDuration, SimTime, TransactionSpec, WorkloadConfig,
};

use crate::access::LocalizedRw;

/// Generates one client's transaction stream: Poisson arrivals, exponential
/// lengths and deadlines, Localized-RW access sets, per-access updates and a
/// decomposable flag.
///
/// Each generator owns an independent PRNG stream, so the workload offered
/// by client *i* does not change when other clients are added — a
/// prerequisite for comparing the three systems on identical inputs.
///
/// # Example
///
/// ```
/// use siteselect_sim::Prng;
/// use siteselect_types::{ClientId, SimDuration, WorkloadConfig};
/// use siteselect_workload::TransactionGenerator;
///
/// let mut gen = TransactionGenerator::new(
///     ClientId(0),
///     &WorkloadConfig::default(),
///     0.1,
///     10_000,
///     20,
///     Prng::seed_from_u64(9),
/// );
/// let txn = gen.next_txn();
/// assert_eq!(txn.origin, ClientId(0));
/// assert!(txn.deadline > txn.arrival);
/// ```
#[derive(Debug, Clone)]
pub struct TransactionGenerator {
    client: ClientId,
    cfg: WorkloadConfig,
    cpu_fraction: f64,
    pattern: LocalizedRw,
    rng: Prng,
    clock: SimTime,
    seq: u64,
}

impl TransactionGenerator {
    /// Creates a generator for `client` in a cluster of `num_clients` over
    /// `db_size` objects. `cpu_fraction` converts the nominal exponential
    /// length into pure CPU demand (see `CpuConfig::txn_cpu_fraction`).
    #[must_use]
    pub fn new(
        client: ClientId,
        cfg: &WorkloadConfig,
        cpu_fraction: f64,
        db_size: u32,
        num_clients: u16,
        rng: Prng,
    ) -> Self {
        TransactionGenerator {
            client,
            cfg: *cfg,
            cpu_fraction,
            pattern: LocalizedRw::new(client, &cfg.access_pattern, db_size, num_clients),
            rng,
            clock: SimTime::ZERO,
            seq: 0,
        }
    }

    /// The access pattern backing this generator.
    #[must_use]
    pub fn pattern(&self) -> &LocalizedRw {
        &self.pattern
    }

    /// Number of objects for the next transaction: uniform over
    /// `[mean/2, 3*mean/2]`, clamped to at least one (mean 10 ⇒ 5..=15).
    fn sample_object_count(&mut self) -> usize {
        let mean = self.cfg.mean_objects_per_txn;
        let lo = (mean * 0.5).round().max(1.0) as u64;
        let hi = (mean * 1.5).round().max(lo as f64) as u64;
        self.rng.range_u64(lo, hi + 1) as usize
    }

    /// Generates the next transaction in arrival order.
    pub fn next_txn(&mut self) -> TransactionSpec {
        self.clock += self.rng.exp_duration(self.cfg.mean_interarrival);
        let arrival = self.clock;
        let length = self
            .rng
            .exp_duration(self.cfg.mean_length)
            .max(SimDuration::from_millis(1));
        let cpu_demand = length.mul_f64(self.cpu_fraction).max(SimDuration::from_micros(100));
        let deadline = match self.cfg.deadline {
            DeadlinePolicy::ExponentialOffset { mean } => {
                arrival + self.rng.exp_duration(mean).max(SimDuration::from_millis(1))
            }
            DeadlinePolicy::ProportionalSlack { factor } => arrival + length.mul_f64(factor),
        };
        let k = self.sample_object_count();
        let objects = self.pattern.sample_distinct(&mut self.rng, k);
        let accesses = objects
            .into_iter()
            .map(|object| AccessSpec {
                object,
                write: self.rng.bernoulli(self.cfg.update_fraction),
            })
            .collect();
        let decomposable = self.rng.bernoulli(self.cfg.decomposable_fraction);
        let id = siteselect_types::TransactionId::new(self.client, self.seq);
        self.seq += 1;
        let mut spec = TransactionSpec {
            id,
            origin: self.client,
            arrival,
            deadline,
            cpu_demand,
            accesses,
            decomposable,
        };
        spec.normalize_accesses();
        spec
    }

    /// Generates every transaction arriving strictly before `duration`.
    pub fn generate_until(&mut self, duration: SimDuration) -> Vec<TransactionSpec> {
        let end = SimTime::ZERO + duration;
        let mut out = Vec::new();
        loop {
            let t = self.next_txn();
            if t.arrival >= end {
                break;
            }
            out.push(t);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn generator(seed: u64, update_fraction: f64) -> TransactionGenerator {
        let cfg = WorkloadConfig {
            update_fraction,
            ..WorkloadConfig::default()
        };
        TransactionGenerator::new(ClientId(1), &cfg, 0.1, 10_000, 20, Prng::seed_from_u64(seed))
    }

    #[test]
    fn arrivals_are_monotone_and_ids_unique() {
        let mut g = generator(1, 0.05);
        let txns = g.generate_until(SimDuration::from_secs(10_000));
        assert!(txns.len() > 500);
        for w in txns.windows(2) {
            assert!(w[0].arrival <= w[1].arrival);
            assert!(w[0].id != w[1].id);
        }
    }

    #[test]
    fn interarrival_mean_matches_config() {
        let mut g = generator(2, 0.05);
        let txns = g.generate_until(SimDuration::from_secs(100_000));
        let mean = 100_000.0 / txns.len() as f64;
        assert!((mean - 10.0).abs() < 0.6, "mean inter-arrival {mean}");
    }

    #[test]
    fn deadline_offset_mean_matches_config() {
        let mut g = generator(3, 0.05);
        let txns = g.generate_until(SimDuration::from_secs(50_000));
        let mean: f64 = txns
            .iter()
            .map(|t| t.deadline.duration_since(t.arrival).as_secs_f64())
            .sum::<f64>()
            / txns.len() as f64;
        assert!((mean - 20.0).abs() < 1.0, "mean deadline offset {mean}");
    }

    #[test]
    fn cpu_demand_is_fraction_of_length() {
        let mut g = generator(4, 0.05);
        let txns = g.generate_until(SimDuration::from_secs(50_000));
        let mean: f64 = txns
            .iter()
            .map(|t| t.cpu_demand.as_secs_f64())
            .sum::<f64>()
            / txns.len() as f64;
        // mean length 10s * fraction 0.1 = 1s
        assert!((mean - 1.0).abs() < 0.1, "mean cpu demand {mean}");
    }

    #[test]
    fn object_count_centred_on_mean() {
        let mut g = generator(5, 0.05);
        let txns = g.generate_until(SimDuration::from_secs(50_000));
        let mean: f64 =
            txns.iter().map(|t| t.accesses.len() as f64).sum::<f64>() / txns.len() as f64;
        assert!((mean - 10.0).abs() < 0.5, "mean objects per txn {mean}");
        assert!(txns.iter().all(|t| (5..=15).contains(&t.accesses.len())));
    }

    #[test]
    fn update_fraction_matches_config() {
        for target in [0.01, 0.05, 0.20] {
            let mut g = generator(6, target);
            let txns = g.generate_until(SimDuration::from_secs(50_000));
            let (mut writes, mut total) = (0u64, 0u64);
            for t in &txns {
                total += t.accesses.len() as u64;
                writes += t.accesses.iter().filter(|a| a.write).count() as u64;
            }
            let frac = writes as f64 / total as f64;
            assert!(
                (frac - target).abs() < target.max(0.01) * 0.3,
                "update fraction {frac} for target {target}"
            );
        }
    }

    #[test]
    fn decomposable_fraction_about_ten_percent() {
        let mut g = generator(7, 0.05);
        let txns = g.generate_until(SimDuration::from_secs(100_000));
        let frac = txns.iter().filter(|t| t.decomposable).count() as f64 / txns.len() as f64;
        assert!((frac - 0.10).abs() < 0.02, "decomposable fraction {frac}");
    }

    #[test]
    fn accesses_are_normalized() {
        let mut g = generator(8, 0.2);
        for _ in 0..100 {
            let t = g.next_txn();
            let mut objs: Vec<_> = t.objects().collect();
            let n = objs.len();
            objs.dedup();
            assert_eq!(objs.len(), n, "duplicate objects in access list");
            assert!(objs.windows(2).all(|w| w[0] < w[1]), "accesses sorted");
        }
    }

    #[test]
    fn same_seed_same_stream() {
        let mut a = generator(9, 0.05);
        let mut b = generator(9, 0.05);
        for _ in 0..50 {
            assert_eq!(a.next_txn(), b.next_txn());
        }
    }

    #[test]
    fn proportional_slack_policy() {
        let cfg = WorkloadConfig {
            deadline: DeadlinePolicy::ProportionalSlack { factor: 3.0 },
            ..WorkloadConfig::default()
        };
        let mut g = TransactionGenerator::new(
            ClientId(0),
            &cfg,
            0.1,
            10_000,
            10,
            Prng::seed_from_u64(10),
        );
        for _ in 0..100 {
            let t = g.next_txn();
            let offset = t.deadline.duration_since(t.arrival).as_secs_f64();
            let nominal = t.cpu_demand.as_secs_f64() / 0.1;
            assert!((offset - 3.0 * nominal).abs() < 0.01 * nominal.max(1.0));
        }
    }
}
