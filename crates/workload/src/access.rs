//! The Localized-RW database access pattern (paper §5.1).
//!
//! "75% of each client's accesses were made to a particular portion of the
//! database according to the Uniform distribution while the other 25% of the
//! accesses were to the remainder of the database according to the Zipf
//! distribution."
//!
//! Each client's *hot region* is a contiguous window of the object space
//! whose start is spread evenly across clients. When the hot region is
//! larger than the database divided by the client count, neighbouring
//! regions overlap — which is exactly how inter-client contention grows with
//! the cluster size in the paper's experiments. Cold (Zipf) accesses rank
//! the non-hot objects from object 0 upward, so all clients skew toward the
//! same globally popular objects.

use siteselect_sim::Prng;
use siteselect_types::{AccessPatternConfig, ClientId, ObjectId};

use crate::dist::Zipf;

/// Per-client Localized-RW access sampler.
///
/// # Example
///
/// ```
/// use siteselect_sim::Prng;
/// use siteselect_types::{AccessPatternConfig, ClientId};
/// use siteselect_workload::LocalizedRw;
///
/// let pattern = LocalizedRw::new(ClientId(3), &AccessPatternConfig::default(), 10_000, 20);
/// let mut rng = Prng::seed_from_u64(42);
/// let obj = pattern.sample(&mut rng);
/// assert!(obj.index() < 10_000);
/// ```
#[derive(Debug, Clone)]
pub struct LocalizedRw {
    db_size: u32,
    hot_start: u32,
    hot_len: u32,
    hot_fraction: f64,
    cold: Zipf,
}

impl LocalizedRw {
    /// Builds the pattern for `client` in a cluster of `num_clients` over a
    /// database of `db_size` objects.
    ///
    /// # Panics
    ///
    /// Panics if `db_size == 0`, `num_clients == 0`, or the configured hot
    /// region is larger than the database.
    #[must_use]
    pub fn new(
        client: ClientId,
        cfg: &AccessPatternConfig,
        db_size: u32,
        num_clients: u16,
    ) -> Self {
        assert!(db_size > 0, "database must be non-empty");
        assert!(num_clients > 0, "cluster must have clients");
        let hot_len = cfg.hot_region_objects.min(db_size);
        let stride = db_size / u32::from(num_clients);
        let hot_start = (u32::from(client.0) * stride.max(1)) % db_size;
        let cold_n = (db_size - hot_len).max(1) as usize;
        LocalizedRw {
            db_size,
            hot_start,
            hot_len,
            hot_fraction: cfg.hot_access_fraction,
            cold: Zipf::new(cold_n, cfg.zipf_theta),
        }
    }

    /// The half-open hot region `[start, start + len)`, wrapping modulo the
    /// database size.
    #[must_use]
    pub fn hot_region(&self) -> (u32, u32) {
        (self.hot_start, self.hot_len)
    }

    /// True if `obj` falls inside this client's hot region.
    #[must_use]
    pub fn is_hot(&self, obj: ObjectId) -> bool {
        let rel = (obj.index() + self.db_size - self.hot_start) % self.db_size;
        rel < self.hot_len
    }

    /// Draws one object id.
    pub fn sample(&self, rng: &mut Prng) -> ObjectId {
        if self.hot_len >= self.db_size || rng.bernoulli(self.hot_fraction) {
            let off = rng.below(u64::from(self.hot_len.max(1))) as u32;
            ObjectId((self.hot_start + off) % self.db_size)
        } else {
            let rank = self.cold.sample(rng) as u32;
            ObjectId(self.cold_rank_to_object(rank))
        }
    }

    /// Maps a cold rank (0 = most popular) to the rank-th object id outside
    /// the hot region, counting upward from object 0.
    fn cold_rank_to_object(&self, rank: u32) -> u32 {
        let hot_end = self.hot_start + self.hot_len; // may exceed db_size (wrap)
        if hot_end <= self.db_size {
            // Hot region is contiguous [hot_start, hot_end).
            if rank < self.hot_start {
                rank
            } else {
                hot_end + (rank - self.hot_start)
            }
        } else {
            // Hot region wraps: cold ids form one contiguous run
            // [hot_end - db_size, hot_start).
            (hot_end - self.db_size) + rank
        }
    }

    /// Draws `k` *distinct* object ids.
    ///
    /// # Panics
    ///
    /// Panics if `k` exceeds the database size.
    pub fn sample_distinct(&self, rng: &mut Prng, k: usize) -> Vec<ObjectId> {
        assert!(
            k as u64 <= u64::from(self.db_size),
            "cannot draw {k} distinct objects from {}",
            self.db_size
        );
        let mut out: Vec<ObjectId> = Vec::with_capacity(k);
        // Rejection sampling; k (≈10) is far below the database size so the
        // expected number of extra draws is negligible.
        let mut guard = 0u32;
        while out.len() < k {
            let o = self.sample(rng);
            if !out.contains(&o) {
                out.push(o);
            } else {
                guard += 1;
                if guard > 10_000 {
                    // Extremely skewed tiny databases: fall back to scanning.
                    let mut next = 0u32;
                    while out.len() < k {
                        let cand = ObjectId(next % self.db_size);
                        if !out.contains(&cand) {
                            out.push(cand);
                        }
                        next += 1;
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> AccessPatternConfig {
        AccessPatternConfig::default()
    }

    #[test]
    fn samples_within_database() {
        let p = LocalizedRw::new(ClientId(5), &cfg(), 10_000, 20);
        let mut rng = Prng::seed_from_u64(1);
        for _ in 0..10_000 {
            assert!(p.sample(&mut rng).index() < 10_000);
        }
    }

    #[test]
    fn hot_fraction_respected() {
        let p = LocalizedRw::new(ClientId(2), &cfg(), 10_000, 20);
        let mut rng = Prng::seed_from_u64(2);
        let n = 100_000;
        let hot = (0..n).filter(|_| p.is_hot(p.sample(&mut rng))).count();
        let frac = hot as f64 / n as f64;
        // Hot accesses are 75% plus whatever cold draws land hot (cold draws
        // exclude the hot region, so this should be very close to 0.75).
        assert!((frac - 0.75).abs() < 0.01, "hot fraction {frac}");
    }

    #[test]
    fn hot_regions_spread_across_clients() {
        let a = LocalizedRw::new(ClientId(0), &cfg(), 10_000, 10);
        let b = LocalizedRw::new(ClientId(5), &cfg(), 10_000, 10);
        assert_ne!(a.hot_region().0, b.hot_region().0);
        assert_eq!(a.hot_region().0, 0);
        assert_eq!(b.hot_region().0, 5_000);
    }

    #[test]
    fn neighbouring_regions_overlap_at_scale() {
        // 100 clients, stride 100, hot region 1000: client 0 and client 1
        // share objects 100..1000.
        let a = LocalizedRw::new(ClientId(0), &cfg(), 10_000, 100);
        let b = LocalizedRw::new(ClientId(1), &cfg(), 10_000, 100);
        assert!(a.is_hot(ObjectId(500)));
        assert!(b.is_hot(ObjectId(500)));
    }

    #[test]
    fn wrapped_hot_region() {
        let mut c = cfg();
        c.hot_region_objects = 2_000;
        // Client 9 of 10 over 10k objects: start 9000, wraps to 1000.
        let p = LocalizedRw::new(ClientId(9), &c, 10_000, 10);
        assert!(p.is_hot(ObjectId(9_500)));
        assert!(p.is_hot(ObjectId(500)));
        assert!(!p.is_hot(ObjectId(5_000)));
        // Cold samples never land in the hot region.
        let mut rng = Prng::seed_from_u64(3);
        for _ in 0..20_000 {
            let o = p.sample(&mut rng);
            assert!(o.index() < 10_000);
        }
    }

    #[test]
    fn cold_rank_mapping_skips_hot_region() {
        let mut c = cfg();
        c.hot_region_objects = 10;
        let p = LocalizedRw::new(ClientId(1), &c, 100, 10); // hot [10, 20)
        assert_eq!(p.cold_rank_to_object(0), 0);
        assert_eq!(p.cold_rank_to_object(9), 9);
        assert_eq!(p.cold_rank_to_object(10), 20);
        assert_eq!(p.cold_rank_to_object(89), 99);
    }

    #[test]
    fn cold_accesses_skew_to_shared_objects() {
        // Client whose hot region is far from object 0: its cold accesses
        // should favour low ids (the globally popular ones).
        let p = LocalizedRw::new(ClientId(5), &cfg(), 10_000, 10);
        let mut rng = Prng::seed_from_u64(4);
        let mut low = 0;
        let mut cold_total = 0;
        for _ in 0..100_000 {
            let o = p.sample(&mut rng);
            if !p.is_hot(o) {
                cold_total += 1;
                if o.index() < 100 {
                    low += 1;
                }
            }
        }
        assert!(cold_total > 0);
        let frac = low as f64 / cold_total as f64;
        assert!(frac > 0.2, "low-id fraction of cold accesses {frac}");
    }

    #[test]
    fn distinct_sampling() {
        let p = LocalizedRw::new(ClientId(0), &cfg(), 10_000, 20);
        let mut rng = Prng::seed_from_u64(5);
        let objs = p.sample_distinct(&mut rng, 10);
        assert_eq!(objs.len(), 10);
        let mut dedup = objs.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), 10);
    }

    #[test]
    fn distinct_sampling_tiny_database() {
        let mut c = cfg();
        c.hot_region_objects = 4;
        let p = LocalizedRw::new(ClientId(0), &c, 5, 1);
        let mut rng = Prng::seed_from_u64(6);
        let objs = p.sample_distinct(&mut rng, 5);
        assert_eq!(objs.len(), 5);
    }

    #[test]
    fn hot_region_covering_database() {
        let mut c = cfg();
        c.hot_region_objects = 100;
        let p = LocalizedRw::new(ClientId(0), &c, 100, 1);
        let mut rng = Prng::seed_from_u64(7);
        for _ in 0..1000 {
            assert!(p.sample(&mut rng).index() < 100);
        }
    }
}
