//! Distributions beyond the kernel's primitives: the Zipf law used for the
//! skewed portion of Localized-RW accesses.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

use siteselect_sim::Prng;

/// A Zipf(θ) sampler over ranks `0..n` via a precomputed CDF and binary
/// search — exact, deterministic, and fast enough for the database sizes in
/// the paper (10,000 objects).
///
/// Rank 0 is the most popular. Probability of rank `r` is proportional to
/// `1 / (r + 1)^θ`. θ = 0 degenerates to the uniform distribution.
///
/// # Example
///
/// ```
/// use siteselect_sim::Prng;
/// use siteselect_workload::Zipf;
///
/// let zipf = Zipf::new(100, 0.95);
/// let mut rng = Prng::seed_from_u64(7);
/// let r = zipf.sample(&mut rng);
/// assert!(r < 100);
/// ```
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Arc<[f64]>,
}

/// Memoized CDF tables keyed by `(n, theta bits)`. Every client of a run
/// (and every run of a benchmark) uses the same table, and building one
/// costs `n` calls to `powf` — sharing it keeps workload construction off
/// the hot path. Capped so pathological test inputs cannot grow it
/// unboundedly; a miss past the cap just rebuilds.
type CdfCache = Mutex<HashMap<(usize, u64), Arc<[f64]>>>;

fn cdf_cache() -> &'static CdfCache {
    static CACHE: OnceLock<CdfCache> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

const CDF_CACHE_CAP: usize = 64;

impl Zipf {
    /// Builds a sampler over `n` ranks with skew `theta`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `theta` is negative or non-finite.
    #[must_use]
    pub fn new(n: usize, theta: f64) -> Self {
        assert!(n > 0, "Zipf needs at least one rank");
        assert!(
            theta >= 0.0 && theta.is_finite(),
            "Zipf skew must be a non-negative finite number"
        );
        let key = (n, theta.to_bits());
        if let Ok(cache) = cdf_cache().lock() {
            if let Some(cdf) = cache.get(&key) {
                return Zipf { cdf: Arc::clone(cdf) };
            }
        }
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for r in 0..n {
            acc += 1.0 / ((r + 1) as f64).powf(theta);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        // Guard against floating-point drift at the top end.
        if let Some(last) = cdf.last_mut() {
            *last = 1.0;
        }
        let cdf: Arc<[f64]> = cdf.into();
        if let Ok(mut cache) = cdf_cache().lock() {
            if cache.len() < CDF_CACHE_CAP {
                cache.insert(key, Arc::clone(&cdf));
            }
        }
        Zipf { cdf }
    }

    /// Number of ranks.
    #[must_use]
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// True if the distribution has a single rank.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false // by construction n > 0
    }

    /// Draws a rank in `0..len()`.
    pub fn sample(&self, rng: &mut Prng) -> usize {
        let u = rng.next_f64();
        // First index whose CDF value exceeds u.
        match self
            .cdf
            .binary_search_by(|c| c.partial_cmp(&u).expect("cdf is finite"))
        {
            Ok(i) => (i + 1).min(self.cdf.len() - 1),
            Err(i) => i,
        }
    }

    /// Probability mass of rank `r` (for tests and documentation plots).
    #[must_use]
    pub fn pmf(&self, r: usize) -> f64 {
        if r >= self.cdf.len() {
            return 0.0;
        }
        if r == 0 {
            self.cdf[0]
        } else {
            self.cdf[r] - self.cdf[r - 1]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranks_in_bounds() {
        let z = Zipf::new(50, 0.95);
        let mut rng = Prng::seed_from_u64(1);
        for _ in 0..10_000 {
            assert!(z.sample(&mut rng) < 50);
        }
    }

    #[test]
    fn low_ranks_dominate() {
        let z = Zipf::new(1000, 0.95);
        let mut rng = Prng::seed_from_u64(2);
        let mut counts = vec![0u32; 1000];
        for _ in 0..100_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[10]);
        assert!(counts[0] > 50 * counts[500].max(1));
        // Popularity is (statistically) decreasing: compare decile sums.
        let first: u32 = counts[..100].iter().sum();
        let last: u32 = counts[900..].iter().sum();
        assert!(first > 5 * last, "first decile {first} vs last {last}");
    }

    #[test]
    fn theta_zero_is_uniform() {
        let z = Zipf::new(10, 0.0);
        for r in 0..10 {
            assert!((z.pmf(r) - 0.1).abs() < 1e-12);
        }
        let mut rng = Prng::seed_from_u64(3);
        let mut counts = [0u32; 10];
        for _ in 0..100_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            assert!((c as f64 - 10_000.0).abs() < 600.0);
        }
    }

    #[test]
    fn pmf_sums_to_one() {
        let z = Zipf::new(200, 1.2);
        let total: f64 = (0..200).map(|r| z.pmf(r)).sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert_eq!(z.pmf(999), 0.0);
    }

    #[test]
    fn single_rank_always_zero() {
        let z = Zipf::new(1, 0.95);
        let mut rng = Prng::seed_from_u64(4);
        for _ in 0..100 {
            assert_eq!(z.sample(&mut rng), 0);
        }
        assert_eq!(z.len(), 1);
    }

    #[test]
    fn deterministic_given_seed() {
        let z = Zipf::new(100, 0.8);
        let mut a = Prng::seed_from_u64(5);
        let mut b = Prng::seed_from_u64(5);
        for _ in 0..100 {
            assert_eq!(z.sample(&mut a), z.sample(&mut b));
        }
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zero_ranks_panics() {
        let _ = Zipf::new(0, 1.0);
    }
}
