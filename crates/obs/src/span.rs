//! The causal span taxonomy behind blame attribution.
//!
//! A [`SpanKind`] names one *cause* a transaction can spend wall-clock time
//! on between submission and its terminal outcome. Engines emit a
//! [`Event::Span`](crate::Event::Span) when a causal interval **ends**, so a
//! span needs no matching open/close bookkeeping in the sink: the record's
//! own timestamp is the end and the payload carries the start.
//!
//! The blame extractor ([`crate::blame`]) partitions each transaction's
//! `[submit, outcome]` interval into elementary segments and charges every
//! segment to the highest-[`priority`](SpanKind::priority) span covering it;
//! uncovered time falls through to the [`SpanKind::Exec`] residual
//! (execution plus EDF CPU queueing, which has no explicit span). That
//! construction is what makes blame vectors sum *exactly* to end-to-end
//! latency.

/// One cause of elapsed transaction time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SpanKind {
    /// H1 admission handling: the load-query round a locally-infeasible
    /// transaction waits on before it is shipped or retried locally.
    Admission,
    /// H2/decomposition decision waits: the placement-information round
    /// (grant-all conflict report or decomposition load query).
    Decision,
    /// Fabric transit and request round-trips: object fetch send→grant,
    /// the submit hop into a centralized server, ship/subtask travel.
    Net,
    /// Blocked behind a conflicting lock holder (client-local table, CE
    /// global table, or the server's client-granularity queue).
    LockWait,
    /// Grouped-lock collection-window residency: a request parked in an
    /// open window waiting for the window to close into a forward list.
    Window,
    /// Disk and WAL I/O: server fetch batches, client cache-tier
    /// promotion, CE page reads.
    Disk,
    /// Commit protocol: shipping a remote unit's result back to its
    /// origin, or the CE server's commit→result return hop.
    Commit,
    /// Retry/backoff episodes: the dead time before a lost request was
    /// retransmitted.
    Retry,
    /// Crash-restart outage: server down + WAL replay until rejoin.
    Replay,
    /// Residual: CPU execution and EDF queueing. Never emitted as a span —
    /// the extractor derives it from uncovered time.
    Exec,
}

impl SpanKind {
    /// Every kind, in declaration (= ascending priority-agnostic) order.
    pub const ALL: [SpanKind; 10] = [
        SpanKind::Admission,
        SpanKind::Decision,
        SpanKind::Net,
        SpanKind::LockWait,
        SpanKind::Window,
        SpanKind::Disk,
        SpanKind::Commit,
        SpanKind::Retry,
        SpanKind::Replay,
        SpanKind::Exec,
    ];

    /// Number of kinds (blame vectors are `[u64; COUNT]`).
    pub const COUNT: usize = Self::ALL.len();

    /// Stable snake_case label used in exports and blame reports.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            SpanKind::Admission => "admission",
            SpanKind::Decision => "decision",
            SpanKind::Net => "net",
            SpanKind::LockWait => "lock_wait",
            SpanKind::Window => "window",
            SpanKind::Disk => "disk",
            SpanKind::Commit => "commit",
            SpanKind::Retry => "retry",
            SpanKind::Replay => "replay",
            SpanKind::Exec => "exec",
        }
    }

    /// Stable event-kind label (`span_*`), so [`crate::ObsReport`] kind
    /// counts stay granular per cause.
    #[must_use]
    pub fn event_kind(self) -> &'static str {
        match self {
            SpanKind::Admission => "span_admission",
            SpanKind::Decision => "span_decision",
            SpanKind::Net => "span_net",
            SpanKind::LockWait => "span_lock_wait",
            SpanKind::Window => "span_window",
            SpanKind::Disk => "span_disk",
            SpanKind::Commit => "span_commit",
            SpanKind::Retry => "span_retry",
            SpanKind::Replay => "span_replay",
            SpanKind::Exec => "span_exec",
        }
    }

    /// Attribution priority: when spans of different kinds overlap, the
    /// elementary segment is charged to the highest priority. Interior,
    /// more-specific causes outrank the coarse round-trip spans that
    /// contain them (a server disk batch inside a fetch round-trip is
    /// disk time, not network time); `Exec` is the priority-0 residual.
    #[must_use]
    pub fn priority(self) -> u8 {
        match self {
            SpanKind::Replay => 9,
            SpanKind::Disk => 8,
            SpanKind::Window => 7,
            SpanKind::Retry => 6,
            SpanKind::LockWait => 5,
            SpanKind::Commit => 4,
            SpanKind::Net => 3,
            SpanKind::Decision => 2,
            SpanKind::Admission => 1,
            SpanKind::Exec => 0,
        }
    }

    /// Index into a blame vector (`ALL` order).
    #[must_use]
    pub fn index(self) -> usize {
        Self::ALL
            .iter()
            .position(|&k| k == self)
            .expect("every kind is in ALL")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_and_event_kinds_are_distinct_and_stable() {
        let mut labels: Vec<&str> = SpanKind::ALL.iter().map(|k| k.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), SpanKind::COUNT);
        for k in SpanKind::ALL {
            assert_eq!(k.event_kind(), format!("span_{}", k.label()));
            assert_eq!(SpanKind::ALL[k.index()], k);
        }
    }

    #[test]
    fn priorities_are_a_permutation_with_exec_lowest() {
        let mut prios: Vec<u8> = SpanKind::ALL.iter().map(|k| k.priority()).collect();
        prios.sort_unstable();
        let expected: Vec<u8> = (0..SpanKind::COUNT as u8).collect();
        assert_eq!(prios, expected);
        assert_eq!(SpanKind::Exec.priority(), 0);
        assert_eq!(SpanKind::Replay.priority(), 9);
    }
}
