//! A deterministic counters/gauges registry, shaped like [`EventSink`]:
//! disabled it is a `None` and every operation is a single branch with the
//! name/value closure-free fast path untouched; enabled it folds updates
//! into `BTreeMap`s so snapshots render in one stable order.
//!
//! Registries are shareable handles (`Arc<Mutex<_>>`) so the same type
//! works single-threaded and in the threaded cluster runtime; merging two
//! snapshots is key-wise addition for counters and last-writer-wins for
//! gauges (callers merge in a deterministic order).
//!
//! [`EventSink`]: crate::EventSink

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::{Arc, Mutex};

#[derive(Debug, Default)]
struct RegistryInner {
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, i64>,
}

/// A shareable, optionally-enabled metrics registry.
///
/// # Example
///
/// ```
/// use siteselect_obs::MetricsRegistry;
///
/// let off = MetricsRegistry::disabled();
/// off.add("ignored", 1); // no-op, no allocation
/// assert!(off.snapshot().is_none());
///
/// let on = MetricsRegistry::enabled();
/// on.add("spans_extracted", 3);
/// on.add("spans_extracted", 2);
/// on.set_gauge("worst_tardiness_us", 450);
/// let snap = on.snapshot().unwrap();
/// assert_eq!(snap.counter("spans_extracted"), 5);
/// assert_eq!(snap.gauge("worst_tardiness_us"), Some(450));
/// ```
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry(Option<Arc<Mutex<RegistryInner>>>);

impl MetricsRegistry {
    /// A registry that ignores everything (the zero-overhead default).
    #[must_use]
    pub fn disabled() -> Self {
        MetricsRegistry(None)
    }

    /// A live registry.
    #[must_use]
    pub fn enabled() -> Self {
        MetricsRegistry(Some(Arc::new(Mutex::new(RegistryInner::default()))))
    }

    /// True if updates are being recorded.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Adds `by` to counter `name` (creating it at zero).
    #[inline]
    pub fn add(&self, name: &'static str, by: u64) {
        if let Some(inner) = &self.0 {
            let mut g = inner.lock().expect("registry poisoned");
            *g.counters.entry(name).or_insert(0) += by;
        }
    }

    /// Sets gauge `name` to `value` (last write wins).
    #[inline]
    pub fn set_gauge(&self, name: &'static str, value: i64) {
        if let Some(inner) = &self.0 {
            let mut g = inner.lock().expect("registry poisoned");
            g.gauges.insert(name, value);
        }
    }

    /// Raises gauge `name` to `value` if `value` is larger (or the gauge is
    /// new) — a deterministic running maximum.
    #[inline]
    pub fn max_gauge(&self, name: &'static str, value: i64) {
        if let Some(inner) = &self.0 {
            let mut g = inner.lock().expect("registry poisoned");
            g.gauges
                .entry(name)
                .and_modify(|v| *v = (*v).max(value))
                .or_insert(value);
        }
    }

    /// Copies the current state out, or `None` if disabled.
    #[must_use]
    pub fn snapshot(&self) -> Option<MetricsSnapshot> {
        self.0.as_ref().map(|inner| {
            let g = inner.lock().expect("registry poisoned");
            MetricsSnapshot {
                counters: g.counters.clone(),
                gauges: g.gauges.clone(),
            }
        })
    }
}

/// A point-in-time copy of a registry, in deterministic key order.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MetricsSnapshot {
    /// Monotonic counters.
    pub counters: BTreeMap<&'static str, u64>,
    /// Last-written gauges.
    pub gauges: BTreeMap<&'static str, i64>,
}

impl MetricsSnapshot {
    /// Counter value (0 if never touched).
    #[must_use]
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Gauge value, if ever set.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.get(name).copied()
    }

    /// Adds another snapshot into this one: counters add key-wise, gauges
    /// take the other side's value (merge in a deterministic order).
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for (k, v) in &other.counters {
            *self.counters.entry(k).or_insert(0) += v;
        }
        for (k, v) in &other.gauges {
            self.gauges.insert(k, *v);
        }
    }

    /// Renders `name value` lines in key order (deterministic).
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (k, v) in &self.counters {
            let _ = writeln!(out, "{k} {v}");
        }
        for (k, v) in &self.gauges {
            let _ = writeln!(out, "{k} {v}");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_registry_records_nothing() {
        let r = MetricsRegistry::disabled();
        r.add("c", 1);
        r.set_gauge("g", 2);
        assert!(!r.is_enabled());
        assert!(r.snapshot().is_none());
    }

    #[test]
    fn counters_accumulate_and_clones_share_state() {
        let a = MetricsRegistry::enabled();
        let b = a.clone();
        a.add("c", 2);
        b.add("c", 3);
        b.max_gauge("m", 5);
        b.max_gauge("m", 1);
        let snap = a.snapshot().unwrap();
        assert_eq!(snap.counter("c"), 5);
        assert_eq!(snap.counter("missing"), 0);
        assert_eq!(snap.gauge("m"), Some(5));
    }

    #[test]
    fn merge_adds_counters_and_overwrites_gauges() {
        let a = MetricsRegistry::enabled();
        a.add("c", 1);
        a.set_gauge("g", 10);
        let b = MetricsRegistry::enabled();
        b.add("c", 4);
        b.add("only_b", 1);
        b.set_gauge("g", -3);
        let mut m = a.snapshot().unwrap();
        m.merge(&b.snapshot().unwrap());
        assert_eq!(m.counter("c"), 5);
        assert_eq!(m.counter("only_b"), 1);
        assert_eq!(m.gauge("g"), Some(-3));
    }

    #[test]
    fn render_is_sorted_and_stable() {
        let r = MetricsRegistry::enabled();
        r.add("zeta", 1);
        r.add("alpha", 2);
        r.set_gauge("mid", 0);
        let text = r.snapshot().unwrap().render();
        assert_eq!(text, "alpha 2\nzeta 1\nmid 0\n");
    }
}
