//! Trace exporters: JSONL and Chrome `trace_event` format.
//!
//! Both writers are hand-rolled (the workspace is dependency-free) and emit
//! only integers and `Display`-stable identifier strings, so output is
//! byte-identical across runs at the same seed.

use std::collections::HashMap;
use std::fmt::Write as _;

use siteselect_types::{SimTime, SiteId, TransactionId};

use crate::event::Event;
use crate::sink::TraceRecord;

/// Serializes records as one JSON object per line.
///
/// # Example
///
/// ```
/// use siteselect_obs::{export, Event, TraceRecord};
/// use siteselect_types::{ClientId, SimTime, SiteId, TransactionId};
///
/// let rec = TraceRecord {
///     time: SimTime::from_micros(42),
///     seq: 0,
///     site: SiteId::Server,
///     event: Event::ExecStart { txn: TransactionId::new(ClientId(1), 7) },
/// };
/// let line = export::jsonl(&[rec]);
/// assert_eq!(
///     line,
///     "{\"t\":42,\"seq\":0,\"site\":\"server\",\"kind\":\"exec_start\",\"txn\":\"txn#1.7\"}\n"
/// );
/// ```
#[must_use]
pub fn jsonl(records: &[TraceRecord]) -> String {
    let mut out = String::with_capacity(records.len() * 96);
    for rec in records {
        let _ = write!(
            out,
            r#"{{"t":{},"seq":{},"site":"{}","kind":"{}""#,
            rec.time.as_micros(),
            rec.seq,
            rec.site,
            rec.event.kind()
        );
        rec.event.write_json_fields(&mut out);
        out.push_str("}\n");
    }
    out
}

/// Process id used in the Chrome trace for a site: the server is 0, the
/// directory 1, client *c* is *c + 2*.
#[must_use]
pub fn site_pid(site: SiteId) -> u32 {
    match site {
        SiteId::Server => 0,
        SiteId::Directory => 1,
        SiteId::Client(c) => u32::from(c.0) + 2,
    }
}

/// Serializes records in Chrome `trace_event` JSON (open the file in
/// `chrome://tracing` or Perfetto).
///
/// Transaction lifecycles become duration (`"X"`) events spanning submit →
/// commit/abort on the originating client's track; causal spans become
/// named duration events on their site's span track; crash-restart
/// episodes become `wal_replay` (crash → replay finished) and
/// `rejoin_revalidation` (replay finished → rejoin) slices on the crashed
/// site's track (`site_down` when the site rejoins without a replay);
/// every record also appears as an instant (`"i"`) event carrying the full
/// payload.
#[must_use]
pub fn chrome_trace(records: &[TraceRecord]) -> String {
    let mut submits: HashMap<TransactionId, SimTime> = HashMap::new();
    let mut crashed: HashMap<SiteId, SimTime> = HashMap::new();
    let mut replayed: HashMap<SiteId, SimTime> = HashMap::new();
    let mut out = String::with_capacity(records.len() * 160 + 64);
    out.push_str("{\"traceEvents\":[");
    let mut first = true;
    let mut push_event = |out: &mut String, body: &str| {
        if !first {
            out.push(',');
        }
        first = false;
        out.push('\n');
        out.push_str(body);
    };
    for rec in records {
        let pid = site_pid(rec.site);
        match &rec.event {
            Event::TxnSubmit { txn, .. } => {
                submits.insert(*txn, rec.time);
            }
            Event::Commit { txn, .. } | Event::Abort { txn, .. } => {
                if let Some(start) = submits.remove(txn) {
                    let dur = rec.time.duration_since(start).as_micros();
                    let mut span = String::new();
                    let _ = write!(
                        span,
                        r#"{{"name":"{txn}","cat":"txn","ph":"X","ts":{},"dur":{dur},"pid":{},"tid":0,"args":{{"outcome":"{}"}}}}"#,
                        start.as_micros(),
                        site_pid(SiteId::Client(txn.origin())),
                        rec.event.kind()
                    );
                    push_event(&mut out, &span);
                }
            }
            Event::Span {
                txn,
                kind,
                start,
                blocker,
            } => {
                let dur = rec.time.duration_since(*start).as_micros();
                let mut span = String::new();
                let _ = write!(
                    span,
                    r#"{{"name":"{}","cat":"span","ph":"X","ts":{},"dur":{dur},"pid":{pid},"tid":2,"args":{{"#,
                    kind.label(),
                    start.as_micros()
                );
                if let Some(t) = txn {
                    let _ = write!(span, r#""txn":"{t}""#);
                }
                if let Some(b) = blocker {
                    let _ = write!(span, r#","blocker":"{b}""#);
                }
                span.push_str("}}");
                push_event(&mut out, &span);
            }
            Event::SiteCrash { site } => {
                crashed.insert(*site, rec.time);
            }
            Event::RecoveryDone {
                site,
                redo,
                undone,
                losers,
                replay_ios,
            } => {
                if let Some(down) = crashed.remove(site) {
                    let dur = rec.time.duration_since(down).as_micros();
                    let mut span = String::new();
                    let _ = write!(
                        span,
                        r#"{{"name":"wal_replay","cat":"recovery","ph":"X","ts":{},"dur":{dur},"pid":{},"tid":0,"args":{{"redo":{redo},"undone":{undone},"losers":{losers},"replay_ios":{replay_ios}}}}}"#,
                        down.as_micros(),
                        site_pid(*site)
                    );
                    push_event(&mut out, &span);
                    replayed.insert(*site, rec.time);
                }
            }
            Event::SiteRecover { site } => {
                if let Some(done) = replayed.remove(site) {
                    let dur = rec.time.duration_since(done).as_micros();
                    let mut span = String::new();
                    let _ = write!(
                        span,
                        r#"{{"name":"rejoin_revalidation","cat":"recovery","ph":"X","ts":{},"dur":{dur},"pid":{},"tid":0,"args":{{}}}}"#,
                        done.as_micros(),
                        site_pid(*site)
                    );
                    push_event(&mut out, &span);
                } else if let Some(down) = crashed.remove(site) {
                    let dur = rec.time.duration_since(down).as_micros();
                    let mut span = String::new();
                    let _ = write!(
                        span,
                        r#"{{"name":"site_down","cat":"recovery","ph":"X","ts":{},"dur":{dur},"pid":{},"tid":0,"args":{{}}}}"#,
                        down.as_micros(),
                        site_pid(*site)
                    );
                    push_event(&mut out, &span);
                }
            }
            _ => {}
        }
        let mut inst = String::new();
        let _ = write!(
            inst,
            r#"{{"name":"{}","cat":"ev","ph":"i","s":"t","ts":{},"pid":{pid},"tid":1,"args":{{"seq":{}"#,
            rec.event.kind(),
            rec.time.as_micros(),
            rec.seq
        );
        rec.event.write_json_fields(&mut inst);
        inst.push_str("}}");
        push_event(&mut out, &inst);
    }
    out.push_str("\n]}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use siteselect_types::ClientId;

    fn txn() -> TransactionId {
        TransactionId::new(ClientId(2), 9)
    }

    fn records() -> Vec<TraceRecord> {
        vec![
            TraceRecord {
                time: SimTime::from_micros(100),
                seq: 0,
                site: SiteId::Client(ClientId(2)),
                event: Event::TxnSubmit {
                    txn: txn(),
                    deadline: SimTime::from_micros(900),
                    accesses: 2,
                },
            },
            TraceRecord {
                time: SimTime::from_micros(700),
                seq: 1,
                site: SiteId::Client(ClientId(2)),
                event: Event::Commit {
                    txn: txn(),
                    latency_us: 600,
                    slack_us: 200,
                },
            },
        ]
    }

    #[test]
    fn jsonl_is_one_object_per_line() {
        let text = jsonl(&records());
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in &lines {
            assert!(line.starts_with('{') && line.ends_with('}'));
        }
        assert!(lines[0].contains(r#""kind":"txn_submit""#));
        assert!(lines[1].contains(r#""slack_us":200"#));
    }

    #[test]
    fn chrome_trace_pairs_submit_with_commit() {
        let text = chrome_trace(&records());
        assert!(text.starts_with("{\"traceEvents\":["));
        assert!(text.trim_end().ends_with("]}"));
        assert!(text.contains(r#""ph":"X","ts":100,"dur":600"#));
        // Two instants + one span.
        assert_eq!(text.matches(r#""ph":"i""#).count(), 2);
        assert_eq!(text.matches(r#""ph":"X""#).count(), 1);
    }

    #[test]
    fn pids_separate_sites() {
        assert_eq!(site_pid(SiteId::Server), 0);
        assert_eq!(site_pid(SiteId::Directory), 1);
        assert_eq!(site_pid(SiteId::Client(ClientId(0))), 2);
        assert_eq!(site_pid(SiteId::Client(ClientId(5))), 7);
    }

    #[test]
    fn chrome_trace_renders_spans_as_named_slices() {
        let recs = vec![TraceRecord {
            time: SimTime::from_micros(900),
            seq: 0,
            site: SiteId::Server,
            event: Event::Span {
                txn: Some(txn()),
                kind: crate::SpanKind::LockWait,
                start: SimTime::from_micros(400),
                blocker: Some(TransactionId::new(ClientId(1), 3)),
            },
        }];
        let text = chrome_trace(&recs);
        assert!(
            text.contains(r#""name":"lock_wait","cat":"span","ph":"X","ts":400,"dur":500"#),
            "{text}"
        );
        assert!(text.contains(r#""blocker":"txn#1.3""#), "{text}");
    }

    #[test]
    fn chrome_trace_renders_recovery_phases() {
        let site = SiteId::Server;
        let recs = vec![
            TraceRecord {
                time: SimTime::from_micros(100),
                seq: 0,
                site,
                event: Event::SiteCrash { site },
            },
            TraceRecord {
                time: SimTime::from_micros(700),
                seq: 1,
                site,
                event: Event::RecoveryDone {
                    site,
                    redo: 4,
                    undone: 2,
                    losers: 1,
                    replay_ios: 6,
                },
            },
            TraceRecord {
                time: SimTime::from_micros(750),
                seq: 2,
                site,
                event: Event::SiteRecover { site },
            },
        ];
        let text = chrome_trace(&recs);
        assert!(
            text.contains(r#""name":"wal_replay","cat":"recovery","ph":"X","ts":100,"dur":600"#),
            "{text}"
        );
        assert!(text.contains(r#""redo":4,"undone":2,"losers":1,"replay_ios":6"#), "{text}");
        assert!(
            text.contains(
                r#""name":"rejoin_revalidation","cat":"recovery","ph":"X","ts":700,"dur":50"#
            ),
            "{text}"
        );
    }

    #[test]
    fn chrome_trace_marks_replayless_rejoin_as_site_down() {
        let site = SiteId::Client(ClientId(3));
        let recs = vec![
            TraceRecord {
                time: SimTime::from_micros(10),
                seq: 0,
                site,
                event: Event::SiteCrash { site },
            },
            TraceRecord {
                time: SimTime::from_micros(90),
                seq: 1,
                site,
                event: Event::SiteRecover { site },
            },
        ];
        let text = chrome_trace(&recs);
        assert!(
            text.contains(r#""name":"site_down","cat":"recovery","ph":"X","ts":10,"dur":80"#),
            "{text}"
        );
    }

    #[test]
    fn abort_without_submit_still_renders_instant() {
        let recs = vec![TraceRecord {
            time: SimTime::from_micros(5),
            seq: 0,
            site: SiteId::Server,
            event: Event::Abort {
                txn: txn(),
                reason: siteselect_types::AbortReason::Deadlock,
            },
        }];
        let text = chrome_trace(&recs);
        assert!(!text.contains(r#""ph":"X""#));
        assert!(text.contains(r#""reason":"deadlock""#));
    }
}
