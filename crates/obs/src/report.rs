//! Streaming per-run observability summary.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use siteselect_types::{SimTime, SiteId};

use crate::event::Event;
use crate::hist::LogHistogram;
use crate::sink::TraceRecord;

/// Per-site activity rollup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SiteSummary {
    /// Events emitted at this site.
    pub events: u64,
    /// Transactions committed here.
    pub commits: u64,
    /// Transactions aborted here.
    pub aborts: u64,
    /// Time of the first event seen at this site.
    pub first: SimTime,
    /// Time of the last event seen at this site.
    pub last: SimTime,
}

/// Summary of one traced run, maintained streamingly as events are emitted
/// so ring-buffer eviction never loses aggregate information.
#[derive(Debug, Clone, PartialEq)]
pub struct ObsReport {
    /// Total events emitted (including ones evicted from the ring).
    pub events: u64,
    /// Events evicted from the ring because capacity was exceeded.
    pub dropped: u64,
    /// Event counts per kind (deterministic order).
    pub kinds: BTreeMap<&'static str, u64>,
    /// Commit response times, microseconds.
    pub latency: LogHistogram,
    /// Non-negative commit slack vs. deadline, microseconds.
    pub slack: LogHistogram,
    /// How late the late commits were, microseconds.
    pub tardiness: LogHistogram,
    /// Per-site timeline rollups (deterministic order).
    pub per_site: BTreeMap<SiteId, SiteSummary>,
}

impl Default for ObsReport {
    fn default() -> Self {
        Self::new()
    }
}

impl ObsReport {
    /// An empty report.
    #[must_use]
    pub fn new() -> Self {
        ObsReport {
            events: 0,
            dropped: 0,
            kinds: BTreeMap::new(),
            latency: LogHistogram::new(),
            slack: LogHistogram::new(),
            tardiness: LogHistogram::new(),
            per_site: BTreeMap::new(),
        }
    }

    /// Folds one record into the summary.
    pub fn observe(&mut self, rec: &TraceRecord) {
        self.events += 1;
        *self.kinds.entry(rec.event.kind()).or_insert(0) += 1;
        let site = self.per_site.entry(rec.site).or_insert(SiteSummary {
            events: 0,
            commits: 0,
            aborts: 0,
            first: rec.time,
            last: rec.time,
        });
        site.events += 1;
        site.first = site.first.min(rec.time);
        site.last = site.last.max(rec.time);
        match rec.event {
            Event::Commit {
                latency_us,
                slack_us,
                ..
            } => {
                site.commits += 1;
                self.latency.record(latency_us);
                if slack_us >= 0 {
                    self.slack.record(slack_us as u64);
                } else {
                    self.tardiness.record(slack_us.unsigned_abs());
                }
            }
            Event::Abort { .. } => site.aborts += 1,
            _ => {}
        }
    }

    /// Count for one event kind (0 if never seen).
    #[must_use]
    pub fn kind_count(&self, kind: &str) -> u64 {
        self.kinds.get(kind).copied().unwrap_or(0)
    }

    /// Adds another report (e.g. another site's) into this one.
    pub fn merge(&mut self, other: &ObsReport) {
        self.events += other.events;
        self.dropped += other.dropped;
        for (k, v) in &other.kinds {
            *self.kinds.entry(k).or_insert(0) += v;
        }
        self.latency.merge(&other.latency);
        self.slack.merge(&other.slack);
        self.tardiness.merge(&other.tardiness);
        for (site, s) in &other.per_site {
            self.per_site
                .entry(*site)
                .and_modify(|mine| {
                    mine.events += s.events;
                    mine.commits += s.commits;
                    mine.aborts += s.aborts;
                    mine.first = mine.first.min(s.first);
                    mine.last = mine.last.max(s.last);
                })
                .or_insert(*s);
        }
    }

    /// Renders the report as aligned plain text (deterministic).
    #[must_use]
    pub fn render(&self) -> String {
        const SHOWN: usize = 12;
        let mut out = String::new();
        let _ = writeln!(out, "events emitted      {:>10}", self.events);
        let _ = writeln!(out, "evicted from ring   {:>10}", self.dropped);
        let _ = writeln!(out, "per kind:");
        for (k, v) in &self.kinds {
            let _ = writeln!(out, "  {k:<18}{v:>10}");
        }
        let hist_line = |name: &str, h: &LogHistogram| -> String {
            if h.is_empty() {
                format!("{name:<12} (empty)")
            } else {
                format!(
                    "{name:<12} n={:<8} mean={:<10} p50={:<10} p90={:<10} p99={:<10} max={}",
                    h.count(),
                    h.mean().round() as u64,
                    h.quantile(0.5),
                    h.quantile(0.9),
                    h.quantile(0.99),
                    h.max()
                )
            }
        };
        let _ = writeln!(out, "histograms (us):");
        let _ = writeln!(out, "  {}", hist_line("latency", &self.latency));
        let _ = writeln!(out, "  {}", hist_line("slack", &self.slack));
        let _ = writeln!(out, "  {}", hist_line("tardiness", &self.tardiness));
        let _ = writeln!(
            out,
            "per site ({} active):            events   commits    aborts   last_us",
            self.per_site.len()
        );
        for (site, s) in self.per_site.iter().take(SHOWN) {
            let _ = writeln!(
                out,
                "  {:<28}{:>10}{:>10}{:>10}{:>10}",
                site.to_string(),
                s.events,
                s.commits,
                s.aborts,
                s.last.as_micros()
            );
        }
        if self.per_site.len() > SHOWN {
            let _ = writeln!(out, "  ... {} more sites", self.per_site.len() - SHOWN);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use siteselect_types::{ClientId, TransactionId};

    fn rec(time_us: u64, site: SiteId, event: Event) -> TraceRecord {
        TraceRecord {
            time: SimTime::from_micros(time_us),
            seq: 0,
            site,
            event,
        }
    }

    #[test]
    fn observe_tracks_kinds_sites_and_latency() {
        let mut r = ObsReport::new();
        let txn = TransactionId::new(ClientId(0), 1);
        r.observe(&rec(
            10,
            SiteId::Client(ClientId(0)),
            Event::TxnSubmit {
                txn,
                deadline: SimTime::from_micros(500),
                accesses: 3,
            },
        ));
        r.observe(&rec(
            400,
            SiteId::Client(ClientId(0)),
            Event::Commit {
                txn,
                latency_us: 390,
                slack_us: 100,
            },
        ));
        assert_eq!(r.events, 2);
        assert_eq!(r.kind_count("commit"), 1);
        assert_eq!(r.latency.count(), 1);
        assert_eq!(r.slack.count(), 1);
        assert!(r.tardiness.is_empty());
        let s = r.per_site[&SiteId::Client(ClientId(0))];
        assert_eq!(s.commits, 1);
        assert_eq!(s.first, SimTime::from_micros(10));
        assert_eq!(s.last, SimTime::from_micros(400));
    }

    #[test]
    fn late_commits_land_in_tardiness() {
        let mut r = ObsReport::new();
        r.observe(&rec(
            1,
            SiteId::Server,
            Event::Commit {
                txn: TransactionId::new(ClientId(1), 1),
                latency_us: 900,
                slack_us: -250,
            },
        ));
        assert_eq!(r.tardiness.count(), 1);
        assert_eq!(r.tardiness.max(), 250);
        assert!(r.slack.is_empty());
    }

    #[test]
    fn merge_is_commutative_on_totals() {
        let mut a = ObsReport::new();
        let mut b = ObsReport::new();
        a.observe(&rec(1, SiteId::Server, Event::WindowOpen { object: siteselect_types::ObjectId(1) }));
        b.observe(&rec(2, SiteId::Server, Event::WindowOpen { object: siteselect_types::ObjectId(2) }));
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab.events, ba.events);
        assert_eq!(ab.kinds, ba.kinds);
        assert_eq!(ab.per_site, ba.per_site);
    }

    #[test]
    fn render_is_stable_text() {
        let r = ObsReport::new();
        let text = r.render();
        assert!(text.contains("events emitted"));
        assert!(text.contains("(empty)"));
    }
}
