//! Observability for the `siteselect` workspace: a deterministic,
//! zero-overhead-when-off event-tracing and metrics pipeline.
//!
//! * [`EventSink`] — the shareable handle every subsystem emits into.
//!   Disabled (the default) an emit is a single branch and the payload
//!   closure never runs; enabled it appends to a bounded ring buffer and
//!   folds the event into streaming summaries.
//! * [`Event`] — the structured taxonomy: transaction lifecycle, H1
//!   admission decisions with their `n·ATL` terms, H2 candidate scores,
//!   grouped-lock windows, callbacks, and fault events.
//! * [`LogHistogram`] — HDR-style fixed-bucket log-linear histogram (≤3%
//!   relative error, no allocation after construction).
//! * [`ObsReport`] — the per-run summary (kind counts, latency / slack /
//!   tardiness histograms, per-site timelines).
//! * [`SpanKind`] / [`Event::Span`] — causal spans (admission, decision,
//!   network, lock wait, window residency, disk, commit, retry, replay)
//!   emitted when an interval ends; the payload carries the start.
//! * [`blame`] — the critical-path extractor: per-transaction blame
//!   vectors that sum *exactly* to end-to-end latency, aggregated into
//!   a [`BlameReport`] with per-cause histograms and a top-K worst-miss
//!   listing.
//! * [`MetricsRegistry`] — deterministic counters/gauges, zero-alloc when
//!   disabled like the sink.
//! * [`export`] — JSONL and Chrome `trace_event` writers whose output is
//!   byte-identical across runs at the same seed.
//!
//! # Example
//!
//! ```
//! use siteselect_obs::{export, Event, EventSink};
//! use siteselect_types::{ClientId, SimTime, SiteId, TransactionId};
//!
//! let sink = EventSink::enabled(1024);
//! let txn = TransactionId::new(ClientId(0), 1);
//! sink.emit(SimTime::from_micros(10), SiteId::Client(ClientId(0)), || {
//!     Event::TxnSubmit { txn, deadline: SimTime::from_micros(500), accesses: 4 }
//! });
//! sink.emit(SimTime::from_micros(410), SiteId::Client(ClientId(0)), || {
//!     Event::Commit { txn, latency_us: 400, slack_us: 90 }
//! });
//! let trace = sink.finish().unwrap();
//! assert_eq!(trace.report.kind_count("commit"), 1);
//! assert!(export::jsonl(&trace.records).lines().count() == 2);
//! ```

pub mod blame;
pub mod event;
pub mod export;
pub mod hist;
pub mod metrics;
pub mod report;
pub mod sink;
pub mod span;

pub use blame::{fold_root, BlameReport, CauseStats, PathSegment, TxnBlame};
pub use event::{abort_reason_str, outcome_str, Event, H2Candidate};
pub use hist::LogHistogram;
pub use metrics::{MetricsRegistry, MetricsSnapshot};
pub use report::{ObsReport, SiteSummary};
pub use sink::{EventSink, TraceData, TraceRecord};
pub use span::SpanKind;
