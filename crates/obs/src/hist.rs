//! Streaming log-linear histogram (HDR-style, fixed buckets).
//!
//! Values are bucketed with 5 sub-bucket bits: values below 32 get exact
//! buckets, larger values land in 32 equal-width buckets per power of two,
//! so the relative quantization error is bounded by 1/32 (≈3%) across the
//! whole `u64` range. Everything is allocated once at construction; the
//! record path touches a handful of integers — no allocation, no float.

use siteselect_types::SimDuration;

/// Sub-bucket precision: 2^5 = 32 linear buckets per power of two.
const SUB_BITS: u32 = 5;
const SUB_BUCKETS: usize = 1 << SUB_BITS;
/// Group 0 covers `0..32` exactly; groups 1..=59 cover msb 5..=63.
const GROUPS: usize = 64 - SUB_BITS as usize + 1;
/// Total bucket count (fixed, so merges are trivially aligned).
pub const BUCKETS: usize = GROUPS * SUB_BUCKETS;

/// A fixed-bucket log-linear histogram over `u64` values.
///
/// # Example
///
/// ```
/// use siteselect_obs::LogHistogram;
///
/// let mut h = LogHistogram::new();
/// for v in [1u64, 10, 100, 1000, 10_000] {
///     h.record(v);
/// }
/// assert_eq!(h.count(), 5);
/// assert_eq!(h.min(), 1);
/// assert_eq!(h.max(), 10_000);
/// assert!(h.quantile(0.5) >= 10 && h.quantile(0.5) <= 103);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogHistogram {
    counts: Vec<u64>,
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LogHistogram {
    /// Creates an empty histogram (one upfront allocation of the buckets).
    #[must_use]
    pub fn new() -> Self {
        LogHistogram {
            counts: vec![0; BUCKETS],
            count: 0,
            sum: 0,
            min: 0,
            max: 0,
        }
    }

    /// Maps a value to its bucket index.
    #[must_use]
    pub fn bucket_index(v: u64) -> usize {
        if v < SUB_BUCKETS as u64 {
            v as usize
        } else {
            let msb = 63 - v.leading_zeros();
            let shift = msb - SUB_BITS;
            let group = (msb - SUB_BITS + 1) as usize;
            (group << SUB_BITS) | ((v >> shift) as usize - SUB_BUCKETS)
        }
    }

    /// Smallest value that maps to bucket `i` (the bucket's representative).
    ///
    /// # Panics
    ///
    /// Panics if `i >= BUCKETS`.
    #[must_use]
    pub fn bucket_lower_bound(i: usize) -> u64 {
        assert!(i < BUCKETS, "bucket index out of range");
        if i < SUB_BUCKETS {
            i as u64
        } else {
            let group = (i >> SUB_BITS) as u32;
            let offset = (i & (SUB_BUCKETS - 1)) as u64;
            (SUB_BUCKETS as u64 + offset) << (group - 1)
        }
    }

    /// Records one value.
    pub fn record(&mut self, v: u64) {
        self.counts[Self::bucket_index(v)] += 1;
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.count += 1;
        self.sum += u128::from(v);
    }

    /// Records a duration as whole microseconds.
    pub fn record_duration(&mut self, d: SimDuration) {
        self.record(d.as_micros());
    }

    /// Number of recorded values.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// True if nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Smallest recorded value (0 when empty).
    #[must_use]
    pub fn min(&self) -> u64 {
        self.min
    }

    /// Largest recorded value (0 when empty).
    #[must_use]
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Exact mean of the recorded values (the sum is kept exactly).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Value at quantile `q` in `[0, 1]`, quantized to the lower bound of
    /// the containing bucket and clamped into `[min, max]`. Monotone in `q`.
    #[must_use]
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Self::bucket_lower_bound(i).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Adds every recorded value of `other` into `self`.
    pub fn merge(&mut self, other: &LogHistogram) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            self.min = other.min;
            self.max = other.max;
        } else {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_get_exact_buckets() {
        for v in 0..32u64 {
            assert_eq!(LogHistogram::bucket_index(v), v as usize);
            assert_eq!(LogHistogram::bucket_lower_bound(v as usize), v);
        }
    }

    #[test]
    fn bucket_boundaries_are_continuous() {
        // Every bucket's lower bound maps back to that bucket, and the
        // value just below it maps to the previous bucket.
        for i in 1..BUCKETS {
            let lb = LogHistogram::bucket_lower_bound(i);
            assert_eq!(LogHistogram::bucket_index(lb), i, "lower bound of {i}");
            assert_eq!(LogHistogram::bucket_index(lb - 1), i - 1, "below {i}");
        }
    }

    #[test]
    fn top_bucket_holds_u64_max() {
        assert_eq!(LogHistogram::bucket_index(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn mean_and_extremes_are_exact() {
        let mut h = LogHistogram::new();
        for v in [5u64, 10, 15] {
            h.record(v);
        }
        assert_eq!(h.count(), 3);
        assert_eq!(h.min(), 5);
        assert_eq!(h.max(), 15);
        assert!((h.mean() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn quantiles_bound_relative_error() {
        let mut h = LogHistogram::new();
        for v in 1..=10_000u64 {
            h.record(v);
        }
        for q in [0.1f64, 0.5, 0.9, 0.99] {
            let exact = (q * 10_000.0).ceil() as u64;
            let got = h.quantile(q);
            assert!(got <= exact, "q={q}: {got} > {exact}");
            assert!(
                got as f64 >= exact as f64 * (1.0 - 1.0 / 32.0) - 1.0,
                "q={q}: {got} too far below {exact}"
            );
        }
    }

    #[test]
    fn empty_histogram_is_harmless() {
        let h = LogHistogram::new();
        assert!(h.is_empty());
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn merge_equals_recording_everything() {
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        let mut all = LogHistogram::new();
        for v in [3u64, 70, 900] {
            a.record(v);
            all.record(v);
        }
        for v in [1u64, 40_000] {
            b.record(v);
            all.record(v);
        }
        a.merge(&b);
        assert_eq!(a, all);
    }
}
