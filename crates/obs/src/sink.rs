//! The ring-buffered event sink.
//!
//! [`EventSink`] is the single handle every subsystem holds. Disabled (the
//! default) it is a `None` — emitting is one branch and the event payload is
//! never even constructed, which is what makes the disabled path free.
//! Enabled it is an `Arc<Mutex<_>>` so the same type works in the
//! single-threaded simulators and in the threaded cluster runtime, and
//! cloning a sink shares the underlying buffer.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

use siteselect_types::{SimTime, SiteId};

use crate::event::Event;
use crate::report::ObsReport;

/// One captured event: when, where, in what global order, and what.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceRecord {
    /// Simulation time the event was emitted at.
    pub time: SimTime,
    /// Emission sequence number within the sink (total order tie-break).
    pub seq: u64,
    /// The site the event happened at.
    pub site: SiteId,
    /// The structured payload.
    pub event: Event,
}

#[derive(Debug)]
struct SinkInner {
    capacity: usize,
    next_seq: u64,
    ring: VecDeque<TraceRecord>,
    report: ObsReport,
}

/// A shareable, optionally-enabled event sink.
///
/// # Example
///
/// ```
/// use siteselect_obs::{Event, EventSink};
/// use siteselect_types::{ClientId, SimTime, SiteId, TransactionId};
///
/// let off = EventSink::disabled();
/// off.emit(SimTime::from_secs(1), SiteId::Server, || unreachable!());
///
/// let on = EventSink::enabled(16);
/// on.emit(SimTime::from_secs(1), SiteId::Server, || Event::ExecStart {
///     txn: TransactionId::new(ClientId(0), 1),
/// });
/// let trace = on.finish().unwrap();
/// assert_eq!(trace.records.len(), 1);
/// assert_eq!(trace.report.events, 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct EventSink(Option<Arc<Mutex<SinkInner>>>);

impl EventSink {
    /// A sink that ignores everything (the zero-overhead default).
    #[must_use]
    pub fn disabled() -> Self {
        EventSink(None)
    }

    /// A live sink retaining at most `capacity` records (drop-oldest).
    /// Streaming summaries in the [`ObsReport`] still see every event.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn enabled(capacity: usize) -> Self {
        assert!(capacity > 0, "sink capacity must be positive");
        EventSink(Some(Arc::new(Mutex::new(SinkInner {
            capacity,
            next_seq: 0,
            ring: VecDeque::with_capacity(capacity.min(4096)),
            report: ObsReport::new(),
        }))))
    }

    /// True if events are being captured.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Emits an event. The closure only runs when the sink is enabled, so
    /// callers can build payloads (allocations included) without guarding.
    #[inline]
    pub fn emit(&self, time: SimTime, site: SiteId, event: impl FnOnce() -> Event) {
        if let Some(inner) = &self.0 {
            let mut g = inner.lock().expect("sink poisoned");
            let rec = TraceRecord {
                time,
                seq: g.next_seq,
                site,
                event: event(),
            };
            g.next_seq += 1;
            g.report.observe(&rec);
            if g.ring.len() == g.capacity {
                g.ring.pop_front();
                g.report.dropped += 1;
            }
            g.ring.push_back(rec);
        }
    }

    /// Drains the sink: returns the buffered records plus the streaming
    /// report, or `None` if the sink was disabled. The sink is empty (but
    /// still enabled) afterwards.
    #[must_use]
    pub fn finish(&self) -> Option<TraceData> {
        self.0.as_ref().map(|inner| {
            let mut g = inner.lock().expect("sink poisoned");
            TraceData {
                records: g.ring.drain(..).collect(),
                report: g.report.clone(),
            }
        })
    }
}

/// A drained trace: the retained records and the full-run summary.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceData {
    /// Captured records in emission order (after a merge: sim-time order).
    pub records: Vec<TraceRecord>,
    /// Streaming summary covering *every* emitted event, even evicted ones.
    pub report: ObsReport,
}

impl TraceData {
    /// Merges per-site traces into one timeline ordered by
    /// `(time, site, seq)` — the deterministic shutdown merge the threaded
    /// cluster runtime uses.
    #[must_use]
    pub fn merge(parts: Vec<TraceData>) -> TraceData {
        let mut records = Vec::with_capacity(parts.iter().map(|p| p.records.len()).sum());
        let mut report = ObsReport::new();
        for part in parts {
            records.extend(part.records);
            report.merge(&part.report);
        }
        records.sort_by_key(|r| (r.time, r.site, r.seq));
        TraceData { records, report }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use siteselect_types::{ClientId, TransactionId};

    fn exec(seq: u64) -> Event {
        Event::ExecStart {
            txn: TransactionId::new(ClientId(0), seq),
        }
    }

    #[test]
    fn disabled_sink_never_builds_the_payload() {
        let sink = EventSink::disabled();
        sink.emit(SimTime::from_secs(0), SiteId::Server, || {
            panic!("payload built on disabled path")
        });
        assert!(sink.finish().is_none());
        assert!(!sink.is_enabled());
    }

    #[test]
    fn ring_drops_oldest_but_report_sees_all() {
        let sink = EventSink::enabled(2);
        for i in 0..5 {
            sink.emit(SimTime::from_micros(i), SiteId::Server, || exec(i));
        }
        let trace = sink.finish().unwrap();
        assert_eq!(trace.records.len(), 2);
        assert_eq!(trace.records[0].seq, 3);
        assert_eq!(trace.report.events, 5);
        assert_eq!(trace.report.dropped, 3);
    }

    #[test]
    fn clones_share_one_buffer() {
        let a = EventSink::enabled(8);
        let b = a.clone();
        a.emit(SimTime::from_micros(1), SiteId::Server, || exec(0));
        b.emit(SimTime::from_micros(2), SiteId::Directory, || exec(1));
        let trace = a.finish().unwrap();
        assert_eq!(trace.records.len(), 2);
        assert_eq!(trace.records[1].seq, 1);
    }

    #[test]
    fn merge_orders_by_time_site_seq() {
        let a = EventSink::enabled(8);
        let b = EventSink::enabled(8);
        a.emit(SimTime::from_micros(5), SiteId::Client(ClientId(1)), || exec(0));
        b.emit(SimTime::from_micros(2), SiteId::Client(ClientId(2)), || exec(0));
        b.emit(SimTime::from_micros(5), SiteId::Client(ClientId(0)), || exec(1));
        let merged = TraceData::merge(vec![a.finish().unwrap(), b.finish().unwrap()]);
        let times: Vec<u64> = merged.records.iter().map(|r| r.time.as_micros()).collect();
        assert_eq!(times, vec![2, 5, 5]);
        assert_eq!(merged.records[1].site, SiteId::Client(ClientId(0)));
        assert_eq!(merged.report.events, 3);
    }
}
