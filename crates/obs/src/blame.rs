//! Critical-path extraction and deadline blame attribution.
//!
//! Input: a merged [`TraceData`] containing `TxnSubmit`, `Outcome` and
//! [`Event::Span`] records. For every transaction with both a submission and
//! a terminal outcome, the extractor partitions the closed interval
//! `[submit, outcome]` into elementary segments at every span boundary and
//! charges each segment to the highest-[`priority`](SpanKind::priority)
//! span covering it; time no span covers falls through to the
//! [`SpanKind::Exec`] residual. Because the segments partition the interval
//! and every microsecond is charged to exactly one cause, the blame vector
//! sums **exactly** to the end-to-end latency — conservation by
//! construction, enforced again by a property test in `siteselect-core`.
//!
//! Derived unit ids (subtasks, which embed their index in bits 40..48 of
//! the raw transaction id) are folded onto their root transaction, so a
//! decomposed transaction's remote lock waits blame the parent. Site-scoped
//! spans (`txn: None`, e.g. a server crash-restart replay outage) apply to
//! every transaction whose interval overlaps them.
//!
//! Everything here is integer microseconds and deterministic-order maps:
//! two extractions of byte-identical traces render byte-identical reports.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use siteselect_types::{SimTime, TransactionId, TxnOutcome};

use crate::event::{outcome_str, Event};
use crate::hist::LogHistogram;
use crate::metrics::MetricsRegistry;
use crate::sink::TraceData;
use crate::span::SpanKind;

/// Mask clearing the subtask-index bits (40..48) of a raw transaction id —
/// see `subtask_key` in `siteselect-core`.
const SUBTASK_MASK: u64 = !(0xFF << 40);

/// Folds a derived subtask id onto its root transaction.
#[must_use]
pub fn fold_root(txn: TransactionId) -> TransactionId {
    TransactionId::from_raw(txn.as_u64() & SUBTASK_MASK)
}

/// One step of an annotated critical path: `[start, end)` charged to `kind`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PathSegment {
    /// Segment start, microseconds.
    pub start_us: u64,
    /// Segment end, microseconds.
    pub end_us: u64,
    /// The cause this segment is charged to.
    pub kind: SpanKind,
    /// The blocking holder, when the winning span was a lock wait that
    /// recorded one.
    pub blocker: Option<TransactionId>,
}

/// One transaction's blame attribution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TxnBlame {
    /// The (root) transaction.
    pub txn: TransactionId,
    /// Submission time.
    pub submit: SimTime,
    /// Terminal outcome time.
    pub end: SimTime,
    /// The firm deadline it carried.
    pub deadline: SimTime,
    /// How it ended.
    pub outcome: TxnOutcome,
    /// Microseconds charged to each cause, [`SpanKind::ALL`] order. Sums
    /// exactly to [`latency_us`](Self::latency_us).
    pub vector: [u64; SpanKind::COUNT],
    /// The annotated critical path (adjacent same-cause segments merged).
    pub path: Vec<PathSegment>,
}

impl TxnBlame {
    /// End-to-end latency, microseconds.
    #[must_use]
    pub fn latency_us(&self) -> u64 {
        self.end.as_micros() - self.submit.as_micros()
    }

    /// Sum of the blame vector — equal to [`latency_us`](Self::latency_us)
    /// by construction.
    #[must_use]
    pub fn vector_sum(&self) -> u64 {
        self.vector.iter().sum()
    }

    /// True unless the transaction committed within its deadline.
    #[must_use]
    pub fn missed(&self) -> bool {
        self.outcome != TxnOutcome::Committed
    }

    /// How far past the deadline it ended (0 when in time).
    #[must_use]
    pub fn tardiness_us(&self) -> u64 {
        self.end.as_micros().saturating_sub(self.deadline.as_micros())
    }
}

/// A span interval gathered for one transaction (or site-wide).
#[derive(Debug, Clone, Copy)]
struct Interval {
    start_us: u64,
    end_us: u64,
    kind: SpanKind,
    blocker: Option<TransactionId>,
}

#[derive(Debug, Default)]
struct TxnFacts {
    submit: Option<(SimTime, SimTime)>, // (submit, deadline)
    outcome: Option<(SimTime, TxnOutcome)>,
    spans: Vec<Interval>,
}

/// Extracts the blame vector of every transaction with both a submission
/// and a terminal outcome in `trace`, in ascending transaction-id order.
///
/// Transactions whose submit or outcome record was evicted from the ring
/// are skipped (the caller should surface `trace.report.dropped`).
#[must_use]
pub fn txn_blames(trace: &TraceData) -> Vec<TxnBlame> {
    let mut facts: BTreeMap<u64, TxnFacts> = BTreeMap::new();
    let mut sitewide: Vec<Interval> = Vec::new();
    for rec in &trace.records {
        match &rec.event {
            Event::TxnSubmit { txn, deadline, .. } => {
                let f = facts.entry(txn.as_u64()).or_default();
                if f.submit.is_none() {
                    f.submit = Some((rec.time, *deadline));
                }
            }
            Event::Outcome { txn, outcome } => {
                let f = facts.entry(txn.as_u64()).or_default();
                if f.outcome.is_none() {
                    f.outcome = Some((rec.time, *outcome));
                }
            }
            Event::Span {
                txn,
                kind,
                start,
                blocker,
            } => {
                let iv = Interval {
                    start_us: start.as_micros(),
                    end_us: rec.time.as_micros(),
                    kind: *kind,
                    blocker: *blocker,
                };
                match txn {
                    Some(t) => facts
                        .entry(fold_root(*t).as_u64())
                        .or_default()
                        .spans
                        .push(iv),
                    None => sitewide.push(iv),
                }
            }
            _ => {}
        }
    }
    let mut out = Vec::new();
    for (raw, f) in &facts {
        let (Some((submit, deadline)), Some((end, outcome))) = (f.submit, f.outcome) else {
            continue;
        };
        let (s, e) = (submit.as_micros(), end.as_micros());
        let mut intervals: Vec<Interval> = Vec::with_capacity(f.spans.len());
        for iv in f.spans.iter().chain(sitewide.iter()) {
            let cs = iv.start_us.max(s);
            let ce = iv.end_us.min(e);
            if ce > cs {
                intervals.push(Interval {
                    start_us: cs,
                    end_us: ce,
                    ..*iv
                });
            }
        }
        let (vector, path) = attribute(s, e, &intervals);
        out.push(TxnBlame {
            txn: TransactionId::from_raw(*raw),
            submit,
            end,
            deadline,
            outcome,
            vector,
            path,
        });
    }
    out
}

/// Priority-ordered elementary-segment sweep over `[s, e]`.
fn attribute(
    s: u64,
    e: u64,
    intervals: &[Interval],
) -> ([u64; SpanKind::COUNT], Vec<PathSegment>) {
    let mut vector = [0u64; SpanKind::COUNT];
    let mut path: Vec<PathSegment> = Vec::new();
    if e <= s {
        return (vector, path);
    }
    let mut bounds: Vec<u64> = Vec::with_capacity(2 + intervals.len() * 2);
    bounds.push(s);
    bounds.push(e);
    for iv in intervals {
        bounds.push(iv.start_us);
        bounds.push(iv.end_us);
    }
    bounds.sort_unstable();
    bounds.dedup();
    for w in bounds.windows(2) {
        let (a, b) = (w[0], w[1]);
        // Winner: highest priority covering the whole segment; ties go to
        // the earliest interval in gather order (trace order, deterministic).
        let mut win: Option<&Interval> = None;
        for iv in intervals {
            if iv.start_us <= a && iv.end_us >= b {
                let better = win.is_none_or(|w| iv.kind.priority() > w.kind.priority());
                if better {
                    win = Some(iv);
                }
            }
        }
        let (kind, blocker) = win.map_or((SpanKind::Exec, None), |iv| (iv.kind, iv.blocker));
        vector[kind.index()] += b - a;
        match path.last_mut() {
            Some(last) if last.kind == kind && last.blocker == blocker && last.end_us == a => {
                last.end_us = b;
            }
            _ => path.push(PathSegment {
                start_us: a,
                end_us: b,
                kind,
                blocker,
            }),
        }
    }
    (vector, path)
}

/// Per-cause aggregate over one run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CauseStats {
    /// The cause.
    pub kind: SpanKind,
    /// Total microseconds charged across all blamed transactions.
    pub total_us: u64,
    /// Microseconds charged within transactions that missed their deadline.
    pub missed_us: u64,
    /// Transactions with a nonzero charge for this cause.
    pub txns: u64,
    /// Distribution of nonzero per-transaction charges, microseconds.
    pub hist: LogHistogram,
}

/// The aggregated blame report of one traced run.
#[derive(Debug, Clone, PartialEq)]
pub struct BlameReport {
    /// Transactions blamed (submission and outcome both present).
    pub txns: u64,
    /// Of those, how many missed their deadline (late commit or abort).
    pub missed: u64,
    /// Events evicted from the trace ring (nonzero means blame may be
    /// incomplete — surface this to the user).
    pub dropped_events: u64,
    /// Per-cause aggregates, [`SpanKind::ALL`] order.
    pub causes: Vec<CauseStats>,
    /// The top-K worst deadline misses by tardiness, annotated with their
    /// critical paths.
    pub worst: Vec<TxnBlame>,
}

impl BlameReport {
    /// Builds the report from a merged trace: extracts every blame vector,
    /// aggregates per cause, and keeps the `top_k` worst misses. Pipeline
    /// tallies are folded into `registry` (pass a disabled registry to
    /// skip).
    #[must_use]
    pub fn extract(trace: &TraceData, top_k: usize, registry: &MetricsRegistry) -> BlameReport {
        let blames = txn_blames(trace);
        let mut causes: Vec<CauseStats> = SpanKind::ALL
            .iter()
            .map(|&kind| CauseStats {
                kind,
                total_us: 0,
                missed_us: 0,
                txns: 0,
                hist: LogHistogram::new(),
            })
            .collect();
        let mut missed = 0u64;
        for b in &blames {
            registry.add("blame_txns", 1);
            if b.missed() {
                missed += 1;
                registry.add("blame_txns_missed", 1);
                registry.max_gauge(
                    "blame_worst_tardiness_us",
                    i64::try_from(b.tardiness_us()).unwrap_or(i64::MAX),
                );
            }
            registry.add("blame_path_segments", b.path.len() as u64);
            for (i, &us) in b.vector.iter().enumerate() {
                if us > 0 {
                    let c = &mut causes[i];
                    c.total_us += us;
                    c.txns += 1;
                    c.hist.record(us);
                    if b.missed() {
                        c.missed_us += us;
                    }
                }
            }
        }
        let mut worst: Vec<&TxnBlame> = blames.iter().filter(|b| b.missed()).collect();
        worst.sort_by_key(|b| (std::cmp::Reverse(b.tardiness_us()), b.txn.as_u64()));
        worst.truncate(top_k);
        let worst: Vec<TxnBlame> = worst.into_iter().cloned().collect();
        registry.add("blame_worst_listed", worst.len() as u64);
        BlameReport {
            txns: blames.len() as u64,
            missed,
            dropped_events: trace.report.dropped,
            causes,
            worst,
        }
    }

    /// Total microseconds attributed across all causes.
    #[must_use]
    pub fn total_us(&self) -> u64 {
        self.causes.iter().map(|c| c.total_us).sum()
    }

    /// Machine-readable JSON (hand-rolled, integers only, deterministic).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(4096);
        let _ = write!(
            out,
            r#"{{"txns":{},"missed":{},"dropped_events":{},"total_us":{},"causes":["#,
            self.txns,
            self.missed,
            self.dropped_events,
            self.total_us()
        );
        for (i, c) in self.causes.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                r#"{{"cause":"{}","total_us":{},"missed_us":{},"txns":{},"p50_us":{},"p99_us":{},"max_us":{}}}"#,
                c.kind.label(),
                c.total_us,
                c.missed_us,
                c.txns,
                c.hist.quantile(0.5),
                c.hist.quantile(0.99),
                c.hist.max()
            );
        }
        out.push_str(r#"],"worst":["#);
        for (i, b) in self.worst.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                r#"{{"txn":"{}","outcome":"{}","latency_us":{},"deadline_us":{},"tardiness_us":{},"blame_us":{{"#,
                b.txn,
                outcome_str(b.outcome),
                b.latency_us(),
                b.deadline.as_micros(),
                b.tardiness_us()
            );
            let mut first = true;
            for (j, &us) in b.vector.iter().enumerate() {
                if us > 0 {
                    if !first {
                        out.push(',');
                    }
                    first = false;
                    let _ = write!(out, r#""{}":{us}"#, SpanKind::ALL[j].label());
                }
            }
            out.push_str(r#"},"path":["#);
            for (j, seg) in b.path.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(
                    out,
                    r#"{{"start_us":{},"end_us":{},"cause":"{}""#,
                    seg.start_us,
                    seg.end_us,
                    seg.kind.label()
                );
                if let Some(blk) = seg.blocker {
                    let _ = write!(out, r#","blocker":"{blk}""#);
                }
                out.push('}');
            }
            out.push_str("]}");
        }
        out.push_str("]}\n");
        out
    }

    /// Renders the report as aligned plain text (deterministic).
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "blamed transactions {:>10}   missed {:>8}",
            self.txns, self.missed
        );
        let total = self.total_us().max(1);
        let _ = writeln!(
            out,
            "{:<12}{:>14}{:>8}{:>14}{:>10}{:>12}{:>12}",
            "cause", "total_us", "%", "missed_us", "txns", "p99_us", "max_us"
        );
        for c in &self.causes {
            if c.total_us == 0 && c.kind != SpanKind::Exec {
                continue;
            }
            let pct = c.total_us * 1000 / total; // permille, rendered as x.y%
            let _ = writeln!(
                out,
                "{:<12}{:>14}{:>7}.{}{:>14}{:>10}{:>12}{:>12}",
                c.kind.label(),
                c.total_us,
                pct / 10,
                pct % 10,
                c.missed_us,
                c.txns,
                c.hist.quantile(0.99),
                c.hist.max()
            );
        }
        if !self.worst.is_empty() {
            let _ = writeln!(out, "worst missed deadlines:");
            for b in &self.worst {
                let _ = writeln!(
                    out,
                    "  {} {} latency={}us tardiness={}us",
                    b.txn,
                    outcome_str(b.outcome),
                    b.latency_us(),
                    b.tardiness_us()
                );
                for seg in &b.path {
                    let blocker = seg
                        .blocker
                        .map(|t| format!(" (blocked by {t})"))
                        .unwrap_or_default();
                    let _ = writeln!(
                        out,
                        "    {:>10} ..{:>10}  {:>8}us  {}{}",
                        seg.start_us,
                        seg.end_us,
                        seg.end_us - seg.start_us,
                        seg.kind.label(),
                        blocker
                    );
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::{EventSink, TraceRecord};
    use siteselect_types::{AbortReason, ClientId, SiteId};

    fn txn(seq: u64) -> TransactionId {
        TransactionId::new(ClientId(0), seq)
    }

    fn rec(time_us: u64, event: Event) -> TraceRecord {
        TraceRecord {
            time: SimTime::from_micros(time_us),
            seq: 0,
            site: SiteId::Server,
            event,
        }
    }

    fn span(txn_id: Option<TransactionId>, kind: SpanKind, start: u64) -> Event {
        Event::Span {
            txn: txn_id,
            kind,
            start: SimTime::from_micros(start),
            blocker: None,
        }
    }

    fn trace_of(records: Vec<TraceRecord>) -> TraceData {
        let mut report = crate::ObsReport::new();
        for r in &records {
            report.observe(r);
        }
        TraceData { records, report }
    }

    #[test]
    fn uncovered_time_is_exec_and_conservation_holds() {
        let t = txn(1);
        let trace = trace_of(vec![
            rec(100, Event::TxnSubmit { txn: t, deadline: SimTime::from_micros(900), accesses: 1 }),
            rec(400, span(Some(t), SpanKind::Net, 200)),
            rec(
                1000,
                Event::Outcome { txn: t, outcome: TxnOutcome::CommittedLate },
            ),
        ]);
        let blames = txn_blames(&trace);
        assert_eq!(blames.len(), 1);
        let b = &blames[0];
        assert_eq!(b.latency_us(), 900);
        assert_eq!(b.vector_sum(), 900);
        assert_eq!(b.vector[SpanKind::Net.index()], 200);
        assert_eq!(b.vector[SpanKind::Exec.index()], 700);
        assert!(b.missed());
        assert_eq!(b.tardiness_us(), 100);
        assert_eq!(b.path.len(), 3); // exec, net, exec
    }

    #[test]
    fn overlaps_charge_the_higher_priority_cause() {
        let t = txn(2);
        let trace = trace_of(vec![
            rec(0, Event::TxnSubmit { txn: t, deadline: SimTime::from_micros(500), accesses: 1 }),
            // Net covers 0..300; a disk batch 100..200 carves out the middle.
            rec(300, span(Some(t), SpanKind::Net, 0)),
            rec(200, span(Some(t), SpanKind::Disk, 100)),
            rec(300, Event::Outcome { txn: t, outcome: TxnOutcome::Committed }),
        ]);
        let b = &txn_blames(&trace)[0];
        assert_eq!(b.vector[SpanKind::Net.index()], 200);
        assert_eq!(b.vector[SpanKind::Disk.index()], 100);
        assert_eq!(b.vector_sum(), 300);
        assert!(!b.missed());
    }

    #[test]
    fn sitewide_replay_applies_to_overlapping_txns_and_spans_clip() {
        let a = txn(3);
        let b = txn(4);
        let trace = trace_of(vec![
            rec(0, Event::TxnSubmit { txn: a, deadline: SimTime::from_micros(90), accesses: 1 }),
            rec(150, Event::TxnSubmit { txn: b, deadline: SimTime::from_micros(400), accesses: 1 }),
            // Replay outage 50..250 overlaps the tail of a and the head of b.
            rec(250, span(None, SpanKind::Replay, 50)),
            rec(100, Event::Outcome { txn: a, outcome: TxnOutcome::Aborted(AbortReason::Expired) }),
            rec(300, Event::Outcome { txn: b, outcome: TxnOutcome::Committed }),
        ]);
        let blames = txn_blames(&trace);
        let ba = blames.iter().find(|x| x.txn == a).unwrap();
        let bb = blames.iter().find(|x| x.txn == b).unwrap();
        assert_eq!(ba.vector[SpanKind::Replay.index()], 50); // clipped to 50..100
        assert_eq!(ba.vector_sum(), 100);
        assert_eq!(bb.vector[SpanKind::Replay.index()], 100); // clipped to 150..250
        assert_eq!(bb.vector_sum(), 150);
    }

    #[test]
    fn subtask_ids_fold_onto_the_root() {
        let root = txn(5);
        let sub = TransactionId::from_raw(root.as_u64() | (1 << 40));
        assert_eq!(fold_root(sub), root);
        let trace = trace_of(vec![
            rec(0, Event::TxnSubmit { txn: root, deadline: SimTime::from_micros(500), accesses: 1 }),
            rec(80, span(Some(sub), SpanKind::LockWait, 20)),
            rec(100, Event::Outcome { txn: root, outcome: TxnOutcome::Committed }),
        ]);
        let blames = txn_blames(&trace);
        assert_eq!(blames.len(), 1);
        assert_eq!(blames[0].vector[SpanKind::LockWait.index()], 60);
    }

    #[test]
    fn report_aggregates_ranks_and_serializes() {
        let sink = EventSink::enabled(64);
        let mk = |seq: u64, submit: u64, end: u64, deadline: u64, outcome: TxnOutcome| {
            let t = txn(seq);
            sink.emit(SimTime::from_micros(submit), SiteId::Server, || Event::TxnSubmit {
                txn: t,
                deadline: SimTime::from_micros(deadline),
                accesses: 1,
            });
            sink.emit(SimTime::from_micros(end), SiteId::Server, || {
                span(Some(t), SpanKind::LockWait, submit)
            });
            sink.emit(SimTime::from_micros(end), SiteId::Server, || Event::Outcome {
                txn: t,
                outcome,
            });
        };
        mk(1, 0, 100, 500, TxnOutcome::Committed);
        mk(2, 0, 300, 200, TxnOutcome::CommittedLate); // tardiness 100
        mk(3, 0, 900, 400, TxnOutcome::Aborted(AbortReason::Expired)); // tardiness 500
        let trace = sink.finish().unwrap();
        let registry = MetricsRegistry::enabled();
        let report = BlameReport::extract(&trace, 1, &registry);
        assert_eq!(report.txns, 3);
        assert_eq!(report.missed, 2);
        assert_eq!(report.total_us(), 100 + 300 + 900);
        assert_eq!(report.worst.len(), 1);
        assert_eq!(report.worst[0].txn, txn(3)); // worst tardiness first
        let snap = registry.snapshot().unwrap();
        assert_eq!(snap.counter("blame_txns"), 3);
        assert_eq!(snap.counter("blame_txns_missed"), 2);
        assert_eq!(snap.gauge("blame_worst_tardiness_us"), Some(500));
        let json = report.to_json();
        assert!(json.contains(r#""txns":3"#));
        assert!(json.contains(r#""cause":"lock_wait""#));
        assert!(json.contains(r#""tardiness_us":500"#));
        let text = report.render();
        assert!(text.contains("worst missed deadlines"));
        assert!(text.contains("lock_wait"));
        // Determinism: extracting twice renders byte-identical output.
        let again = BlameReport::extract(&trace, 1, &MetricsRegistry::disabled());
        assert_eq!(again.to_json(), json);
        assert_eq!(again.render(), text);
    }

    #[test]
    fn txns_without_outcome_or_submit_are_skipped() {
        let t = txn(9);
        let trace = trace_of(vec![
            rec(0, Event::TxnSubmit { txn: t, deadline: SimTime::from_micros(10), accesses: 1 }),
            rec(5, Event::Outcome { txn: txn(10), outcome: TxnOutcome::Committed }),
        ]);
        assert!(txn_blames(&trace).is_empty());
    }
}
