//! The structured event taxonomy emitted by the simulators.
//!
//! Every payload field is an integer (microseconds for times) or a stable
//! identifier rendered through its `Display` impl, so serialized traces are
//! byte-identical across runs at the same seed — no floats, no pointers, no
//! hash-map iteration order anywhere near the wire format.

use std::fmt::Write as _;

use siteselect_types::{AbortReason, ClientId, ObjectId, SimTime, SiteId, TransactionId, TxnOutcome};

use crate::span::SpanKind;

/// Stable lower-case label for an abort reason, used in exports.
#[must_use]
pub fn abort_reason_str(reason: AbortReason) -> &'static str {
    match reason {
        AbortReason::Expired => "expired",
        AbortReason::Deadlock => "deadlock",
        AbortReason::SubtaskFailure => "subtask_failure",
        AbortReason::SiteCrash => "site_crash",
        AbortReason::Shutdown => "shutdown",
    }
}

/// Stable lower-case label for a final transaction outcome, used in exports
/// and by the deadline-accounting oracle (`siteselect-check`).
#[must_use]
pub fn outcome_str(outcome: TxnOutcome) -> &'static str {
    match outcome {
        TxnOutcome::Committed => "committed",
        TxnOutcome::CommittedLate => "committed_late",
        TxnOutcome::Aborted(reason) => abort_reason_str(reason),
    }
}

/// One candidate considered by the H2 site-selection heuristic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct H2Candidate {
    /// The candidate execution site.
    pub site: SiteId,
    /// Conflicting-lock count (lower is better).
    pub score: u64,
}

/// A structured trace event. See DESIGN.md §Observability for the taxonomy.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// A transaction arrived at its originating client.
    TxnSubmit {
        /// The new transaction.
        txn: TransactionId,
        /// Its firm deadline.
        deadline: SimTime,
        /// Number of object accesses it will make.
        accesses: u32,
    },
    /// H1 admitted the transaction: `now + n·ATL ≤ deadline`.
    H1Admit {
        /// The admitted transaction.
        txn: TransactionId,
        /// `n`: EDF queue length ahead of it (CPU load proxy).
        queue_ahead: u64,
        /// Running average transaction latency, microseconds.
        atl_us: u64,
        /// The projected completion instant `now + n·ATL`.
        projected: SimTime,
        /// The transaction deadline the projection was tested against.
        deadline: SimTime,
    },
    /// H1 judged local completion infeasible (`now + n·ATL > deadline`).
    H1Reject {
        /// The rejected transaction.
        txn: TransactionId,
        /// `n`: EDF queue length ahead of it.
        queue_ahead: u64,
        /// Running average transaction latency, microseconds.
        atl_us: u64,
        /// The projected completion instant that missed the deadline.
        projected: SimTime,
        /// The deadline it missed.
        deadline: SimTime,
    },
    /// H2 scored candidate sites and picked one.
    H2Choose {
        /// The transaction being placed.
        txn: TransactionId,
        /// Site the transaction originated at.
        origin: SiteId,
        /// Site H2 selected.
        chosen: SiteId,
        /// Every scored candidate, in evaluation order.
        candidates: Vec<H2Candidate>,
    },
    /// A transaction started executing on a CPU.
    ExecStart {
        /// The transaction.
        txn: TransactionId,
    },
    /// A lock request blocked behind a conflicting holder.
    LockWait {
        /// The blocked transaction.
        txn: TransactionId,
        /// The contended object.
        object: ObjectId,
    },
    /// The server issued callback recalls to the current holders.
    CallbackIssued {
        /// The recalled object.
        object: ObjectId,
        /// How many holders were asked to give the object up.
        holders: u32,
    },
    /// A holder acknowledged (or returned the object for) a callback.
    CallbackAcked {
        /// The recalled object.
        object: ObjectId,
        /// The acknowledging client.
        from: ClientId,
    },
    /// A collection window opened on an object (grouped locks, §3.4).
    WindowOpen {
        /// The object the window collects requests for.
        object: ObjectId,
    },
    /// A collection window closed and produced a forward list.
    WindowClose {
        /// The object.
        object: ObjectId,
        /// Number of requests batched into the forward list.
        batch: u32,
    },
    /// An object hopped client→client along a forward list.
    ForwardHop {
        /// The forwarded object.
        object: ObjectId,
        /// The next client on the list.
        to: ClientId,
    },
    /// A whole transaction was shipped to a better site (H2 outcome).
    Shipped {
        /// The shipped transaction.
        txn: TransactionId,
        /// Destination site.
        to: SiteId,
    },
    /// A transaction was decomposed into subtasks (§3.2).
    Decomposed {
        /// The parent transaction.
        txn: TransactionId,
        /// Number of subtasks created.
        subtasks: u32,
    },
    /// A transaction committed.
    Commit {
        /// The committed transaction.
        txn: TransactionId,
        /// Response time (submit → commit), microseconds.
        latency_us: u64,
        /// Slack vs. deadline, microseconds; negative means it was late.
        slack_us: i64,
    },
    /// A transaction aborted.
    Abort {
        /// The aborted transaction.
        txn: TransactionId,
        /// Why it aborted.
        reason: AbortReason,
    },
    /// The server refused a lock request (deadline passed or deadlock).
    ServerReject {
        /// The refused transaction.
        txn: TransactionId,
        /// True when the refusal was because the deadline had passed.
        expired: bool,
    },
    /// The fabric dropped a message (fault injection).
    MsgDropped {
        /// The destination that never received it.
        to: SiteId,
    },
    /// The fabric delayed a message beyond its modeled latency.
    MsgDelayed {
        /// The destination.
        to: SiteId,
        /// Extra delay added, microseconds.
        jitter_us: u64,
    },
    /// A site crashed (fault injection).
    SiteCrash {
        /// The crashed site.
        site: SiteId,
    },
    /// A crashed site came back up.
    SiteRecover {
        /// The recovered site.
        site: SiteId,
    },
    /// A client re-sent a fetch after a timeout.
    RetrySent {
        /// The retrying transaction.
        txn: TransactionId,
    },
    /// The server reclaimed a callback lease that was never acknowledged.
    LeaseExpired {
        /// The object whose recall went unanswered.
        object: ObjectId,
        /// The unresponsive holder.
        holder: ClientId,
    },
    /// An execution unit (transaction, shipped transaction, or subtask)
    /// started holding a lock it will keep until its terminal event —
    /// the serializability oracle's per-object ordering witness.
    LockHeld {
        /// The holding unit (root id, or a derived subtask id).
        txn: TransactionId,
        /// The locked object.
        object: ObjectId,
        /// True for an exclusive (write) lock, false for shared.
        exclusive: bool,
    },
    /// An execution unit reached its terminal state and released all locks
    /// (strict 2PL). Paired with [`Event::LockHeld`] it bounds every lock
    /// episode the serializability oracle reasons about.
    UnitEnd {
        /// The finished unit.
        txn: TransactionId,
        /// True if the unit committed; false on any abort.
        committed: bool,
    },
    /// A client installed a cached copy of an object with a cached lock.
    CacheInstall {
        /// The installing client.
        client: ClientId,
        /// The object.
        object: ObjectId,
        /// True for an exclusive cached lock, false for shared.
        exclusive: bool,
    },
    /// A client downgraded its cached exclusive lock to shared (callback
    /// answered with downgrade-to-shared).
    CacheDowngrade {
        /// The downgrading client.
        client: ClientId,
        /// The object.
        object: ObjectId,
    },
    /// A client gave up its cached lock on an object (callback revoke,
    /// forward hop hand-off, or a server-side lease fence).
    CacheDrop {
        /// The client losing the cached lock.
        client: ClientId,
        /// The object.
        object: ObjectId,
    },
    /// A client lost every cached lock at once (site crash).
    CacheWipe {
        /// The wiped client.
        client: ClientId,
    },
    /// A measured transaction's final accounting disposition was recorded —
    /// exactly one per admitted transaction, recounted by the
    /// deadline-accounting oracle against the reported metrics.
    Outcome {
        /// The transaction.
        txn: TransactionId,
        /// Its final disposition.
        outcome: TxnOutcome,
    },
    /// A durable page write was logged at the server's write-ahead log. The
    /// stamp is the unique value now stored in the page; the recovery
    /// oracle tracks it until a [`Event::WalCommit`] or [`Event::WalAbort`]
    /// resolves it.
    WalWrite {
        /// The writing transaction (or server-side pseudo-transaction).
        txn: TransactionId,
        /// The page written.
        page: ObjectId,
        /// The unique write stamp stored in the page.
        stamp: u64,
    },
    /// A transaction's commit record was forced to the durable log — from
    /// this instant its stamped writes must survive any crash-restart.
    WalCommit {
        /// The committed transaction.
        txn: TransactionId,
    },
    /// A transaction's logged updates were rolled back in place and an
    /// abort record appended — its stamps must never be seen again.
    WalAbort {
        /// The rolled-back transaction.
        txn: TransactionId,
    },
    /// A fuzzy checkpoint record was written at the server.
    WalCheckpoint {
        /// Transactions active (unresolved) at checkpoint time.
        active: u32,
        /// Total records in the log after the checkpoint.
        log_records: u64,
    },
    /// Crash-restart replay finished at a recovering site.
    RecoveryDone {
        /// The recovering site.
        site: SiteId,
        /// Update records reapplied by the redo pass.
        redo: u64,
        /// Loser updates rolled back by the undo pass.
        undone: u64,
        /// Loser transactions rolled back.
        losers: u32,
        /// Disk operations the replay was charged for.
        replay_ios: u64,
    },
    /// Post-recovery durable page state: one per page with a nonzero write
    /// stamp, emitted in ascending page order after each replay. The
    /// recovery oracle compares these against the committed history.
    WalState {
        /// The page.
        page: ObjectId,
        /// The stamp the page holds after replay.
        stamp: u64,
    },
    /// A causal interval ended: `[start, record time]` of one cause of
    /// elapsed transaction time (see [`SpanKind`]). Emitted at completion so
    /// no open/close pairing is needed; the blame extractor charges each
    /// transaction's elementary time segments to its highest-priority
    /// covering span.
    Span {
        /// The affected transaction (root or derived subtask/shipped unit
        /// id; blame folds derived ids onto the root). `None` marks a
        /// site-scoped span — e.g. a crash-restart replay outage — that
        /// applies to every transaction overlapping it.
        txn: Option<TransactionId>,
        /// The cause this interval is charged to.
        kind: SpanKind,
        /// When the interval began (the record's own time is the end).
        start: SimTime,
        /// For lock waits: the transaction that held the conflicting lock
        /// when this wait began.
        blocker: Option<TransactionId>,
    },
}

impl Event {
    /// Stable snake_case label for the event kind.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            Event::TxnSubmit { .. } => "txn_submit",
            Event::H1Admit { .. } => "h1_admit",
            Event::H1Reject { .. } => "h1_reject",
            Event::H2Choose { .. } => "h2_choose",
            Event::ExecStart { .. } => "exec_start",
            Event::LockWait { .. } => "lock_wait",
            Event::CallbackIssued { .. } => "callback_issued",
            Event::CallbackAcked { .. } => "callback_acked",
            Event::WindowOpen { .. } => "window_open",
            Event::WindowClose { .. } => "window_close",
            Event::ForwardHop { .. } => "forward_hop",
            Event::Shipped { .. } => "shipped",
            Event::Decomposed { .. } => "decomposed",
            Event::Commit { .. } => "commit",
            Event::Abort { .. } => "abort",
            Event::ServerReject { .. } => "server_reject",
            Event::MsgDropped { .. } => "msg_dropped",
            Event::MsgDelayed { .. } => "msg_delayed",
            Event::SiteCrash { .. } => "site_crash",
            Event::SiteRecover { .. } => "site_recover",
            Event::RetrySent { .. } => "retry_sent",
            Event::LeaseExpired { .. } => "lease_expired",
            Event::LockHeld { .. } => "lock_held",
            Event::UnitEnd { .. } => "unit_end",
            Event::CacheInstall { .. } => "cache_install",
            Event::CacheDowngrade { .. } => "cache_downgrade",
            Event::CacheDrop { .. } => "cache_drop",
            Event::CacheWipe { .. } => "cache_wipe",
            Event::Outcome { .. } => "outcome",
            Event::WalWrite { .. } => "wal_write",
            Event::WalCommit { .. } => "wal_commit",
            Event::WalAbort { .. } => "wal_abort",
            Event::WalCheckpoint { .. } => "wal_checkpoint",
            Event::RecoveryDone { .. } => "recovery_done",
            Event::WalState { .. } => "wal_state",
            Event::Span { kind, .. } => kind.event_kind(),
        }
    }

    /// The transaction this event concerns, if any.
    #[must_use]
    pub fn txn(&self) -> Option<TransactionId> {
        match self {
            Event::TxnSubmit { txn, .. }
            | Event::H1Admit { txn, .. }
            | Event::H1Reject { txn, .. }
            | Event::H2Choose { txn, .. }
            | Event::ExecStart { txn }
            | Event::LockWait { txn, .. }
            | Event::Shipped { txn, .. }
            | Event::Decomposed { txn, .. }
            | Event::Commit { txn, .. }
            | Event::Abort { txn, .. }
            | Event::ServerReject { txn, .. }
            | Event::RetrySent { txn }
            | Event::LockHeld { txn, .. }
            | Event::UnitEnd { txn, .. }
            | Event::Outcome { txn, .. }
            | Event::WalWrite { txn, .. }
            | Event::WalCommit { txn }
            | Event::WalAbort { txn } => Some(*txn),
            Event::Span { txn, .. } => *txn,
            _ => None,
        }
    }

    /// Appends the event's payload as JSON object members (`,"k":v` pairs).
    pub fn write_json_fields(&self, out: &mut String) {
        match self {
            Event::TxnSubmit {
                txn,
                deadline,
                accesses,
            } => {
                let _ = write!(
                    out,
                    r#","txn":"{txn}","deadline_us":{},"accesses":{accesses}"#,
                    deadline.as_micros()
                );
            }
            Event::H1Admit {
                txn,
                queue_ahead,
                atl_us,
                projected,
                deadline,
            }
            | Event::H1Reject {
                txn,
                queue_ahead,
                atl_us,
                projected,
                deadline,
            } => {
                let _ = write!(
                    out,
                    r#","txn":"{txn}","queue_ahead":{queue_ahead},"atl_us":{atl_us},"projected_us":{},"deadline_us":{}"#,
                    projected.as_micros(),
                    deadline.as_micros()
                );
            }
            Event::H2Choose {
                txn,
                origin,
                chosen,
                candidates,
            } => {
                let _ = write!(
                    out,
                    r#","txn":"{txn}","origin":"{origin}","chosen":"{chosen}","candidates":["#
                );
                for (i, c) in candidates.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    let _ = write!(out, r#"{{"site":"{}","score":{}}}"#, c.site, c.score);
                }
                out.push(']');
            }
            Event::ExecStart { txn }
            | Event::RetrySent { txn }
            | Event::WalCommit { txn }
            | Event::WalAbort { txn } => {
                let _ = write!(out, r#","txn":"{txn}""#);
            }
            Event::LockWait { txn, object } => {
                let _ = write!(out, r#","txn":"{txn}","object":"{object}""#);
            }
            Event::CallbackIssued { object, holders } => {
                let _ = write!(out, r#","object":"{object}","holders":{holders}"#);
            }
            Event::CallbackAcked { object, from } => {
                let _ = write!(out, r#","object":"{object}","from":"{from}""#);
            }
            Event::WindowOpen { object } => {
                let _ = write!(out, r#","object":"{object}""#);
            }
            Event::WindowClose { object, batch } => {
                let _ = write!(out, r#","object":"{object}","batch":{batch}"#);
            }
            Event::ForwardHop { object, to } => {
                let _ = write!(out, r#","object":"{object}","to":"{to}""#);
            }
            Event::Shipped { txn, to } => {
                let _ = write!(out, r#","txn":"{txn}","to":"{to}""#);
            }
            Event::Decomposed { txn, subtasks } => {
                let _ = write!(out, r#","txn":"{txn}","subtasks":{subtasks}"#);
            }
            Event::Commit {
                txn,
                latency_us,
                slack_us,
            } => {
                let _ = write!(
                    out,
                    r#","txn":"{txn}","latency_us":{latency_us},"slack_us":{slack_us}"#
                );
            }
            Event::Abort { txn, reason } => {
                let _ = write!(
                    out,
                    r#","txn":"{txn}","reason":"{}""#,
                    abort_reason_str(*reason)
                );
            }
            Event::ServerReject { txn, expired } => {
                let _ = write!(out, r#","txn":"{txn}","expired":{expired}"#);
            }
            Event::MsgDropped { to } => {
                let _ = write!(out, r#","to":"{to}""#);
            }
            Event::MsgDelayed { to, jitter_us } => {
                let _ = write!(out, r#","to":"{to}","jitter_us":{jitter_us}"#);
            }
            Event::SiteCrash { site } | Event::SiteRecover { site } => {
                let _ = write!(out, r#","site":"{site}""#);
            }
            Event::LeaseExpired { object, holder } => {
                let _ = write!(out, r#","object":"{object}","holder":"{holder}""#);
            }
            Event::LockHeld {
                txn,
                object,
                exclusive,
            } => {
                let _ = write!(out, r#","txn":"{txn}","object":"{object}","exclusive":{exclusive}"#);
            }
            Event::UnitEnd { txn, committed } => {
                let _ = write!(out, r#","txn":"{txn}","committed":{committed}"#);
            }
            Event::CacheInstall {
                client,
                object,
                exclusive,
            } => {
                let _ = write!(
                    out,
                    r#","client":"{client}","object":"{object}","exclusive":{exclusive}"#
                );
            }
            Event::CacheDowngrade { client, object } | Event::CacheDrop { client, object } => {
                let _ = write!(out, r#","client":"{client}","object":"{object}""#);
            }
            Event::CacheWipe { client } => {
                let _ = write!(out, r#","client":"{client}""#);
            }
            Event::Outcome { txn, outcome } => {
                let _ = write!(out, r#","txn":"{txn}","outcome":"{}""#, outcome_str(*outcome));
            }
            Event::WalWrite { txn, page, stamp } => {
                let _ = write!(out, r#","txn":"{txn}","page":"{page}","stamp":{stamp}"#);
            }
            Event::WalCheckpoint {
                active,
                log_records,
            } => {
                let _ = write!(out, r#","active":{active},"log_records":{log_records}"#);
            }
            Event::RecoveryDone {
                site,
                redo,
                undone,
                losers,
                replay_ios,
            } => {
                let _ = write!(
                    out,
                    r#","site":"{site}","redo":{redo},"undone":{undone},"losers":{losers},"replay_ios":{replay_ios}"#
                );
            }
            Event::WalState { page, stamp } => {
                let _ = write!(out, r#","page":"{page}","stamp":{stamp}"#);
            }
            Event::Span {
                txn,
                kind,
                start,
                blocker,
            } => {
                if let Some(txn) = txn {
                    let _ = write!(out, r#","txn":"{txn}""#);
                }
                let _ = write!(
                    out,
                    r#","span":"{}","start_us":{}"#,
                    kind.label(),
                    start.as_micros()
                );
                if let Some(blocker) = blocker {
                    let _ = write!(out, r#","blocker":"{blocker}""#);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_are_stable_snake_case() {
        let e = Event::Commit {
            txn: TransactionId::new(ClientId(1), 2),
            latency_us: 10,
            slack_us: -5,
        };
        assert_eq!(e.kind(), "commit");
        assert_eq!(e.txn(), Some(TransactionId::new(ClientId(1), 2)));
    }

    #[test]
    fn json_fields_are_valid_members() {
        let e = Event::H2Choose {
            txn: TransactionId::new(ClientId(0), 1),
            origin: SiteId::Client(ClientId(0)),
            chosen: SiteId::Client(ClientId(3)),
            candidates: vec![
                H2Candidate {
                    site: SiteId::Client(ClientId(0)),
                    score: 4,
                },
                H2Candidate {
                    site: SiteId::Client(ClientId(3)),
                    score: 1,
                },
            ],
        };
        let mut s = String::new();
        e.write_json_fields(&mut s);
        assert!(s.starts_with(','));
        assert!(s.contains(r#""chosen":"client#3""#));
        assert!(s.contains(r#""score":1"#));
    }

    #[test]
    fn events_without_a_txn_say_so() {
        let e = Event::MsgDropped { to: SiteId::Server };
        assert_eq!(e.txn(), None);
        assert_eq!(e.kind(), "msg_dropped");
    }

    #[test]
    fn oracle_events_carry_their_payloads() {
        let txn = TransactionId::new(ClientId(2), 7);
        let held = Event::LockHeld {
            txn,
            object: ObjectId(4),
            exclusive: true,
        };
        assert_eq!(held.kind(), "lock_held");
        assert_eq!(held.txn(), Some(txn));
        let mut s = String::new();
        held.write_json_fields(&mut s);
        assert!(s.contains(r#""exclusive":true"#));

        let end = Event::UnitEnd {
            txn,
            committed: false,
        };
        assert_eq!(end.kind(), "unit_end");
        let mut s = String::new();
        end.write_json_fields(&mut s);
        assert!(s.contains(r#""committed":false"#));

        let outcome = Event::Outcome {
            txn,
            outcome: TxnOutcome::Aborted(AbortReason::SiteCrash),
        };
        let mut s = String::new();
        outcome.write_json_fields(&mut s);
        assert!(s.contains(r#""outcome":"site_crash""#));

        let install = Event::CacheInstall {
            client: ClientId(2),
            object: ObjectId(4),
            exclusive: false,
        };
        assert_eq!(install.txn(), None);
        let mut s = String::new();
        install.write_json_fields(&mut s);
        assert!(s.contains(r#""client":"client#2""#));
    }

    #[test]
    fn durability_events_carry_their_payloads() {
        let txn = TransactionId::new(ClientId(1), 9);
        let write = Event::WalWrite {
            txn,
            page: ObjectId(12),
            stamp: 77,
        };
        assert_eq!(write.kind(), "wal_write");
        assert_eq!(write.txn(), Some(txn));
        let mut s = String::new();
        write.write_json_fields(&mut s);
        assert!(s.contains(r#""page":"obj#12""#));
        assert!(s.contains(r#""stamp":77"#));

        let commit = Event::WalCommit { txn };
        assert_eq!(commit.kind(), "wal_commit");
        assert_eq!(commit.txn(), Some(txn));

        let done = Event::RecoveryDone {
            site: SiteId::Server,
            redo: 5,
            undone: 2,
            losers: 1,
            replay_ios: 9,
        };
        assert_eq!(done.kind(), "recovery_done");
        assert_eq!(done.txn(), None);
        let mut s = String::new();
        done.write_json_fields(&mut s);
        assert!(s.contains(r#""site":"server""#));
        assert!(s.contains(r#""replay_ios":9"#));

        let state = Event::WalState {
            page: ObjectId(3),
            stamp: 41,
        };
        assert_eq!(state.kind(), "wal_state");
        let mut s = String::new();
        state.write_json_fields(&mut s);
        assert!(s.contains(r#""stamp":41"#));

        let ckpt = Event::WalCheckpoint {
            active: 2,
            log_records: 100,
        };
        assert_eq!(ckpt.kind(), "wal_checkpoint");
        let mut s = String::new();
        ckpt.write_json_fields(&mut s);
        assert!(s.contains(r#""log_records":100"#));
    }

    #[test]
    fn span_events_carry_kind_start_and_blocker() {
        let txn = TransactionId::new(ClientId(3), 5);
        let blocker = TransactionId::new(ClientId(1), 2);
        let e = Event::Span {
            txn: Some(txn),
            kind: SpanKind::LockWait,
            start: SimTime::from_micros(40),
            blocker: Some(blocker),
        };
        assert_eq!(e.kind(), "span_lock_wait");
        assert_eq!(e.txn(), Some(txn));
        let mut s = String::new();
        e.write_json_fields(&mut s);
        assert!(s.contains(r#""span":"lock_wait""#));
        assert!(s.contains(r#""start_us":40"#));
        assert!(s.contains(r#""blocker":"txn#1.2""#));

        let sitewide = Event::Span {
            txn: None,
            kind: SpanKind::Replay,
            start: SimTime::from_micros(9),
            blocker: None,
        };
        assert_eq!(sitewide.kind(), "span_replay");
        assert_eq!(sitewide.txn(), None);
        let mut s = String::new();
        sitewide.write_json_fields(&mut s);
        assert!(s.starts_with(r#","span":"replay""#));
        assert!(!s.contains("blocker"));
    }

    #[test]
    fn outcome_labels_are_stable() {
        assert_eq!(outcome_str(TxnOutcome::Committed), "committed");
        assert_eq!(outcome_str(TxnOutcome::CommittedLate), "committed_late");
        assert_eq!(
            outcome_str(TxnOutcome::Aborted(AbortReason::Deadlock)),
            "deadlock"
        );
    }
}
