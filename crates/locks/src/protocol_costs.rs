//! Executable reproductions of the paper's Figure 1 (plain callback 2PL) and
//! Figure 2 (lock grouping): build the actual message sequences and count
//! them.
//!
//! These traces are used by the `repro figure1` / `repro figure2` bench
//! targets and by property tests verifying the `4n-1` vs `2n+1` message
//! economics for arbitrary `n`.

use std::fmt;

/// One protocol message in a trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceMessage {
    /// Sending site (display name).
    pub from: String,
    /// Receiving site (display name).
    pub to: String,
    /// What the message does.
    pub label: String,
}

impl TraceMessage {
    fn new(from: impl Into<String>, to: impl Into<String>, label: impl Into<String>) -> Self {
        TraceMessage {
            from: from.into(),
            to: to.into(),
            label: label.into(),
        }
    }
}

impl fmt::Display for TraceMessage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} -> {}: {}", self.from, self.to, self.label)
    }
}

fn client_name(i: usize) -> String {
    // A, B, C, ... then C10, C11, ...
    if i < 26 {
        char::from(b'A' + i as u8).to_string()
    } else {
        format!("C{i}")
    }
}

/// The message sequence when `n` clients successively need the same object
/// under callback 2PL with inter-transaction caching (Figure 1 generalized).
///
/// Each client sends a request and receives the object; each hand-off costs
/// a recall plus a return; the final client returns the object when it is
/// recalled or released: `4n - 1` messages in total (the paper quotes "as
/// high as 4n" counting an individual recall of the last copy too).
#[must_use]
pub fn cached_two_pl_trace(n: usize) -> Vec<TraceMessage> {
    let mut trace = Vec::new();
    for i in 0..n {
        let c = client_name(i);
        trace.push(TraceMessage::new(
            format!("Client {c}"),
            "Server",
            format!("{}: request object", trace.len() + 1),
        ));
        if i > 0 {
            let prev = client_name(i - 1);
            trace.push(TraceMessage::new(
                "Server",
                format!("Client {prev}"),
                format!("{}: recall object", trace.len() + 1),
            ));
            trace.push(TraceMessage::new(
                format!("Client {prev}"),
                "Server",
                format!("{}: return object", trace.len() + 1),
            ));
        }
        trace.push(TraceMessage::new(
            "Server",
            format!("Client {c}"),
            format!("{}: ship object", trace.len() + 1),
        ));
    }
    if n > 0 {
        let last = client_name(n - 1);
        trace.push(TraceMessage::new(
            format!("Client {last}"),
            "Server",
            format!("{}: return object", trace.len() + 1),
        ));
    }
    trace
}

/// The message sequence when the same `n` requests are served by one
/// collection window and forward list (Figure 2 generalized): `n` requests,
/// one ship with the forward list attached, `n - 1` client-to-client
/// forwards, one final return — `2n + 1` messages.
#[must_use]
pub fn grouped_trace(n: usize) -> Vec<TraceMessage> {
    let mut trace = Vec::new();
    if n == 0 {
        return trace;
    }
    for i in 0..n {
        let c = client_name(i);
        trace.push(TraceMessage::new(
            format!("Client {c}"),
            "Server",
            format!("{}: request object", trace.len() + 1),
        ));
    }
    trace.push(TraceMessage::new(
        "Server",
        "Client A",
        format!("{}: ship object + forward list", trace.len() + 1),
    ));
    for i in 1..n {
        let prev = client_name(i - 1);
        let c = client_name(i);
        trace.push(TraceMessage::new(
            format!("Client {prev}"),
            format!("Client {c}"),
            format!("{}: forward object", trace.len() + 1),
        ));
    }
    let last = client_name(n - 1);
    trace.push(TraceMessage::new(
        format!("Client {last}"),
        "Server",
        format!("{}: return object", trace.len() + 1),
    ));
    trace
}

/// Figure 1's exact scenario: the object moves from Client A to Client B via
/// the server — 7 messages.
#[must_use]
pub fn figure1_trace() -> Vec<TraceMessage> {
    cached_two_pl_trace(2)
}

/// Figure 2's exact scenario: the same movement with lock grouping — 5
/// messages.
#[must_use]
pub fn figure2_trace() -> Vec<TraceMessage> {
    grouped_trace(2)
}

/// Renders a trace as numbered lines, like the captions under Figures 1–2.
#[must_use]
pub fn render_trace(trace: &[TraceMessage]) -> String {
    let mut out = String::new();
    for m in trace {
        out.push_str(&m.to_string());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure1_needs_seven_messages() {
        let t = figure1_trace();
        assert_eq!(t.len(), 7);
        // Shape: A requests, gets the object; B requests; A is recalled and
        // returns; B gets the object; B returns it.
        assert!(t[0].label.contains("request"));
        assert!(t[1].label.contains("ship"));
        assert!(t[2].from.contains('B'));
        assert!(t[3].label.contains("recall"));
        assert!(t[6].label.contains("return"));
    }

    #[test]
    fn figure2_needs_five_messages() {
        let t = figure2_trace();
        assert_eq!(t.len(), 5);
        assert!(t[2].label.contains("forward list"));
        assert!(t[3].label.contains("forward object"));
        assert!(t[4].label.contains("return"));
    }

    #[test]
    fn generalized_counts_match_formulas() {
        for n in 1..50 {
            assert_eq!(cached_two_pl_trace(n).len(), 4 * n - 1);
            assert_eq!(grouped_trace(n).len(), 2 * n + 1);
        }
        assert!(grouped_trace(0).is_empty());
        // n = 0 cached: no requests, no return.
        assert!(cached_two_pl_trace(0).is_empty());
    }

    #[test]
    fn grouping_always_saves_messages_for_n_at_least_2() {
        for n in 2..100 {
            assert!(grouped_trace(n).len() < cached_two_pl_trace(n).len());
        }
    }

    #[test]
    fn render_is_numbered_and_lines_match() {
        let s = render_trace(&figure2_trace());
        assert_eq!(s.lines().count(), 5);
        assert!(s.contains("1: request object"));
        assert!(s.contains("Server -> Client A"));
    }

    #[test]
    fn client_names_extend_past_z() {
        let t = cached_two_pl_trace(30);
        assert!(t.iter().any(|m| m.from.contains("C26") || m.to.contains("C26")));
    }
}
