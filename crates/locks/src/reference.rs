//! The pre-optimization `HashMap`-based lock table, kept verbatim as a
//! test-only reference oracle.
//!
//! The dense slab rewrite of [`crate::table::LockTable`] must be
//! behaviorally indistinguishable from this implementation — identical
//! grant orders, blocked-conflict reports and observable state for every
//! operation sequence. The property test at the bottom of this module
//! drives both tables with long random acquire/release/upgrade/downgrade/
//! cancel sequences and asserts they never diverge.

use std::collections::HashMap;

use siteselect_types::{LockMode, ObjectId, SimTime};

use crate::table::{Acquire, LockOwner, QueueDiscipline};

/// A blocked request in the reference table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RefWaiter<O> {
    pub owner: O,
    pub mode: LockMode,
    pub deadline: SimTime,
    seq: u64,
}

#[derive(Debug)]
struct ObjectLocks<O> {
    holders: Vec<(O, LockMode)>,
    waiters: Vec<RefWaiter<O>>,
}

impl<O> Default for ObjectLocks<O> {
    fn default() -> Self {
        ObjectLocks {
            holders: Vec::new(),
            waiters: Vec::new(),
        }
    }
}

impl<O: LockOwner> ObjectLocks<O> {
    fn holder_mode(&self, owner: O) -> Option<LockMode> {
        self.holders
            .iter()
            .find(|(o, _)| *o == owner)
            .map(|&(_, m)| m)
    }

    fn conflicts_with(&self, owner: O, mode: LockMode) -> Vec<O> {
        self.holders
            .iter()
            .filter(|(o, m)| *o != owner && !m.compatible_with(mode))
            .map(|&(o, _)| o)
            .collect()
    }

    fn is_unused(&self) -> bool {
        self.holders.is_empty() && self.waiters.is_empty()
    }
}

/// The original `HashMap`-keyed strict-2PL lock table.
#[derive(Debug)]
pub struct RefLockTable<O> {
    discipline: QueueDiscipline,
    objects: HashMap<ObjectId, ObjectLocks<O>>,
    held_by: HashMap<O, Vec<ObjectId>>,
    next_seq: u64,
}

impl<O: LockOwner> RefLockTable<O> {
    #[must_use]
    pub fn new(discipline: QueueDiscipline) -> Self {
        RefLockTable {
            discipline,
            objects: HashMap::new(),
            held_by: HashMap::new(),
            next_seq: 0,
        }
    }

    pub fn request(
        &mut self,
        object: ObjectId,
        owner: O,
        mode: LockMode,
        deadline: SimTime,
    ) -> Acquire<O> {
        let seq = self.next_seq;
        self.next_seq += 1;
        let entry = self.objects.entry(object).or_default();

        if let Some(held) = entry.holder_mode(owner) {
            if held.covers(mode) {
                return Acquire::AlreadyHeld;
            }
            let others: Vec<O> = entry
                .holders
                .iter()
                .filter(|(o, _)| *o != owner)
                .map(|&(o, _)| o)
                .collect();
            if others.is_empty() {
                for h in &mut entry.holders {
                    if h.0 == owner {
                        h.1 = LockMode::Exclusive;
                    }
                }
                return Acquire::Upgraded;
            }
            let waiter = RefWaiter {
                owner,
                mode,
                deadline,
                seq,
            };
            Self::insert_waiter(&mut entry.waiters, waiter, self.discipline, true);
            return Acquire::Blocked { conflicts: others };
        }

        let conflicts = entry.conflicts_with(owner, mode);
        if conflicts.is_empty() && entry.waiters.is_empty() {
            entry.holders.push((owner, mode));
            self.held_by.entry(owner).or_default().push(object);
            return Acquire::Granted;
        }
        let blockers = if conflicts.is_empty() {
            entry.waiters.iter().map(|w| w.owner).collect()
        } else {
            conflicts
        };
        let waiter = RefWaiter {
            owner,
            mode,
            deadline,
            seq,
        };
        Self::insert_waiter(&mut entry.waiters, waiter, self.discipline, false);
        Acquire::Blocked { conflicts: blockers }
    }

    fn insert_waiter(
        waiters: &mut Vec<RefWaiter<O>>,
        w: RefWaiter<O>,
        discipline: QueueDiscipline,
        upgrade_priority: bool,
    ) {
        if upgrade_priority {
            waiters.insert(0, w);
            return;
        }
        match discipline {
            QueueDiscipline::Fifo => waiters.push(w),
            QueueDiscipline::Deadline => {
                let pos = waiters
                    .iter()
                    .position(|x| (x.deadline, x.seq) > (w.deadline, w.seq))
                    .unwrap_or(waiters.len());
                waiters.insert(pos, w);
            }
        }
    }

    pub fn try_grant_bypass(&mut self, object: ObjectId, owner: O, mode: LockMode) -> bool {
        let entry = self.objects.entry(object).or_default();
        if let Some(held) = entry.holder_mode(owner) {
            if held.covers(mode) {
                return true;
            }
            let sole = entry.holders.iter().all(|(o, _)| *o == owner);
            if sole {
                for h in &mut entry.holders {
                    if h.0 == owner {
                        h.1 = LockMode::Exclusive;
                    }
                }
                return true;
            }
            return false;
        }
        if !entry.conflicts_with(owner, mode).is_empty() {
            if entry.is_unused() {
                self.objects.remove(&object);
            }
            return false;
        }
        entry.holders.push((owner, mode));
        self.held_by.entry(owner).or_default().push(object);
        true
    }

    pub fn release(&mut self, object: ObjectId, owner: O) -> Vec<RefWaiter<O>> {
        let Some(entry) = self.objects.get_mut(&object) else {
            return Vec::new();
        };
        let before = entry.holders.len();
        entry.holders.retain(|(o, _)| *o != owner);
        if entry.holders.len() != before {
            if let Some(v) = self.held_by.get_mut(&owner) {
                v.retain(|&o| o != object);
            }
        }
        entry.waiters.retain(|w| w.owner != owner);
        self.promote(object)
    }

    pub fn release_all(&mut self, owner: O) -> Vec<(ObjectId, Vec<RefWaiter<O>>)> {
        let mut held = self.held_by.remove(&owner).unwrap_or_default();
        held.sort_unstable();
        held.dedup();
        let mut queued: Vec<ObjectId> = self
            .objects
            .iter()
            .filter(|(_, e)| e.waiters.iter().any(|w| w.owner == owner))
            .map(|(&o, _)| o)
            .collect();
        queued.sort_unstable();
        let mut out = Vec::new();
        for obj in held.into_iter().chain(queued) {
            if let Some(entry) = self.objects.get_mut(&obj) {
                entry.holders.retain(|(o, _)| *o != owner);
                entry.waiters.retain(|w| w.owner != owner);
            }
            let granted = self.promote(obj);
            if !granted.is_empty() {
                out.push((obj, granted));
            }
        }
        out
    }

    pub fn downgrade(&mut self, object: ObjectId, owner: O) -> Vec<RefWaiter<O>> {
        let Some(entry) = self.objects.get_mut(&object) else {
            return Vec::new();
        };
        let mut changed = false;
        for h in &mut entry.holders {
            if h.0 == owner && h.1 == LockMode::Exclusive {
                h.1 = LockMode::Shared;
                changed = true;
            }
        }
        if changed {
            self.promote(object)
        } else {
            Vec::new()
        }
    }

    pub fn cancel_wait(&mut self, object: ObjectId, owner: O) -> (bool, Vec<RefWaiter<O>>) {
        let Some(entry) = self.objects.get_mut(&object) else {
            return (false, Vec::new());
        };
        let before = entry.waiters.len();
        entry.waiters.retain(|w| w.owner != owner);
        let removed = entry.waiters.len() != before;
        let granted = if removed { self.promote(object) } else { Vec::new() };
        (removed, granted)
    }

    // The nested tuple return mirrors `LockTable::cancel_expired` so the
    // property tests can diff the two implementations verbatim.
    #[allow(clippy::type_complexity)]
    pub fn cancel_expired(
        &mut self,
        now: SimTime,
    ) -> (
        Vec<(ObjectId, RefWaiter<O>)>,
        Vec<(ObjectId, Vec<RefWaiter<O>>)>,
    ) {
        let mut expired = Vec::new();
        let mut objs: Vec<ObjectId> = self.objects.keys().copied().collect();
        objs.sort_unstable();
        for obj in &objs {
            let entry = self.objects.get_mut(obj).expect("key just listed");
            let mut kept = Vec::with_capacity(entry.waiters.len());
            for w in entry.waiters.drain(..) {
                if w.deadline < now {
                    expired.push((*obj, w));
                } else {
                    kept.push(w);
                }
            }
            entry.waiters = kept;
        }
        let mut grants = Vec::new();
        for obj in objs {
            let g = self.promote(obj);
            if !g.is_empty() {
                grants.push((obj, g));
            }
        }
        (expired, grants)
    }

    fn promote(&mut self, object: ObjectId) -> Vec<RefWaiter<O>> {
        let Some(entry) = self.objects.get_mut(&object) else {
            return Vec::new();
        };
        let mut granted = Vec::new();
        while let Some(head) = entry.waiters.first().copied() {
            if let Some(held) = entry.holder_mode(head.owner) {
                let sole = entry.holders.iter().all(|(o, _)| *o == head.owner);
                if sole && held == LockMode::Shared && head.mode == LockMode::Exclusive {
                    for h in &mut entry.holders {
                        if h.0 == head.owner {
                            h.1 = LockMode::Exclusive;
                        }
                    }
                    entry.waiters.remove(0);
                    granted.push(head);
                    continue;
                }
                break;
            }
            if entry.conflicts_with(head.owner, head.mode).is_empty() {
                entry.holders.push((head.owner, head.mode));
                self.held_by.entry(head.owner).or_default().push(object);
                entry.waiters.remove(0);
                granted.push(head);
            } else {
                break;
            }
        }
        if entry.is_unused() {
            self.objects.remove(&object);
        }
        granted
    }

    #[must_use]
    pub fn holders(&self, object: ObjectId) -> Vec<(O, LockMode)> {
        self.objects
            .get(&object)
            .map(|e| e.holders.clone())
            .unwrap_or_default()
    }

    #[must_use]
    pub fn waiters(&self, object: ObjectId) -> Vec<RefWaiter<O>> {
        self.objects
            .get(&object)
            .map(|e| e.waiters.clone())
            .unwrap_or_default()
    }

    #[must_use]
    pub fn locks_of(&self, owner: O) -> Vec<ObjectId> {
        let mut v = self.held_by.get(&owner).cloned().unwrap_or_default();
        v.sort_unstable();
        v.dedup();
        v
    }

    #[must_use]
    pub fn active_objects(&self) -> usize {
        self.objects.len()
    }
}

#[cfg(test)]
mod property_tests {
    use super::*;
    use crate::table::{LockTable, Waiter};
    use siteselect_types::ClientId;

    /// `(object, owner, mode, deadline)` — the observable identity of a
    /// grant, comparable across the two `Waiter` types.
    type Grant = (ObjectId, ClientId, LockMode, SimTime);

    fn grants_new(obj: ObjectId, ws: &[Waiter<ClientId>]) -> Vec<Grant> {
        ws.iter().map(|w| (obj, w.owner, w.mode, w.deadline)).collect()
    }

    fn grants_ref(obj: ObjectId, ws: &[RefWaiter<ClientId>]) -> Vec<Grant> {
        ws.iter().map(|w| (obj, w.owner, w.mode, w.deadline)).collect()
    }

    struct Xorshift(u64);

    impl Xorshift {
        fn next(&mut self) -> u64 {
            self.0 ^= self.0 << 13;
            self.0 ^= self.0 >> 7;
            self.0 ^= self.0 << 17;
            self.0
        }

        fn below(&mut self, bound: u64) -> u64 {
            self.next() % bound
        }
    }

    /// Asserts the full observable state of both tables agrees.
    fn assert_same_state(
        dense: &LockTable<ClientId>,
        oracle: &RefLockTable<ClientId>,
        objects: u32,
        owners: u16,
        step: usize,
    ) {
        for id in 0..objects {
            let obj = ObjectId(id);
            assert_eq!(
                dense.holders(obj),
                oracle.holders(obj),
                "holders diverge on {obj} at step {step}"
            );
            let dw: Vec<Grant> = grants_new(obj, &dense.waiters(obj));
            let ow: Vec<Grant> = grants_ref(obj, &oracle.waiters(obj));
            assert_eq!(dw, ow, "waiters diverge on {obj} at step {step}");
        }
        for c in 0..owners {
            let owner = ClientId(c);
            assert_eq!(
                dense.locks_of(owner),
                oracle.locks_of(owner),
                "locks_of diverge for {owner:?} at step {step}"
            );
        }
        assert_eq!(
            dense.active_objects(),
            oracle.active_objects(),
            "active_objects diverge at step {step}"
        );
        dense.check_invariants().unwrap();
    }

    fn run_property(seed: u64, discipline: QueueDiscipline) {
        const OBJECTS: u32 = 8;
        const OWNERS: u16 = 5;
        const STEPS: usize = 4000;

        let mut rng = Xorshift(seed);
        let mut dense: LockTable<ClientId> = LockTable::new(discipline);
        let mut oracle: RefLockTable<ClientId> = RefLockTable::new(discipline);

        for step in 0..STEPS {
            let obj = ObjectId(rng.below(u64::from(OBJECTS)) as u32);
            let owner = ClientId(rng.below(u64::from(OWNERS)) as u16);
            let mode = if rng.below(2) == 0 {
                LockMode::Shared
            } else {
                LockMode::Exclusive
            };
            let deadline = SimTime::from_secs(rng.below(200));
            match rng.below(10) {
                0..=3 => {
                    let a = dense.request(obj, owner, mode, deadline);
                    let b = oracle.request(obj, owner, mode, deadline);
                    assert_eq!(a, b, "request result diverges at step {step}");
                }
                4..=5 => {
                    let a = grants_new(obj, &dense.release(obj, owner));
                    let b = grants_ref(obj, &oracle.release(obj, owner));
                    assert_eq!(a, b, "release grants diverge at step {step}");
                }
                6 => {
                    let a: Vec<Grant> = dense
                        .release_all(owner)
                        .into_iter()
                        .flat_map(|(o, ws)| grants_new(o, &ws))
                        .collect();
                    let b: Vec<Grant> = oracle
                        .release_all(owner)
                        .into_iter()
                        .flat_map(|(o, ws)| grants_ref(o, &ws))
                        .collect();
                    assert_eq!(a, b, "release_all grants diverge at step {step}");
                }
                7 => {
                    let a = grants_new(obj, &dense.downgrade(obj, owner));
                    let b = grants_ref(obj, &oracle.downgrade(obj, owner));
                    assert_eq!(a, b, "downgrade grants diverge at step {step}");
                }
                8 => {
                    let (ra, ga) = dense.cancel_wait(obj, owner);
                    let (rb, gb) = oracle.cancel_wait(obj, owner);
                    assert_eq!(ra, rb, "cancel_wait removal diverges at step {step}");
                    assert_eq!(
                        grants_new(obj, &ga),
                        grants_ref(obj, &gb),
                        "cancel_wait grants diverge at step {step}"
                    );
                }
                _ => {
                    if rng.below(4) == 0 {
                        let now = SimTime::from_secs(rng.below(200));
                        let (ea, ga) = dense.cancel_expired(now);
                        let (eb, gb) = oracle.cancel_expired(now);
                        let ea: Vec<Grant> = ea
                            .into_iter()
                            .map(|(o, w)| (o, w.owner, w.mode, w.deadline))
                            .collect();
                        let eb: Vec<Grant> = eb
                            .into_iter()
                            .map(|(o, w)| (o, w.owner, w.mode, w.deadline))
                            .collect();
                        assert_eq!(ea, eb, "cancel_expired pruning diverges at step {step}");
                        let ga: Vec<Grant> = ga
                            .into_iter()
                            .flat_map(|(o, ws)| grants_new(o, &ws))
                            .collect();
                        let gb: Vec<Grant> = gb
                            .into_iter()
                            .flat_map(|(o, ws)| grants_ref(o, &ws))
                            .collect();
                        assert_eq!(ga, gb, "cancel_expired grants diverge at step {step}");
                    } else {
                        let a = dense.try_grant_bypass(obj, owner, mode);
                        let b = oracle.try_grant_bypass(obj, owner, mode);
                        assert_eq!(a, b, "bypass result diverges at step {step}");
                    }
                }
            }
            assert_same_state(&dense, &oracle, OBJECTS, OWNERS, step);
        }
    }

    #[test]
    fn dense_table_matches_hashmap_oracle_fifo() {
        for seed in [0x5173_5e1e, 0xdead_beef, 42] {
            run_property(seed, QueueDiscipline::Fifo);
        }
    }

    #[test]
    fn dense_table_matches_hashmap_oracle_deadline() {
        for seed in [0x5173_5e1e, 0xcafe_f00d, 7] {
            run_property(seed, QueueDiscipline::Deadline);
        }
    }
}
