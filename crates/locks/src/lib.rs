//! Locking substrate for the `siteselect` systems.
//!
//! Implements every locking mechanism the paper's three prototypes rely on:
//!
//! * [`LockTable`] — a strict-2PL lock table with Shared/Exclusive modes,
//!   upgrades, downgrades and either FIFO or deadline-ordered (ED) waiter
//!   queues. It is generic over the owner type: the server's *global* table
//!   is keyed by client (clients cache locks, §2), while the per-site local
//!   tables are keyed by transaction.
//! * [`WaitForGraph`] — cycle detection used by the servers to refuse lock
//!   requests that would deadlock ("added to the request queue only if it
//!   does not cause a deadlock cycle", §5.1).
//! * [`CallbackTracker`] — the callback protocol with the paper's downgrade
//!   optimization: a holder asked to give up an EL for a requester that only
//!   wants an SL downgrades to SL and keeps the object (§2).
//! * [`ForwardList`] / [`WindowManager`] — grouped locks (§3.4): the server
//!   collects lock requests on an object during a *collection window*, then
//!   grants to the earliest deadline and ships the object together with the
//!   deadline-ordered forward list; the object hops client→client and the
//!   last client returns it (2n+1 messages instead of 3n/4n).
//! * [`protocol_costs`] — executable reproductions of Figures 1 and 2.
//!
//! # Example
//!
//! ```
//! use siteselect_locks::{Acquire, LockTable, QueueDiscipline};
//! use siteselect_types::{ClientId, LockMode, ObjectId, SimTime};
//!
//! let mut table: LockTable<ClientId> = LockTable::new(QueueDiscipline::Deadline);
//! let obj = ObjectId(1);
//! let a = ClientId(0);
//! let b = ClientId(1);
//! assert!(matches!(
//!     table.request(obj, a, LockMode::Exclusive, SimTime::from_secs(10)),
//!     Acquire::Granted
//! ));
//! // B conflicts and must wait behind A.
//! assert!(matches!(
//!     table.request(obj, b, LockMode::Shared, SimTime::from_secs(5)),
//!     Acquire::Blocked { .. }
//! ));
//! let granted = table.release(obj, a);
//! assert_eq!(granted.len(), 1);
//! assert_eq!(granted[0].owner, b);
//! ```

pub mod callback;
pub mod forward;
pub mod inline;
pub mod protocol_costs;
#[cfg(test)]
mod reference;
pub mod table;
pub mod waitfor;
pub mod window;

pub use callback::{CallbackTracker, RecallProgress};
pub use forward::{ForwardEntry, ForwardList};
pub use inline::InlineVec;
pub use table::{Acquire, LockTable, QueueDiscipline, Waiter};
pub use waitfor::WaitForGraph;
pub use window::{WindowManager, WindowOffer};
