//! Callback (lock recall) bookkeeping for the server's global lock table.
//!
//! When a client's lock request conflicts with locks cached at other clients,
//! the server *calls back* those locks (§2). The callback message carries the
//! requester's desired mode so that a holder asked to give up an EL for a
//! shared request can merely **downgrade** to SL, return the object, and keep
//! reading — the paper's relaxation of pure callback locking.
//!
//! [`CallbackTracker`] remembers, per object, which holders still owe an
//! answer, so the server knows when the recall completed and the blocked
//! request can be granted.

use std::collections::{BTreeMap, HashMap};

use siteselect_obs::{Event, EventSink};
use siteselect_types::{ClientId, LockMode, ObjectId, SimDuration, SimTime, SiteId};

/// Progress of an in-flight recall after one acknowledgement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecallProgress {
    /// More holders still owe an acknowledgement.
    Pending {
        /// Number of outstanding acknowledgements.
        remaining: usize,
    },
    /// Every holder answered; the blocked request can proceed.
    Complete,
}

#[derive(Debug, Clone)]
struct Recall {
    /// Holders still owing an answer, with the instant their callback was
    /// issued (for lease expiry; `SimTime::ZERO` for untimed callers).
    outstanding: BTreeMap<ClientId, SimTime>,
    desired: LockMode,
}

/// Tracks outstanding lock callbacks per object.
///
/// # Example
///
/// ```
/// use siteselect_locks::{CallbackTracker, RecallProgress};
/// use siteselect_types::{ClientId, LockMode, ObjectId};
///
/// let mut cb = CallbackTracker::new();
/// let targets = cb.begin(ObjectId(1), [ClientId(1), ClientId(2)], LockMode::Shared);
/// assert_eq!(targets, vec![ClientId(1), ClientId(2)]);
/// assert_eq!(
///     cb.acknowledge(ObjectId(1), ClientId(1)),
///     Some(RecallProgress::Pending { remaining: 1 })
/// );
/// assert_eq!(cb.acknowledge(ObjectId(1), ClientId(2)), Some(RecallProgress::Complete));
/// ```
#[derive(Debug, Clone, Default)]
pub struct CallbackTracker {
    recalls: HashMap<ObjectId, Recall>,
    issued: u64,
    completed: u64,
    sink: EventSink,
}

impl CallbackTracker {
    /// Creates an empty tracker.
    #[must_use]
    pub fn new() -> Self {
        CallbackTracker::default()
    }

    /// Attaches an event sink; recall issuance is emitted at the server
    /// site (acknowledgements are emitted by the caller, which knows the
    /// delivery time).
    pub fn set_sink(&mut self, sink: EventSink) {
        self.sink = sink;
    }

    /// Starts (or extends) a recall of `object` from `holders`; `desired` is
    /// the mode the blocked requester wants, carried in the callback message.
    ///
    /// Returns the holders that must *newly* be messaged (holders already
    /// being recalled are not re-messaged). A stronger desired mode upgrades
    /// the recall in place.
    pub fn begin(
        &mut self,
        object: ObjectId,
        holders: impl IntoIterator<Item = ClientId>,
        desired: LockMode,
    ) -> Vec<ClientId> {
        self.begin_at(object, holders, desired, SimTime::ZERO)
    }

    /// [`begin`](Self::begin) with the issue instant recorded, so unanswered
    /// callbacks can later be found by [`expired`](Self::expired). A holder
    /// already being recalled keeps its original issue time (it is not
    /// re-messaged, so its lease keeps running).
    pub fn begin_at(
        &mut self,
        object: ObjectId,
        holders: impl IntoIterator<Item = ClientId>,
        desired: LockMode,
        now: SimTime,
    ) -> Vec<ClientId> {
        let recall = self.recalls.entry(object).or_insert_with(|| Recall {
            outstanding: BTreeMap::new(),
            desired,
        });
        recall.desired = recall.desired.stronger(desired);
        let mut fresh = Vec::new();
        for h in holders {
            if let std::collections::btree_map::Entry::Vacant(e) = recall.outstanding.entry(h) {
                e.insert(now);
                fresh.push(h);
                self.issued += 1;
            }
        }
        if recall.outstanding.is_empty() {
            self.recalls.remove(&object);
        }
        if !fresh.is_empty() {
            let holders = fresh.len() as u32;
            self.sink
                .emit(now, SiteId::Server, || Event::CallbackIssued { object, holders });
        }
        fresh
    }

    /// Callbacks issued at least `lease` ago and still unanswered, sorted by
    /// `(object, holder)`. A zero lease disables expiry (the pre-fault
    /// behaviour: wait forever).
    ///
    /// The server presumes these holders dead: it should
    /// [`forget_client`](Self::forget_client) them, reclaim their locks and
    /// invalidate their cached copies.
    #[must_use]
    pub fn expired(&self, now: SimTime, lease: SimDuration) -> Vec<(ObjectId, ClientId)> {
        if lease.is_zero() {
            return Vec::new();
        }
        let mut out: Vec<(ObjectId, ClientId)> = self
            .recalls
            .iter()
            .flat_map(|(&obj, r)| {
                r.outstanding
                    .iter()
                    .filter(move |&(_, &t)| now.duration_since(t) >= lease)
                    .map(move |(&c, _)| (obj, c))
            })
            .collect();
        out.sort_unstable();
        out
    }

    /// Records that `from` answered the callback on `object` (returned or
    /// downgraded its lock). Returns `None` if no recall was outstanding for
    /// that pair.
    pub fn acknowledge(&mut self, object: ObjectId, from: ClientId) -> Option<RecallProgress> {
        let recall = self.recalls.get_mut(&object)?;
        recall.outstanding.remove(&from)?;
        if recall.outstanding.is_empty() {
            self.recalls.remove(&object);
            self.completed += 1;
            Some(RecallProgress::Complete)
        } else {
            Some(RecallProgress::Pending {
                remaining: self.recalls[&object].outstanding.len(),
            })
        }
    }

    /// The mode desired by the requester that triggered the recall on
    /// `object`, if a recall is outstanding.
    #[must_use]
    pub fn desired_mode(&self, object: ObjectId) -> Option<LockMode> {
        self.recalls.get(&object).map(|r| r.desired)
    }

    /// True if a recall of `object` is still outstanding.
    #[must_use]
    pub fn is_recalling(&self, object: ObjectId) -> bool {
        self.recalls.contains_key(&object)
    }

    /// Clients still owing an answer for `object`.
    #[must_use]
    pub fn outstanding(&self, object: ObjectId) -> Vec<ClientId> {
        self.recalls
            .get(&object)
            .map(|r| r.outstanding.keys().copied().collect())
            .unwrap_or_default()
    }

    /// Drops a holder from every recall (client crashed / evicted without
    /// ack); returns the objects whose recalls completed as a result.
    pub fn forget_client(&mut self, client: ClientId) -> Vec<ObjectId> {
        let mut done = Vec::new();
        self.recalls.retain(|&obj, r| {
            r.outstanding.remove(&client);
            if r.outstanding.is_empty() {
                done.push(obj);
                false
            } else {
                true
            }
        });
        self.completed += done.len() as u64;
        done.sort_unstable();
        done
    }

    /// Total callback messages issued.
    #[must_use]
    pub fn total_issued(&self) -> u64 {
        self.issued
    }

    /// Total recalls fully completed.
    #[must_use]
    pub fn total_completed(&self) -> u64 {
        self.completed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const OBJ: ObjectId = ObjectId(4);

    #[test]
    fn recall_life_cycle() {
        let mut cb = CallbackTracker::new();
        let fresh = cb.begin(OBJ, [ClientId(1), ClientId(2)], LockMode::Exclusive);
        assert_eq!(fresh.len(), 2);
        assert!(cb.is_recalling(OBJ));
        assert_eq!(cb.desired_mode(OBJ), Some(LockMode::Exclusive));
        assert_eq!(
            cb.acknowledge(OBJ, ClientId(2)),
            Some(RecallProgress::Pending { remaining: 1 })
        );
        assert_eq!(cb.acknowledge(OBJ, ClientId(1)), Some(RecallProgress::Complete));
        assert!(!cb.is_recalling(OBJ));
        assert_eq!(cb.total_issued(), 2);
        assert_eq!(cb.total_completed(), 1);
    }

    #[test]
    fn duplicate_targets_not_remessaged() {
        let mut cb = CallbackTracker::new();
        let first = cb.begin(OBJ, [ClientId(1)], LockMode::Shared);
        assert_eq!(first, vec![ClientId(1)]);
        let second = cb.begin(OBJ, [ClientId(1), ClientId(3)], LockMode::Shared);
        assert_eq!(second, vec![ClientId(3)]);
        assert_eq!(cb.outstanding(OBJ), vec![ClientId(1), ClientId(3)]);
    }

    #[test]
    fn desired_mode_upgrades_but_never_downgrades() {
        let mut cb = CallbackTracker::new();
        cb.begin(OBJ, [ClientId(1)], LockMode::Shared);
        assert_eq!(cb.desired_mode(OBJ), Some(LockMode::Shared));
        cb.begin(OBJ, [ClientId(2)], LockMode::Exclusive);
        assert_eq!(cb.desired_mode(OBJ), Some(LockMode::Exclusive));
        cb.begin(OBJ, [ClientId(3)], LockMode::Shared);
        assert_eq!(cb.desired_mode(OBJ), Some(LockMode::Exclusive));
    }

    #[test]
    fn unknown_acks_are_ignored() {
        let mut cb = CallbackTracker::new();
        assert_eq!(cb.acknowledge(OBJ, ClientId(1)), None);
        cb.begin(OBJ, [ClientId(1)], LockMode::Shared);
        assert_eq!(cb.acknowledge(OBJ, ClientId(9)), None);
        assert!(cb.is_recalling(OBJ));
    }

    #[test]
    fn empty_holder_set_is_a_noop() {
        let mut cb = CallbackTracker::new();
        let fresh = cb.begin(OBJ, [], LockMode::Shared);
        assert!(fresh.is_empty());
        assert!(!cb.is_recalling(OBJ));
    }

    #[test]
    fn leases_expire_only_after_the_full_lease() {
        let mut cb = CallbackTracker::new();
        let lease = SimDuration::from_secs(5);
        cb.begin_at(OBJ, [ClientId(1)], LockMode::Exclusive, SimTime::from_secs(10));
        cb.begin_at(ObjectId(9), [ClientId(2)], LockMode::Shared, SimTime::from_secs(12));

        assert!(cb.expired(SimTime::from_secs(14), lease).is_empty());
        assert_eq!(
            cb.expired(SimTime::from_secs(15), lease),
            vec![(OBJ, ClientId(1))]
        );
        assert_eq!(
            cb.expired(SimTime::from_secs(30), lease),
            vec![(OBJ, ClientId(1)), (ObjectId(9), ClientId(2))]
        );

        // An acknowledged callback no longer expires.
        cb.acknowledge(OBJ, ClientId(1));
        assert_eq!(
            cb.expired(SimTime::from_secs(30), lease),
            vec![(ObjectId(9), ClientId(2))]
        );
    }

    #[test]
    fn zero_lease_never_expires() {
        let mut cb = CallbackTracker::new();
        cb.begin_at(OBJ, [ClientId(1)], LockMode::Shared, SimTime::ZERO);
        assert!(cb.expired(SimTime::from_secs(10_000), SimDuration::ZERO).is_empty());
    }

    #[test]
    fn re_recall_keeps_the_original_lease_clock() {
        let mut cb = CallbackTracker::new();
        let lease = SimDuration::from_secs(5);
        cb.begin_at(OBJ, [ClientId(1)], LockMode::Shared, SimTime::from_secs(0));
        // Re-recalled later: not re-messaged, so the old clock keeps running.
        let fresh = cb.begin_at(OBJ, [ClientId(1)], LockMode::Exclusive, SimTime::from_secs(4));
        assert!(fresh.is_empty());
        assert_eq!(cb.expired(SimTime::from_secs(5), lease), vec![(OBJ, ClientId(1))]);
    }

    #[test]
    fn forget_client_completes_recalls() {
        let mut cb = CallbackTracker::new();
        cb.begin(ObjectId(1), [ClientId(1)], LockMode::Shared);
        cb.begin(ObjectId(2), [ClientId(1), ClientId(2)], LockMode::Shared);
        let done = cb.forget_client(ClientId(1));
        assert_eq!(done, vec![ObjectId(1)]);
        assert!(cb.is_recalling(ObjectId(2)));
        assert_eq!(cb.outstanding(ObjectId(2)), vec![ClientId(2)]);
    }
}
