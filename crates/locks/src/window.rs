//! Collection windows for the grouped-lock protocol (§3.4).
//!
//! The object server "collects all the lock requests for each database
//! object for a specified time interval (*collection window*) in an ordered
//! list (*forward list*)". [`WindowManager`] owns the open windows; the
//! simulator schedules a close event when a window opens and harvests the
//! forward list when it fires.

use std::collections::HashMap;

use siteselect_obs::{Event, EventSink, SpanKind};
use siteselect_types::{ObjectId, SimDuration, SimTime, SiteId, TransactionId};

use crate::forward::{ForwardEntry, ForwardList};

/// Result of offering a request to the window manager.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WindowOffer {
    /// A new window was opened; the caller must schedule its close.
    Opened {
        /// When the window closes and the forward list ships.
        closes_at: SimTime,
    },
    /// An existing window absorbed the request.
    Joined,
}

#[derive(Debug, Clone)]
struct OpenWindow {
    closes_at: SimTime,
    list: ForwardList,
    /// Trace-only: who entered the window when, in offer order (feeds the
    /// window-residency spans stamped at close). Empty when tracing is off.
    offered: Vec<(TransactionId, SimTime)>,
}

/// Per-object collection-window state.
///
/// # Example
///
/// ```
/// use siteselect_locks::{ForwardEntry, WindowManager, WindowOffer};
/// use siteselect_types::{ClientId, LockMode, ObjectId, SimDuration, SimTime, TransactionId};
///
/// let mut wm = WindowManager::new(SimDuration::from_millis(100));
/// let e = ForwardEntry {
///     client: ClientId(1),
///     txn: TransactionId::new(ClientId(1), 0),
///     deadline: SimTime::from_secs(10),
///     mode: LockMode::Shared,
/// };
/// let offer = wm.offer(ObjectId(5), e, SimTime::ZERO);
/// assert!(matches!(offer, WindowOffer::Opened { .. }));
/// let list = wm.close(ObjectId(5)).unwrap();
/// assert_eq!(list.len(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct WindowManager {
    window: SimDuration,
    open: HashMap<ObjectId, OpenWindow>,
    total_opened: u64,
    total_requests: u64,
    sink: EventSink,
}

impl WindowManager {
    /// Creates a manager with the given collection-window length.
    #[must_use]
    pub fn new(window: SimDuration) -> Self {
        WindowManager {
            window,
            open: HashMap::new(),
            total_opened: 0,
            total_requests: 0,
            sink: EventSink::disabled(),
        }
    }

    /// Attaches an event sink; window open/close events are emitted at the
    /// server site.
    pub fn set_sink(&mut self, sink: EventSink) {
        self.sink = sink;
    }

    /// The configured window length.
    #[must_use]
    pub fn window_length(&self) -> SimDuration {
        self.window
    }

    /// Adds a request for `object` to its open window, opening one if
    /// needed.
    pub fn offer(&mut self, object: ObjectId, entry: ForwardEntry, now: SimTime) -> WindowOffer {
        self.total_requests += 1;
        let traced = self.sink.is_enabled();
        if let Some(w) = self.open.get_mut(&object) {
            if traced {
                w.offered.push((entry.txn, now));
            }
            w.list.push(entry);
            return WindowOffer::Joined;
        }
        let closes_at = now + self.window;
        let mut list = ForwardList::new(object);
        let offered = if traced {
            vec![(entry.txn, now)]
        } else {
            Vec::new()
        };
        list.push(entry);
        self.open.insert(
            object,
            OpenWindow {
                closes_at,
                list,
                offered,
            },
        );
        self.total_opened += 1;
        self.sink
            .emit(now, SiteId::Server, || Event::WindowOpen { object });
        WindowOffer::Opened { closes_at }
    }

    /// Closes the window on `object`, returning its deadline-ordered forward
    /// list. Returns `None` if no window is open (e.g. already closed).
    pub fn close(&mut self, object: ObjectId) -> Option<ForwardList> {
        self.open.remove(&object).map(|w| w.list)
    }

    /// Like [`close`](Self::close), but stamps a `WindowClose` event with
    /// the batch size at `now` when a window was actually open, plus one
    /// window-residency span per collected request.
    pub fn close_at(&mut self, object: ObjectId, now: SimTime) -> Option<ForwardList> {
        let w = self.open.remove(&object)?;
        let batch = w.list.len() as u32;
        self.sink
            .emit(now, SiteId::Server, || Event::WindowClose { object, batch });
        for &(txn, offered_at) in &w.offered {
            if offered_at < now {
                self.sink.emit(now, SiteId::Server, || Event::Span {
                    txn: Some(txn),
                    kind: SpanKind::Window,
                    start: offered_at,
                    blocker: None,
                });
            }
        }
        Some(w.list)
    }

    /// True if a window is currently collecting for `object`.
    #[must_use]
    pub fn is_open(&self, object: ObjectId) -> bool {
        self.open.contains_key(&object)
    }

    /// When the open window on `object` closes, if any.
    #[must_use]
    pub fn closes_at(&self, object: ObjectId) -> Option<SimTime> {
        self.open.get(&object).map(|w| w.closes_at)
    }

    /// Requests currently collected for `object`.
    #[must_use]
    pub fn pending(&self, object: ObjectId) -> usize {
        self.open.get(&object).map_or(0, |w| w.list.len())
    }

    /// Windows ever opened.
    #[must_use]
    pub fn total_opened(&self) -> u64 {
        self.total_opened
    }

    /// Requests ever offered.
    #[must_use]
    pub fn total_requests(&self) -> u64 {
        self.total_requests
    }

    /// Mean requests batched per window (the grouping factor behind the
    /// message savings of Table 4).
    #[must_use]
    pub fn mean_batch_size(&self) -> f64 {
        if self.total_opened == 0 {
            0.0
        } else {
            self.total_requests as f64 / self.total_opened as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use siteselect_types::{ClientId, LockMode, TransactionId};

    fn entry(client: u16, deadline_s: u64) -> ForwardEntry {
        ForwardEntry {
            client: ClientId(client),
            txn: TransactionId::new(ClientId(client), 0),
            deadline: SimTime::from_secs(deadline_s),
            mode: LockMode::Exclusive,
        }
    }

    const OBJ: ObjectId = ObjectId(1);

    #[test]
    fn first_offer_opens_followers_join() {
        let mut wm = WindowManager::new(SimDuration::from_millis(50));
        let o1 = wm.offer(OBJ, entry(1, 30), SimTime::from_secs(1));
        assert_eq!(
            o1,
            WindowOffer::Opened {
                closes_at: SimTime::from_secs(1) + SimDuration::from_millis(50)
            }
        );
        assert_eq!(wm.offer(OBJ, entry(2, 20), SimTime::from_secs(1)), WindowOffer::Joined);
        assert_eq!(wm.pending(OBJ), 2);
        assert!(wm.is_open(OBJ));
        assert_eq!(wm.closes_at(OBJ), Some(SimTime::from_secs(1) + SimDuration::from_millis(50)));
    }

    #[test]
    fn close_returns_deadline_ordered_list() {
        let mut wm = WindowManager::new(SimDuration::from_millis(50));
        wm.offer(OBJ, entry(1, 30), SimTime::ZERO);
        wm.offer(OBJ, entry(2, 10), SimTime::ZERO);
        wm.offer(OBJ, entry(3, 20), SimTime::ZERO);
        let list = wm.close(OBJ).unwrap();
        let order: Vec<u16> = list.entries().iter().map(|e| e.client.0).collect();
        assert_eq!(order, vec![2, 3, 1]);
        assert!(!wm.is_open(OBJ));
        assert!(wm.close(OBJ).is_none());
    }

    #[test]
    fn windows_are_per_object() {
        let mut wm = WindowManager::new(SimDuration::from_millis(50));
        wm.offer(ObjectId(1), entry(1, 10), SimTime::ZERO);
        wm.offer(ObjectId(2), entry(2, 10), SimTime::ZERO);
        assert_eq!(wm.total_opened(), 2);
        assert_eq!(wm.pending(ObjectId(1)), 1);
        assert_eq!(wm.pending(ObjectId(2)), 1);
    }

    #[test]
    fn reopening_after_close_is_a_fresh_window() {
        let mut wm = WindowManager::new(SimDuration::from_millis(50));
        wm.offer(OBJ, entry(1, 10), SimTime::ZERO);
        wm.close(OBJ);
        let again = wm.offer(OBJ, entry(2, 10), SimTime::from_secs(5));
        assert!(matches!(again, WindowOffer::Opened { .. }));
        assert_eq!(wm.total_opened(), 2);
    }

    #[test]
    fn batch_size_statistic() {
        let mut wm = WindowManager::new(SimDuration::from_millis(50));
        assert_eq!(wm.mean_batch_size(), 0.0);
        wm.offer(OBJ, entry(1, 10), SimTime::ZERO);
        wm.offer(OBJ, entry(2, 10), SimTime::ZERO);
        wm.offer(OBJ, entry(3, 10), SimTime::ZERO);
        assert!((wm.mean_batch_size() - 3.0).abs() < 1e-12);
    }
}
