//! A strict-2PL lock table with shared/exclusive modes, upgrades, downgrades
//! and configurable waiter ordering.
//!
//! Per-object state is stored in a dense slab indexed by `ObjectId` rather
//! than a `HashMap`: the paper's database is a flat array of objects
//! numbered `0..10_000`, so a bounds-checked vector index replaces a SipHash
//! round plus probe on every request, release and promotion. A slot whose
//! state empties out returns its box to a recycling pool, so live boxes
//! track the *concurrently* locked set and steady-state first-touch
//! requests pop a warm box instead of allocating. Holder and waiter lists
//! use [`InlineVec`] so the common one- or two-entry case never touches the
//! heap.

use std::collections::HashMap;
use std::fmt::Debug;
use std::hash::Hash;

use siteselect_types::{LockMode, ObjectId, SimTime};

use crate::inline::InlineVec;

/// Trait alias for lock-owner identifiers (clients at the server's global
/// table, transactions at a site's local table).
pub trait LockOwner: Copy + Eq + Hash + Ord + Debug {}
impl<T: Copy + Eq + Hash + Ord + Debug> LockOwner for T {}

/// Ordering of blocked requests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum QueueDiscipline {
    /// First-come first-served (the non-real-time baseline, §3.3).
    #[default]
    Fifo,
    /// Earliest-deadline-first: waiters are served in deadline order, the
    /// real-time ordering used by the LS system's object request scheduling.
    Deadline,
}

/// A blocked lock request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Waiter<O> {
    /// Who is waiting.
    pub owner: O,
    /// Requested mode.
    pub mode: LockMode,
    /// Deadline of the requesting transaction (drives [`QueueDiscipline::Deadline`]).
    pub deadline: SimTime,
    /// Set on a *granted* waiter whose grant converted the owner's held
    /// shared lock in place. Undoing such a grant must downgrade back to
    /// shared rather than release the entry outright.
    pub upgrade: bool,
    seq: u64,
}

/// Result of a lock request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Acquire<O> {
    /// The lock was granted immediately.
    Granted,
    /// The owner already held a covering lock.
    AlreadyHeld,
    /// A held shared lock was upgraded to exclusive immediately.
    Upgraded,
    /// The request conflicts and was queued behind the listed holders.
    Blocked {
        /// Current holders whose locks conflict with the request.
        conflicts: Vec<O>,
    },
}

impl<O> Acquire<O> {
    /// True if the request holds the lock after this call.
    #[must_use]
    pub fn is_granted(&self) -> bool {
        matches!(
            self,
            Acquire::Granted | Acquire::AlreadyHeld | Acquire::Upgraded
        )
    }
}

#[derive(Debug)]
struct ObjectLocks<O> {
    holders: InlineVec<(O, LockMode), 2>,
    waiters: InlineVec<Waiter<O>, 2>,
}

impl<O> Default for ObjectLocks<O> {
    fn default() -> Self {
        ObjectLocks {
            holders: InlineVec::new(),
            waiters: InlineVec::new(),
        }
    }
}

impl<O: LockOwner> ObjectLocks<O> {
    fn holder_mode(&self, owner: O) -> Option<LockMode> {
        self.holders
            .iter()
            .find(|(o, _)| *o == owner)
            .map(|&(_, m)| m)
    }

    /// Allocation-free conflict probe: the granted fast path only needs to
    /// know *whether* a conflicting holder exists, not who they are.
    fn has_conflict(&self, owner: O, mode: LockMode) -> bool {
        self.holders
            .iter()
            .any(|(o, m)| *o != owner && !m.compatible_with(mode))
    }

    fn conflicts_with(&self, owner: O, mode: LockMode) -> Vec<O> {
        self.holders
            .iter()
            .filter(|(o, m)| *o != owner && !m.compatible_with(mode))
            .map(|&(o, _)| o)
            .collect()
    }

    fn is_unused(&self) -> bool {
        self.holders.is_empty() && self.waiters.is_empty()
    }
}

/// Upper bound on how many per-object boxes [`LockTable::reserve_objects`]
/// pre-loads into the recycling pool. The pool only has to cover objects
/// locked *concurrently* — bounded by in-flight transactions times accesses
/// per transaction, far below the database size — so seeding is capped well
/// under the paper's 10 000-object database.
const FREE_POOL_SEED: usize = 1024;

/// Waiters cancelled by [`LockTable::cancel_expired`], tagged by object.
pub type ExpiredWaiters<O> = Vec<(ObjectId, Waiter<O>)>;
/// Grants unblocked by a pruning pass, grouped by object.
pub type UnblockedGrants<O> = Vec<(ObjectId, Vec<Waiter<O>>)>;

/// A strict-2PL lock table.
///
/// See the [crate-level example](crate) for typical use. Grants are
/// conservative: a new request is granted only when it is compatible with
/// every current holder *and* no request is already queued (preventing
/// starvation of queued writers); otherwise it waits in FIFO or deadline
/// order. Releases promote the longest prefix of now-grantable waiters.
///
/// Object state lives in a dense slab indexed by object id; an emptied
/// slot's box is recycled through a free pool, so `objects.len()` tracks the
/// largest id ever locked, not the live count (see
/// [`active_objects`](Self::active_objects)).
#[derive(Debug)]
pub struct LockTable<O> {
    discipline: QueueDiscipline,
    objects: Vec<Option<Box<ObjectLocks<O>>>>,
    // Retired per-object state, recycled by the next first-touch request.
    // A slot whose holders and waiters both empty out returns its box here,
    // so the slab's live boxes stay proportional to the *concurrently*
    // locked set (not every object ever touched) and steady-state requests
    // never allocate: they pop a warm box instead.
    free: Vec<Box<ObjectLocks<O>>>,
    held_by: HashMap<O, InlineVec<ObjectId, 16>>,
    // Reverse index of queued waiters (multiset: one entry per queued
    // waiter), so release_all never has to scan the whole slab for an
    // owner's pending requests.
    waits_of: HashMap<O, InlineVec<ObjectId, 4>>,
    // Recycled between release_all / cancel_expired calls so the per-
    // transaction cleanup path stays allocation-free at steady state.
    scratch: Vec<ObjectId>,
    next_seq: u64,
}

impl<O: LockOwner> LockTable<O> {
    /// Creates an empty table with the given waiter ordering.
    #[must_use]
    pub fn new(discipline: QueueDiscipline) -> Self {
        LockTable {
            discipline,
            objects: Vec::new(),
            free: Vec::new(),
            held_by: HashMap::new(),
            waits_of: HashMap::new(),
            scratch: Vec::new(),
            next_seq: 0,
        }
    }

    /// Removes one instance of `object` from `owner`'s waiting index.
    fn forget_wait_one(
        waits_of: &mut HashMap<O, InlineVec<ObjectId, 4>>,
        owner: O,
        object: ObjectId,
    ) {
        if let Some(v) = waits_of.get_mut(&owner) {
            let pos = v.iter().position(|&o| o == object);
            if let Some(pos) = pos {
                v.remove(pos);
            }
            if v.is_empty() {
                waits_of.remove(&owner);
            }
        }
    }

    /// Removes every instance of `object` from `owner`'s waiting index
    /// (the counterpart of a `retain` that drops all of the owner's
    /// waiters on that object).
    fn forget_wait_all(
        waits_of: &mut HashMap<O, InlineVec<ObjectId, 4>>,
        owner: O,
        object: ObjectId,
    ) {
        if let Some(v) = waits_of.get_mut(&owner) {
            v.retain(|&o| o != object);
            if v.is_empty() {
                waits_of.remove(&owner);
            }
        }
    }

    /// Pre-sizes the slab for object ids `0..n` and seeds the recycling
    /// pool, so first-touch lock requests mid-run neither grow the slab nor
    /// allocate per-object state. Engines that know the database size call
    /// this at setup; the slab still grows on demand past `n`, and the pool
    /// is capacity rather than a limit — a workload that pins more objects
    /// at once than the seed simply allocates the excess on demand.
    pub fn reserve_objects(&mut self, n: usize) {
        if self.objects.len() < n {
            self.objects.resize_with(n, || None);
        }
        let seed = n.min(FREE_POOL_SEED);
        while self.free.len() < seed {
            self.free.push(Box::default());
        }
    }

    fn entry(&self, object: ObjectId) -> Option<&ObjectLocks<O>> {
        self.objects
            .get(object.index() as usize)
            .and_then(|slot| slot.as_deref())
    }

    /// Mutable entry access, growing the slab on demand. An empty slot is
    /// filled from the recycling pool, so inside a pre-seeded table a fresh
    /// object costs no allocation.
    fn entry_mut(&mut self, object: ObjectId) -> &mut ObjectLocks<O> {
        let idx = object.index() as usize;
        if idx >= self.objects.len() {
            self.objects.resize_with(idx + 1, || None);
        }
        let free = &mut self.free;
        self.objects[idx].get_or_insert_with(|| free.pop().unwrap_or_default())
    }

    /// Returns an emptied slot's box to the recycling pool.
    fn reclaim(&mut self, object: ObjectId) {
        let idx = object.index() as usize;
        if let Some(slot) = self.objects.get_mut(idx) {
            if slot.as_deref().is_some_and(ObjectLocks::is_unused) {
                if let Some(boxed) = slot.take() {
                    self.free.push(boxed);
                }
            }
        }
    }

    /// Requests `mode` on `object` for `owner`.
    ///
    /// `deadline` orders the wait queue under
    /// [`QueueDiscipline::Deadline`]; it is remembered either way so
    /// callers can prune expired waiters with
    /// [`cancel_expired`](Self::cancel_expired).
    pub fn request(
        &mut self,
        object: ObjectId,
        owner: O,
        mode: LockMode,
        deadline: SimTime,
    ) -> Acquire<O> {
        let seq = self.next_seq;
        self.next_seq += 1;
        let discipline = self.discipline;
        let entry = self.entry_mut(object);

        if let Some(held) = entry.holder_mode(owner) {
            if held.covers(mode) {
                return Acquire::AlreadyHeld;
            }
            // Upgrade SL -> EL: immediate only as the sole holder.
            if entry.holders.iter().all(|(o, _)| *o == owner) {
                for h in entry.holders.iter_mut() {
                    if h.0 == owner {
                        h.1 = LockMode::Exclusive;
                    }
                }
                return Acquire::Upgraded;
            }
            let others: Vec<O> = entry
                .holders
                .iter()
                .filter(|(o, _)| *o != owner)
                .map(|&(o, _)| o)
                .collect();
            let waiter = Waiter {
                owner,
                mode,
                deadline,
                upgrade: false,
                seq,
            };
            // Upgrades go to the front of their discipline class so the
            // upgrading holder cannot deadlock behind newcomers it blocks.
            Self::insert_waiter(&mut entry.waiters, waiter, discipline, true);
            self.waits_of.entry(owner).or_default().push(object);
            return Acquire::Blocked { conflicts: others };
        }

        if !entry.has_conflict(owner, mode) && entry.waiters.is_empty() {
            entry.holders.push((owner, mode));
            self.held_by.entry(owner).or_default().push(object);
            return Acquire::Granted;
        }
        let conflicts = entry.conflicts_with(owner, mode);
        let blockers = if conflicts.is_empty() {
            // Blocked behind queued waiters rather than holders.
            entry.waiters.iter().map(|w| w.owner).collect()
        } else {
            conflicts
        };
        let waiter = Waiter {
            owner,
            mode,
            deadline,
            upgrade: false,
            seq,
        };
        Self::insert_waiter(&mut entry.waiters, waiter, discipline, false);
        self.waits_of.entry(owner).or_default().push(object);
        Acquire::Blocked { conflicts: blockers }
    }

    fn insert_waiter(
        waiters: &mut InlineVec<Waiter<O>, 2>,
        w: Waiter<O>,
        discipline: QueueDiscipline,
        upgrade_priority: bool,
    ) {
        if upgrade_priority {
            waiters.insert(0, w);
            return;
        }
        match discipline {
            QueueDiscipline::Fifo => waiters.push(w),
            QueueDiscipline::Deadline => {
                let pos = waiters
                    .iter()
                    .position(|x| (x.deadline, x.seq) > (w.deadline, w.seq))
                    .unwrap_or(waiters.len());
                waiters.insert(pos, w);
            }
        }
    }

    /// Grants `mode` on `object` to `owner` immediately if it is compatible
    /// with every current holder, *bypassing* the wait queue. Used by the
    /// load-sharing grant-all fast path, where a shared grant may overtake
    /// queued compatible readers. Returns `false` (taking no lock) when a
    /// conflicting holder exists.
    pub fn try_grant_bypass(&mut self, object: ObjectId, owner: O, mode: LockMode) -> bool {
        let entry = self.entry_mut(object);
        if let Some(held) = entry.holder_mode(owner) {
            if held.covers(mode) {
                return true;
            }
            let sole = entry.holders.iter().all(|(o, _)| *o == owner);
            if sole {
                for h in entry.holders.iter_mut() {
                    if h.0 == owner {
                        h.1 = LockMode::Exclusive;
                    }
                }
                return true;
            }
            return false;
        }
        if entry.has_conflict(owner, mode) {
            return false;
        }
        entry.holders.push((owner, mode));
        self.held_by.entry(owner).or_default().push(object);
        true
    }

    /// Releases `owner`'s lock on `object` (and removes any queued request
    /// by the same owner). Returns the waiters granted as a result, in grant
    /// order.
    pub fn release(&mut self, object: ObjectId, owner: O) -> Vec<Waiter<O>> {
        let idx = object.index() as usize;
        let Some(entry) = self.objects.get_mut(idx).and_then(|s| s.as_deref_mut()) else {
            return Vec::new();
        };
        let before = entry.holders.len();
        entry.holders.retain(|(o, _)| *o != owner);
        if entry.holders.len() != before {
            if let Some(v) = self.held_by.get_mut(&owner) {
                v.retain(|&o| o != object);
            }
        }
        let waiting = entry.waiters.len();
        entry.waiters.retain(|w| w.owner != owner);
        if entry.waiters.len() != waiting {
            Self::forget_wait_all(&mut self.waits_of, owner, object);
        }
        let granted = self.promote(object);
        self.reclaim(object);
        granted
    }

    /// Releases every lock `owner` holds or awaits; returns, per object, the
    /// newly granted waiters.
    pub fn release_all(&mut self, owner: O) -> Vec<(ObjectId, Vec<Waiter<O>>)> {
        // Held objects first (ascending), then awaited objects (ascending),
        // matching the order of the original held-then-slab-scan walk; an
        // object appearing in both lists is processed twice, which is a
        // harmless no-op the second time. The work list is a recycled
        // scratch buffer so the common commit path never allocates.
        let mut work = std::mem::take(&mut self.scratch);
        work.clear();
        if let Some(held) = self.held_by.remove(&owner) {
            work.extend(held.iter().copied());
        }
        work.sort_unstable();
        work.dedup();
        let split = work.len();
        if let Some(queued) = self.waits_of.remove(&owner) {
            work.extend(queued.iter().copied());
        }
        work[split..].sort_unstable();
        let mut out = Vec::new();
        for &obj in &work {
            if let Some(entry) = self
                .objects
                .get_mut(obj.index() as usize)
                .and_then(|s| s.as_deref_mut())
            {
                entry.holders.retain(|(o, _)| *o != owner);
                entry.waiters.retain(|w| w.owner != owner);
            }
            let granted = self.promote(obj);
            self.reclaim(obj);
            if !granted.is_empty() {
                out.push((obj, granted));
            }
        }
        work.clear();
        self.scratch = work;
        out
    }

    /// Downgrades `owner`'s exclusive lock on `object` to shared (the
    /// callback optimization of §2). Returns newly granted waiters. No-op
    /// if the owner does not hold an EL.
    pub fn downgrade(&mut self, object: ObjectId, owner: O) -> Vec<Waiter<O>> {
        let idx = object.index() as usize;
        let Some(entry) = self.objects.get_mut(idx).and_then(|s| s.as_deref_mut()) else {
            return Vec::new();
        };
        let mut changed = false;
        for h in entry.holders.iter_mut() {
            if h.0 == owner && h.1 == LockMode::Exclusive {
                h.1 = LockMode::Shared;
                changed = true;
            }
        }
        if changed {
            self.promote(object)
        } else {
            Vec::new()
        }
    }

    /// Removes a queued (not yet granted) request. Returns `true` if one was
    /// removed; promotes followers that may now be grantable.
    pub fn cancel_wait(&mut self, object: ObjectId, owner: O) -> (bool, Vec<Waiter<O>>) {
        let idx = object.index() as usize;
        let Some(entry) = self.objects.get_mut(idx).and_then(|s| s.as_deref_mut()) else {
            return (false, Vec::new());
        };
        let before = entry.waiters.len();
        entry.waiters.retain(|w| w.owner != owner);
        let removed = entry.waiters.len() != before;
        if removed {
            Self::forget_wait_all(&mut self.waits_of, owner, object);
        }
        let granted = if removed { self.promote(object) } else { Vec::new() };
        self.reclaim(object);
        (removed, granted)
    }

    /// Drops every queued waiter whose deadline precedes `now`; returns the
    /// cancelled waiters and any grants unblocked by the pruning.
    pub fn cancel_expired(&mut self, now: SimTime) -> (ExpiredWaiters<O>, UnblockedGrants<O>) {
        let mut expired = Vec::new();
        if self.waits_of.is_empty() {
            // Nothing is blocked anywhere: the sweep is free. This is the
            // common case, and it must not walk the object slab.
            return (expired, Vec::new());
        }
        // Visit only objects with queued waiters, straight from the
        // reverse index; pruning and promotion are no-ops elsewhere.
        let mut touched = std::mem::take(&mut self.scratch);
        touched.clear();
        for objs in self.waits_of.values() {
            touched.extend(objs.iter().copied());
        }
        touched.sort_unstable();
        touched.dedup();
        for &obj in &touched {
            let Some(entry) = self
                .objects
                .get_mut(obj.index() as usize)
                .and_then(|s| s.as_deref_mut())
            else {
                continue;
            };
            for w in entry.waiters.iter() {
                if w.deadline < now {
                    expired.push((obj, *w));
                }
            }
            entry.waiters.retain(|w| w.deadline >= now);
        }
        for &(obj, w) in &expired {
            Self::forget_wait_one(&mut self.waits_of, w.owner, obj);
        }
        let mut grants = Vec::new();
        for &obj in &touched {
            let g = self.promote(obj);
            self.reclaim(obj);
            if !g.is_empty() {
                grants.push((obj, g));
            }
        }
        touched.clear();
        self.scratch = touched;
        (expired, grants)
    }

    /// Promotes the longest grantable prefix of the wait queue.
    fn promote(&mut self, object: ObjectId) -> Vec<Waiter<O>> {
        let idx = object.index() as usize;
        let Some(entry) = self.objects.get_mut(idx).and_then(|s| s.as_deref_mut()) else {
            return Vec::new();
        };
        let mut granted = Vec::new();
        while let Some(head) = entry.waiters.first().copied() {
            // Upgrade waiter: grantable when it is the sole holder.
            if let Some(held) = entry.holder_mode(head.owner) {
                let sole = entry.holders.iter().all(|(o, _)| *o == head.owner);
                if sole && held == LockMode::Shared && head.mode == LockMode::Exclusive {
                    for h in entry.holders.iter_mut() {
                        if h.0 == head.owner {
                            h.1 = LockMode::Exclusive;
                        }
                    }
                    entry.waiters.remove(0);
                    Self::forget_wait_one(&mut self.waits_of, head.owner, object);
                    granted.push(Waiter {
                        upgrade: true,
                        ..head
                    });
                    continue;
                }
                break;
            }
            if !entry.has_conflict(head.owner, head.mode) {
                entry.holders.push((head.owner, head.mode));
                self.held_by.entry(head.owner).or_default().push(object);
                entry.waiters.remove(0);
                Self::forget_wait_one(&mut self.waits_of, head.owner, object);
                granted.push(head);
            } else {
                break;
            }
        }
        granted
    }

    /// Current holders of `object` with their modes.
    #[must_use]
    pub fn holders(&self, object: ObjectId) -> Vec<(O, LockMode)> {
        self.entry(object)
            .map(|e| e.holders.to_vec())
            .unwrap_or_default()
    }

    /// The mode `owner` holds on `object`, if any.
    #[must_use]
    pub fn held_mode(&self, object: ObjectId, owner: O) -> Option<LockMode> {
        self.entry(object).and_then(|e| e.holder_mode(owner))
    }

    /// Holders whose locks conflict with a hypothetical request — the input
    /// to the paper's H2 site-selection heuristic.
    #[must_use]
    pub fn conflicting_holders(&self, object: ObjectId, owner: O, mode: LockMode) -> Vec<O> {
        self.entry(object)
            .map(|e| e.conflicts_with(owner, mode))
            .unwrap_or_default()
    }

    /// Queued waiters on `object`, in service order.
    #[must_use]
    pub fn waiters(&self, object: ObjectId) -> Vec<Waiter<O>> {
        self.entry(object)
            .map(|e| e.waiters.to_vec())
            .unwrap_or_default()
    }

    /// Objects currently locked by `owner`.
    #[must_use]
    pub fn locks_of(&self, owner: O) -> Vec<ObjectId> {
        let mut v = self
            .held_by
            .get(&owner)
            .map(InlineVec::to_vec)
            .unwrap_or_default();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// Number of objects with any lock state.
    #[must_use]
    pub fn active_objects(&self) -> usize {
        self.objects.iter().flatten().filter(|e| !e.is_unused()).count()
    }

    /// Internal consistency check (tests / debug builds): no conflicting
    /// holders coexist and the reverse index matches.
    pub fn check_invariants(&self) -> Result<(), String> {
        for (i, slot) in self.objects.iter().enumerate() {
            let Some(e) = slot.as_deref() else { continue };
            let obj = ObjectId(i as u32);
            let holders: Vec<(O, LockMode)> = e.holders.to_vec();
            for i in 0..holders.len() {
                for j in (i + 1)..holders.len() {
                    let (a, ma) = holders[i];
                    let (b, mb) = holders[j];
                    if a == b {
                        return Err(format!("{obj}: duplicate holder {a:?}"));
                    }
                    if !ma.compatible_with(mb) {
                        return Err(format!(
                            "{obj}: conflicting holders {a:?}:{ma} and {b:?}:{mb}"
                        ));
                    }
                }
            }
            for (o, _) in &holders {
                let listed = self
                    .held_by
                    .get(o)
                    .is_some_and(|v| v.iter().any(|&x| x == obj));
                if !listed {
                    return Err(format!("{obj}: holder {o:?} missing from reverse index"));
                }
            }
            for w in e.waiters.iter() {
                let indexed = self
                    .waits_of
                    .get(&w.owner)
                    .map_or(0, |v| v.iter().filter(|&&x| x == obj).count());
                let queued = e.waiters.iter().filter(|x| x.owner == w.owner).count();
                if indexed != queued {
                    return Err(format!(
                        "{obj}: waiter {:?} indexed {indexed}x but queued {queued}x",
                        w.owner
                    ));
                }
            }
        }
        // No stale entries: everything in the waiting index must point at a
        // live waiter.
        // detlint: allow(D2) — validation sweep; any violation fails the
        // check regardless of visit order
        for (o, objs) in &self.waits_of {
            if objs.is_empty() {
                return Err(format!("empty waits_of entry for {o:?}"));
            }
            for &obj in objs.iter() {
                let live = self
                    .entry(obj)
                    .is_some_and(|e| e.waiters.iter().any(|w| w.owner == *o));
                if !live {
                    return Err(format!("stale waits_of entry {o:?} -> {obj}"));
                }
            }
        }
        Ok(())
    }
}

impl<O: LockOwner> Default for LockTable<O> {
    fn default() -> Self {
        LockTable::new(QueueDiscipline::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use siteselect_types::ClientId;
    use LockMode::{Exclusive, Shared};

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    fn table() -> LockTable<ClientId> {
        LockTable::new(QueueDiscipline::Fifo)
    }

    const A: ClientId = ClientId(0);
    const B: ClientId = ClientId(1);
    const C: ClientId = ClientId(2);
    const OBJ: ObjectId = ObjectId(7);

    #[test]
    fn shared_locks_coexist() {
        let mut lt = table();
        assert!(lt.request(OBJ, A, Shared, t(10)).is_granted());
        assert!(lt.request(OBJ, B, Shared, t(10)).is_granted());
        assert_eq!(lt.holders(OBJ).len(), 2);
        lt.check_invariants().unwrap();
    }

    #[test]
    fn exclusive_blocks_everyone() {
        let mut lt = table();
        assert!(lt.request(OBJ, A, Exclusive, t(10)).is_granted());
        let r = lt.request(OBJ, B, Shared, t(10));
        assert_eq!(r, Acquire::Blocked { conflicts: vec![A] });
        let r = lt.request(OBJ, C, Exclusive, t(10));
        assert!(matches!(r, Acquire::Blocked { .. }));
        lt.check_invariants().unwrap();
    }

    #[test]
    fn already_held_and_covering() {
        let mut lt = table();
        lt.request(OBJ, A, Exclusive, t(10));
        assert_eq!(lt.request(OBJ, A, Shared, t(10)), Acquire::AlreadyHeld);
        assert_eq!(lt.request(OBJ, A, Exclusive, t(10)), Acquire::AlreadyHeld);
    }

    #[test]
    fn sole_holder_upgrade_is_immediate() {
        let mut lt = table();
        lt.request(OBJ, A, Shared, t(10));
        assert_eq!(lt.request(OBJ, A, Exclusive, t(10)), Acquire::Upgraded);
        assert_eq!(lt.held_mode(OBJ, A), Some(Exclusive));
    }

    #[test]
    fn contended_upgrade_waits_then_wins() {
        let mut lt = table();
        lt.request(OBJ, A, Shared, t(10));
        lt.request(OBJ, B, Shared, t(10));
        let r = lt.request(OBJ, A, Exclusive, t(10));
        assert_eq!(r, Acquire::Blocked { conflicts: vec![B] });
        let granted = lt.release(OBJ, B);
        assert_eq!(granted.len(), 1);
        assert_eq!(granted[0].owner, A);
        assert_eq!(lt.held_mode(OBJ, A), Some(Exclusive));
        lt.check_invariants().unwrap();
    }

    #[test]
    fn release_promotes_fifo_order() {
        let mut lt = table();
        lt.request(OBJ, A, Exclusive, t(10));
        lt.request(OBJ, B, Exclusive, t(10));
        lt.request(OBJ, C, Exclusive, t(5));
        let granted = lt.release(OBJ, A);
        // FIFO: B first even though C has an earlier deadline.
        assert_eq!(granted.len(), 1);
        assert_eq!(granted[0].owner, B);
    }

    #[test]
    fn deadline_discipline_orders_by_deadline() {
        let mut lt: LockTable<ClientId> = LockTable::new(QueueDiscipline::Deadline);
        lt.request(OBJ, A, Exclusive, t(10));
        lt.request(OBJ, B, Exclusive, t(20));
        lt.request(OBJ, C, Exclusive, t(5));
        let granted = lt.release(OBJ, A);
        assert_eq!(granted[0].owner, C);
    }

    #[test]
    fn release_grants_batch_of_readers() {
        let mut lt = table();
        lt.request(OBJ, A, Exclusive, t(10));
        lt.request(OBJ, B, Shared, t(10));
        lt.request(OBJ, C, Shared, t(10));
        let granted = lt.release(OBJ, A);
        assert_eq!(granted.len(), 2);
        assert_eq!(lt.holders(OBJ).len(), 2);
        lt.check_invariants().unwrap();
    }

    #[test]
    fn new_reader_does_not_starve_queued_writer() {
        let mut lt = table();
        lt.request(OBJ, A, Shared, t(10));
        lt.request(OBJ, B, Exclusive, t(10)); // queued
        let r = lt.request(OBJ, C, Shared, t(10));
        assert!(
            matches!(r, Acquire::Blocked { .. }),
            "reader must queue behind writer"
        );
        let g = lt.release(OBJ, A);
        assert_eq!(g[0].owner, B);
        let g = lt.release(OBJ, B);
        assert_eq!(g[0].owner, C);
    }

    #[test]
    fn downgrade_unblocks_readers() {
        let mut lt = table();
        lt.request(OBJ, A, Exclusive, t(10));
        lt.request(OBJ, B, Shared, t(10));
        let granted = lt.downgrade(OBJ, A);
        assert_eq!(granted.len(), 1);
        assert_eq!(granted[0].owner, B);
        assert_eq!(lt.held_mode(OBJ, A), Some(Shared));
        assert_eq!(lt.held_mode(OBJ, B), Some(Shared));
        lt.check_invariants().unwrap();
    }

    #[test]
    fn downgrade_of_shared_is_noop() {
        let mut lt = table();
        lt.request(OBJ, A, Shared, t(10));
        assert!(lt.downgrade(OBJ, A).is_empty());
        assert_eq!(lt.held_mode(OBJ, A), Some(Shared));
    }

    #[test]
    fn cancel_wait_removes_and_promotes() {
        let mut lt = table();
        lt.request(OBJ, A, Shared, t(10));
        lt.request(OBJ, B, Exclusive, t(10));
        lt.request(OBJ, C, Shared, t(10));
        let (removed, granted) = lt.cancel_wait(OBJ, B);
        assert!(removed);
        // C is now compatible with holder A.
        assert_eq!(granted.len(), 1);
        assert_eq!(granted[0].owner, C);
        let (removed, _) = lt.cancel_wait(OBJ, B);
        assert!(!removed);
    }

    #[test]
    fn cancel_expired_prunes_old_deadlines() {
        let mut lt = table();
        lt.request(OBJ, A, Exclusive, t(100));
        lt.request(OBJ, B, Exclusive, t(5));
        lt.request(OBJ, C, Exclusive, t(50));
        let (expired, _grants) = lt.cancel_expired(t(10));
        assert_eq!(expired.len(), 1);
        assert_eq!(expired[0].1.owner, B);
        assert_eq!(lt.waiters(OBJ).len(), 1);
    }

    #[test]
    fn release_all_frees_every_object() {
        let mut lt = table();
        let o1 = ObjectId(1);
        let o2 = ObjectId(2);
        lt.request(o1, A, Exclusive, t(10));
        lt.request(o2, A, Shared, t(10));
        lt.request(o1, B, Shared, t(10));
        lt.request(o2, B, Exclusive, t(10));
        let grants = lt.release_all(A);
        assert_eq!(grants.len(), 2);
        assert_eq!(lt.locks_of(A), Vec::<ObjectId>::new());
        assert_eq!(lt.held_mode(o1, B), Some(Shared));
        assert_eq!(lt.held_mode(o2, B), Some(Exclusive));
        lt.check_invariants().unwrap();
    }

    #[test]
    fn conflicting_holders_reports_for_h2() {
        let mut lt = table();
        lt.request(OBJ, A, Shared, t(10));
        lt.request(OBJ, B, Shared, t(10));
        assert_eq!(lt.conflicting_holders(OBJ, C, Exclusive), vec![A, B]);
        assert!(lt.conflicting_holders(OBJ, C, Shared).is_empty());
        // A requesting EL conflicts only with B.
        assert_eq!(lt.conflicting_holders(OBJ, A, Exclusive), vec![B]);
    }

    #[test]
    fn locks_of_tracks_holdings() {
        let mut lt = table();
        lt.request(ObjectId(3), A, Shared, t(10));
        lt.request(ObjectId(1), A, Exclusive, t(10));
        assert_eq!(lt.locks_of(A), vec![ObjectId(1), ObjectId(3)]);
        lt.release(ObjectId(1), A);
        assert_eq!(lt.locks_of(A), vec![ObjectId(3)]);
    }

    #[test]
    fn empty_object_state_is_garbage_collected() {
        let mut lt = table();
        lt.request(OBJ, A, Exclusive, t(10));
        assert_eq!(lt.active_objects(), 1);
        lt.release(OBJ, A);
        assert_eq!(lt.active_objects(), 0);
    }

    #[test]
    fn bypass_grants_compatible_and_refuses_conflicts() {
        let mut lt = table();
        assert!(lt.request(OBJ, A, Shared, t(10)).is_granted());
        lt.request(OBJ, B, Exclusive, t(10)); // queued writer
        // A shared bypass overtakes the queued writer (compatible with the
        // holder)...
        assert!(lt.try_grant_bypass(OBJ, C, Shared));
        assert_eq!(lt.held_mode(OBJ, C), Some(Shared));
        // ...but an exclusive bypass cannot get past the shared holders.
        let d = ClientId(3);
        assert!(!lt.try_grant_bypass(OBJ, d, Exclusive));
        assert_eq!(lt.held_mode(OBJ, d), None);
        lt.check_invariants().unwrap();
    }

    #[test]
    fn bypass_covering_and_sole_upgrade() {
        let mut lt = table();
        lt.request(OBJ, A, Exclusive, t(10));
        // Covering: no-op success.
        assert!(lt.try_grant_bypass(OBJ, A, Shared));
        assert_eq!(lt.held_mode(OBJ, A), Some(Exclusive));
        lt.release(OBJ, A);
        // Sole-holder upgrade through the bypass.
        lt.request(OBJ, A, Shared, t(10));
        assert!(lt.try_grant_bypass(OBJ, A, Exclusive));
        assert_eq!(lt.held_mode(OBJ, A), Some(Exclusive));
        // Contended upgrade refused.
        lt.downgrade(OBJ, A);
        lt.request(OBJ, B, Shared, t(10));
        assert!(!lt.try_grant_bypass(OBJ, A, Exclusive));
        assert_eq!(lt.held_mode(OBJ, A), Some(Shared));
        lt.check_invariants().unwrap();
    }

    #[test]
    fn bypass_on_fresh_object_grants() {
        let mut lt = table();
        assert!(lt.try_grant_bypass(OBJ, A, Exclusive));
        assert_eq!(lt.locks_of(A), vec![OBJ]);
        let grants = lt.release(OBJ, A);
        assert!(grants.is_empty());
        assert_eq!(lt.active_objects(), 0);
    }

    #[test]
    fn release_of_unknown_is_safe() {
        let mut lt = table();
        assert!(lt.release(OBJ, A).is_empty());
        assert!(lt.downgrade(OBJ, A).is_empty());
        assert!(lt.release_all(A).is_empty());
    }
}
